"""Hot-path microbenchmark smoke: the three inner loops stay functional.

Unlike the figure-reproduction benches, these are *micro*benchmarks over
``Engine`` dispatch, the threaded-code ``Interpreter`` and the indexed
``Medium``.  They assert only functional invariants (everything scheduled
was dispatched, the VM converged, frames resolved) -- never wall-clock
thresholds, so slow CI runners cannot flake them.  The recorded rates
land in the pytest-benchmark report; cross-PR trajectories are tracked
separately in ``BENCH_*.json`` via ``benchmarks/hotpath.py``.
"""

import random

# Sibling module; pytest puts this directory on sys.path (no __init__.py).
from hotpath import _COUNTDOWN, _build_mesh

from repro.evm.bytecode import Assembler
from repro.evm.interpreter import Interpreter
from repro.net.packet import BROADCAST, Packet
from repro.sim.engine import Engine


def test_engine_event_throughput(benchmark):
    n_events = 20_000

    def drive() -> int:
        engine = Engine()
        remaining = [n_events]

        def tick() -> None:
            remaining[0] -= 1
            if remaining[0] > 0:
                engine.post(7, tick)

        for i in range(32):
            engine.post(i, tick)
        return engine.run()

    dispatched = benchmark.pedantic(drive, rounds=3, iterations=1)
    # The 32 seed events still drain after the countdown hits zero.
    assert dispatched >= n_events


def test_engine_cancellation_churn(benchmark):
    """The cancellable path: half the handles are cancelled before firing;
    the live-event counter must land exactly on zero."""
    n_events = 10_000

    def drive() -> int:
        engine = Engine()
        fired = [0]

        def tick() -> None:
            fired[0] += 1

        handles = [engine.schedule(10 + (i % 97), tick)
                   for i in range(n_events)]
        for handle in handles[::2]:
            handle.cancel()
        assert engine.pending_events == n_events // 2
        engine.run()
        assert engine.pending_events == 0
        return fired[0]

    fired = benchmark.pedantic(drive, rounds=3, iterations=1)
    assert fired == n_events // 2


def test_process_resume_throughput(benchmark):
    """The allocation-free resume path drives a Delay ping-pong loop to
    completion; every lap must land on the engine's clock grid."""
    from repro.sim.process import Delay, Process

    n_resumes = 20_000

    def drive() -> int:
        engine = Engine()
        wait = Delay(7)

        def loop():
            for _ in range(n_resumes):
                yield wait

        proc = Process(engine, loop(), name="smoke")
        engine.run()
        assert not proc.alive
        return engine.now

    final_time = benchmark.pedantic(drive, rounds=3, iterations=1)
    assert final_time == n_resumes * 7


def test_campaign_runner_pool_reuse(benchmark):
    """Two runs through one CampaignRunner: the persistent pool must be
    reused and both runs must produce identical records."""
    import json

    from repro.scenarios import CampaignRunner, Scenario
    from repro.scenarios.stock import fast_hil

    grid = [Scenario(f"smoke-{i}", hil=fast_hil(), seed=i, duration_sec=3.0)
            for i in range(2)]

    def drive():
        with CampaignRunner(max_workers=2) as runner:
            first = runner.run(grid)
            pool = runner._pool
            second = runner.run(grid)
            assert runner._pool is pool  # persistent across run() calls
        assert runner._pool is None  # context exit reaped it
        return first, second

    first, second = benchmark.pedantic(drive, rounds=1, iterations=1)
    assert len(first.records) == len(grid)
    assert (json.dumps(first.records, sort_keys=True)
            == json.dumps(second.records, sort_keys=True))


def test_vm_dispatch_throughput(benchmark):
    iterations = 5_000
    program = Assembler().assemble(_COUNTDOWN, name="countdown")
    interp = Interpreter(max_steps=10_000_000)

    def drive() -> int:
        memory = [float(iterations)] + [0.0] * 15
        state = interp.execute(program, memory)
        assert state.halted and memory[0] == 0.0
        return state.steps

    steps = benchmark.pedantic(drive, rounds=3, iterations=1)
    # Virtual step accounting is preserved even though the peephole pass
    # executes the loop in fewer dispatches.
    assert steps >= iterations * 7


def test_medium_frame_resolution(benchmark):
    n_frames = 500

    def drive():
        engine = Engine()
        medium, nodes, node_ids = _build_mesh(engine, 8)
        for node_id in node_ids:
            medium.port(node_id).listen()
        sent = [0]

        def send(idx: int) -> None:
            if sent[0] >= n_frames:
                return
            sent[0] += 1
            node_id = node_ids[idx % len(node_ids)]
            if nodes[node_id].radio.state.name != "TX":
                medium.port(node_id).transmit(
                    Packet(src=node_id, dst=BROADCAST, kind="bench",
                           size_bytes=32, seq=sent[0]))
                medium.port(node_id).listen()
            engine.schedule(650 + 13 * (idx % 5), send, idx + 1)

        engine.schedule(0, send, 0)
        engine.run()
        return medium.stats

    stats = benchmark.pedantic(drive, rounds=3, iterations=1)
    assert stats.frames_sent == n_frames
    # Every completion resolved an outcome per audible receiver.
    resolved = (stats.frames_delivered + stats.collisions
                + stats.channel_losses + stats.missed_radio_off)
    assert resolved == n_frames * 7


def test_carrier_sense_is_o1(benchmark):
    """channel_busy cost must not scale with the in-flight population."""

    def probe_cost(in_flight: int, probes: int = 2_000) -> None:
        engine = Engine()
        medium, nodes, node_ids = _build_mesh(engine, 12)
        rng = random.Random(3)
        for i in range(in_flight):
            node_id = node_ids[rng.randrange(len(node_ids))]
            if nodes[node_id].radio.state.name != "TX":
                medium.port(node_id).transmit(
                    Packet(src=node_id, dst=BROADCAST, kind="bench",
                           size_bytes=100, seq=i))
        port = medium.port(node_ids[0])
        for _ in range(probes):
            port.channel_busy()

    benchmark.pedantic(probe_cost, args=(64,), rounds=3, iterations=1)


def test_plant_step_throughput(benchmark):
    """The compiled plant step sweep stays functional: levels move under
    local control and every unit advances every step."""
    from repro.plant.gas_plant import NaturalGasPlant

    plant = NaturalGasPlant()
    plant.enable_local_control()

    def drive() -> float:
        for _ in range(200):
            plant.step(0.5)
        return plant.flowsheet.read("lts_level_pct")

    level = benchmark.pedantic(drive, rounds=1, iterations=1)
    assert 0.0 < level < 100.0
    assert plant.flowsheet.steps == 200


def test_trace_record_and_views(benchmark):
    """The lazily-materialized trace keeps its view contract under the
    bench workload shape."""
    from repro.sim.trace import Trace

    def drive():
        trace = Trace()
        for i in range(5_000):
            trace.record(i * 7, "mac.tx", "n1", seq=i)
            trace.record(i * 7 + 3, "medium.rx", "n2", src="n1")
            if i % 100 == 0:
                trace.record(i * 7 + 5, "evm.heartbeat", "ctrl_a", seq=i)
        return trace

    trace = benchmark.pedantic(drive, rounds=1, iterations=1)
    assert trace.count("mac.tx") == 5_000
    assert len(trace.events("evm")) == 50
    assert trace.last("medium.rx").data["src"] == "n1"


def test_widegrid_trial_smoke(benchmark):
    """A reduced wide-grid failover trial end to end (the BENCH_4 meter
    runs 100 nodes; 48 keeps the smoke cheap)."""
    from repro.experiments.widegrid import WideGridConfig, run_widegrid_trial

    config = WideGridConfig(n_nodes=48, area_m=110.0, radio_range_m=28.0,
                            seed=1, duration_sec=15.0,
                            crash_primary_at_sec=5.0)

    def drive():
        return run_widegrid_trial(config)

    result = benchmark.pedantic(drive, rounds=1, iterations=1)
    assert result.failovers_executed >= 1
    assert result.active_controller_final == result.roles["ctrl_b"]
    assert result.reports_delivered > 0


def test_distributed_campaign_smoke(benchmark):
    """The distributed runner end to end on a thread-mode LocalCluster:
    jobs over real localhost sockets, leases, results streamed back --
    functional smoke for the campaign_dist_runs_per_sec meter (the
    BENCH_5 meter uses subprocess workers with process pools)."""
    from repro.dist import LocalCluster
    from repro.scenarios import Scenario
    from repro.scenarios.stock import fast_hil

    grid = [Scenario(f"bench-dist-{i}", hil=fast_hil(), seed=i,
                     duration_sec=3.0) for i in range(3)]

    def drive():
        with LocalCluster(n_workers=2, slots=2) as cluster:
            cluster.wait_for_workers()
            return cluster.runner().run(grid)

    result = benchmark.pedantic(drive, rounds=1, iterations=1)
    assert len(result.records) == 3 and not result.failed
    assert result.summary["total_runs"] == 3


def test_dist_frame_relay_smoke(benchmark):
    """The dist_frames_per_sec meter's shape at reduced size: zero-work
    echo jobs through one thread-mode worker over real sockets, results
    back in job order (batched grant/result frames under the hood)."""
    from hotpath import _frame_echo

    from repro.dist import LocalCluster

    jobs = [{"value": i} for i in range(64)]

    def drive():
        with LocalCluster(n_workers=1, mode="thread", processes=0,
                          slots=16) as cluster:
            cluster.wait_for_workers()
            return cluster.runner().map_jobs(_frame_echo, jobs)

    values = benchmark.pedantic(drive, rounds=1, iterations=1)
    assert values == list(range(64))
