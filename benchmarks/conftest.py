"""Benchmark configuration.

Every benchmark regenerates one figure or quantitative claim from the paper
(see DESIGN.md section 4).  Scenario runs are timed with
``benchmark.pedantic(rounds=1)`` -- these are reproductions, not
micro-benchmarks -- and each bench *asserts* the paper's qualitative shape
before reporting.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Time a single execution of a full scenario."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1)
