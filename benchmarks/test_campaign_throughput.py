"""Campaign-runner throughput: parallel sweep vs serial execution.

Measures scenarios/second over a fixed 8-run grid both ways, checks the
two execution modes produce byte-identical metrics (the fan-out must not
perturb determinism), and guards against the pool making things
catastrophically slower on small machines -- on a single-core box the
parallel path is allowed to pay process-spawn overhead, but not more
than a small constant factor.
"""

import json
import os

from benchmarks.conftest import run_once

from repro.scenarios import CampaignRunner, stock_scenario, sweep

_GRID = sweep([stock_scenario("primary-crash", crash_at_sec=6.0,
                              duration_sec=15.0),
               stock_scenario("wedged-primary", fault_at_sec=6.0,
                              duration_sec=15.0)],
              seeds=[1, 2, 3, 4])

_timings: dict[str, float] = {}


def _throughput(benchmark, label: str) -> float:
    elapsed = benchmark.stats.stats.mean
    _timings[label] = elapsed
    rate = len(_GRID) / elapsed
    benchmark.extra_info["scenarios_per_sec"] = round(rate, 3)
    return rate


def test_campaign_serial_throughput(benchmark):
    result = run_once(benchmark,
                      lambda: CampaignRunner(parallel=False).run(_GRID))
    assert len(result.records) == len(_GRID)
    assert result.summary["total_runs"] == len(_GRID)
    assert _throughput(benchmark, "serial") > 0


def test_campaign_parallel_throughput(benchmark):
    workers = min(4, os.cpu_count() or 1)
    result = run_once(
        benchmark,
        lambda: CampaignRunner(max_workers=max(2, workers)).run(_GRID))
    assert len(result.records) == len(_GRID)
    rate = _throughput(benchmark, "parallel")
    assert rate > 0
    # Same grid, same records -- parallelism must not perturb results.
    serial = CampaignRunner(parallel=False).run(_GRID)
    assert json.dumps([r["metrics"] for r in result.records],
                      sort_keys=True) == \
        json.dumps([r["metrics"] for r in serial.records], sort_keys=True)
    if "serial" in _timings:
        # Loose guard: pool overhead may dominate on 1-core CI boxes, but
        # the parallel path must stay within a small factor of serial.
        assert _timings["parallel"] <= _timings["serial"] * 4.0
