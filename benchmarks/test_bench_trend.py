"""The bench-trend gate: snapshot loading and the regression rule."""

import json

from bench_trend import (check_obs_overhead, check_trend, load_snapshots,
                         main)


def _write(root, number, optimized):
    (root / f"BENCH_{number}.json").write_text(
        json.dumps({"bench": number, "optimized": optimized}))


def test_loads_in_numeric_order(tmp_path):
    _write(tmp_path, 10, {"m": 1.0})
    _write(tmp_path, 2, {"m": 1.0})
    (tmp_path / "BENCH_x.json").write_text("{}")  # ignored: not numbered
    assert [n for n, _ in load_snapshots(tmp_path)] == [2, 10]


def test_within_tolerance_passes():
    snapshots = [(1, {"optimized": {"m": 100.0}}),
                 (2, {"optimized": {"m": 85.0}})]  # -15% < 20%
    assert check_trend(snapshots, tolerance=0.20) == []


def test_regression_beyond_tolerance_fails():
    snapshots = [(1, {"optimized": {"m": 100.0}}),
                 (2, {"optimized": {"m": 75.0}})]  # -25% > 20%
    failures = check_trend(snapshots, tolerance=0.20)
    assert len(failures) == 1 and "m:" in failures[0]


def test_comparison_is_against_latest_prior_with_meter():
    # BENCH_2 lacks the meter: BENCH_3 compares against BENCH_1, and a
    # recovery in BENCH_3 must not be judged against BENCH_1's peak.
    snapshots = [(1, {"optimized": {"m": 100.0, "n": 50.0}}),
                 (2, {"optimized": {"n": 49.0}}),
                 (3, {"optimized": {"m": 90.0, "n": 45.0}})]
    assert check_trend(snapshots, tolerance=0.20) == []
    snapshots.append((4, {"optimized": {"m": 60.0}}))  # -33% vs BENCH_3
    failures = check_trend(snapshots, tolerance=0.20)
    assert len(failures) == 1 and "BENCH_3" in failures[0]


def test_new_meter_has_no_prior():
    snapshots = [(1, {"optimized": {"m": 100.0}}),
                 (2, {"optimized": {"m": 100.0, "fresh": 1.0}})]
    assert check_trend(snapshots) == []


def test_obs_overhead_within_budget_passes():
    snapshots = [(6, {"optimized": {"m": 1.0},
                      "obs_overhead": {"m": {"off": 100.0, "on": 95.0,
                                             "overhead_pct": 5.0}}})]
    assert check_obs_overhead(snapshots) == []
    assert check_obs_overhead([(1, {"optimized": {"m": 1.0}})]) == []


def test_obs_overhead_beyond_budget_fails():
    snapshots = [(6, {"optimized": {"m": 1.0},
                      "obs_overhead": {"m": {"off": 100.0, "on": 80.0,
                                             "overhead_pct": 20.0}}})]
    failures = check_obs_overhead(snapshots)
    assert len(failures) == 1
    assert "20.00%" in failures[0] and "10% budget" in failures[0]


def test_obs_overhead_judged_on_latest_table_only():
    # An old over-budget table superseded by a healthy one must pass:
    # the budget constrains the current instrumentation, not history.
    snapshots = [(5, {"obs_overhead": {"m": {"overhead_pct": 30.0}}}),
                 (6, {"obs_overhead": {"m": {"overhead_pct": 3.0}}})]
    assert check_obs_overhead(snapshots) == []


def test_duration_meter_regression_is_a_rise():
    # *_sec meters (wide-grid trial wall-clock) improve downward.
    snapshots = [(1, {"optimized": {"trial_sec": 1.0}}),
                 (2, {"optimized": {"trial_sec": 1.15}})]  # +15% < 20%
    assert check_trend(snapshots, tolerance=0.20) == []
    snapshots.append((3, {"optimized": {"trial_sec": 1.45}}))  # +26%
    failures = check_trend(snapshots, tolerance=0.20)
    assert len(failures) == 1 and "trial_sec" in failures[0]
    assert "above" in failures[0]


def test_late_appearing_meters_are_new_not_regressions():
    """Meters that first appear mid-history (``widegrid_1000_trial_sec``
    and ``flowsheet_np_steps_per_sec`` land in BENCH_7) have no prior
    and must pass both the rate rule and the duration rule."""
    snapshots = [(6, {"optimized": {"m": 100.0}}),
                 (7, {"optimized": {"m": 100.0,
                                    "widegrid_1000_trial_sec": 13.7,
                                    "flowsheet_np_steps_per_sec": 5e4}})]
    assert check_trend(snapshots, tolerance=0.20) == []
    # And from then on they are gated like any other meter.
    snapshots.append((8, {"optimized": {"m": 100.0,
                                        "widegrid_1000_trial_sec": 20.0}}))
    failures = check_trend(snapshots, tolerance=0.20)
    assert len(failures) == 1 and "widegrid_1000_trial_sec" in failures[0]


def test_duration_meter_improvement_never_fails():
    snapshots = [(1, {"optimized": {"trial_sec": 2.0}}),
                 (2, {"optimized": {"trial_sec": 0.5}})]  # 4x faster
    assert check_trend(snapshots, tolerance=0.20) == []


def test_per_sec_suffix_is_a_rate_not_a_duration():
    # events_per_sec ends in _sec lexically; it must use the rate rule.
    snapshots = [(1, {"optimized": {"events_per_sec": 100.0}}),
                 (2, {"optimized": {"events_per_sec": 130.0}})]  # faster
    assert check_trend(snapshots, tolerance=0.20) == []
    snapshots.append((3, {"optimized": {"events_per_sec": 90.0}}))  # -31%
    assert len(check_trend(snapshots, tolerance=0.20)) == 1


def test_main_ok_and_regression_exit_codes(tmp_path, capsys):
    _write(tmp_path, 1, {"m": 100.0})
    _write(tmp_path, 2, {"m": 95.0})
    assert main(["--root", str(tmp_path)]) == 0
    _write(tmp_path, 3, {"m": 10.0})
    assert main(["--root", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out


def test_main_repo_snapshots_hold():
    """The real repo snapshots must satisfy their own gate."""
    assert main([]) == 0
