"""F3 (Fig. 3): the nano-RK + EVM stack.

The figure shows the EVM as a privileged task over the resource kernel.
Reproduced properties:

- the scheduler sustains RTA-schedulable task-sets without misses while the
  EVM super-task co-resides;
- reservations isolate a misbehaving task from the rest of the node;
- scheduler overhead (events dispatched per job) stays small and flat as
  utilization grows.
"""

import random

from benchmarks.conftest import run_once
from repro.hardware.node import FireFlyNode
from repro.rtos.analysis import response_time_analysis
from repro.rtos.kernel import NanoRK
from repro.rtos.reservations import CpuReservation
from repro.rtos.task import TaskSpec
from repro.sim.clock import MS, SEC
from repro.sim.engine import Engine


def _stack_trial(utilization_target, seed=3, horizon=10 * SEC):
    """Random task-set near the target utilization + EVM-like task."""
    rng = random.Random(seed)
    engine = Engine()
    node = FireFlyNode(engine, "n", with_sensors=False)
    kernel = NanoRK(engine, node)
    # The EVM super-task: 1 ms every 100 ms at top priority.
    kernel.create_task(TaskSpec("EVM", wcet_ticks=1 * MS,
                                period_ticks=100 * MS, priority=0), None,
                       admit=False)
    remaining = utilization_target - 0.01
    index = 0
    while remaining > 0.02:
        period = rng.choice([20, 40, 50, 100, 200]) * MS
        share = min(remaining, rng.uniform(0.03, 0.15))
        wcet = max(1, int(period * share))
        spec = TaskSpec(f"t{index}", wcet_ticks=wcet, period_ticks=period,
                        priority=1 + index)
        if response_time_analysis(kernel.scheduler.specs()
                                  + [spec]).schedulable:
            kernel.create_task(spec, None, admit=False)
            remaining -= spec.utilization
        index += 1
        if index > 40:
            break
    engine.run_until(horizon)
    return engine, kernel


def test_fig3_no_misses_across_utilizations(benchmark):
    def sweep():
        outcomes = []
        for target in (0.2, 0.4, 0.6, 0.8):
            engine, kernel = _stack_trial(target)
            misses = sum(t.deadline_misses
                         for t in kernel.scheduler.tasks.values())
            jobs = sum(t.jobs_completed
                       for t in kernel.scheduler.tasks.values())
            outcomes.append((target, kernel.scheduler.utilization_now(),
                             jobs, misses,
                             engine.dispatched_count / max(1, jobs)))
        return outcomes

    outcomes = run_once(benchmark, sweep)
    print()
    for target, util, jobs, misses, events_per_job in outcomes:
        print(f"  target U={target:.1f} achieved U={util:.3f} "
              f"jobs={jobs} misses={misses} "
              f"events/job={events_per_job:.2f}")
        assert misses == 0
        # Event-dispatch overhead stays bounded (release+deadline+slice).
        assert events_per_job < 6.0


def test_fig3_reservation_isolation(benchmark):
    """A runaway task under a CPU reservation cannot starve its peers."""

    def trial():
        engine = Engine()
        node = FireFlyNode(engine, "n", with_sensors=False)
        kernel = NanoRK(engine, node)
        runaway = kernel.create_task(
            TaskSpec("runaway", wcet_ticks=95 * MS, period_ticks=100 * MS,
                     priority=1), None,
            cpu_reservation=CpuReservation(30 * MS, 100 * MS), admit=False)
        victim = kernel.create_task(
            TaskSpec("victim", wcet_ticks=20 * MS, period_ticks=100 * MS,
                     priority=5), None, admit=False)
        engine.run_until(10 * SEC)
        return runaway, victim

    runaway, victim = run_once(benchmark, trial)
    assert victim.deadline_misses == 0
    assert victim.jobs_completed == 100
    # The runaway is throttled: it can never finish a 95 ms job on a
    # 30 ms/100 ms reservation within its period.
    assert runaway.jobs_completed < runaway.jobs_released
    print(f"\nvictim: {victim.jobs_completed} jobs, 0 misses; "
          f"runaway completed {runaway.jobs_completed}/"
          f"{runaway.jobs_released} (throttled)")
