"""F6a (Fig. 6(a)): the primary/backup controller pair for the LTS valve.

The figure shows Ctrl-A and Ctrl-B both implementing the LTS level law,
with the operation switch OS-1 selecting whose output reaches the valve.
Reproduced: both controllers compute every cycle from the same sensor
stream, their outputs agree (shadow consistency), only the primary's
commands pass the switch, and the configuration renders as the paper's
figure describes.
"""

import pytest

from benchmarks.conftest import run_once
from repro.control.compiler import SLOT_OUTPUT
from repro.evm.failover import ControllerMode
from repro.experiments.hil import (
    ACTUATOR,
    CTRL_A,
    CTRL_B,
    HilConfig,
    HilRig,
    TASK_CTRL,
)


def _run(seconds=40.0):
    rig = HilRig(HilConfig(settle_sec=1000.0))
    rig.run_for_seconds(seconds)
    return rig


def test_fig6a_shadow_consistency(benchmark):
    rig = run_once(benchmark, _run)
    a = rig.runtimes[CTRL_A].instances[TASK_CTRL]
    b = rig.runtimes[CTRL_B].instances[TASK_CTRL]
    assert a.mode is ControllerMode.ACTIVE
    assert b.mode is ControllerMode.BACKUP
    assert a.jobs_run > 100 and b.jobs_run > 100
    # Same law + same sensor stream => near-identical outputs.
    assert b.memory[SLOT_OUTPUT] == pytest.approx(a.memory[SLOT_OUTPUT],
                                                  abs=0.5)
    print(f"\nCtrl-A output {a.memory[SLOT_OUTPUT]:.3f} % | "
          f"Ctrl-B shadow {b.memory[SLOT_OUTPUT]:.3f} % "
          f"({a.jobs_run} cycles)")


def test_fig6a_operation_switch(benchmark):
    rig = run_once(benchmark, _run, 20.0)
    # Only the primary's output drives the valve.
    assert rig.active_controller() == CTRL_A
    assert rig.runtimes[CTRL_B].stats.data_published == 0
    assert rig.runtimes[ACTUATOR].stats.data_applied > 50
    # Render the configuration table (the figure's content).
    print()
    print(rig.vc.describe())
    assignment = rig.vc.assignments[TASK_CTRL]
    assert assignment.primary == CTRL_A
    assert assignment.backups == [CTRL_B]
