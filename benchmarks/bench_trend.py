"""Cross-PR perf-trend gate over the ``BENCH_*.json`` snapshots.

Each perf PR records a ``BENCH_<n>.json`` snapshot with ``baseline`` and
``optimized`` rate tables (see ``benchmarks/hotpath.py``).  This gate
loads every snapshot at the repo root in ``<n>`` order and fails when a
meter's ``optimized`` rate regresses more than the tolerance versus the
**latest prior snapshot that recorded the same meter** -- i.e. the perf
trajectory may wobble (snapshots are wall-clock and host-dependent) but
must not silently fall off a cliff between PRs.

Two meter shapes share the snapshots: ``*_per_sec`` rates (higher is
better; a regression is a drop below ``prior * (1 - tolerance)``) and
``*_sec`` durations such as ``widegrid_trial_sec`` (lower is better; a
regression is a rise above ``prior * (1 + tolerance)``).

Meters that first appear in a snapshot have no prior to compare against
and are reported as new.  Snapshots that carry an ``obs_overhead`` table
(``hotpath.py --obs-overhead``) are additionally held to the telemetry
budget: a meter whose telemetry-on overhead exceeds 10% fails the gate.
Exit status: 0 = trend holds, 1 = regression.

Since the results warehouse landed, this script is a thin client of
``repro.warehouse``: ``main`` ingests the snapshots into an in-memory
warehouse and gates on ``trend_failures`` / ``obs_overhead_failures``
-- the exact queries ``python -m repro.warehouse trend --gate`` runs
against a durable warehouse -- so CI's pass/fail semantics and this
module's ``check_trend``/``check_obs_overhead`` API are unchanged.

Run it the way CI does::

    python benchmarks/bench_trend.py
    python benchmarks/bench_trend.py --tolerance 0.2 --root .
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

from meters import is_duration_meter

_REPO_ROOT = Path(__file__).resolve().parent.parent
if str(_REPO_ROOT / "src") not in sys.path:
    # CI invokes this script bare (no PYTHONPATH=src); the warehouse
    # package the gate queries lives under src/.
    sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.warehouse import (  # noqa: E402 - after the path fix above
    bench_snapshots,
    ingest_snapshots,
    obs_overhead_failures,
    open_warehouse,
    trend_failures,
)
from repro.warehouse.query import (  # noqa: E402
    DEFAULT_TOLERANCE,
    OBS_OVERHEAD_BUDGET_PCT,
)

_SNAPSHOT_RE = re.compile(r"^BENCH_(\d+)\.json$")


def load_snapshots(root: Path) -> list[tuple[int, dict]]:
    """All ``BENCH_<n>.json`` files under ``root``, ordered by ``<n>``."""
    snapshots = []
    for path in root.iterdir():
        match = _SNAPSHOT_RE.match(path.name)
        if match:
            snapshots.append((int(match.group(1)),
                              json.loads(path.read_text())))
    return sorted(snapshots, key=lambda pair: pair[0])


def check_trend(snapshots: list[tuple[int, dict]],
                tolerance: float = DEFAULT_TOLERANCE) -> list[str]:
    """Regression messages (empty = the trend holds); delegates to the
    warehouse trend query (same rule, same messages)."""
    return trend_failures(snapshots, tolerance=tolerance)


def check_obs_overhead(snapshots: list[tuple[int, dict]],
                       budget_pct: float = OBS_OVERHEAD_BUDGET_PCT,
                       ) -> list[str]:
    """Telemetry-budget violations in the latest ``obs_overhead`` table."""
    return obs_overhead_failures(snapshots, budget_pct=budget_pct)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="directory holding BENCH_*.json "
                             "(default: repo root above this file)")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed fractional regression per meter "
                             "(default 0.20)")
    args = parser.parse_args(argv)
    root = Path(args.root) if args.root else _REPO_ROOT
    loaded = load_snapshots(root)
    if not loaded:
        print(f"bench-trend: no BENCH_*.json snapshots under {root}")
        return 1
    # The gate IS a warehouse query: ingest the snapshot files into a
    # private in-memory warehouse and run the trend checks against it.
    with open_warehouse(":memory:") as wh:
        ingest_snapshots(wh, loaded)
        snapshots = bench_snapshots(wh)
        names = ", ".join(f"BENCH_{n}" for n, _ in snapshots)
        print(f"bench-trend: {len(snapshots)} snapshot(s): {names}")
        failures = trend_failures(snapshots, tolerance=args.tolerance)
        failures += obs_overhead_failures(snapshots)
    seen: set[str] = set()
    for number, snapshot in snapshots:
        for meter, rate in sorted(snapshot.get("optimized", {}).items()):
            tag = "" if meter in seen else "  [new]"
            unit = " s " if is_duration_meter(meter) else "/s"
            print(f"  BENCH_{number} {meter:<28} {rate:>14,.1f}{unit}{tag}")
            seen.add(meter)
        for meter, row in sorted((snapshot.get("obs_overhead")
                                  or {}).items()):
            print(f"  BENCH_{number} obs:{meter:<27} "
                  f"{row.get('overhead_pct', 0.0):>6.2f}% overhead")
    if failures:
        print("bench-trend: REGRESSION")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"bench-trend: ok (tolerance {args.tolerance * 100.0:.0f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
