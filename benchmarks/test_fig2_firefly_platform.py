"""F2 (Fig. 2 + section 2.1 claims): the FireFly platform numbers.

- AM hardware time synchronization holds sub-150 us jitter across nodes
  and pulse epochs;
- RT-Link nodes at case-study traffic project multi-year battery lifetimes,
  bracketing the paper's "1.8 years at 5 % duty cycle" figure (see
  EXPERIMENTS.md for the calibration discussion).
"""

import random

from benchmarks.conftest import run_once
from repro.experiments.mac_comparison import run_mac_trial
from repro.hardware.timesync import AmTimeSync, NodeClock, TimeSyncSpec
from repro.sim.clock import SEC, US
from repro.sim.engine import Engine


def _sync_trial(n_nodes=20, pulses=600):
    engine = Engine()
    sync = AmTimeSync(engine, random.Random(42), TimeSyncSpec())
    clocks = [NodeClock(engine, drift_ppm=10.0) for _ in range(n_nodes)]
    for i, clock in enumerate(clocks):
        sync.register(f"n{i}", clock)
    sync.start()
    engine.run_until(pulses * SEC)
    return sync


def test_fig2_sync_jitter_under_150us(benchmark):
    sync = run_once(benchmark, _sync_trial)
    samples = sync.jitter_samples
    assert len(samples) == 20 * 600
    worst = sync.max_abs_jitter()
    assert worst < 150 * US, f"worst jitter {worst} us breaks the claim"
    mean_abs = sum(abs(j) for j in samples) / len(samples)
    print(f"\nAM sync jitter over {len(samples)} receptions: "
          f"mean |j| = {mean_abs:.1f} us, worst = {worst} us "
          f"(paper: < 150 us)")


def test_fig2_rtlink_lifetime_multi_year(benchmark):
    """Case-study traffic (one report per 2 s): projected lifetime must be
    in the multi-year band around the paper's 1.8 y figure."""
    result = run_once(benchmark, run_mac_trial, "rtlink", 5.0, 2.0, 5, 90.0)
    assert 1.0 <= result.lifetime_years <= 8.0, result.lifetime_years
    assert result.collisions == 0
    print(f"\nRT-Link member node: avg current "
          f"{result.avg_current_ma:.4f} mA, radio duty "
          f"{result.radio_duty_pct:.2f} %, projected lifetime "
          f"{result.lifetime_years:.2f} years (paper: ~1.8 y at 5 % duty)")


def test_fig2_lifetime_scales_with_traffic(benchmark):
    """Less traffic -> longer life; the energy model responds to load."""

    def sweep():
        return [run_mac_trial("rtlink", 5.0, period, 5, 60.0).lifetime_years
                for period in (0.5, 2.0, 8.0)]

    lifetimes = run_once(benchmark, sweep)
    assert lifetimes[0] < lifetimes[1] < lifetimes[2]
    print(f"\nlifetime vs report period: "
          f"0.5s -> {lifetimes[0]:.2f}y, 2s -> {lifetimes[1]:.2f}y, "
          f"8s -> {lifetimes[2]:.2f}y")
