"""F6b (Fig. 6(b)): THE headline experiment.

Process control outputs during primary controller failure (T1 = 300 s),
reconfiguration (T2 = 600 s) and dormant parking (T3 = 800 s), on the full
wireless stack.  Asserted shape, series by series, against the paper's
figure:

- LTS level: flat at 50 % -> collapses after T1 -> recovers slowly after T2;
- LTSLiq molar flow: spikes when the valve wedges at 75 %, stays elevated
  (gas blow-by) through the fault window, shuts off during recovery;
- TowerFeed molar flow: mirrors the spike and restoration;
- SepLiq molar flow: disturbed through the shared liquid header, restored;
- the active controller switches Ctrl-A -> Ctrl-B at T2; Ctrl-A parks
  Dormant at T3 = T2 + 200 s.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.fig6 import Fig6Config, run_fig6
from repro.experiments.hil import CTRL_A, CTRL_B
from repro.experiments.metrics import (
    first_crossing_sec,
    max_in_window,
    min_in_window,
)


def test_fig6b_failover_transient(benchmark):
    config = Fig6Config()  # the paper's timeline: 300 / 600 / 800 s
    result = run_once(benchmark, run_fig6, config)
    print()
    print(result.summary())

    times = result.times_sec
    t1 = config.t1_fault_sec

    # --- event times match the published timeline -----------------------
    assert result.detection_time_sec == pytest.approx(t1, abs=5.0)
    assert result.failover_time_sec == pytest.approx(600.0, abs=10.0)
    assert result.dormant_time_sec == pytest.approx(800.0, abs=10.0)

    # --- LTS level (solid red) ------------------------------------------
    assert result.pre_fault_level == pytest.approx(50.0, abs=1.0)
    # Rapid drop after T1: below 10 % within ~150 s.
    crossed = first_crossing_sec(times, result.lts_level_pct, 10.0,
                                 "below", after_sec=t1)
    assert crossed is not None and crossed < t1 + 150
    # Recovery begins after T2 and makes substantial progress by 1000 s.
    assert min_in_window(times, result.lts_level_pct, 550, 600) < 5.0
    assert result.final_level > 25.0
    # Monotone-ish recovery: level at 900 s above level at 700 s.
    assert result.at_time(900, result.lts_level_pct) > \
        result.at_time(700, result.lts_level_pct) + 10

    # --- LTSLiq molar flow (dash-dotted magenta) -------------------------
    pre_ltsliq = result.at_time(200, result.lts_liq_flow)
    peak_ltsliq = max_in_window(times, result.lts_liq_flow, t1, 600)
    assert peak_ltsliq > 4 * pre_ltsliq  # the wedged-valve spike
    # During recovery the controller shuts the valve: flow ~ 0.
    assert result.at_time(750, result.lts_liq_flow) < 1.0

    # --- TowerFeed molar flow (dotted green) ----------------------------
    pre_tower = result.pre_fault_tower_flow
    assert max_in_window(times, result.tower_feed_flow, t1, 600) > \
        3 * pre_tower
    # Restored toward pre-fault values (recovery still refilling the LTS,
    # so tower feed runs below nominal at 1000 s, as in the paper).
    assert result.final_tower_flow < pre_tower

    # --- SepLiq molar flow (dashed blue) ---------------------------------
    pre_sep = result.at_time(200, result.sep_liq_flow)
    sep_min = min_in_window(times, result.sep_liq_flow, t1, 650)
    sep_max = max_in_window(times, result.sep_liq_flow, t1, 650)
    assert sep_min < pre_sep - 0.3     # choked by header back-pressure
    assert sep_max > pre_sep + 0.3     # rebound during reconfiguration
    assert result.sep_liq_flow[-1] == pytest.approx(pre_sep, abs=1.0)

    # --- controller roles -------------------------------------------------
    assert result.at_time(100, result.active_controller) == CTRL_A
    assert result.at_time(900, result.active_controller) == CTRL_B


def test_fig6b_wedged_valve_value(benchmark):
    """The fault drives the valve to 75 % (vs the correct ~11.48 %)."""
    config = Fig6Config(duration_sec=450.0)
    result = run_once(benchmark, run_fig6, config)
    # Pre-fault the valve sits at the paper's operating point.
    assert result.at_time(250, result.valve_pct) == pytest.approx(11.48,
                                                                  abs=1.0)
    # During the fault window the physical valve tracks the wedged 75 %.
    assert result.at_time(400, result.valve_pct) == pytest.approx(75.0,
                                                                  abs=1.5)
    print(f"\nvalve: {result.at_time(250, result.valve_pct):.2f}% before "
          f"fault -> {result.at_time(400, result.valve_pct):.2f}% wedged "
          f"(paper: 11.48% -> 75%)")
