"""F1 (Fig. 1): Virtual Component composition over a WSAC grid.

Three VCs composed over a 9-node network; BQP placement against the greedy
baseline.  Shape: every component places feasibly, capabilities are
respected, and the BQP cost never exceeds greedy's.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig1 import build_fig1_problem


def test_fig1_composition(benchmark):
    result = run_once(benchmark, build_fig1_problem)
    assert len(result.components) == 3
    for name in result.components:
        assert result.bqp[name].feasible, name
        assert result.bqp[name].cost <= result.greedy[name].cost + 1e-9
    # Placement respects capabilities everywhere.
    for name, vc in result.components.items():
        for task_name, node_id in result.bqp[name].placement.items():
            task = vc.tasks[task_name]
            assert task.required_capabilities <= \
                vc.members[node_id].capabilities
    print()
    print(result.describe())


def test_fig1_bqp_beats_greedy_under_traffic(benchmark):
    """On traffic-heavy instances the quadratic term matters: quantify the
    average improvement over the greedy baseline."""
    import random

    from repro.evm.optimizer import AssignmentProblem, bqp_assign, greedy_assign
    from repro.evm.tasks import LogicalTask
    from repro.evm.virtual_component import VcMember
    from repro.sim.clock import MS

    def sweep():
        rng = random.Random(17)
        improvements = []
        for _trial in range(12):
            tasks = [LogicalTask(f"t{i}", "law", period_ticks=100 * MS,
                                 wcet_ticks=(5 + rng.randrange(20)) * MS)
                     for i in range(5)]
            nodes = [VcMember(f"n{j}", frozenset(), cpu_capacity=0.6)
                     for j in range(4)]
            traffic = {(a.name, b.name): rng.uniform(1, 6)
                       for i, a in enumerate(tasks)
                       for b in tasks[i + 1:] if rng.random() < 0.7}
            hops = {(f"n{i}", f"n{j}"): abs(i - j)
                    for i in range(4) for j in range(i + 1, 4)}
            problem = AssignmentProblem(tasks=tasks, nodes=nodes,
                                        traffic=traffic, hops=hops)
            exact = bqp_assign(problem)
            greedy = greedy_assign(problem)
            if greedy.feasible and greedy.cost > 0:
                improvements.append(1.0 - exact.cost / greedy.cost)
        return improvements

    improvements = run_once(benchmark, sweep)
    assert improvements
    assert min(improvements) >= -1e-9  # never worse
    mean_gain = sum(improvements) / len(improvements)
    print(f"\nBQP vs greedy mean cost reduction: {mean_gain * 100:.1f}% "
          f"over {len(improvements)} instances")
