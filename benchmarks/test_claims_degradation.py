"""C3 (section 1.1, goal 2): minimal QoS degradation under node loss.

When nodes die, the EVM re-optimizes the logical-to-physical mapping (BQP)
so the surviving resources carry the load at minimal cost.  Reproduced as a
kill sweep: starting from a healthy component, remove nodes one at a time
and re-solve with BQP and with the greedy baseline.  Shape: BQP keeps
feasibility at least as long as greedy, its cost never exceeds greedy's,
and degradation (cost growth) is monotone in losses -- graceful, not
cliff-edged.
"""

import random

from benchmarks.conftest import run_once
from repro.evm.optimizer import AssignmentProblem, bqp_assign, greedy_assign
from repro.evm.tasks import LogicalTask
from repro.evm.virtual_component import VcMember
from repro.sim.clock import MS


def _component(n_nodes=8, n_tasks=10, seed=23):
    rng = random.Random(seed)
    tasks = [LogicalTask(f"t{i}", "law", period_ticks=200 * MS,
                         wcet_ticks=(8 + rng.randrange(18)) * MS)
             for i in range(n_tasks)]
    nodes = [VcMember(f"n{j}", frozenset(), cpu_capacity=0.5)
             for j in range(n_nodes)]
    traffic = {}
    for i, a in enumerate(tasks):
        for b in tasks[i + 1:]:
            if rng.random() < 0.4:
                traffic[(a.name, b.name)] = rng.uniform(0.5, 3.0)
    hops = {}
    for i in range(n_nodes):
        for j in range(i + 1, n_nodes):
            hops[(f"n{i}", f"n{j}")] = 1 + abs(i - j) // 3
    # Placement affinity grows with node index (low-index nodes sit near
    # the sensors/actuators); killing them forces costlier hosts -- the
    # degradation the sweep measures.
    affinity = {(t.name, f"n{j}"): 0.4 * j
                for t in tasks for j in range(n_nodes)}
    return tasks, nodes, traffic, hops, affinity


def _kill_sweep():
    tasks, nodes, traffic, hops, affinity = _component()
    rows = []
    for killed in range(0, 5):
        alive = nodes[killed:]
        problem = AssignmentProblem(tasks=tasks, nodes=alive,
                                    traffic=traffic, hops=hops,
                                    affinity=affinity)
        bqp = bqp_assign(problem, exact_limit=50_000)
        greedy = greedy_assign(problem)
        rows.append((killed, len(alive), bqp, greedy))
    return rows


def test_c3_graceful_degradation(benchmark):
    rows = run_once(benchmark, _kill_sweep)
    print("\nkilled nodes | alive | bqp cost | greedy cost")
    previous_cost = None
    for killed, alive, bqp, greedy in rows:
        bqp_cost = f"{bqp.cost:8.2f}" if bqp.feasible else "  INFEAS"
        greedy_cost = f"{greedy.cost:8.2f}" if greedy.feasible else "  INFEAS"
        print(f"  {killed:11d} | {alive:5d} | {bqp_cost} | {greedy_cost}")
        # BQP never worse than greedy; feasible whenever greedy is.
        if greedy.feasible:
            assert bqp.feasible
            assert bqp.cost <= greedy.cost + 1e-9
        # Monotone degradation while feasible.
        if bqp.feasible and previous_cost is not None:
            assert bqp.cost >= previous_cost - 1e-9
        if bqp.feasible:
            previous_cost = bqp.cost
    # The sweep exercised real degradation: cost grew.
    feasible_costs = [r[2].cost for r in rows if r[2].feasible]
    assert len(feasible_costs) >= 3
    assert feasible_costs[-1] > feasible_costs[0]


def test_c3_reassignment_keeps_capacity_respected(benchmark):
    def trial():
        tasks, nodes, traffic, hops, affinity = _component()
        problem = AssignmentProblem(tasks=tasks, nodes=nodes[3:],
                                    traffic=traffic, hops=hops,
                                    affinity=affinity)
        return problem, bqp_assign(problem, exact_limit=50_000)

    problem, result = run_once(benchmark, trial)
    assert result.feasible
    loads = {}
    tasks_by_name = {t.name: t for t in problem.tasks}
    for task_name, node_id in result.placement.items():
        loads[node_id] = loads.get(node_id, 0.0) \
            + tasks_by_name[task_name].utilization
    for node in problem.nodes:
        assert loads.get(node.node_id, 0.0) <= node.cpu_capacity + 1e-9
    print(f"\npost-loss placement over {len(problem.nodes)} nodes, "
          f"max load {max(loads.values()):.3f} (cap 0.5)")
