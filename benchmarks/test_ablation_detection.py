"""A1 (ablation): fault-detection threshold vs failover delay and false
positives.

DESIGN.md decision 3: backups confirm a fault only after a *series* of
implausible outputs.  This ablates the series length: longer thresholds
slow detection but reject measurement-noise glitches; threshold 1 on a
noisy channel fires spuriously.
"""

from benchmarks.conftest import run_once
from repro.evm.health import OutputPlausibilityMonitor
from repro.experiments.fig6 import Fig6Config, run_fig6
from repro.experiments.hil import HilConfig
from repro.sim.clock import SEC


def _detection_delay(threshold: int) -> float:
    config = Fig6Config(
        t1_fault_sec=20.0, t2_target_sec=21.0, duration_sec=40.0,
        hil=HilConfig(settle_sec=800.0, detection_threshold=threshold,
                      arbitration_holdoff_ticks=1,
                      dormant_delay_ticks=5 * SEC))
    result = run_fig6(config)
    if result.detection_time_sec is None:
        return float("inf")
    return result.detection_time_sec - config.t1_fault_sec


def test_a1_threshold_vs_detection_delay(benchmark):
    thresholds = (1, 3, 6)

    def sweep():
        return [(t, _detection_delay(t)) for t in thresholds]

    rows = run_once(benchmark, sweep)
    print("\nthreshold | detection delay (s)")
    delays = []
    for threshold, delay in rows:
        print(f"  {threshold:7d} | {delay:8.2f}")
        assert delay != float("inf"), threshold
        delays.append(delay)
    # Monotone: more required anomalies -> later confirmation; and the
    # delay tracks the control period (threshold * 0.25 s + transport).
    assert delays == sorted(delays)
    assert delays[0] < 1.0
    assert delays[2] > delays[0] + 0.5


def test_a1_false_positive_rejection(benchmark):
    """Noise glitches must not confirm faults at threshold 3 but do at 1."""
    import random

    def trial():
        rng = random.Random(9)
        confirms = {1: 0, 3: 0}
        for threshold in confirms:
            monitor = OutputPlausibilityMonitor(
                plausible_min=0.0, plausible_max=100.0,
                max_deviation=5.0, threshold=threshold)
            shadow = 11.48
            for step in range(5000):
                observed = shadow + rng.gauss(0.0, 1.0)
                if rng.random() < 0.01:   # rare single-sample glitch
                    observed = shadow + rng.choice([-1, 1]) * 20.0
                if monitor.observe(step, observed, expected=shadow):
                    confirms[threshold] += 1
                    monitor.reset()
        return confirms

    confirms = run_once(benchmark, trial)
    print(f"\nfalse confirms over 5000 noisy cycles: "
          f"threshold 1 -> {confirms[1]}, threshold 3 -> {confirms[3]}")
    assert confirms[1] > 10          # hair-trigger fires on glitches
    assert confirms[3] == 0          # the paper's series requirement holds
