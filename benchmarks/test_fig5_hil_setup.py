"""F5 (Fig. 5): the wireless HIL rig end-to-end.

Six FireFly nodes (gateway + sensor + 2 controllers + spare + actuator) on
RT-Link close the LTS level loop against the plant through the ModBus
gateway.  Shape: the loop holds the plant at its operating point over
hundreds of control cycles with zero MAC collisions, and both paper latency
objectives hold (cycle <= 250 ms, sensing-to-actuation <= cycle/3).
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.hil import HilConfig, HilRig
from repro.sim.clock import MS


def _run_rig(seconds=150.0):
    rig = HilRig(HilConfig(settle_sec=1200.0))
    rig.run_for_seconds(seconds)
    return rig


def test_fig5_closed_loop_over_wireless(benchmark):
    rig = run_once(benchmark, _run_rig)
    # ~600 control cycles executed.
    ctrl = rig.runtimes["ctrl_a"].instances["lts_ctrl"]
    assert ctrl.jobs_run > 500
    # The wireless loop holds the plant at the operating point.
    assert rig.read("lts_level_pct") == pytest.approx(50.0, abs=1.0)
    assert rig.read("lts_valve_pct") == pytest.approx(11.48, abs=1.0)
    # RT-Link carried all of it collision-free.
    assert rig.medium.stats.collisions == 0
    sensor_published = rig.runtimes["s1"].stats.data_published
    applied = rig.runtimes["act1"].stats.data_applied
    print(f"\n{ctrl.jobs_run} control cycles; sensor published "
          f"{sensor_published} samples; actuator applied {applied} "
          f"commands; 0 collisions")


def test_fig5_latency_breakdown(benchmark):
    rig = run_once(benchmark, _run_rig, 60.0)
    latencies = rig.io_latencies
    assert len(latencies) > 100
    mean = sum(latencies) / len(latencies)
    worst = max(latencies)
    cycle = rig.config.control_period_ticks
    print(f"\nsensing->actuation latency over {len(latencies)} cycles: "
          f"mean {mean / MS:.1f} ms, worst {worst / MS:.1f} ms "
          f"(cycle {cycle / MS:.0f} ms, objective <= {cycle / 3 / MS:.0f} ms)")
    assert worst <= cycle / 3
    # MAC-level per-hop latency is bounded by the frame length.
    for node_id, mac in rig.macs.items():
        assert mac.stats.max_latency() <= rig.mac_config.frame_ticks \
            + 10 * MS, node_id
