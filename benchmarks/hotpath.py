"""Hot-path microbenchmarks: events/sec, VM instructions/sec, frames/sec,
process resumes/sec, campaign runs/sec (local pool and distributed
cluster), plant steps/sec, traced events/sec and the wide-grid trial
wall-clock.

Standalone driver (not a pytest module) that measures the inner loops
every experiment burns time in -- ``Engine`` event dispatch,
``Interpreter`` bytecode execution, ``Medium`` frame resolution, the
``Process`` generator resume path, ``CampaignRunner`` sweep throughput,
the ``NaturalGasPlant`` step, ``Trace.record`` and one full 100-node
wide-grid failover trial -- and records them into a ``BENCH_*.json``
snapshot so the perf trajectory of the repo is tracked across PRs::

    PYTHONPATH=src python benchmarks/hotpath.py --label baseline
    PYTHONPATH=src python benchmarks/hotpath.py --label optimized

Each invocation merges its numbers under the given label into the
snapshot file (default ``BENCH_10.json`` at the repo root) and, when both
``baseline`` and ``optimized`` are present, computes the speedup table.
``--obs-overhead`` additionally re-measures the hottest meters with
``repro.obs`` telemetry enabled and records the off/on overhead table
the trend gate holds to a 10% budget; ``--json`` echoes the updated
snapshot to stdout.

Meter naming convention (``bench_trend.py`` relies on it): ``*_per_sec``
meters are rates where higher is better; ``*_sec`` meters are durations
where lower is better (speedup = baseline / optimized).

The workloads are deterministic; rates are wall-clock and therefore
machine-dependent, which is why the snapshot stores both sides of the
comparison instead of absolute thresholds.
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import subprocess
import time
from pathlib import Path

from meters import is_duration_meter

from repro.evm.bytecode import Assembler
from repro.evm.interpreter import Interpreter
from repro.hardware.node import FireFlyNode
from repro.net.medium import Medium
from repro.net.packet import BROADCAST, Packet
from repro.net.topology import full_mesh
from repro.sim.engine import Engine

REPS = 5
"""Each metric is measured REPS times; the best rate is recorded."""


def _best_rate(measure, reps: int = REPS) -> float:
    """Run ``measure()`` -> (units, seconds) ``reps`` times, best rate."""
    best = 0.0
    for _ in range(reps):
        units, elapsed = measure()
        if elapsed > 0.0:
            best = max(best, units / elapsed)
    return best


def _best_seconds(measure, reps: int = REPS) -> float:
    """Run ``measure()`` -> seconds ``reps`` times, best (lowest) time."""
    return min(measure() for _ in range(reps))


# ----------------------------------------------------------------------
# Engine: fire-and-forget event dispatch
# ----------------------------------------------------------------------
def bench_engine_events(n_events: int = 200_000) -> float:
    """Self-rescheduling fire-and-forget callbacks, ``n_events`` dispatches."""

    def measure():
        engine = Engine()
        post = getattr(engine, "post", engine.schedule)
        remaining = [n_events]

        def tick() -> None:
            remaining[0] -= 1
            if remaining[0] > 0:
                post(7, tick)

        # A modest standing population keeps the heap realistically deep.
        for i in range(32):
            post(i, tick)
        start = time.perf_counter()
        dispatched = engine.run()
        elapsed = time.perf_counter() - start
        return dispatched, elapsed

    return _best_rate(measure)


# ----------------------------------------------------------------------
# Process: generator resume path (the MAC inner-loop shape)
# ----------------------------------------------------------------------
def bench_process_resumes(n_resumes: int = 150_000) -> float:
    """A generator process ping-ponging ``yield Delay(...)``, the exact
    shape of the B-MAC/S-MAC/RT-Link inner loops.  The single ``Delay``
    is reused so the meter isolates the resume machinery itself (arm,
    dispatch, ``generator.send``) rather than wait-request allocation,
    which is user-code cost."""
    from repro.sim.process import Delay, Process

    def measure():
        engine = Engine()
        wait = Delay(7)

        def loop():
            for _ in range(n_resumes):
                yield wait

        proc = Process(engine, loop(), name="bench")
        start = time.perf_counter()
        engine.run()
        elapsed = time.perf_counter() - start
        assert not proc.alive
        return n_resumes, elapsed

    return _best_rate(measure)


# ----------------------------------------------------------------------
# EVM: interpreted instructions
# ----------------------------------------------------------------------
_COUNTDOWN = """
    top:
        load 0
        push 1
        sub
        store 0
        load 0
        jz done
        jmp top
    done: halt
"""


def bench_vm_instructions(iterations: int = 40_000) -> float:
    """A tight countdown loop; ~7 instructions per iteration."""
    program = Assembler().assemble(_COUNTDOWN, name="countdown")
    interp = Interpreter(max_steps=100_000_000)

    def measure():
        memory = [float(iterations)] + [0.0] * 15
        start = time.perf_counter()
        state = interp.execute(program, memory)
        elapsed = time.perf_counter() - start
        assert memory[0] == 0.0 and state.halted
        return state.steps, elapsed

    return _best_rate(measure)


# ----------------------------------------------------------------------
# Medium: frame resolution under contention
# ----------------------------------------------------------------------
def _build_mesh(engine: Engine, n_nodes: int):
    node_ids = [f"n{i}" for i in range(n_nodes)]
    topology = full_mesh(node_ids, spacing_m=5.0)
    medium = Medium(engine, topology, rng=random.Random(7))
    nodes = {}
    for node_id in node_ids:
        node = FireFlyNode(engine, node_id, with_sensors=False)
        port = medium.attach(node)
        port.set_receive_callback(lambda pkt: None)
        nodes[node_id] = node
    return medium, nodes, node_ids


def bench_medium_frames(n_frames: int = 4_000, n_nodes: int = 8) -> float:
    """Round-robin broadcast flood on a full mesh; overlaps exercise the
    collision scan, every completion resolves ``n_nodes - 1`` receptions."""

    def measure():
        engine = Engine()
        medium, nodes, node_ids = _build_mesh(engine, n_nodes)
        for node_id in node_ids:
            medium.port(node_id).listen()
        sent = [0]

        def send(idx: int) -> None:
            if sent[0] >= n_frames:
                return
            sent[0] += 1
            node_id = node_ids[idx % len(node_ids)]
            if nodes[node_id].radio.state.name != "TX":
                packet = Packet(src=node_id, dst=BROADCAST, kind="bench",
                                size_bytes=32, seq=sent[0])
                medium.port(node_id).transmit(packet)
                medium.port(node_id).listen()
            engine.schedule(650 + 13 * (idx % 5), send, idx + 1)

        engine.schedule(0, send, 0)
        start = time.perf_counter()
        engine.run()
        elapsed = time.perf_counter() - start
        return medium.stats.frames_sent, elapsed

    return _best_rate(measure)


def bench_carrier_sense(n_probes: int = 100_000, n_nodes: int = 12,
                        in_flight: int = 48) -> float:
    """``channel_busy()`` probes against a populated in-flight set."""

    def measure():
        engine = Engine()
        medium, nodes, node_ids = _build_mesh(engine, n_nodes)
        # Stagger transmissions so a standing population is in flight.
        for i in range(in_flight):
            node_id = node_ids[i % len(node_ids)]
            if nodes[node_id].radio.state.name != "TX":
                medium.port(node_id).transmit(
                    Packet(src=node_id, dst=BROADCAST, kind="bench",
                           size_bytes=100, seq=i))
        probe_port = medium.port(node_ids[0])
        start = time.perf_counter()
        for _ in range(n_probes):
            probe_port.channel_busy()
        elapsed = time.perf_counter() - start
        return n_probes, elapsed

    return _best_rate(measure)


# ----------------------------------------------------------------------
# Campaign: sweep throughput across worker processes
# ----------------------------------------------------------------------
def bench_campaign_runs(n_scenarios: int = 6, reps: int = 3) -> float:
    """A small fault-free grid through the parallel campaign runner.

    The runner object is reused across reps, so an executor that
    persists between ``run()`` calls amortizes its spawn cost the way a
    long 100+-scenario session does; best-of-reps reports the warm rate.
    """
    from repro.scenarios import CampaignRunner, Scenario
    from repro.scenarios.stock import fast_hil

    grid = [Scenario(f"bench-{i}", hil=fast_hil(), seed=i, duration_sec=5.0)
            for i in range(n_scenarios)]
    runner = CampaignRunner(max_workers=4)

    def measure():
        start = time.perf_counter()
        result = runner.run(grid)
        elapsed = time.perf_counter() - start
        assert len(result.records) == n_scenarios
        return n_scenarios, elapsed

    try:
        return _best_rate(measure, reps=reps)
    finally:
        runner.close()


def bench_campaign_dist_runs(n_scenarios: int = 8, reps: int = 3) -> float:
    """A fault-free grid through the distributed runner: one
    coordinator plus eight subprocess workers with one local process
    each (the dist fan-out shape of the fifth perf wave), jobs shipped
    over localhost TCP with leases and heartbeats.  The spread against
    ``campaign_runs_per_sec`` is the protocol + serialization overhead
    of distribution at its least favorable (single host, so no extra
    hardware to win back the cost)."""
    from repro.dist import LocalCluster
    from repro.scenarios import Scenario
    from repro.scenarios.stock import fast_hil

    grid = [Scenario(f"bench-{i}", hil=fast_hil(), seed=i, duration_sec=5.0)
            for i in range(n_scenarios)]
    with LocalCluster(n_workers=8, mode="subprocess",
                      processes=1) as cluster:
        cluster.wait_for_workers()
        runner = cluster.runner()

        def measure():
            start = time.perf_counter()
            result = runner.run(grid)
            elapsed = time.perf_counter() - start
            assert len(result.records) == n_scenarios and not result.failed
            return n_scenarios, elapsed

        return _best_rate(measure, reps=reps)


# ----------------------------------------------------------------------
# Dist wire: frame throughput + connection-scale ramp
# ----------------------------------------------------------------------
def _frame_echo(arg: dict) -> int:
    """The dist_frames job: return the value, touch nothing else.
    Deliberately *not* ``sleepy_echo`` -- even ``time.sleep(0)`` is a
    syscall per job, which on virtualized kernels costs tens of
    microseconds and would swamp the wire overhead this meter exists
    to measure.  Module-level so workers resolve it by reference."""
    return arg["value"]


def bench_dist_frames(n_jobs: int = 400, reps: int = 3) -> float:
    """Echo micro-bench over the full coordinator wire: one in-process
    thread worker with 32 slots, ``n_jobs`` zero-work jobs per rep.
    Every job costs four logical frames (submit blob in, job grant out,
    worker result in, client result out), so the reported rate is
    frames relayed per second through the broker -- framing, leasing
    and delivery overhead with no compute to hide behind."""
    from repro.dist import LocalCluster

    jobs = [{"value": i} for i in range(n_jobs)]
    with LocalCluster(n_workers=1, mode="thread", processes=0,
                      slots=32) as cluster:
        cluster.wait_for_workers()
        runner = cluster.runner()

        def measure():
            start = time.perf_counter()
            values = runner.map_jobs(_frame_echo, jobs)
            elapsed = time.perf_counter() - start
            assert values == list(range(n_jobs))
            return 4 * n_jobs, elapsed

        return _best_rate(measure, reps=reps)


_DIST_SCALE_CACHE: dict[str, float] = {}


def _dist_scale_bench(n_clients: int = 1000) -> dict[str, float]:
    """Ramp ``n_clients`` concurrent idle clients onto one coordinator,
    then measure status echo round-trips with the whole herd attached.
    Both meters come from one run (the ramp is the expensive part), so
    the result is memoized across the two METRICS entries."""
    if _DIST_SCALE_CACHE:
        return _DIST_SCALE_CACHE
    from concurrent.futures import ThreadPoolExecutor

    from repro.dist import coordinator as coordinator_mod
    from repro.dist.coordinator import Coordinator
    from repro.dist.protocol import recv_message, send_message

    def dial(address: str, i: int):
        sock = coordinator_mod.connect(address, role="client",
                                       name=f"ramp-{i}", timeout=60.0)
        sock.settimeout(60.0)
        header, _ = recv_message(sock)
        assert header["type"] == "welcome"
        return sock

    best_ramp = float("inf")
    with Coordinator() as coordinator:
        socks: list = []
        for _rep in range(2):
            for sock in socks:
                sock.close()
            socks = []
            with ThreadPoolExecutor(max_workers=32) as pool:
                start = time.perf_counter()
                socks = list(pool.map(
                    lambda i: dial(coordinator.address, i),
                    range(n_clients)))
                best_ramp = min(best_ramp, time.perf_counter() - start)
        # Echo round-trips under full load: every trip serializes a
        # status snapshot spanning all n_clients connections.
        probe = socks[0]
        best_rtt = float("inf")
        for _ in range(50):
            start = time.perf_counter()
            send_message(probe, {"type": "status"})
            header, _ = recv_message(probe)
            best_rtt = min(best_rtt, time.perf_counter() - start)
            assert header["type"] == "status"
        for sock in socks:
            sock.close()
    assert best_rtt < 0.1, \
        f"echo round-trip took {best_rtt * 1e3:.1f}ms with " \
        f"{n_clients} clients attached (acceptance bound is 100ms)"
    _DIST_SCALE_CACHE["dist_connect_1000_sec"] = best_ramp
    _DIST_SCALE_CACHE["dist_echo_under_load_per_sec"] = 1.0 / best_rtt
    return _DIST_SCALE_CACHE


def bench_dist_connect_1000() -> float:
    """Wall-clock to accept a 1000-client concurrent connect ramp."""
    return _dist_scale_bench()["dist_connect_1000_sec"]


def bench_dist_echo_under_load() -> float:
    """Status echo round-trips/sec with 1000 idle clients attached."""
    return _dist_scale_bench()["dist_echo_under_load_per_sec"]


def bench_dist_fairshare_makespan(n_jobs: int = 120,
                                  reps: int = 3) -> float:
    """Three concurrent tenants at weights 1/2/4 pushing zero-work
    jobs through one 32-slot thread worker: wall time until the *last*
    tenant drains.  The jobs cost nothing, so this is the weighted
    deficit-round-robin arbiter itself -- per-campaign queue
    bookkeeping and largest-deficit grant rounds under three-way
    contention -- priced against the single-FIFO broker it replaced."""
    import threading

    from repro.dist import LocalCluster

    jobs = [{"value": i} for i in range(n_jobs)]
    expected = list(range(n_jobs))
    with LocalCluster(n_workers=1, mode="thread", processes=0,
                      slots=32) as cluster:
        cluster.wait_for_workers()
        runners = [cluster.runner(weight=w, name=f"bench-w{int(w)}")
                   for w in (1.0, 2.0, 4.0)]

        def measure():
            failures = []

            def tenant(runner):
                if runner.map_jobs(_frame_echo, jobs) != expected:
                    failures.append(runner)

            threads = [threading.Thread(target=tenant, args=(r,))
                       for r in runners]
            start = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            elapsed = time.perf_counter() - start
            assert not failures
            return elapsed

        return _best_seconds(measure, reps=reps)


# ----------------------------------------------------------------------
# Plant: the natural-gas flowsheet step (HIL inner loop)
# ----------------------------------------------------------------------
def bench_plant_steps(n_steps: int = 3_000) -> float:
    """Full plant advance under local control -- the exact work every
    ``HilBridge`` tick and every ``settle()`` iteration performs."""
    from repro.plant.gas_plant import NaturalGasPlant

    plant = NaturalGasPlant()
    plant.enable_local_control()

    def measure():
        start = time.perf_counter()
        for _ in range(n_steps):
            plant.step(0.5)
        elapsed = time.perf_counter() - start
        return n_steps, elapsed

    return _best_rate(measure)


def _flowsheet_np_available() -> bool:
    """True when numpy is importable and the plant grew the backend knob."""
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    import inspect

    from repro.plant.gas_plant import NaturalGasPlant
    return "backend" in inspect.signature(NaturalGasPlant.__init__).parameters


def bench_flowsheet_np_steps(n_steps: int = 3_000) -> float:
    """The same plant advance on the numpy flowsheet backend
    (``NaturalGasPlant(backend="np")``) -- conformance-grade: the backend
    must stay bit-identical to the scalar sweep, and this meter tracks
    what that costs (numpy per-op dispatch is overhead-bound at
    single-flowsheet width)."""
    from repro.plant.gas_plant import NaturalGasPlant

    plant = NaturalGasPlant(backend="np")
    plant.enable_local_control()

    def measure():
        start = time.perf_counter()
        for _ in range(n_steps):
            plant.step(0.5)
        elapsed = time.perf_counter() - start
        return n_steps, elapsed

    return _best_rate(measure)


# ----------------------------------------------------------------------
# Warehouse: campaign-store ingest throughput
# ----------------------------------------------------------------------
def bench_warehouse_ingest(n_runs: int = 400, reps: int = 3) -> float:
    """Ingest a committed ``n_runs``-record campaign store (records +
    summary + one telemetry row per run) into a fresh sqlite warehouse;
    the rate is run records ingested per second.  The store is built
    once with synthetic-but-shaped records; each rep ingests into a
    brand-new warehouse so digest-dedup never short-circuits the work."""
    import shutil
    import tempfile

    from repro.scenarios.store import ResultsStore
    from repro.warehouse import ingest_store, open_warehouse

    tmp = Path(tempfile.mkdtemp(prefix="bench_wh_"))
    try:
        store = ResultsStore(tmp / "campaign")
        store.begin_staging()
        obs_rows = []
        for i in range(n_runs):
            run_id = f"{i:05d}_bench_s{i}"
            record = {
                "run_id": run_id,
                "scenario": {"name": f"bench-{i % 8}", "seed": i,
                             "duration_sec": 30.0,
                             "hil": {"slots_per_frame": 50,
                                     "seed": i}},
                "metrics": {"scenario": f"bench-{i % 8}", "seed": i,
                            "failover_latency_sec": 0.5 + (i % 17) * 0.1,
                            "control_cost": 10.0 + (i % 5),
                            "packet_loss_ratio": 0.01 * (i % 3),
                            "crashes": i % 2,
                            "failovers_executed": 1},
            }
            store.stage_run(run_id, record)
            obs_rows.append({"run_id": run_id,
                             "metrics": {"repro_campaign_runs_total": 1}})
        store.commit_staged()
        store.save_summary({"total_runs": n_runs})
        store.save_metrics_jsonl(obs_rows)

        def measure():
            wh_dir = tmp / f"wh_{time.monotonic_ns()}"
            with open_warehouse(wh_dir) as wh:
                start = time.perf_counter()
                report = ingest_store(wh, tmp / "campaign",
                                      tenant="bench")
                elapsed = time.perf_counter() - start
            assert report.runs == n_runs and report.duplicates == 0
            shutil.rmtree(wh_dir)
            return n_runs, elapsed

        return _best_rate(measure, reps=reps)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


# ----------------------------------------------------------------------
# Trace: structured event recording (dominates traced runs)
# ----------------------------------------------------------------------
def bench_traced_events(n_events: int = 120_000) -> float:
    """``Trace.record`` at the mix the stack emits -- dense mac/medium
    rows with sparse evm events on top -- then the consumer pattern the
    metrics collectors use: count the hot categories, materialize the
    sparse one.  A lazily-backed trace must pay any deferred cost inside
    the meter."""
    from repro.sim.trace import Trace

    def measure():
        trace = Trace()
        start = time.perf_counter()
        for i in range(n_events):
            trace.record(i * 7, "mac.tx", "n1", dst="n2", seq=i)
            trace.record(i * 7 + 3, "medium.rx", "n2", src="n1")
            if i % 100 == 0:
                trace.record(i * 7 + 5, "evm.heartbeat", "ctrl_a", seq=i)
        recorded = 2 * n_events + n_events // 100
        assert trace.count("mac.tx") == n_events
        sparse = trace.events("evm")
        assert trace.last("medium.rx") is not None
        elapsed = time.perf_counter() - start
        assert len(sparse) == n_events // 100
        return recorded, elapsed

    return _best_rate(measure)


# ----------------------------------------------------------------------
# Wide grid: one full 100-node failover trial (wall-clock, lower=better)
# ----------------------------------------------------------------------
def bench_widegrid_trial(reps: int = 2) -> float:
    """A complete fig6-style 100-node random-geometric failover trial:
    build, run 20 simulated seconds with a mid-run primary crash,
    collect.  Recorded in *seconds* (a ``*_sec`` duration meter)."""
    from repro.experiments.widegrid import WideGridConfig, run_widegrid_trial

    config = WideGridConfig(n_nodes=100, seed=1, duration_sec=20.0,
                            crash_primary_at_sec=8.0)

    def measure() -> float:
        start = time.perf_counter()
        result = run_widegrid_trial(config)
        elapsed = time.perf_counter() - start
        assert result.failovers_executed >= 1
        return elapsed

    return _best_seconds(measure, reps=reps)


def bench_widegrid_256_trial(reps: int = 2) -> float:
    """The failover trial at 256 nodes, mirroring the slow-suite geometry
    (``tests/integration/test_widegrid_scale.py``): 240 m arena, 30 m
    radios, a primary crash at t=12 s over 40 simulated seconds."""
    from repro.experiments.widegrid import WideGridConfig, run_widegrid_trial

    config = WideGridConfig(n_nodes=256, area_m=240.0, radio_range_m=30.0,
                            seed=2, duration_sec=40.0,
                            crash_primary_at_sec=12.0)

    def measure() -> float:
        start = time.perf_counter()
        result = run_widegrid_trial(config)
        elapsed = time.perf_counter() - start
        assert result.failovers_executed >= 1
        return elapsed

    return _best_seconds(measure, reps=reps)


def bench_widegrid_1000_trial(reps: int = 1) -> float:
    """A 1000-node random-geometric failover trial (~20 mean degree,
    ~10k links): the scale target of the fourth perf wave.  The control
    period is pinned to one TDMA frame (5 s at 1000 slots) and the
    heartbeat timeout to three frames so detection completes well inside
    the 45 simulated seconds."""
    from repro.experiments.widegrid import WideGridConfig, run_widegrid_trial
    from repro.sim.clock import SEC

    config = WideGridConfig(n_nodes=1000, area_m=300.0, radio_range_m=25.0,
                            seed=1, duration_sec=45.0,
                            report_period_sec=15.0,
                            control_period_ticks=5 * SEC,
                            heartbeat_timeout_ticks=15 * SEC,
                            crash_primary_at_sec=10.0)

    def measure() -> float:
        start = time.perf_counter()
        result = run_widegrid_trial(config)
        elapsed = time.perf_counter() - start
        assert result.failovers_executed >= 1
        return elapsed

    return _best_seconds(measure, reps=reps)


# ----------------------------------------------------------------------
# Snapshot plumbing
# ----------------------------------------------------------------------
METRICS = {
    "events_per_sec": bench_engine_events,
    "process_resumes_per_sec": bench_process_resumes,
    "vm_instructions_per_sec": bench_vm_instructions,
    "frames_per_sec": bench_medium_frames,
    "carrier_sense_per_sec": bench_carrier_sense,
    "campaign_runs_per_sec": bench_campaign_runs,
    "campaign_dist_runs_per_sec": bench_campaign_dist_runs,
    "dist_frames_per_sec": bench_dist_frames,
    "dist_connect_1000_sec": bench_dist_connect_1000,
    "dist_echo_under_load_per_sec": bench_dist_echo_under_load,
    "dist_fairshare_makespan_sec": bench_dist_fairshare_makespan,
    "warehouse_ingest_runs_per_sec": bench_warehouse_ingest,
    "plant_steps_per_sec": bench_plant_steps,
    "flowsheet_np_steps_per_sec": bench_flowsheet_np_steps,
    "traced_events_per_sec": bench_traced_events,
    "widegrid_trial_sec": bench_widegrid_trial,
    "widegrid_256_trial_sec": bench_widegrid_256_trial,
    "widegrid_1000_trial_sec": bench_widegrid_1000_trial,
}

AVAILABILITY = {
    "flowsheet_np_steps_per_sec": _flowsheet_np_available,
}
"""Meters that need an optional capability; unavailable ones are skipped
(the trend gate tolerates meters absent from a snapshot)."""


OBS_OVERHEAD_METERS = (
    "events_per_sec",
    "process_resumes_per_sec",
    "vm_instructions_per_sec",
    "frames_per_sec",
    "plant_steps_per_sec",
)
"""The hot meters re-measured telemetry-on for the overhead table.

Each bench builds its instrumented objects inside the measured call, so
flipping ``repro.obs`` on before re-running the same function measures
exactly the bound-meter path the acceptance budget (<=10% per meter)
constrains.
"""


def run_all() -> dict[str, float]:
    results = {}
    for name, fn in METRICS.items():
        gate = AVAILABILITY.get(name)
        if gate is not None and not gate():
            print(f"  {name:<28} {'(skipped: unavailable)':>14}")
            continue
        value = fn()
        if is_duration_meter(name):
            results[name] = round(value, 3)
            print(f"  {name:<28} {value:>14,.3f} s")
        else:
            results[name] = round(value, 1)
            print(f"  {name:<28} {value:>14,.0f}")
    return results


def run_obs_overhead() -> dict[str, dict[str, float]]:
    """Measure the telemetry-on cost of the hottest meters.

    Returns ``{meter: {"off": rate, "on": rate, "overhead_pct": pct}}``
    where ``overhead_pct`` is the rate lost with a live registry
    (positive = slower with telemetry); ``bench_trend.py`` fails the
    gate when any row exceeds 10%.
    """
    import repro.obs as obs

    rows: dict[str, dict[str, float]] = {}
    for name in OBS_OVERHEAD_METERS:
        fn = METRICS[name]
        obs.disable()
        off = fn()
        obs.enable(obs.MetricsRegistry())
        try:
            on = fn()
        finally:
            obs.disable()
        overhead = (off - on) / off * 100.0 if off else 0.0
        rows[name] = {"off": round(off, 1), "on": round(on, 1),
                      "overhead_pct": round(overhead, 2)}
        print(f"  {name:<28} off {off:>14,.0f}  on {on:>14,.0f}  "
              f"overhead {overhead:>6.2f}%")
    return rows


def _git_commit() -> str:
    """Best-effort commit id for the snapshot's host stanza."""
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parent, capture_output=True,
            text=True, timeout=10).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return ""


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", default="optimized",
                        choices=("baseline", "optimized"),
                        help="which side of the comparison this run records")
    parser.add_argument("--out", default=None,
                        help="snapshot path (default: <repo>/BENCH_10.json)")
    parser.add_argument("--json", action="store_true",
                        help="print the full updated snapshot as JSON on "
                             "stdout (for CI log capture / scripting)")
    parser.add_argument("--obs-overhead", action="store_true",
                        help="also measure the hot meters with repro.obs "
                             "telemetry enabled and record the off/on "
                             "overhead table")
    parser.add_argument("--merge-best", action="store_true",
                        help="merge this sweep into the label's existing "
                             "record keeping each meter's best value "
                             "(max rate / min duration) -- repeated "
                             "sweeps on noisy virtualized hosts then "
                             "converge on the machine's true rates, "
                             "exactly as per-meter best-of-N reps do "
                             "within one sweep")
    args = parser.parse_args()

    out = Path(args.out) if args.out else \
        Path(__file__).resolve().parent.parent / "BENCH_10.json"
    snapshot = json.loads(out.read_text()) if out.exists() else {
        "bench": 10,
        "description": ("Hot-path microbenchmark snapshot: Engine event "
                        "dispatch, Process resumes, EVM interpretation, "
                        "Medium frame resolution, campaign sweep "
                        "throughput (local pool and distributed "
                        "coordinator/worker cluster at 8 workers), the "
                        "dist wire meters (frame relay rate, 1000-client "
                        "connect ramp, echo latency under load, three-tenant fair-share makespan), "
                        "results-warehouse campaign-store ingest, plant "
                        "stepping on the scalar and numpy flowsheet "
                        "backends, trace recording, the 100/256/1000-node "
                        "wide-grid failover trials and the repro.obs "
                        "telemetry-on overhead table "
                        "(benchmarks/hotpath.py)"),
    }
    snapshot["host"] = {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "system": platform.system(),
        "node": platform.node(),
        "commit": _git_commit(),
    }

    print(f"hotpath benchmarks ({args.label}):")
    results = run_all()
    if args.merge_best and args.label in snapshot:
        prior = snapshot[args.label]
        for key, value in results.items():
            old = prior.get(key)
            if old is None:
                prior[key] = value
            else:
                prior[key] = (min(old, value) if is_duration_meter(key)
                              else max(old, value))
    else:
        snapshot[args.label] = results

    if args.obs_overhead:
        print("telemetry-on overhead (repro.obs):")
        rows = run_obs_overhead()
        if args.merge_best and "obs_overhead" in snapshot:
            prior_rows = snapshot["obs_overhead"]
            for name, row in rows.items():
                # Keep the row measured under the faster (less
                # interfered) conditions: higher telemetry-off rate.
                if (name not in prior_rows
                        or row["off"] > prior_rows[name]["off"]):
                    prior_rows[name] = row
        else:
            snapshot["obs_overhead"] = rows

    if "baseline" in snapshot and "optimized" in snapshot:
        # Rates improve upward (optimized/baseline); durations improve
        # downward (baseline/optimized) -- either way >1.0 means faster.
        snapshot["speedup"] = {
            key: round((snapshot["baseline"][key] / snapshot["optimized"][key])
                       if is_duration_meter(key)
                       else (snapshot["optimized"][key]
                             / snapshot["baseline"][key]), 2)
            for key in snapshot["baseline"]
            if snapshot["baseline"].get(key)
            and snapshot["optimized"].get(key)
        }
        print("speedup vs baseline:")
        for key, ratio in snapshot["speedup"].items():
            print(f"  {key:<28} {ratio:>7.2f}x")

    out.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
