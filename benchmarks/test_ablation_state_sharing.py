"""A2 (ablation): passive vs active state sharing.

The paper: "state is shared either passively or actively to enable fault
tolerance".  Active sharing has backups recompute from the same sensor
stream; passive sharing ships periodic state snapshots from the primary.
Measured: radio traffic cost and post-failover takeover transient under
both policies.  Shape: active sharing costs no extra frames and takes over
seamlessly; passive sharing pays snapshot traffic and the backup still
takes over correctly (bounded transient).
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.fig6 import Fig6Config, run_fig6
from repro.experiments.hil import CTRL_B, HilConfig
from repro.sim.clock import SEC


def _run_mode(mode: str):
    config = Fig6Config(
        t1_fault_sec=30.0, t2_target_sec=31.0, duration_sec=90.0,
        hil=HilConfig(settle_sec=800.0, state_sharing_mode=mode,
                      arbitration_holdoff_ticks=1,
                      dormant_delay_ticks=10 * SEC))
    return run_fig6(config)


def test_a2_state_sharing_modes(benchmark):
    def both():
        return {"active": _run_mode("active"),
                "passive": _run_mode("passive")}

    results = run_once(benchmark, both)
    print("\nmode    | failover (s) | min level | final level")
    for mode, result in results.items():
        print(f"  {mode:7s} | {result.failover_time_sec:10.2f} | "
              f"{result.min_level:9.2f} | {result.final_level:10.2f}")
        # Both policies produce a working failover with bounded damage.
        assert result.failover_time_sec is not None
        assert result.failover_time_sec < 40.0
        assert result.min_level > 40.0
        assert result.final_level == pytest.approx(50.0, abs=3.0)
        assert result.at_time(85, result.active_controller) == CTRL_B


def test_a2_traffic_cost(benchmark):
    """Passive sharing pays snapshot frames; active sends none."""
    from repro.experiments.hil import CTRL_A, HilRig

    def measure():
        out = {}
        for mode in ("active", "passive"):
            rig = HilRig(HilConfig(settle_sec=800.0,
                                   state_sharing_mode=mode))
            rig.run_for_seconds(30.0)
            out[mode] = rig.runtimes[CTRL_A].stats.snapshots_sent
        return out

    snapshots = run_once(benchmark, measure)
    print(f"\nsnapshot frames in 30 s: active={snapshots['active']}, "
          f"passive={snapshots['passive']}")
    assert snapshots["active"] == 0
    assert snapshots["passive"] > 20
