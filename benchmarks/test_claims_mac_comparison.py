"""C2 (section 2.1): RT-Link outperforms B-MAC and S-MAC across duty
cycles and event rates.

Reproduces the comparison as lifetime tables over both sweeps.  The
asserted shape: RT-Link's projected lifetime strictly dominates both
baselines at every operating point, and its scheduled slots never collide
while the contention protocols do (or pay latency instead).
"""

from benchmarks.conftest import run_once
from repro.experiments.mac_comparison import lifetime_sweep, rate_sweep


def test_c2_lifetime_vs_duty_cycle(benchmark):
    duties = (1.0, 2.0, 5.0, 10.0, 25.0)
    results = run_once(benchmark, lifetime_sweep, duties, 2.0, 45.0)
    print("\nlifetime (years) vs duty cycle:")
    print("  duty%   " + "".join(f"{d:>8.1f}" for d in duties))
    for protocol in ("rtlink", "bmac", "smac"):
        row = "".join(f"{r.lifetime_years:8.2f}" for r in results[protocol])
        print(f"  {protocol:8s}{row}")
    for i in range(len(duties)):
        rt = results["rtlink"][i].lifetime_years
        assert rt > results["bmac"][i].lifetime_years, duties[i]
        assert rt > results["smac"][i].lifetime_years, duties[i]


def test_c2_lifetime_vs_event_rate(benchmark):
    periods = (0.5, 1.0, 2.0, 5.0)
    results = run_once(benchmark, rate_sweep, periods, 5.0, 45.0)
    print("\nlifetime (years) vs event period (s):")
    print("  period  " + "".join(f"{p:>8.1f}" for p in periods))
    for protocol in ("rtlink", "bmac", "smac"):
        row = "".join(f"{r.lifetime_years:8.2f}" for r in results[protocol])
        print(f"  {protocol:8s}{row}")
    for i in range(len(periods)):
        rt = results["rtlink"][i].lifetime_years
        assert rt > results["bmac"][i].lifetime_years, periods[i]
        assert rt > results["smac"][i].lifetime_years, periods[i]
    # RT-Link delivery stays high even at the fastest rate.
    assert results["rtlink"][0].delivery_ratio > 0.9
    assert results["rtlink"][0].collisions == 0
