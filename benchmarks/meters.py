"""The meter-direction convention shared by the snapshot driver and the
trend gate.

``*_per_sec`` meters are rates (higher is better); bare ``*_sec`` meters
such as ``widegrid_trial_sec`` are durations (lower is better).  Both
``hotpath.py`` (speedup tables) and ``bench_trend.py`` (the regression
rule) import this single predicate, so a new meter shape only ever needs
to be taught here.  Deliberately dependency-free: the trend gate runs
without ``src`` on the import path.
"""

from __future__ import annotations


def is_duration_meter(name: str) -> bool:
    """Duration meters (``*_sec``) improve downward; rates upward."""
    return name.endswith("_sec") and not name.endswith("_per_sec")
