"""C4 (section 3 operations): task migration and attestation costs.

The migration protocol ships "the task control block, stack, data and
timing/precedence-related metadata".  Measured: migration completion time
and radio traffic as a function of task state size (64 B .. 4 KB stacks),
over a live RT-Link network; plus attestation throughput.  Shape: time and
bytes scale linearly with image size; every migrated image passes
attestation; per-image attestation cost is trivial next to airtime.
"""

import random

from benchmarks.conftest import run_once
from repro.evm.attestation import attest_digest
from repro.evm.migration import MigrationManager, encode_value
from repro.rtos.task import TaskSpec, Tcb
from repro.sim.clock import MS, SEC
from repro.sim.engine import Engine


class _Fabric:
    """Slot-paced loopback fabric approximating one RT-Link slot per frame."""

    def __init__(self, engine, frame_ticks=250 * MS):
        self.engine = engine
        self.frame_ticks = frame_ticks
        self.managers = {}
        self.bytes_moved = 0
        self._next_free = {}

    def sender_for(self, src):
        def send(dst, kind, payload, size_bytes):
            self.bytes_moved += size_bytes
            # One frame per queued packet: TDMA pacing.
            slot = max(self._next_free.get(src, self.engine.now),
                       self.engine.now)
            self._next_free[src] = slot + self.frame_ticks
            delay = (slot - self.engine.now) + 2 * MS
            self.engine.schedule(
                delay, lambda: self.managers[dst].handle_message(
                    src, kind, payload))
            return True

        return send


def _migrate_with_stack(stack_bytes: int):
    engine = Engine()
    fabric = _Fabric(engine)
    outcomes = []
    src = MigrationManager(engine, "src", fabric.sender_for("src"),
                           can_accept=lambda *a: (False, ""),
                           install=lambda *a: (False, ""),
                           timeout_ticks=600 * SEC)
    dst = MigrationManager(engine, "dst", fabric.sender_for("dst"),
                           can_accept=lambda *a: (True, ""),
                           install=lambda *a: (True, ""),
                           timeout_ticks=600 * SEC)
    fabric.managers = {"src": src, "dst": dst}
    spec = TaskSpec("ctrl", wcet_ticks=2 * MS, period_ticks=250 * MS,
                    stack_bytes=stack_bytes)
    tcb = Tcb(spec)
    tcb.data["memory"] = [float(i) for i in range(16)]
    rng = random.Random(stack_bytes)
    tcb.stack[:] = bytes(rng.randrange(256) for _ in range(stack_bytes))
    src.initiate(tcb.snapshot_image(), "dst", on_done=outcomes.append)
    engine.run_until(600 * SEC)
    outcome = outcomes[0]
    return outcome, fabric.bytes_moved


def test_c4_migration_cost_scales_with_state(benchmark):
    sizes = (64, 256, 1024, 4096)

    def sweep():
        return [(size, *_migrate_with_stack(size)) for size in sizes]

    rows = run_once(benchmark, sweep)
    print("\nstack bytes | migration time (s) | fragments | bytes on air")
    durations = []
    for size, outcome, moved in rows:
        assert outcome.ok, size
        seconds = outcome.duration_ticks / SEC
        durations.append(seconds)
        print(f"  {size:9d} | {seconds:17.2f} | {outcome.fragments:9d} "
              f"| {moved:9d}")
    # Linear-ish scaling: 64x more state costs far more time (TDMA-paced),
    # monotone in size.
    assert durations == sorted(durations)
    assert durations[-1] > 5 * durations[0]


def test_c4_attestation_overhead(benchmark):
    """Digest throughput over control-task-sized images."""
    def random_image(seed):
        rng = random.Random(seed)
        return bytes(rng.randrange(256) for _ in range(1024))

    images = [random_image(i) for i in range(64)]
    nonce = b"\x01\x02\x03\x04\x05\x06\x07\x08"

    def digest_all():
        return [attest_digest(image, nonce) for image in images]

    digests = benchmark(digest_all)
    assert len(set(digests)) == len(images)  # distinct images, distinct digests


def test_c4_image_encoding_compact(benchmark):
    """The wire image stays close to the raw state size (low framing tax)."""

    def encode():
        spec = TaskSpec("ctrl", wcet_ticks=2 * MS, period_ticks=250 * MS,
                        stack_bytes=512)
        tcb = Tcb(spec)
        tcb.data["memory"] = [1.0] * 16
        return tcb.snapshot_image(), encode_value(tcb.snapshot_image())

    image, blob = run_once(benchmark, encode)
    raw_state = 512 + 16 * 8
    assert len(blob) < raw_state + 400
    print(f"\nimage: {raw_state} B of raw state -> {len(blob)} B on the wire")
