"""C1 (section 4.2 objectives): control cycle and latency targets.

The paper's closing objectives: "control algorithm execution with
high-speed operation (1/4 second or less control cycle) and with a small
latency (<= 1/3 of the control cycle)".  Measured on the full HIL stack
across control periods.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.hil import HilConfig, HilRig
from repro.experiments.metrics import percentile
from repro.sim.clock import MS


def _latency_at_period(period_ms: int, seconds=40.0):
    # Frame length tracks the control period (slot count x 5 ms slots).
    config = HilConfig(control_period_ticks=period_ms * MS,
                       slots_per_frame=period_ms // 5,
                       settle_sec=1000.0)
    rig = HilRig(config)
    rig.run_for_seconds(seconds)
    return rig


def test_c1_quarter_second_cycle(benchmark):
    rig = run_once(benchmark, _latency_at_period, 250)
    cycle = rig.config.control_period_ticks
    assert cycle <= 250 * MS
    latencies = rig.io_latencies
    assert latencies
    worst = max(latencies)
    p99 = percentile(latencies, 99)
    print(f"\ncycle 250 ms: latency mean "
          f"{sum(latencies) / len(latencies) / MS:.1f} ms, "
          f"p99 {p99 / MS:.1f} ms, worst {worst / MS:.1f} ms "
          f"(objective <= {cycle / 3 / MS:.1f} ms)")
    assert worst <= cycle / 3


def test_c1_faster_cycles_also_hold(benchmark):
    """The objective says 1/4 s *or less*: verify a 150 ms cycle too."""
    rig = run_once(benchmark, _latency_at_period, 150)
    cycle = rig.config.control_period_ticks
    latencies = rig.io_latencies
    assert latencies
    assert max(latencies) <= cycle / 3
    # And the loop still regulates.
    assert rig.read("lts_level_pct") == pytest.approx(50.0, abs=1.5)
    print(f"\ncycle 150 ms: worst latency {max(latencies) / MS:.1f} ms, "
          f"level {rig.read('lts_level_pct'):.2f}%")
