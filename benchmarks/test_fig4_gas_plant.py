"""F4 (Fig. 4): the natural gas plant flowsheet.

Settles the plant under its eight local regulators and reproduces the
flowsheet's stream table.  Shape checks: the paper's operating point
(LTS level 50 %, valve ~11.48 %), separation temperatures, low-propane
bottoms, and overall mass closure.
"""

import pytest

from benchmarks.conftest import run_once
from repro.plant.gas_plant import NaturalGasPlant


def _settle():
    plant = NaturalGasPlant()
    snapshot = plant.settle(2000.0)
    return plant, snapshot


def test_fig4_steady_state_stream_table(benchmark):
    plant, snapshot = run_once(benchmark, _settle)
    table = plant.stream_table()
    print("\nStream table (molar flow mol/s, T degC, P kPa, C3 frac):")
    for name, row in table.items():
        print(f"  {name:18s} F={row['molar_flow']:8.3f} "
              f"T={row['temperature_c']:7.2f} P={row['pressure_kpa']:7.1f} "
              f"C3={row['C3_frac']:6.4f}")
    # The case-study operating point.
    assert snapshot["lts_level_pct"] == pytest.approx(50.0, abs=0.5)
    assert snapshot["lts_valve_pct"] == pytest.approx(11.48, abs=0.5)
    # Refrigeration actually refrigerates.
    assert table["chiller_out"]["temperature_c"] == pytest.approx(-20.0,
                                                                  abs=1.0)
    # Low-propane bottoms product (the flowsheet's purpose).
    assert table["bottoms"]["C3_frac"] < 0.15
    # Heavies concentrate down the liquid train.
    assert table["tower_feed"]["C3_frac"] > table["feed"]["C3_frac"]
    # Mass closure within the lumped model's tolerance.
    feed = table["feed"]["molar_flow"]
    out = (table["sales_gas"]["molar_flow"]
           + table["distillate"]["molar_flow"]
           + table["bottoms"]["molar_flow"]
           + plant.depropanizer.overhead_gas_out.molar_flow)
    assert out == pytest.approx(feed, rel=0.1)


def test_fig4_all_loops_regulate(benchmark):
    plant, snapshot = run_once(benchmark, _settle)
    print("\nLoop PVs at steady state:")
    for loop in plant.loops:
        pv = plant.flowsheet.read(loop.pv)
        print(f"  {loop.name:18s} PV={pv:9.2f} SP={loop.config.setpoint:9.2f}")
        span = abs(loop.config.setpoint) * 0.05 + 2.0
        assert pv == pytest.approx(loop.config.setpoint, abs=span), loop.name


def test_fig4_disturbance_rejection(benchmark):
    """Step the feed +15 %: the level loops absorb it."""

    def trial():
        plant, _ = _settle()
        plant.feed1.molar_flow *= 1.15
        for _ in range(2400):
            plant.step(0.5)
        return plant

    plant = run_once(benchmark, trial)
    assert plant.flowsheet.read("lts_level_pct") == pytest.approx(50.0,
                                                                  abs=2.0)
    assert plant.flowsheet.read("inlet_sep_level_pct") == pytest.approx(
        50.0, abs=2.0)
    # More feed -> more liquids -> the valve sits wider open than 11.48 %.
    assert plant.flowsheet.read("lts_valve_pct") > 11.6
    print(f"\nafter +15% feed: valve="
          f"{plant.flowsheet.read('lts_valve_pct'):.2f}% "
          f"level={plant.flowsheet.read('lts_level_pct'):.2f}%")
