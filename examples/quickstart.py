"""Quickstart: a minimal Virtual Component with failover.

Builds a four-node EVM deployment (head, two controllers, one actuator)
over RT-Link, runs a trivial control law as interpreted EVM bytecode,
injects a wrong-output fault into the primary, and watches the backup
take over -- the paper's core loop in ~100 lines of user code.

Run:  python examples/quickstart.py
"""

import random

from repro.control.compiler import SLOT_INPUT, SLOT_OUTPUT, compile_passthrough
from repro.evm.capsule import Capsule
from repro.evm.failover import ControllerMode, FailoverPolicy
from repro.evm.object_transfer import (
    DirectionalTransfer,
    FaultResponse,
    HealthAssessment,
)
from repro.evm.runtime import EvmRuntime
from repro.evm.tasks import LogicalTask
from repro.evm.virtual_component import VcMember, VirtualComponent
from repro.hardware.node import FireFlyNode
from repro.hardware.timesync import AmTimeSync, TimeSyncSpec
from repro.net.mac.rtlink import RtLinkConfig, RtLinkMac, RtLinkSchedule
from repro.net.medium import Medium
from repro.net.topology import full_mesh
from repro.rtos.kernel import NanoRK
from repro.sim.clock import MS, SEC
from repro.sim.engine import Engine
from repro.sim.trace import Trace

NODE_IDS = ["head", "ctrl_a", "ctrl_b", "act"]


def main() -> None:
    engine = Engine()
    trace = Trace()

    # --- network: full mesh, TDMA, AM time sync -----------------------
    topology = full_mesh(NODE_IDS, spacing_m=10.0)
    medium = Medium(engine, topology, rng=random.Random(1))
    sync = AmTimeSync(engine, random.Random(2), TimeSyncSpec())
    config = RtLinkConfig(slots_per_frame=20, slot_ticks=5 * MS)
    schedule = RtLinkSchedule(config)
    for slot, node_id in zip((0, 4, 8, 12), NODE_IDS):
        schedule.assign(slot, node_id, set(NODE_IDS) - {node_id})

    # --- the Virtual Component ----------------------------------------
    vc = VirtualComponent("quickstart-vc")
    capabilities = {
        "head": frozenset({"head"}),
        "ctrl_a": frozenset({"controller"}),
        "ctrl_b": frozenset({"controller"}),
        "act": frozenset({"actuate"}),
    }
    for node_id in NODE_IDS:
        vc.admit(VcMember(node_id, capabilities[node_id]))
    # Control law: out = 2 * in, compiled to EVM bytecode.
    law = compile_passthrough("double", gain=2.0)
    ident = compile_passthrough("ident", gain=1.0)
    vc.add_task(LogicalTask(
        name="ctrl", program_name="double", period_ticks=200 * MS,
        wcet_ticks=2 * MS, required_capabilities=frozenset({"controller"}),
        replicas=2))
    vc.add_task(LogicalTask(
        name="act", program_name="ident", period_ticks=200 * MS,
        wcet_ticks=1 * MS, required_capabilities=frozenset({"actuate"})))
    vc.assign("ctrl", "ctrl_a", backups=["ctrl_b"])
    vc.assign("act", "act")
    vc.add_transfer(DirectionalTransfer(
        producer="ctrl", consumer="act", slots=((SLOT_OUTPUT, SLOT_INPUT),)))
    vc.add_transfer(HealthAssessment(
        monitor="ctrl_b", subject="ctrl_a", task="ctrl",
        response=FaultResponse.TRIGGER_BACKUP, max_deviation=1.0,
        threshold=3, heartbeat_timeout_ticks=2 * SEC))

    # --- one kernel + EVM runtime per node -----------------------------
    runtimes = {}
    for node_id in NODE_IDS:
        node = FireFlyNode(engine, node_id,
                           position=topology.position(node_id),
                           with_sensors=False)
        node.join_timesync(sync)
        mac = RtLinkMac(engine, node, medium.attach(node), schedule)
        kernel = NanoRK(engine, node, trace=trace)
        kernel.attach_mac(mac)
        runtime = EvmRuntime(kernel, vc, capabilities[node_id], trace=trace,
                             failover_policy=FailoverPolicy(
                                 dormant_delay_ticks=5 * SEC))
        for program in (law, ident):
            runtime.install_capsule(Capsule.from_program(program, version=1))
        runtime.configure_from_vc(head_id="head")
        runtimes[node_id] = runtime
        mac.start()
    sync.start()

    # Feed the controller a constant input.
    for ctrl in ("ctrl_a", "ctrl_b"):
        runtimes[ctrl].bind_input("ctrl", SLOT_INPUT, lambda: 21.0)

    # --- run, fault, observe -------------------------------------------
    engine.run_until(3 * SEC)
    act_in = runtimes["act"].instances["act"].memory[SLOT_INPUT]
    print(f"t=3s   actuator receives {act_in:.1f} "
          f"(= 2 x 21) from {runtimes['act'].task_primaries['ctrl'][0]}")

    print("t=3s   injecting wrong-output fault into ctrl_a (outputs 500)")
    runtimes["ctrl_a"].inject_output_fault("ctrl", SLOT_OUTPUT, 500.0)

    engine.run_until(10 * SEC)
    primary = runtimes["act"].task_primaries["ctrl"][0]
    act_in = runtimes["act"].instances["act"].memory[SLOT_INPUT]
    mode_a = runtimes["ctrl_a"].instances["ctrl"].mode
    mode_b = runtimes["ctrl_b"].instances["ctrl"].mode
    print(f"t=10s  actuator receives {act_in:.1f} from {primary}")
    print(f"       ctrl_a mode: {mode_a.value} | ctrl_b mode: {mode_b.value}")
    for event in trace.events("evm.failover"):
        if event.category == "evm.failover":
            print(f"       failover at t={event.time / SEC:.2f}s -> "
                  f"{event.data['new_primary']}")
    assert primary == "ctrl_b"
    assert abs(act_in - 42.0) < 1e-6
    print("quickstart OK: backup took over and restored the correct output")


if __name__ == "__main__":
    main()
