"""Chaos campaign: sweep the stock fault scenarios across seeds.

Fans a stock-scenario x seed grid out across worker processes with the
``repro.scenarios`` campaign runner, persists one JSON record per run
under ``results/chaos_campaign/``, and prints the aggregate
failover-latency table -- how fast the Virtual Component recovers from
crashes, wedged outputs, partitions, battery death, and interference,
across many randomized runs of each.

Run:  python examples/chaos_campaign.py [--fast] [--serial]
"""

import sys
import time

from repro.scenarios import (
    CampaignRunner,
    format_summary_table,
    stock_names,
    stock_scenario,
    sweep,
)


def main() -> None:
    fast = "--fast" in sys.argv
    seeds = [1, 2] if fast else [1, 2, 3, 4, 5]
    names = (["primary-crash", "wedged-primary"] if fast
             else stock_names())
    bases = [stock_scenario(name) for name in names]
    grid = sweep(bases, seeds=seeds)
    print(f"campaign: {len(bases)} scenarios x {len(seeds)} seeds = "
          f"{len(grid)} runs")

    runner = CampaignRunner(results_dir="results/chaos_campaign",
                            parallel="--serial" not in sys.argv)
    started = time.perf_counter()
    result = runner.run(grid)
    elapsed = time.perf_counter() - started
    print(f"completed {len(result.records)} runs in {elapsed:.1f} s "
          f"({len(result.records) / elapsed:.2f} scenarios/s)\n")

    print(format_summary_table(result.summary))

    print("\nper-scenario outcomes:")
    for name, entry in result.summary["scenarios"].items():
        excursion = entry["max_excursion_pct"]
        print(f"  {name:<40} failovers={entry['failovers_executed']} "
              f"crashes={entry['crashes']} "
              f"worst excursion={excursion['max']:.1f} %")
    if result.store_root:
        print(f"\nwrote per-run JSON records under {result.store_root}/")
        print("replay any run: repro.scenarios.run_scenario(spec) with "
              "the recorded seed reproduces it bit-identically")


if __name__ == "__main__":
    main()
