"""Results warehouse walkthrough: run a mini-campaign, ingest it, query.

Runs a small fault campaign across two TDMA frame widths (the
warehouse's ``grid_size`` dimension), streams the committed store into
a warehouse via ``CampaignRunner(warehouse=...)``, and answers three
representative cross-campaign questions with ``repro.warehouse``
queries:

1. control quality per scenario (mean ``control_cost``);
2. failover-latency percentiles by grid size (does a wider TDMA frame
   slow recovery?);
3. cross-seed variance (is any scenario's latency seed-sensitive?).

Everything also works from the shell once the warehouse exists::

    python -m repro.warehouse query --db results/warehouse \\
        --group-by scenario --meter control_cost
    python -m repro.warehouse query --db results/warehouse \\
        --group-by grid_size --meter failover_latency_sec

Run:  python examples/warehouse_queries.py [--fast]
"""

import sys
import time

from repro.scenarios import CampaignRunner, stock_scenario, sweep
from repro.warehouse import campaigns, open_warehouse, query_runs

RESULTS_DIR = "results/warehouse_demo"
WAREHOUSE_DIR = "results/warehouse"


def main() -> None:
    fast = "--fast" in sys.argv
    seeds = [1, 2] if fast else [1, 2, 3, 4]
    bases = [stock_scenario("primary-crash", crash_at_sec=8.0,
                            duration_sec=20.0),
             stock_scenario("wedged-primary", fault_at_sec=8.0,
                            duration_sec=20.0)]
    # Two TDMA frame widths -> two grid_size cells in the warehouse.
    grid = sweep(bases, seeds=seeds,
                 params={"slots_per_frame": [25, 50]})
    print(f"campaign: {len(bases)} scenarios x {len(seeds)} seeds x "
          f"2 frame widths = {len(grid)} runs")

    started = time.perf_counter()
    runner = CampaignRunner(results_dir=RESULTS_DIR,
                            warehouse=WAREHOUSE_DIR, tenant="demo")
    result = runner.run(grid)
    print(f"ran and ingested {len(result.records)} runs in "
          f"{time.perf_counter() - started:.1f} s\n")

    with open_warehouse(WAREHOUSE_DIR) as wh:
        for entry in campaigns(wh):
            print(f"warehouse: {entry['tenant']}/{entry['campaign']}: "
                  f"{entry['runs']} runs, grid sizes "
                  f"{entry['grid_sizes']}, seeds {entry['seeds']}")

        print("\n1. control quality per scenario (lower cost = tighter "
              "control):")
        per_scenario = query_runs(wh, group_by=("scenario",),
                                  meter="control_cost")
        for group in per_scenario["groups"]:
            stats = group["stats"]
            print(f"  {group['by']['scenario']:<45} "
                  f"mean={stats['mean']:8.2f}  "
                  f"[{stats['min']:.2f} .. {stats['max']:.2f}]")

        print("\n2. failover latency percentiles by TDMA frame width:")
        by_grid = query_runs(wh, group_by=("grid_size",),
                             meter="failover_latency_sec",
                             percentiles=(50, 90, 99))
        for group in by_grid["groups"]:
            stats = group["stats"]
            print(f"  slots_per_frame={group['by']['grid_size']:<4} "
                  f"p50={stats['p50']:.2f}s  p90={stats['p90']:.2f}s  "
                  f"p99={stats['p99']:.2f}s  (n={stats['n']})")

        print("\n3. cross-seed variance per scenario (std of latency "
              "across seeds):")
        per_cell = query_runs(wh, group_by=("scenario", "grid_size"),
                              meter="failover_latency_sec")
        for group in per_cell["groups"]:
            stats = group["stats"]
            flag = "  <-- seed-sensitive" if stats["std"] > 0.5 else ""
            print(f"  {group['by']['scenario']:<45} "
                  f"grid={group['by']['grid_size']:<4} "
                  f"std={stats['std']:.3f}s{flag}")

    print(f"\nwarehouse persisted under {WAREHOUSE_DIR}/ -- re-running "
          f"this example re-ingests idempotently (duplicates skipped).")


if __name__ == "__main__":
    main()
