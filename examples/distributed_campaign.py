"""Distributed chaos campaign: the same scenario grid, fanned out over
a ``repro.dist`` coordinator/worker cluster instead of a local pool.

Two ways to run it:

- **standalone** (no arguments): spins up an in-process
  ``LocalCluster`` (coordinator + 2 workers with 2 processes each) and
  runs the grid through it -- a one-command demo of the whole
  subsystem;
- **against a real cluster**: start a coordinator and some workers
  first (see the README "Distributed campaigns" quickstart), then::

      python examples/distributed_campaign.py --connect 127.0.0.1:7461

``--shutdown`` asks the coordinator to stop once the campaign is done
(handy for scripted smoke runs); ``--results-dir`` persists the run
records through the usual staged-commit results store.
"""

import argparse
import time

from repro.scenarios import format_summary_table, stock_scenario, sweep


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--connect", default=None, metavar="HOST:PORT",
                        help="an already-running coordinator (default: "
                             "spin up an in-process LocalCluster)")
    parser.add_argument("--seeds", type=int, nargs="+", default=[1, 2])
    parser.add_argument("--results-dir",
                        default="results/distributed_campaign")
    parser.add_argument("--fast", action="store_true",
                        help="short scenario horizons (smoke runs)")
    parser.add_argument("--weight", type=float, default=1.0,
                        help="fair-share scheduling weight for this "
                             "campaign (relative to other tenants)")
    parser.add_argument("--name", default="",
                        help="campaign name shown in status/metrics")
    parser.add_argument("--shutdown", action="store_true",
                        help="stop the coordinator after the campaign")
    args = parser.parse_args()

    if args.fast:
        bases = [stock_scenario("primary-crash", crash_at_sec=8.0,
                                duration_sec=20.0),
                 stock_scenario("wedged-primary", fault_at_sec=8.0,
                                duration_sec=20.0)]
    else:
        bases = [stock_scenario("primary-crash"),
                 stock_scenario("wedged-primary")]
    grid = sweep(bases, seeds=args.seeds)
    print(f"campaign: {len(bases)} scenarios x {len(args.seeds)} seeds = "
          f"{len(grid)} runs")

    cluster = None
    if args.connect is None:
        from repro.dist import LocalCluster

        cluster = LocalCluster(n_workers=2, mode="subprocess", processes=2)
        cluster.wait_for_workers()
        address = cluster.address
        print(f"local cluster up at {address} (2 workers x 2 processes)")
    else:
        address = args.connect

    from repro.dist import DistributedCampaignRunner

    try:
        with DistributedCampaignRunner(
                address, results_dir=args.results_dir,
                weight=args.weight, name=args.name) as runner:
            done = []

            def progress(record):
                done.append(record)
                print(f"  [{len(done)}/{len(grid)}] {record['run_id']}")

            started = time.perf_counter()
            result = runner.run(grid, on_result=progress)
            elapsed = time.perf_counter() - started
            print(f"completed {len(result.records)} runs in {elapsed:.1f} s "
                  f"({len(result.records) / elapsed:.2f} scenarios/s), "
                  f"{len(result.failed)} failed\n")
            print(format_summary_table(result.summary))
            if result.store_root:
                print(f"\nwrote per-run JSON records under "
                      f"{result.store_root}/")
            if args.shutdown and cluster is None:
                runner.shutdown_coordinator()
                print("asked coordinator to shut down")
    finally:
        if cluster is not None:
            cluster.close()
    return 0 if not result.failed else 1


if __name__ == "__main__":
    raise SystemExit(main())
