"""The paper's headline experiment (Fig. 6(b)): gas-plant controller failover.

Runs the full stack -- natural gas plant behind a ModBus gateway, six
FireFly nodes on RT-Link, the LTS level loop closed over the wireless EVM --
through the published timeline: primary controller fault at T1 = 300 s,
backup activation at T2 = 600 s, old primary dormant at T3 = 800 s.

Prints the four Fig. 6(b) series as an ASCII strip chart plus the extracted
event times.  Takes a couple of minutes of wall time (1000 s of plant and
radio simulation).

Run:  python examples/gas_plant_failover.py [--fast]
"""

import sys

from repro.experiments.fig6 import Fig6Config, run_fig6
from repro.experiments.hil import HilConfig
from repro.sim.clock import SEC


def strip_chart(times, series, label, lo, hi, width=64, every=25):
    """Render one series as rows of '#' bars."""
    print(f"\n{label}  [{lo:.0f} .. {hi:.0f}]")
    for i, (t, v) in enumerate(zip(times, series)):
        if i % every != 0:
            continue
        frac = 0.0 if hi == lo else (v - lo) / (hi - lo)
        frac = min(1.0, max(0.0, frac))
        bar = "#" * int(frac * width)
        print(f"  t={t:6.0f}s |{bar:<{width}}| {v:8.2f}")


def main() -> None:
    fast = "--fast" in sys.argv
    if fast:
        config = Fig6Config(t1_fault_sec=60.0, t2_target_sec=120.0,
                            duration_sec=240.0,
                            hil=HilConfig(settle_sec=800.0,
                                          dormant_delay_ticks=40 * SEC))
    else:
        config = Fig6Config()  # the paper's 300/600/800 s timeline
    print("building the HIL rig (plant settle + wireless bring-up)...")
    result = run_fig6(config)

    print(result.summary())
    strip_chart(result.times_sec, result.lts_level_pct,
                "LTS liquid percent level (solid red in the paper)", 0, 60)
    strip_chart(result.times_sec, result.sep_liq_flow,
                "SepLiq molar flow (dashed blue)", 0, 12)
    strip_chart(result.times_sec, result.lts_liq_flow,
                "LTSLiq molar flow (dash-dotted magenta)", 0, 90)
    strip_chart(result.times_sec, result.tower_feed_flow,
                "TowerFeed molar flow (dotted green)", 0, 100)

    t1 = config.t1_fault_sec
    print("\nTimeline check against the paper:")
    print(f"  T1 fault injected      : {t1:7.1f} s")
    print(f"  backup detected fault  : {result.detection_time_sec:7.1f} s")
    print(f"  T2 backup activated    : {result.failover_time_sec:7.1f} s")
    print(f"  T3 primary -> dormant  : {result.dormant_time_sec:7.1f} s")
    print(f"  level: pre-fault {result.pre_fault_level:.1f} % -> "
          f"min {result.min_level:.1f} % -> final {result.final_level:.1f} %")
    print(f"  active controller at end: "
          f"{result.active_controller[-1]}")

    from repro.experiments.report import write_fig6_events, write_fig6_series

    series_path = write_fig6_series(result, "fig6b_series.csv")
    events_path = write_fig6_events(result, "fig6b_events.csv")
    print(f"\nwrote {series_path} and {events_path} (replot from these)")


if __name__ == "__main__":
    main()
