"""MAC study: RT-Link vs B-MAC vs S-MAC lifetime and latency.

Reproduces the paper's section 2.1 comparison: RT-Link's scheduled TDMA
(enabled by hardware time sync) against low-power-listen CSMA (B-MAC) and
loosely-synchronized duty cycling (S-MAC), swept across duty cycles and
event rates.  Prints the lifetime/latency/delivery tables; the ordering --
RT-Link on top everywhere, collision-free -- is the reproduced claim.

Run:  python examples/mac_lifetime_study.py
"""

from repro.experiments.mac_comparison import lifetime_sweep, rate_sweep


def print_table(title, results, x_label, x_values):
    print(f"\n{title}")
    header = f"  {'protocol':8s}" + "".join(f"{x:>10}" for x in x_values)
    print(header)
    for metric, fmt in (("lifetime_years", "{:10.2f}"),
                        ("mean_latency_ms", "{:10.1f}"),
                        ("delivery_ratio", "{:10.2f}")):
        print(f"  -- {metric} --")
        for protocol, rows in results.items():
            cells = "".join(fmt.format(getattr(r, metric)) for r in rows)
            print(f"  {protocol:8s}{cells}")


def main() -> None:
    duties = (1.0, 2.0, 5.0, 10.0, 25.0)
    print("sweeping duty cycles (event period 2 s, 5 members, 60 s "
          "simulated each)...")
    by_duty = lifetime_sweep(duties=duties, duration_sec=60.0)
    print_table("Lifetime vs duty cycle", by_duty, "duty %", duties)

    periods = (0.5, 1.0, 2.0, 5.0)
    print("\nsweeping event rates (duty 5 %)...")
    by_rate = rate_sweep(event_periods=periods, duration_sec=60.0)
    print_table("Lifetime vs event period (s)", by_rate, "period s",
                periods)

    print("\nOrdering check (the paper's claim):")
    for duty, (rt, bm, sm) in zip(duties, zip(by_duty["rtlink"],
                                              by_duty["bmac"],
                                              by_duty["smac"])):
        winner = "rtlink" if (rt.lifetime_years > bm.lifetime_years
                              and rt.lifetime_years > sm.lifetime_years) \
            else "OTHER"
        print(f"  duty {duty:5.1f}%: RT-Link {rt.lifetime_years:6.2f}y  "
              f"B-MAC {bm.lifetime_years:5.2f}y  "
              f"S-MAC {sm.lifetime_years:5.2f}y   winner={winner}")


if __name__ == "__main__":
    main()
