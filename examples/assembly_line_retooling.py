"""Assembly-line retooling: the paper's Camry/Prius mode-change scenario.

The introduction motivates runtime-programmable WSAC networks with an
assembly line that must interleave "every 3 Camrys with 2 Prius'" -- a
planned mode change that re-rates station workloads on the fly.  This
example shows the EVM operations involved:

1. each station node runs its station task plus auxiliary tasks (weld
   inspection, torque logging) under nano-RK admission control;
2. the line switches from CAMRY_ONLY to MIXED_3_2: station cycle times
   shorten and the stamping station gains extra work;
3. the EVM re-runs schedulability analysis *before* activating the new
   task-set (operation 3) -- the stamping station cannot take the load;
4. the EVM migrates the auxiliary inspection task (with its state) to the
   underutilized paint station (operation 1), re-runs the analysis, and
   only then activates the mode change -- no deadline is ever missed.

Run:  python examples/assembly_line_retooling.py
"""

import random
import zlib

from repro.control.compiler import compile_passthrough
from repro.evm.capsule import Capsule
from repro.evm.runtime import EvmRuntime
from repro.evm.scheduler_ops import NodeOperations
from repro.evm.tasks import LogicalTask
from repro.evm.virtual_component import VcMember, VirtualComponent
from repro.hardware.node import FireFlyNode
from repro.rtos.kernel import NanoRK
from repro.rtos.task import TaskSpec
from repro.sim.clock import MS, SEC
from repro.sim.engine import Engine

STATIONS = ["stamping", "welding", "paint", "final"]

# Station cycle workloads: (wcet_ms, period_ms) per mode.
CAMRY_ONLY = {"station": (60, 400), "inspect": (40, 400), "torque": (30, 400)}
MIXED_3_2 = {"station": (140, 320), "inspect": (120, 320), "torque": (80, 320)}


class _LoopbackMac:
    """In-process message fabric standing in for the radio."""

    def __init__(self, node_id, registry):
        self.node_id = node_id
        self.registry = registry

    def send(self, packet):
        for node_id, runtime in self.registry.items():
            if node_id != self.node_id and packet.dst in ("*", node_id):
                runtime.engine.schedule(1 * MS, runtime.deliver, packet)
        return True

    def set_receive_handler(self, fn):
        pass

    def stop(self):
        pass


def build_line(engine):
    vc = VirtualComponent("assembly-line")
    registry = {}
    kernels, runtimes, ops = {}, {}, {}
    law = compile_passthrough("station_law", gain=1.0)
    for station in STATIONS:
        vc.admit(VcMember(station, frozenset({"controller", station})))
    for station in STATIONS:
        node = FireFlyNode(engine, station, with_sensors=False,
                           rng=random.Random(
                               zlib.crc32(station.encode()) % 100))
        kernel = NanoRK(engine, node)
        mac = _LoopbackMac(station, registry)
        kernel.attach_mac(mac)
        runtime = EvmRuntime(kernel, vc,
                             capabilities=frozenset({"controller", station}))
        runtime.head_id = STATIONS[0]
        runtime.install_capsule(Capsule.from_program(law, version=1))
        registry[station] = runtime
        kernels[station] = kernel
        runtimes[station] = runtime
        ops[station] = NodeOperations(runtime)
    return vc, kernels, runtimes, ops


def install_mode(vc, ops, station, mode, tasks=("station",)):
    for kind in tasks:
        wcet_ms, period_ms = mode[kind]
        name = f"{station}.{kind}"
        logical = LogicalTask(
            name=name, program_name="station_law",
            period_ticks=period_ms * MS, wcet_ticks=wcet_ms * MS,
            required_capabilities=frozenset({"controller"}))
        if name not in vc.tasks:
            vc.add_task(logical)
        ops[station].assign_task(logical)


def rerate_station(kernel, mode, names):
    """Try to re-rate ``names`` on ``kernel`` to ``mode``; True if the new
    task-set passes schedulability (and is applied), False if refused."""
    from repro.rtos.analysis import response_time_analysis

    current = {spec.name: spec for spec in kernel.scheduler.specs()}
    proposed = []
    for spec in current.values():
        base = spec.name.split(".")[-1]
        if base in mode and spec.name in names:
            wcet_ms, period_ms = mode[base]
            proposed.append(TaskSpec(
                name=spec.name, wcet_ticks=wcet_ms * MS,
                period_ticks=period_ms * MS, priority=spec.priority,
                stack_bytes=spec.stack_bytes))
        else:
            proposed.append(spec)
    report = response_time_analysis(proposed)
    if not report.schedulable:
        return False, report
    for spec in proposed:
        if spec.name in kernel.scheduler.tasks:
            kernel.scheduler.tasks[spec.name].spec = spec
    return True, report


def main() -> None:
    engine = Engine()
    vc, kernels, runtimes, ops = build_line(engine)

    # Initial CAMRY_ONLY configuration: stamping also hosts the two
    # auxiliary tasks; the others run just their station task.
    install_mode(vc, ops, "stamping", CAMRY_ONLY,
                 tasks=("station", "inspect", "torque"))
    for station in STATIONS[1:]:
        install_mode(vc, ops, station, CAMRY_ONLY)
    engine.run_until(2 * SEC)

    print("Mode CAMRY_ONLY running; per-station utilization:")
    for station in STATIONS:
        util = kernels[station].scheduler.utilization_now()
        print(f"  {station:10s} U = {util:.3f}")

    print("\nRequesting mode change -> MIXED_3_2 "
          "(3 Camrys : 2 Prius, shorter cycle, heavier stamping)")
    names = {f"stamping.{k}" for k in ("station", "inspect", "torque")}
    ok, report = rerate_station(kernels["stamping"], MIXED_3_2, names)
    if not ok:
        print(f"  stamping: REFUSED by schedulability analysis "
              f"({report.reason})")
        print("  EVM action: migrate 'stamping.inspect' -> paint station")
        outcomes = []
        ops["stamping"].migrate_task("stamping.inspect", "paint",
                                     on_done=outcomes.append)
        engine.run_until(engine.now + 3 * SEC)
        assert outcomes and outcomes[0].ok, "migration failed"
        print(f"  migration complete in "
              f"{outcomes[0].duration_ticks / SEC:.2f} s "
              f"({outcomes[0].bytes_sent} bytes, "
              f"{outcomes[0].fragments} fragments, attested)")
        ok, report = rerate_station(kernels["stamping"], MIXED_3_2,
                                    names - {"stamping.inspect"})
        print(f"  stamping re-analysis: "
              f"{'SCHEDULABLE' if ok else 'still refused'}")
        ok_paint, _ = rerate_station(
            kernels["paint"], MIXED_3_2,
            {"paint.station", "stamping.inspect"})
        print(f"  paint re-analysis   : "
              f"{'SCHEDULABLE' if ok_paint else 'refused'}")
    for station in STATIONS[1:]:
        rerate_station(kernels[station], MIXED_3_2, {f"{station}.station"})

    engine.run_until(engine.now + 10 * SEC)
    print("\nMode MIXED_3_2 running; per-station utilization:")
    misses = 0
    for station in STATIONS:
        util = kernels[station].scheduler.utilization_now()
        stations_misses = sum(t.deadline_misses
                              for t in kernels[station].scheduler.tasks.values())
        misses += stations_misses
        print(f"  {station:10s} U = {util:.3f}  deadline misses: "
              f"{stations_misses}")
    assert misses == 0, "the mode change must be seamless"
    assert kernels["paint"].has_task("stamping.inspect")
    print("\nretooling OK: mode change applied with zero deadline misses; "
          "inspection task now runs on the paint station")


if __name__ == "__main__":
    main()
