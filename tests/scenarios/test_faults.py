"""Unit tests: one fault primitive at a time against the HIL stack."""

import random

import pytest

from repro.control.compiler import SLOT_OUTPUT, SLOT_SETPOINT
from repro.experiments.hil import (
    ACTUATOR,
    CTRL_A,
    CTRL_B,
    GATEWAY,
    HilRig,
    TASK_ACT,
    TASK_CTRL,
)
from repro.net.link_quality import DegradedLinks, FixedPrr, PerfectLinks
from repro.scenarios import (
    BabblingInterferer,
    BatteryDrain,
    CapsuleRetune,
    CapsuleUpgrade,
    ClockDrift,
    LinkDegrade,
    NodeCrash,
    NodeRecover,
    OutputWedge,
    Scenario,
)
from repro.scenarios.stock import fast_hil


def quick(name: str, duration_sec: float = 20.0, **hil) -> Scenario:
    return Scenario(name, hil=fast_hil(**hil), duration_sec=duration_sec)


def settled_rig(spec: Scenario) -> HilRig:
    rig = HilRig(spec)
    rig.run_for_seconds(5.0)
    return rig


class TestDegradedLinksModel:
    """Pure link-model behavior -- no rig needed."""

    def test_multiplies_base_survival(self):
        model = DegradedLinks(FixedPrr(0.5), prr=0.5)
        assert model.expected_prr(10.0) == pytest.approx(0.25)

    def test_targeted_links_only(self):
        model = DegradedLinks(PerfectLinks(), prr=0.0,
                              links=(("a", "b"),))
        rng = random.Random(1)
        assert not model.frame_survives_link("a", "b", 10.0, 32, rng)
        assert not model.frame_survives_link("b", "a", 10.0, 32, rng)
        assert model.frame_survives_link("a", "c", 10.0, 32, rng)

    def test_revert_is_pass_through(self):
        model = DegradedLinks(PerfectLinks(), prr=0.0)
        model.active = False
        rng = random.Random(1)
        assert model.frame_survives_link("a", "b", 10.0, 32, rng)
        assert model.expected_prr(10.0) == pytest.approx(1.0)

    def test_rejects_bad_prr(self):
        with pytest.raises(ValueError):
            DegradedLinks(PerfectLinks(), prr=1.5)

    def test_expected_prr_link_sees_targeting(self):
        model = DegradedLinks(PerfectLinks(), prr=0.25,
                              links=(("a", "b"),))
        assert model.expected_prr_link("a", "b", 10.0) == pytest.approx(0.25)
        assert model.expected_prr_link("a", "c", 10.0) == pytest.approx(1.0)


class TestNodeCrashRecover:
    def test_crash_halts_node(self):
        rig = settled_rig(quick("crash").at(10.0, NodeCrash(CTRL_A)))
        rig.run_for_seconds(10.0)
        assert rig.kernels[CTRL_A].crashed
        assert rig.nodes[CTRL_A].failed

    def test_recover_reboots_and_rejoins(self):
        spec = quick("recover", duration_sec=30.0) \
            .at(8.0, NodeCrash(CTRL_A)) \
            .at(12.0, NodeRecover(CTRL_A))
        rig = settled_rig(spec)
        rig.run_for_seconds(10.0)
        kernel = rig.kernels[CTRL_A]
        assert not kernel.crashed
        assert not rig.nodes[CTRL_A].failed
        jobs_at_reboot = kernel.task(TASK_CTRL).jobs_released
        rig.run_for_seconds(10.0)
        # The scheduler's release chains really resumed.
        assert kernel.task(TASK_CTRL).jobs_released > jobs_at_reboot

    def test_recover_on_healthy_node_is_noop(self):
        rig = settled_rig(quick("noop-recover").at(6.0,
                                                   NodeRecover(CTRL_A)))
        rig.run_for_seconds(5.0)
        assert not rig.kernels[CTRL_A].crashed


class TestLinkDegrade:
    def test_global_degrade_loses_frames(self):
        rig = settled_rig(quick("degrade").at(0.0, LinkDegrade(prr=0.8)))
        rig.run_for_seconds(15.0)
        assert rig.medium.stats.channel_losses > 0

    def test_window_reverts(self):
        spec = quick("degrade-window", duration_sec=30.0).at(
            0.0, LinkDegrade(prr=0.5, duration_sec=10.0))
        rig = HilRig(spec)
        rig.run_for_seconds(12.0)
        losses_at_heal = rig.medium.stats.channel_losses
        assert losses_at_heal > 0
        assert rig.medium.link_model.active is False
        rig.run_for_seconds(15.0)
        assert rig.medium.stats.channel_losses == losses_at_heal

    def test_targeted_partition_spares_other_links(self):
        links = tuple((CTRL_A, n) for n in (CTRL_B, ACTUATOR, GATEWAY))
        rig = settled_rig(quick("partition", duration_sec=30.0).at(
            5.0, LinkDegrade(prr=0.0, links=links)))
        rig.run_for_seconds(20.0)
        # The rest of the mesh still delivers (sensor -> backup et al.).
        assert rig.runtimes[ACTUATOR].stats.data_applied > 0


class TestBabblingInterferer:
    def test_forged_frames_rejected(self):
        spec = quick("babble", duration_sec=25.0).at(
            5.0, BabblingInterferer(node=CTRL_B, task=TASK_CTRL,
                                    consumer=TASK_ACT, value=99.0,
                                    slot=SLOT_OUTPUT, period_ms=500))
        rig = HilRig(spec)
        rig.run_for_seconds(25.0)
        assert rig.runtimes[ACTUATOR].stats.rejected_by_switch > 0

    def test_babbler_stops_at_window_end(self):
        spec = quick("babble-window", duration_sec=30.0).at(
            5.0, BabblingInterferer(node=CTRL_B, task=TASK_CTRL,
                                    consumer=TASK_ACT, value=99.0,
                                    period_ms=500, duration_sec=5.0))
        rig = HilRig(spec)
        rig.run_for_seconds(12.0)
        rejected_at_end = rig.runtimes[ACTUATOR].stats.rejected_by_switch
        rig.run_for_seconds(15.0)
        assert rig.runtimes[ACTUATOR].stats.rejected_by_switch == \
            rejected_at_end


class TestClockDrift:
    def test_drift_step_applied(self):
        rig = settled_rig(quick("drift").at(
            2.0, ClockDrift(CTRL_B, drift_ppm=80.0)))
        assert rig.nodes[CTRL_B].clock.drift_ppm == pytest.approx(80.0)
        # Other nodes keep the platform default.
        assert rig.nodes[CTRL_A].clock.drift_ppm == pytest.approx(10.0)


class TestBatteryDrain:
    def test_partial_drain(self):
        rig = settled_rig(quick("drain").at(
            2.0, BatteryDrain(CTRL_A, 0.5, crash_on_depletion=False)))
        assert rig.nodes[CTRL_A].battery.remaining_fraction < 0.5001
        assert not rig.kernels[CTRL_A].crashed

    def test_full_drain_browns_out(self):
        rig = settled_rig(quick("brownout").at(
            2.0, BatteryDrain(CTRL_A, 1.0)))
        assert rig.nodes[CTRL_A].battery.depleted
        assert rig.kernels[CTRL_A].crashed

    def test_full_drain_without_crash_flag(self):
        rig = settled_rig(quick("drain-no-crash").at(
            2.0, BatteryDrain(CTRL_A, 1.0, crash_on_depletion=False)))
        assert rig.nodes[CTRL_A].battery.depleted
        assert not rig.kernels[CTRL_A].crashed


class TestEvmInterventions:
    def test_capsule_retune_pokes_all_instances(self):
        rig = settled_rig(quick("poke", duration_sec=20.0).at(
            5.0, CapsuleRetune(TASK_CTRL, SLOT_SETPOINT, 44.0,
                               from_node=GATEWAY)))
        rig.run_for_seconds(10.0)
        for ctrl in (CTRL_A, CTRL_B):
            memory = rig.runtimes[ctrl].instances[TASK_CTRL].memory
            assert memory[SLOT_SETPOINT] == pytest.approx(44.0)

    def test_capsule_upgrade_disseminates(self):
        rig = settled_rig(quick("upgrade", duration_sec=20.0).at(
            5.0, CapsuleUpgrade(version=3, from_node=GATEWAY)))
        rig.run_for_seconds(10.0)
        for ctrl in (CTRL_A, CTRL_B):
            assert rig.runtimes[ctrl].capsules.version_of(
                "lts_ctrl_law") == 3

    def test_output_wedge_targets_active_primary(self):
        rig = settled_rig(quick("wedge", duration_sec=30.0).at(
            8.0, OutputWedge(TASK_CTRL, 75.0)))
        rig.run_for_seconds(5.0)
        instance = rig.runtimes[CTRL_A].instances[TASK_CTRL]
        assert instance.forced_outputs.get(SLOT_OUTPUT) == \
            pytest.approx(75.0)

    def test_output_wedge_unknown_task_raises_clearly(self):
        rig = settled_rig(quick("wedge-typo", duration_sec=20.0).at(
            8.0, OutputWedge("lts_ctl", 75.0)))  # typo for lts_ctrl
        with pytest.raises(ValueError, match="lts_ctl"):
            rig.run_for_seconds(10.0)

    def test_injector_records_applications(self):
        spec = quick("record", duration_sec=20.0) \
            .at(3.0, ClockDrift(CTRL_B, 40.0)) \
            .at(6.0, BatteryDrain(CTRL_A, 0.1, crash_on_depletion=False))
        rig = HilRig(spec)
        rig.run_for_seconds(10.0)
        assert [a.kind for a in rig.injector.applied] == \
            ["ClockDrift", "BatteryDrain"]
        assert rig.injector.applied_times_sec() == [3.0, 6.0]
        assert rig.trace.count("scenario.fault") == 2
