"""Property: a fault schedule replayed with the same seed is bit-identical.

The whole campaign-store contract rests on this -- any persisted run can
be reproduced from its recorded (scenario, seed) alone -- so it is tested
as a property over sampled schedules, not a single example.
"""

import json

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.control.compiler import SLOT_SETPOINT
from repro.experiments.hil import CTRL_A, CTRL_B, TASK_ACT, TASK_CTRL
from repro.scenarios import (
    BabblingInterferer,
    BatteryDrain,
    CapsuleRetune,
    ClockDrift,
    LinkDegrade,
    NodeCrash,
    OutputWedge,
    Scenario,
    run_scenario,
)
from repro.scenarios.stock import fast_hil

FAULT_MENU = [
    NodeCrash(CTRL_A),
    OutputWedge(TASK_CTRL, 75.0),
    LinkDegrade(prr=0.85),
    LinkDegrade(prr=0.0, links=((CTRL_A, CTRL_B),), duration_sec=8.0),
    BabblingInterferer(node=CTRL_B, task=TASK_CTRL, consumer=TASK_ACT,
                       value=99.0, period_ms=750),
    ClockDrift(CTRL_B, drift_ppm=60.0),
    BatteryDrain(CTRL_A, 0.4, crash_on_depletion=False),
    CapsuleRetune(TASK_CTRL, SLOT_SETPOINT, 46.0),
]

schedules = st.lists(
    st.tuples(st.integers(min_value=2, max_value=18).map(float),
              st.sampled_from(FAULT_MENU)),
    min_size=1, max_size=3)


def build(seed: int, schedule) -> Scenario:
    spec = Scenario("determinism-probe", hil=fast_hil(), seed=seed,
                    duration_sec=24.0)
    for at_sec, fault in schedule:
        spec.at(at_sec, fault)
    return spec


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=2**16), schedule=schedules)
def test_same_seed_replay_is_bit_identical(seed, schedule):
    first = run_scenario(build(seed, schedule))
    second = run_scenario(build(seed, schedule))
    # Dataclass equality compares every float exactly -- bit-identical.
    assert first == second
    # And the JSON the results store would persist matches byte-for-byte.
    assert json.dumps(first.to_dict(), sort_keys=True) == \
        json.dumps(second.to_dict(), sort_keys=True)


def test_different_seeds_diverge():
    """Sanity check the property is not vacuous: with channel noise in
    play, two seeds should not produce identical network traces."""
    spec = build(1, [(5.0, LinkDegrade(prr=0.7))])
    other = spec.with_seed(2)
    assert run_scenario(spec) != run_scenario(other)
