"""Campaign runner over a small scenario x seed x parameter grid."""

import json

import pytest

from repro.scenarios import (
    CampaignRunner,
    ResultsStore,
    format_summary_table,
    run_scenario,
    stock_scenario,
    sweep,
)


@pytest.fixture(scope="module")
def grid():
    """2 scenarios x 3 seeds x 2 sensor-noise levels = 12 runs."""
    bases = [
        stock_scenario("primary-crash", crash_at_sec=8.0,
                       duration_sec=20.0),
        stock_scenario("wedged-primary", fault_at_sec=8.0,
                       duration_sec=20.0),
    ]
    return sweep(bases, seeds=[1, 2, 3],
                 params={"sensor_noise_std": [0.15, 0.3]})


@pytest.fixture(scope="module")
def campaign(grid, tmp_path_factory):
    results_dir = tmp_path_factory.mktemp("campaign")
    runner = CampaignRunner(results_dir=str(results_dir), max_workers=2)
    return runner.run(grid), results_dir


def test_grid_expansion(grid):
    assert len(grid) == 12
    names = {scenario.name for scenario in grid}
    assert names == {
        "primary-crash[sensor_noise_std=0.15]",
        "primary-crash[sensor_noise_std=0.3]",
        "wedged-primary[sensor_noise_std=0.15]",
        "wedged-primary[sensor_noise_std=0.3]",
    }
    assert sorted({scenario.seed for scenario in grid}) == [1, 2, 3]


def test_campaign_runs_whole_grid(campaign, grid):
    result, _results_dir = campaign
    assert len(result.records) == len(grid)
    # Every run failed over to the backup controller.
    for metrics in result.metrics():
        assert metrics["failovers_executed"] == 1
        assert metrics["active_controller_final"] == "ctrl_b"
        assert metrics["failover_latency_sec"] is not None


def test_campaign_persists_json(campaign, grid):
    result, results_dir = campaign
    store = ResultsStore(results_dir)
    runs = store.load_runs()
    assert len(runs) == len(grid)
    # Records round-trip through JSON with spec + metrics intact.
    by_id = {record["run_id"]: record for record in runs}
    assert by_id.keys() == {r["run_id"] for r in result.records}
    sample = runs[0]
    assert {"run_id", "scenario", "metrics"} <= sample.keys()
    assert sample["scenario"]["seed"] in (1, 2, 3)
    assert sample["scenario"]["schedule"], "fault schedule persisted"
    summary = store.load_summary()
    assert summary["total_runs"] == len(grid)
    assert set(summary["scenarios"]) == {s.name for s in grid}


def test_summary_aggregates(campaign):
    result, _ = campaign
    for entry in result.summary["scenarios"].values():
        assert entry["runs"] == 3
        assert entry["seeds"] == [1, 2, 3]
        stats = entry["failover_latency_sec"]
        assert stats["n"] == 3
        assert stats["min"] <= stats["mean"] <= stats["max"]
    table = format_summary_table(result.summary)
    assert "primary-crash[sensor_noise_std=0.15]" in table


def test_stored_run_reproduces_from_recorded_seed(campaign, grid):
    """Acceptance: re-running any single scenario with its recorded seed
    yields identical metrics to the persisted record."""
    result, _ = campaign
    specs_by_id = {f"{i:03d}": spec for i, spec in enumerate(grid)}
    record = result.records[7]  # arbitrary mid-grid pick
    spec = specs_by_id[record["run_id"][:3]]
    assert spec.seed == record["scenario"]["seed"]
    replay = run_scenario(spec)
    assert json.dumps(replay.to_dict(), sort_keys=True) == \
        json.dumps(record["metrics"], sort_keys=True)


def test_reused_results_dir_drops_stale_records(grid, tmp_path):
    """A second campaign into the same directory must not mix in records
    from the first."""
    big = CampaignRunner(results_dir=str(tmp_path), parallel=False)
    big.run(grid[:3])
    small = CampaignRunner(results_dir=str(tmp_path), parallel=False)
    small.run(grid[:1])
    runs = ResultsStore(tmp_path).load_runs()
    assert len(runs) == 1
    assert ResultsStore(tmp_path).load_summary()["total_runs"] == 1


def test_serial_and_parallel_agree(grid):
    """The pool fan-out must not perturb results: byte-identical records
    either way."""
    subset = grid[:4]
    parallel = CampaignRunner(max_workers=2).run(subset)
    serial = CampaignRunner(parallel=False).run(subset)
    assert json.dumps([r["metrics"] for r in parallel.records],
                      sort_keys=True) == \
        json.dumps([r["metrics"] for r in serial.records], sort_keys=True)
