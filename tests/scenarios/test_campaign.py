"""Campaign runner over a small scenario x seed x parameter grid."""

import json

import pytest

from repro.scenarios import (
    CampaignRunner,
    ResultsStore,
    format_summary_table,
    run_scenario,
    stock_scenario,
    sweep,
)


@pytest.fixture(scope="module")
def grid():
    """2 scenarios x 3 seeds x 2 sensor-noise levels = 12 runs."""
    bases = [
        stock_scenario("primary-crash", crash_at_sec=8.0,
                       duration_sec=20.0),
        stock_scenario("wedged-primary", fault_at_sec=8.0,
                       duration_sec=20.0),
    ]
    return sweep(bases, seeds=[1, 2, 3],
                 params={"sensor_noise_std": [0.15, 0.3]})


@pytest.fixture(scope="module")
def campaign(grid, tmp_path_factory):
    results_dir = tmp_path_factory.mktemp("campaign")
    runner = CampaignRunner(results_dir=str(results_dir), max_workers=2)
    return runner.run(grid), results_dir


def test_grid_expansion(grid):
    assert len(grid) == 12
    names = {scenario.name for scenario in grid}
    assert names == {
        "primary-crash[sensor_noise_std=0.15]",
        "primary-crash[sensor_noise_std=0.3]",
        "wedged-primary[sensor_noise_std=0.15]",
        "wedged-primary[sensor_noise_std=0.3]",
    }
    assert sorted({scenario.seed for scenario in grid}) == [1, 2, 3]


def test_campaign_runs_whole_grid(campaign, grid):
    result, _results_dir = campaign
    assert len(result.records) == len(grid)
    # Every run failed over to the backup controller.
    for metrics in result.metrics():
        assert metrics["failovers_executed"] == 1
        assert metrics["active_controller_final"] == "ctrl_b"
        assert metrics["failover_latency_sec"] is not None


def test_campaign_persists_json(campaign, grid):
    result, results_dir = campaign
    store = ResultsStore(results_dir)
    runs = store.load_runs()
    assert len(runs) == len(grid)
    # Records round-trip through JSON with spec + metrics intact.
    by_id = {record["run_id"]: record for record in runs}
    assert by_id.keys() == {r["run_id"] for r in result.records}
    sample = runs[0]
    assert {"run_id", "scenario", "metrics"} <= sample.keys()
    assert sample["scenario"]["seed"] in (1, 2, 3)
    assert sample["scenario"]["schedule"], "fault schedule persisted"
    summary = store.load_summary()
    assert summary["total_runs"] == len(grid)
    assert set(summary["scenarios"]) == {s.name for s in grid}


def test_summary_aggregates(campaign):
    result, _ = campaign
    for entry in result.summary["scenarios"].values():
        assert entry["runs"] == 3
        assert entry["seeds"] == [1, 2, 3]
        stats = entry["failover_latency_sec"]
        assert stats["n"] == 3
        assert stats["min"] <= stats["mean"] <= stats["max"]
    table = format_summary_table(result.summary)
    assert "primary-crash[sensor_noise_std=0.15]" in table


def test_stored_run_reproduces_from_recorded_seed(campaign, grid):
    """Acceptance: re-running any single scenario with its recorded seed
    yields identical metrics to the persisted record."""
    result, _ = campaign
    specs_by_id = {f"{i:03d}": spec for i, spec in enumerate(grid)}
    record = result.records[7]  # arbitrary mid-grid pick
    spec = specs_by_id[record["run_id"][:3]]
    assert spec.seed == record["scenario"]["seed"]
    replay = run_scenario(spec)
    assert json.dumps(replay.to_dict(), sort_keys=True) == \
        json.dumps(record["metrics"], sort_keys=True)


def test_reused_results_dir_drops_stale_records(grid, tmp_path):
    """A second campaign into the same directory must not mix in records
    from the first."""
    big = CampaignRunner(results_dir=str(tmp_path), parallel=False)
    big.run(grid[:3])
    small = CampaignRunner(results_dir=str(tmp_path), parallel=False)
    small.run(grid[:1])
    runs = ResultsStore(tmp_path).load_runs()
    assert len(runs) == 1
    assert ResultsStore(tmp_path).load_summary()["total_runs"] == 1


def test_failed_campaign_preserves_previous_store(grid, tmp_path,
                                                  monkeypatch):
    """A campaign that dies mid-grid must leave the previously persisted
    campaign (runs + summary) fully intact: streamed records go through
    the staging area and only commit on success."""
    import repro.scenarios.runner as runner_mod

    first = CampaignRunner(results_dir=str(tmp_path), parallel=False)
    first.run(grid[:2])
    before_runs = json.dumps(ResultsStore(tmp_path).load_runs(),
                             sort_keys=True)
    before_summary = ResultsStore(tmp_path).load_summary()

    real = runner_mod._run_record
    calls = {"n": 0}

    def flaky(job):
        calls["n"] += 1
        if calls["n"] == 2:
            raise RuntimeError("worker died")
        return real(job)

    monkeypatch.setattr(runner_mod, "_run_record", flaky)
    with pytest.raises(RuntimeError):
        CampaignRunner(results_dir=str(tmp_path), parallel=False) \
            .run(grid[:3])
    store = ResultsStore(tmp_path)
    assert json.dumps(store.load_runs(), sort_keys=True) == before_runs
    assert store.load_summary() == before_summary
    assert store.discard_staged() == 0  # failure already cleaned staging


def test_interrupted_commit_swap_recovers_on_open(grid, tmp_path):
    """Crash between the commit's two renames: reopening the store rolls
    the parked campaign back (or finishes the swap) — never a mix."""
    CampaignRunner(results_dir=str(tmp_path), parallel=False).run(grid[:2])
    intact = json.dumps(ResultsStore(tmp_path).load_runs(), sort_keys=True)
    # Simulate a crash right after runs/ was parked as runs.old/.
    (tmp_path / "runs").rename(tmp_path / "runs.old")
    store = ResultsStore(tmp_path)  # rolls back
    assert json.dumps(store.load_runs(), sort_keys=True) == intact
    # Simulate a crash after the swap finished but before cleanup.
    (tmp_path / "runs.old").mkdir()
    (tmp_path / "runs.old" / "zz_stale.json").write_text("{}")
    store = ResultsStore(tmp_path)  # finishes cleanup
    assert not (tmp_path / "runs.old").exists()
    assert json.dumps(store.load_runs(), sort_keys=True) == intact


def test_abandoned_runner_reaps_pool_on_gc(grid):
    """Dropping a runner without close() must not leak worker processes:
    the finalizer shuts the pool down at collection time."""
    import gc

    runner = CampaignRunner(max_workers=2)
    runner.run(grid[:1])
    pool = runner._pool
    finalizer = runner._pool_finalizer
    assert pool is not None and finalizer.alive
    del runner
    gc.collect()
    assert not finalizer.alive           # finalizer ran
    assert pool._shutdown_thread         # executor was shut down
    # close() after use detaches the finalizer instead of double-closing.
    with CampaignRunner(max_workers=2) as closed:
        closed.run(grid[:1])
        finalizer = closed._pool_finalizer
    assert finalizer is not None and not finalizer.alive


def _kill_worker(job):  # module-level: must pickle across the pool
    import os

    os._exit(1)


def test_broken_pool_respawns_on_next_run(grid, monkeypatch):
    """An abnormal worker death breaks the executor; the next run() must
    respawn the pool instead of staying poisoned forever."""
    from concurrent.futures.process import BrokenProcessPool

    import repro.scenarios.runner as runner_mod

    with CampaignRunner(max_workers=2) as runner:
        # Every job kills its worker process outright (not an ordinary
        # exception), which permanently breaks the executor.
        monkeypatch.setattr(runner_mod, "_run_record", _kill_worker)
        with pytest.raises(BrokenProcessPool):
            runner.run(grid[:2])
        broken = runner._pool
        monkeypatch.undo()
        result = runner.run(grid[:1])  # respawns and recovers
        assert runner._pool is not broken
        assert len(result.records) == 1


def test_serial_and_parallel_agree(grid):
    """The pool fan-out must not perturb results: byte-identical records
    either way."""
    subset = grid[:4]
    parallel = CampaignRunner(max_workers=2).run(subset)
    serial = CampaignRunner(parallel=False).run(subset)
    assert json.dumps([r["metrics"] for r in parallel.records],
                      sort_keys=True) == \
        json.dumps([r["metrics"] for r in serial.records], sort_keys=True)
