"""ResultsStore under concurrency and mid-write crashes.

The commit swap is two directory renames; unguarded, two committers
racing it could interleave the renames and corrupt or half-lose
``runs/``.  These tests pin the :class:`CommitLock` behaviour (one
winner, loser no-ops or waits, stale locks broken) and the torn-write
guarantees of the ``*.json.tmp`` staging protocol.
"""

import json
import os
import subprocess
import sys
import threading

import pytest

from repro.scenarios import CampaignRunner, ResultsStore, Scenario
from repro.scenarios.store import CommitLock
from repro.scenarios.stock import fast_hil


def _store_with_staged(tmp_path, n=3) -> ResultsStore:
    store = ResultsStore(tmp_path)
    store.begin_staging()
    for i in range(n):
        store.stage_run(f"{i:03d}_run", {"run_id": f"{i:03d}_run",
                                         "metrics": {"value": i}})
    return store


def test_concurrent_committers_one_wins_one_noops(tmp_path):
    """Two threads race commit_staged on the same staged set: exactly
    one promotes all records, the other finds nothing staged, and the
    store ends whole -- no runs.old/, no staging, no lock debris."""
    store_a = _store_with_staged(tmp_path, n=3)
    store_b = ResultsStore(tmp_path)
    barrier = threading.Barrier(2)
    counts = {}

    def committer(tag, store):
        barrier.wait()
        counts[tag] = store.commit_staged()

    threads = [threading.Thread(target=committer, args=("a", store_a)),
               threading.Thread(target=committer, args=("b", store_b))]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert sorted(counts.values()) == [0, 3]
    assert len(ResultsStore(tmp_path).load_runs()) == 3
    assert not (tmp_path / "runs.old").exists()
    assert not (tmp_path / "runs.staging").exists()


def test_commit_waits_for_live_lock_holder_then_times_out(tmp_path):
    store = _store_with_staged(tmp_path)
    store._lock_timeout = 0.3
    # A live holder (this process, on its own fd) pins the lock.
    with ResultsStore(tmp_path).commit_lock():
        with pytest.raises(TimeoutError):
            store.commit_staged()
        # Nothing moved while the lock was held.
        assert (tmp_path / "runs.staging").exists()
        assert ResultsStore(tmp_path).load_runs() == []
    assert store.commit_staged() == 3


def test_lock_from_dead_process_cannot_wedge_commits(tmp_path):
    """flock dies with its holder: a lock file left by a dead process
    (even one naming its pid) never blocks the next committer."""
    store = _store_with_staged(tmp_path)
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    (tmp_path / ".commit.lock").write_text(str(proc.pid))
    assert store.commit_staged() == 3


def test_torn_lock_file_never_blocks(tmp_path):
    store = _store_with_staged(tmp_path)
    (tmp_path / ".commit.lock").write_text("")  # crashed mid-write
    assert store.commit_staged() == 3


def test_commit_lock_reentry_after_release(tmp_path):
    lock = CommitLock(tmp_path / ".commit.lock", timeout=1.0)
    with lock:
        assert (tmp_path / ".commit.lock").exists()
    with lock:  # reacquirable; the lock file itself persists
        pass
    # And a second CommitLock on the same path serializes correctly.
    other = CommitLock(tmp_path / ".commit.lock", timeout=0.2)
    with lock:
        with pytest.raises(TimeoutError):
            other.__enter__()


def test_torn_staged_write_never_promoted(tmp_path):
    """A ``.json.tmp`` left by a process killed mid-``stage_run`` is
    dropped at commit, not promoted as a half-record."""
    store = _store_with_staged(tmp_path, n=2)
    torn = tmp_path / "runs.staging" / "002_run.json.tmp"
    torn.write_text('{"run_id": "002_run", "metr')  # killed mid-write
    assert store.commit_staged() == 2
    runs = ResultsStore(tmp_path).load_runs()
    assert [r["run_id"] for r in runs] == ["000_run", "001_run"]
    assert not list(tmp_path.rglob("*.json.tmp"))


def test_discard_staged_cleans_torn_writes(tmp_path):
    store = _store_with_staged(tmp_path, n=2)
    (tmp_path / "runs.staging" / "junk.json.tmp").write_text("{")
    assert store.discard_staged() == 2
    assert not (tmp_path / "runs.staging").exists()


def test_crash_during_staged_write_mid_campaign(tmp_path, monkeypatch):
    """Kill a campaign *inside* a staged record write: the previously
    committed campaign survives untouched, and the next campaign into
    the same directory starts clean and commits correctly."""
    grid = [Scenario(f"crashy-{i}", hil=fast_hil(), seed=i,
                     duration_sec=3.0) for i in range(3)]
    first = CampaignRunner(parallel=False,
                           results_dir=str(tmp_path)).run(grid[:2])
    before = json.dumps(ResultsStore(tmp_path).load_runs(),
                        sort_keys=True)

    real_stage = ResultsStore.stage_run
    calls = {"n": 0}

    def dying_stage(self, run_id, record):
        calls["n"] += 1
        if calls["n"] == 2:
            # The process dies mid-write: the tmp file exists, the
            # rename never happened.
            (self._staging_dir / f"{run_id}.json.tmp").write_text(
                '{"run_id": "torn')
            raise KeyboardInterrupt  # stand-in for SIGKILL
        return real_stage(self, run_id, record)

    monkeypatch.setattr(ResultsStore, "stage_run", dying_stage)
    with pytest.raises(KeyboardInterrupt):
        CampaignRunner(parallel=False, results_dir=str(tmp_path)) \
            .run(grid)
    monkeypatch.undo()
    # Previous campaign untouched by the crash.
    store = ResultsStore(tmp_path)
    assert json.dumps(store.load_runs(), sort_keys=True) == before
    # A fresh campaign into the same directory commits cleanly.
    result = CampaignRunner(parallel=False,
                            results_dir=str(tmp_path)).run(grid)
    assert len(ResultsStore(tmp_path).load_runs()) == 3
    assert ResultsStore(tmp_path).load_summary() == result.summary
    assert not list(tmp_path.rglob("*.json.tmp"))


def test_empty_grid_commits_empty_campaign(tmp_path):
    """begin_staging keeps the empty-campaign semantics: running an
    empty grid over a populated store leaves an (intentionally) empty
    committed campaign, not the stale previous records."""
    grid = [Scenario("one", hil=fast_hil(), seed=1, duration_sec=3.0)]
    CampaignRunner(parallel=False, results_dir=str(tmp_path)).run(grid)
    assert len(ResultsStore(tmp_path).load_runs()) == 1
    result = CampaignRunner(parallel=False,
                            results_dir=str(tmp_path)).run([])
    assert result.records == []
    assert ResultsStore(tmp_path).load_runs() == []
    assert ResultsStore(tmp_path).load_summary()["total_runs"] == 0
