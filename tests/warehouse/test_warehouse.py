"""Results warehouse: ingest, idempotency, backend parity, queries.

The synthetic stores here are committed through the real
:class:`ResultsStore` staging protocol, so what the warehouse ingests
is exactly what campaigns persist; the heavier end-to-end paths (a real
local campaign, a real distributed campaign) are covered in
``test_runner_integration.py``.
"""

import json

import pytest

from repro.scenarios.store import ResultsStore
from repro.warehouse import (
    bench_snapshots,
    campaign_summary,
    campaigns,
    ingest_snapshots,
    ingest_store,
    open_warehouse,
    query_runs,
    telemetry_totals,
    trend_failures,
)
from repro.warehouse.cli import main as cli_main


def make_store(root, campaign_runs, scenario_names=("alpha", "beta"),
               grid_sizes=(50,), with_summary=True,
               with_telemetry=True) -> ResultsStore:
    """A committed store with deterministic synthetic records."""
    store = ResultsStore(root)
    store.begin_staging()
    obs_rows = []
    for i in range(campaign_runs):
        name = scenario_names[i % len(scenario_names)]
        grid = grid_sizes[i % len(grid_sizes)]
        run_id = f"{i:03d}_{name}_s{i}"
        record = {
            "run_id": run_id,
            "scenario": {"name": name, "seed": i, "duration_sec": 30.0,
                         "hil": {"slots_per_frame": grid, "seed": i}},
            "metrics": {"scenario": name, "seed": i,
                        "failover_latency_sec": 1.0 + i,
                        "detection_latency_sec": 0.5 + i,
                        "control_cost": 10.0 * (i + 1),
                        "packet_loss_ratio": 0.0,
                        "max_excursion_pct": 1.5,
                        "mean_io_latency_ms": None,
                        "crashes": 0, "failovers_executed": 1},
        }
        store.stage_run(run_id, record)
        obs_rows.append({"run_id": run_id,
                         "metrics": {"repro_campaign_runs_total": 1,
                                     "repro_engine_events_total": 100 + i}})
    store.commit_staged()
    if with_summary:
        store.save_summary({"total_runs": campaign_runs})
    if with_telemetry:
        store.save_metrics_jsonl(obs_rows)
    return store


def test_ingest_catalog_and_counts(tmp_path):
    make_store(tmp_path / "camp_a", 4)
    report = ingest_store(tmp_path / "wh", tmp_path / "camp_a",
                          tenant="alice", commit="abc123")
    assert (report.runs, report.summaries, report.telemetry) == (4, 1, 4)
    assert report.duplicates == 0 and report.telemetry_skipped == 0
    with open_warehouse(tmp_path / "wh") as wh:
        assert wh.counts() == {"runs": 4, "summaries": 1, "telemetry": 4}
        catalog = campaigns(wh)
        assert len(catalog) == 1
        entry = catalog[0]
        assert entry["campaign"] == "camp_a"
        assert entry["tenant"] == "alice"
        assert entry["runs"] == 4 and entry["failed"] == 0
        assert entry["scenarios"] == ["alpha", "beta"]
        assert entry["commits"] == ["abc123"]
        assert entry["has_summary"]


def test_reingest_is_idempotent(tmp_path):
    make_store(tmp_path / "camp_a", 3)
    first = ingest_store(tmp_path / "wh", tmp_path / "camp_a")
    assert first.inserted == 3 + 1 + 3
    second = ingest_store(tmp_path / "wh", tmp_path / "camp_a")
    assert second.inserted == 0
    assert second.duplicates == 7
    with open_warehouse(tmp_path / "wh") as wh:
        assert wh.counts() == {"runs": 3, "summaries": 1, "telemetry": 3}


def test_failed_runs_ingest_with_ok_false(tmp_path):
    store = make_store(tmp_path / "camp_a", 2)
    store.begin_staging()
    # Re-commit with an extra distributed-runner-style failure record.
    for record in store.load_runs():
        store.stage_run(record["run_id"], record)
    store.stage_run("002_lost_s9", {
        "run_id": "002_lost_s9",
        "scenario": {"name": "alpha", "seed": 9,
                     "hil": {"slots_per_frame": 50}},
        "error": "worker died 3 times", "attempts": 3})
    store.commit_staged()
    ingest_store(tmp_path / "wh", tmp_path / "camp_a")
    with open_warehouse(tmp_path / "wh") as wh:
        entry = campaigns(wh)[0]
        assert entry["runs"] == 3 and entry["failed"] == 1
        result = query_runs(wh, meter="failover_latency_sec")
        group = result["groups"][0]
        assert group["runs"] == 3 and group["failed"] == 1
        assert group["stats"]["n"] == 2  # failed run has no metrics


def test_query_filters_group_by_and_percentiles(tmp_path):
    make_store(tmp_path / "camp_a", 8, grid_sizes=(50, 100))
    make_store(tmp_path / "camp_b", 4)
    with open_warehouse(tmp_path / "wh") as wh:
        ingest_store(wh, tmp_path / "camp_a", tenant="alice")
        ingest_store(wh, tmp_path / "camp_b", tenant="bob")

        by_tenant = query_runs(wh, group_by=("tenant",))
        assert [(g["by"]["tenant"], g["runs"])
                for g in by_tenant["groups"]] == [("alice", 8), ("bob", 4)]

        # failover_latency_sec of camp_a = 1..8; grid 50 runs are the
        # even indices (values 1,3,5,7), grid 100 the odd (2,4,6,8).
        by_grid = query_runs(wh, where={"campaign": "camp_a"},
                             group_by=("grid_size",),
                             meter="failover_latency_sec",
                             percentiles=(50.0,))
        stats = {g["by"]["grid_size"]: g["stats"]
                 for g in by_grid["groups"]}
        assert stats[50]["mean"] == 4.0 and stats[100]["mean"] == 5.0
        assert stats[50]["p50"] == 3.0  # nearest rank of [1,3,5,7]
        assert stats[100]["min"] == 2.0 and stats[100]["max"] == 8.0

        seeds = query_runs(wh, where={"seed": [0, 1], "tenant": "alice"})
        assert seeds["groups"][0]["runs"] == 2

        with pytest.raises(ValueError):
            query_runs(wh, where={"bogus": 1})
        with pytest.raises(ValueError):
            query_runs(wh, group_by=("bogus",))


def test_telemetry_totals(tmp_path):
    make_store(tmp_path / "camp_a", 3)
    with open_warehouse(tmp_path / "wh") as wh:
        ingest_store(wh, tmp_path / "camp_a")
        totals = telemetry_totals(wh)
        assert totals["repro_campaign_runs_total"] == 3
        assert totals["repro_engine_events_total"] == 100 + 101 + 102


def test_backend_parity_byte_identical(tmp_path):
    """The sqlite and JSONL backends answer every query identically on
    the same ingested data (the acceptance criterion)."""
    make_store(tmp_path / "camp_a", 6, grid_sizes=(50, 100))
    make_store(tmp_path / "camp_b", 3)
    answers = []
    for backend in ("sqlite", "jsonl"):
        with open_warehouse(tmp_path / f"wh_{backend}",
                            backend=backend) as wh:
            ingest_store(wh, tmp_path / "camp_a", tenant="alice")
            ingest_store(wh, tmp_path / "camp_b", tenant="bob")
            answers.append(json.dumps({
                "catalog": campaigns(wh),
                "query": query_runs(wh, group_by=("tenant", "scenario"),
                                    meter="control_cost"),
                "summary_a": campaign_summary(wh, "camp_a"),
                "telemetry": telemetry_totals(wh),
            }, sort_keys=True))
    assert answers[0] == answers[1]


def test_backend_autodetect_and_mismatch(tmp_path):
    with open_warehouse(tmp_path / "wh", backend="jsonl"):
        pass
    assert open_warehouse(tmp_path / "wh").backend_name == "jsonl"
    with pytest.raises(ValueError):
        open_warehouse(tmp_path / "wh", backend="sqlite")
    with pytest.raises(ValueError):
        open_warehouse(tmp_path / "other", backend="parquet")


def test_vacuum_keeps_latest_version(tmp_path):
    store = make_store(tmp_path / "camp_a", 2, with_telemetry=False)
    with open_warehouse(tmp_path / "wh") as wh:
        ingest_store(wh, tmp_path / "camp_a")
        # The campaign is re-run: same run ids, changed content.
        records = store.load_runs()
        store.begin_staging()
        for record in records:
            record["metrics"]["control_cost"] += 1000.0
            store.stage_run(record["run_id"], record)
        store.commit_staged()
        store.save_summary({"total_runs": 2, "rerun": True})
        ingest_store(wh, tmp_path / "camp_a")
        assert wh.counts() == {"runs": 4, "summaries": 2}
        removed = wh.vacuum()
        assert removed == {"runs": 2, "summaries": 1}
        assert wh.counts() == {"runs": 2, "summaries": 1}
        result = query_runs(wh, meter="control_cost")
        assert result["groups"][0]["stats"]["min"] >= 1000.0


def test_trend_snapshots_and_gate(tmp_path):
    snapshots = [(1, {"optimized": {"m_per_sec": 100.0, "t_sec": 1.0}}),
                 (2, {"optimized": {"m_per_sec": 90.0, "t_sec": 1.1}}),
                 (3, {"optimized": {"m_per_sec": 60.0, "t_sec": 1.0}})]
    with open_warehouse(tmp_path / "wh") as wh:
        ingest_snapshots(wh, snapshots)
        loaded = bench_snapshots(wh)
        assert loaded == snapshots
        failures = trend_failures(loaded, tolerance=0.2)
        assert len(failures) == 1 and "m_per_sec" in failures[0]
        assert trend_failures(loaded, tolerance=0.2,
                              meters=["t_sec"]) == []


def test_cli_round_trip(tmp_path, capsys):
    make_store(tmp_path / "camp_a", 4)
    (tmp_path / "BENCH_1.json").write_text(
        json.dumps({"optimized": {"m_per_sec": 100.0}}))
    (tmp_path / "BENCH_2.json").write_text(
        json.dumps({"optimized": {"m_per_sec": 95.0}}))
    db = str(tmp_path / "wh")
    assert cli_main(["ingest", "--db", db, str(tmp_path / "camp_a"),
                     "--tenant", "alice",
                     "--bench", str(tmp_path / "BENCH_1.json"),
                     str(tmp_path / "BENCH_2.json")]) == 0
    assert cli_main(["query", "--db", db, "--campaigns"]) == 0
    assert cli_main(["query", "--db", db, "--group-by", "scenario",
                     "--meter", "failover_latency_sec", "--json"]) == 0
    out = capsys.readouterr().out
    payload = json.loads(out[out.index("{"):])
    assert {g["by"]["scenario"] for g in payload["groups"]} \
        == {"alpha", "beta"}
    assert cli_main(["summary", "--db", db, "--campaign", "camp_a"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["total_runs"] == 4
    assert cli_main(["trend", "--db", db, "--gate"]) == 0
    # A >20% regression flips the gate's exit code.
    (tmp_path / "BENCH_3.json").write_text(
        json.dumps({"optimized": {"m_per_sec": 10.0}}))
    assert cli_main(["ingest", "--db", db, "--bench",
                     str(tmp_path / "BENCH_3.json")]) == 0
    assert cli_main(["trend", "--db", db, "--gate"]) == 1
    assert cli_main(["vacuum", "--db", db]) == 0


def test_cli_ingest_nothing_is_an_error(tmp_path):
    assert cli_main(["ingest", "--db", str(tmp_path / "wh")]) == 2
