"""Concurrent multi-tenant ingest into one warehouse.

Two *processes* ingest two different campaign stores into the same
warehouse at the same time: the ``.warehouse.lock`` flock serializes
the writers, so no rows are lost on either backend, and a follow-up
re-ingest of either store is a pure no-op (every row a duplicate).
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.scenarios.store import ResultsStore
from repro.warehouse import campaigns, ingest_store, open_warehouse

_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _make_store(root, campaign_runs, tag):
    store = ResultsStore(root)
    store.begin_staging()
    for i in range(campaign_runs):
        run_id = f"{i:03d}_{tag}_s{i}"
        store.stage_run(run_id, {
            "run_id": run_id,
            "scenario": {"name": tag, "seed": i,
                         "hil": {"slots_per_frame": 50}},
            "metrics": {"scenario": tag, "seed": i, "value": float(i)},
        })
    store.commit_staged()
    store.save_summary({"total_runs": campaign_runs})


def _ingest_cli(db, store_root, tenant, backend):
    env = dict(os.environ, PYTHONPATH=_SRC)
    return subprocess.Popen(
        [sys.executable, "-m", "repro.warehouse", "ingest",
         "--db", str(db), "--backend", backend, str(store_root),
         "--tenant", tenant],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True)


@pytest.mark.parametrize("backend", ["sqlite", "jsonl"])
def test_two_processes_ingest_simultaneously(tmp_path, backend):
    n = 60
    _make_store(tmp_path / "camp_a", n, "alpha")
    _make_store(tmp_path / "camp_b", n, "beta")
    db = tmp_path / "wh"
    # Seed the warehouse first so both children agree on the backend
    # and neither races the initial directory layout.
    with open_warehouse(db, backend=backend):
        pass
    procs = [_ingest_cli(db, tmp_path / "camp_a", "alice", backend),
             _ingest_cli(db, tmp_path / "camp_b", "bob", backend)]
    for proc in procs:
        out, err = proc.communicate(timeout=120)
        assert proc.returncode == 0, (out, err)
    with open_warehouse(db) as wh:
        assert wh.backend_name == backend
        assert wh.counts()["runs"] == 2 * n
        assert wh.counts()["summaries"] == 2
        catalog = {(e["tenant"], e["campaign"]): e["runs"]
                   for e in campaigns(wh)}
        assert catalog == {("alice", "camp_a"): n, ("bob", "camp_b"): n}


@pytest.mark.parametrize("backend", ["sqlite", "jsonl"])
def test_reingest_after_concurrent_load_is_noop(tmp_path, backend):
    _make_store(tmp_path / "camp_a", 10, "alpha")
    with open_warehouse(tmp_path / "wh", backend=backend) as wh:
        report = ingest_store(wh, tmp_path / "camp_a", tenant="alice")
        assert report.inserted == 11
    again = ingest_store(tmp_path / "wh", tmp_path / "camp_a",
                         tenant="alice")
    assert again.inserted == 0 and again.duplicates == 11


@pytest.mark.parametrize("backend", ["sqlite", "jsonl"])
def test_same_store_raced_by_two_processes_stays_exactly_once(
        tmp_path, backend):
    """Both children ingest the *same* store under the same tenant:
    content digests make the second writer's rows duplicates, never
    double-counted rows."""
    n = 40
    _make_store(tmp_path / "camp_a", n, "alpha")
    db = tmp_path / "wh"
    with open_warehouse(db, backend=backend):
        pass
    procs = [_ingest_cli(db, tmp_path / "camp_a", "alice", backend)
             for _ in range(2)]
    outputs = []
    for proc in procs:
        out, err = proc.communicate(timeout=120)
        assert proc.returncode == 0, (out, err)
        outputs.append(out)
    with open_warehouse(db) as wh:
        assert wh.counts() == {"runs": n, "summaries": 1}
    # Between the two children every row was written exactly once:
    # inserted totals across both processes equal one store's rows.
    assert sum(_inserted_from_describe(out) for out in outputs) == n + 1


def _inserted_from_describe(out: str) -> int:
    # IngestReport.describe() lines look like
    # "<source>: 40 run(s) 1 summary 41 duplicate(s) skipped".
    import re

    runs = re.search(r"(\d+) run\(s\)", out)
    summary = re.search(r"(\d+) summary", out)
    return (int(runs.group(1)) if runs else 0) \
        + (int(summary.group(1)) if summary else 0)
