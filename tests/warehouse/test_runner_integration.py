"""The acceptance criterion end-to-end: two independently produced
campaign stores -- one local ``CampaignRunner``, one distributed via
``LocalCluster`` -- stream into one warehouse at commit time, and the
cross-campaign queries return per-campaign aggregates byte-identical
to each store's own ``summarize()`` output."""

import json

import pytest

from repro.dist import LocalCluster
from repro.scenarios import CampaignRunner, ResultsStore, Scenario
from repro.scenarios.stock import fast_hil
from repro.warehouse import campaign_summary, campaigns, open_warehouse


def _grid(n=4, duration_sec=3.0):
    return [Scenario(f"wh-{i % 2}", hil=fast_hil(), seed=i,
                     duration_sec=duration_sec) for i in range(n)]


@pytest.fixture(scope="module")
def two_campaign_warehouse(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("wh_e2e")
    wh_dir = tmp / "wh"
    grid = _grid(4)
    local = CampaignRunner(parallel=False,
                           results_dir=str(tmp / "camp_local"),
                           warehouse=str(wh_dir),
                           tenant="alice").run(grid)
    with LocalCluster(n_workers=2, slots=2) as cluster:
        cluster.wait_for_workers()
        dist = cluster.runner(results_dir=str(tmp / "camp_dist"),
                              warehouse=str(wh_dir),
                              tenant="bob").run(grid)
    assert not dist.failed
    return tmp, wh_dir, local, dist


def test_both_campaigns_ingested_under_their_tenants(
        two_campaign_warehouse):
    _tmp, wh_dir, local, dist = two_campaign_warehouse
    with open_warehouse(wh_dir) as wh:
        catalog = {(e["tenant"], e["campaign"]): e for e in campaigns(wh)}
    assert set(catalog) == {("alice", "camp_local"), ("bob", "camp_dist")}
    for entry in catalog.values():
        assert entry["runs"] == 4 and entry["failed"] == 0
        assert entry["scenarios"] == ["wh-0", "wh-1"]
        assert entry["has_summary"]


def test_warehouse_summaries_byte_identical_to_stores(
        two_campaign_warehouse):
    tmp, wh_dir, local, dist = two_campaign_warehouse
    with open_warehouse(wh_dir) as wh:
        for campaign, store_dir in (("camp_local", tmp / "camp_local"),
                                    ("camp_dist", tmp / "camp_dist")):
            from_wh = campaign_summary(wh, campaign)
            from_store = ResultsStore(store_dir).load_summary()
            assert json.dumps(from_wh, sort_keys=True) == \
                json.dumps(from_store, sort_keys=True)
    # ... and both equal the in-memory result summaries.
    assert json.dumps(local.summary, sort_keys=True) == \
        json.dumps(dist.summary, sort_keys=True)


def test_warehouse_requires_results_dir():
    with pytest.raises(ValueError, match="results_dir"):
        CampaignRunner(warehouse="/tmp/nowhere")
