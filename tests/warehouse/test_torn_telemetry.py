"""Torn trailing lines in ``metrics.jsonl`` (the satellite hardening).

``save_metrics_jsonl`` writes atomically, but a store copied or
truncated mid-write (crash during a backup, a torn rsync) can leave a
half-line at the tail.  Readers must skip-and-count, not raise, and
the warehouse ingester must surface the skip count."""

import json

from repro.scenarios.store import ResultsStore
from repro.warehouse import ingest_store, open_warehouse, telemetry_totals

from test_warehouse import make_store


def _truncate_last_line(path, keep_chars=12):
    text = path.read_text()
    lines = text.splitlines(keepends=True)
    lines[-1] = lines[-1][:keep_chars]  # torn mid-object, no newline
    path.write_text("".join(lines))


def test_load_metrics_jsonl_skips_and_counts_torn_tail(tmp_path):
    store = make_store(tmp_path / "camp", 3)
    _truncate_last_line(store.root / "metrics.jsonl")
    rows, skipped = store.load_metrics_jsonl_counted()
    assert len(rows) == 2 and skipped == 1
    # The convenience reader keeps its old shape.
    assert store.load_metrics_jsonl() == rows


def test_interior_garbage_also_skipped(tmp_path):
    store = make_store(tmp_path / "camp", 2)
    path = store.root / "metrics.jsonl"
    lines = path.read_text().splitlines()
    path.write_text("\n".join([lines[0], '{"torn": ', "", lines[1]]) + "\n")
    rows, skipped = store.load_metrics_jsonl_counted()
    assert len(rows) == 2 and skipped == 1  # blank lines aren't errors


def test_missing_file_is_empty_not_an_error(tmp_path):
    store = ResultsStore(tmp_path / "camp")
    assert store.load_metrics_jsonl_counted() == ([], 0)


def test_ingest_surfaces_skip_count(tmp_path):
    store = make_store(tmp_path / "camp", 4)
    _truncate_last_line(store.root / "metrics.jsonl")
    report = ingest_store(tmp_path / "wh", tmp_path / "camp")
    assert report.telemetry == 3
    assert report.telemetry_skipped == 1
    assert "malformed" in report.describe()
    with open_warehouse(tmp_path / "wh") as wh:
        totals = telemetry_totals(wh)
        assert totals["repro_campaign_runs_total"] == 3


def test_intact_file_round_trips_exactly(tmp_path):
    store = make_store(tmp_path / "camp", 3)
    rows, skipped = store.load_metrics_jsonl_counted()
    assert skipped == 0
    raw = [json.loads(line) for line in
           (store.root / "metrics.jsonl").read_text().splitlines()]
    assert rows == raw
