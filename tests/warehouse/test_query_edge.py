"""The read-only warehouse query edge on the obs MetricsServer."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs.http import MetricsServer
from repro.obs.metrics import MetricsRegistry
from repro.warehouse import ingest_snapshots, ingest_store, open_warehouse

from test_warehouse import make_store


def _get(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, json.loads(response.read())


@pytest.fixture()
def edge(tmp_path):
    make_store(tmp_path / "camp_a", 4)
    with open_warehouse(tmp_path / "wh") as wh:
        ingest_store(wh, tmp_path / "camp_a", tenant="alice")
        ingest_snapshots(wh, [(1, {"optimized": {"m_per_sec": 100.0}}),
                              (2, {"optimized": {"m_per_sec": 90.0}})])
    with MetricsServer(MetricsRegistry(), port=0,
                       warehouse=str(tmp_path / "wh")) as server:
        yield server


def test_campaigns_endpoint(edge):
    status, payload = _get(f"{edge.url}/campaigns")
    assert status == 200
    assert len(payload["campaigns"]) == 1
    entry = payload["campaigns"][0]
    assert entry["campaign"] == "camp_a" and entry["tenant"] == "alice"
    assert entry["runs"] == 4


def test_query_endpoint_filters_and_aggregates(edge):
    status, payload = _get(
        f"{edge.url}/query?group_by=scenario&meter=failover_latency_sec"
        f"&percentiles=50&tenant=alice")
    assert status == 200
    groups = {g["by"]["scenario"]: g for g in payload["groups"]}
    assert set(groups) == {"alpha", "beta"}
    assert all(g["runs"] == 2 for g in groups.values())
    assert groups["alpha"]["stats"]["p50"] == 1.0

    # Unknown filter fields are a client error, not a 500.
    with pytest.raises(urllib.error.HTTPError) as err:
        _get(f"{edge.url}/query?group_by=bogus")
    assert err.value.code == 400


def test_trend_endpoint(edge):
    status, payload = _get(f"{edge.url}/trend?meter=m_per_sec")
    assert status == 200
    assert payload["meters"]["m_per_sec"] == [
        {"bench": 1, "value": 100.0}, {"bench": 2, "value": 90.0}]


def test_metrics_endpoints_still_served(edge):
    with urllib.request.urlopen(f"{edge.url}/healthz", timeout=10) as r:
        assert r.status == 200
    with urllib.request.urlopen(f"{edge.url}/metrics", timeout=10) as r:
        assert r.status == 200


def test_unmounted_edge_is_404(tmp_path):
    with MetricsServer(MetricsRegistry(), port=0) as server:
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(f"{server.url}/campaigns")
        assert err.value.code == 404


def test_in_memory_warehouse_rejected():
    wh = open_warehouse(":memory:")
    with pytest.raises(ValueError, match="on-disk"):
        MetricsServer(MetricsRegistry(), port=0, warehouse=wh)
    wh.close()
