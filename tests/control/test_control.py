"""PID, second-order filter, compiled control law."""

import math

import pytest

from repro.control.compiler import (
    SLOT_FILTERED,
    SLOT_INPUT,
    SLOT_INTEGRAL,
    SLOT_OUTPUT,
    SLOT_SETPOINT,
    compile_filtered_pid,
    compile_passthrough,
)
from repro.control.controller import ControlLawConfig, FilteredPidController
from repro.control.filters import (
    SecondOrderLowpass,
    lowpass_coefficients,
)
from repro.control.pid import PidController, PidGains
from repro.evm.interpreter import Interpreter


class TestPid:
    def test_proportional_action(self):
        pid = PidController(PidGains(kp=2.0), dt_sec=0.1, out_min=-100,
                            out_max=100)
        assert pid.step(5.0) == pytest.approx(10.0)

    def test_integral_accumulates(self):
        pid = PidController(PidGains(kp=0.0, ki=1.0), dt_sec=0.5,
                            out_min=-100, out_max=100)
        pid.step(2.0)
        assert pid.step(2.0) == pytest.approx(2.0)  # integral = 2*0.5*2

    def test_derivative_kick_suppressed_first_step(self):
        pid = PidController(PidGains(kp=0.0, kd=1.0), dt_sec=0.1,
                            out_min=-100, out_max=100)
        assert pid.step(5.0) == 0.0
        assert pid.step(6.0) == pytest.approx(10.0)

    def test_output_clamping(self):
        pid = PidController(PidGains(kp=100.0), dt_sec=0.1, out_min=0,
                            out_max=100)
        assert pid.step(50.0) == 100.0
        assert pid.step(-50.0) == 0.0

    def test_anti_windup(self):
        pid = PidController(PidGains(kp=0.0, ki=1.0), dt_sec=1.0, out_min=0,
                            out_max=100, integral_min=-5, integral_max=5)
        for _ in range(100):
            pid.step(10.0)
        assert pid.integral == 5.0

    def test_reset(self):
        pid = PidController(PidGains(kp=1.0, ki=1.0), dt_sec=0.1)
        pid.step(1.0)
        pid.reset()
        assert pid.integral == 0.0
        assert pid.prev_error is None

    def test_validation(self):
        with pytest.raises(ValueError):
            PidController(PidGains(1.0), dt_sec=0.0)
        with pytest.raises(ValueError):
            PidController(PidGains(1.0), dt_sec=0.1, out_min=5, out_max=1)


class TestFilter:
    def test_dc_gain_is_unity(self):
        lp = SecondOrderLowpass.from_cutoff(0.5, 0.1)
        y = 0.0
        for _ in range(500):
            y = lp.step(10.0)
        assert y == pytest.approx(10.0, rel=1e-3)

    def test_attenuates_high_frequency(self):
        dt = 0.05
        lp = SecondOrderLowpass.from_cutoff(0.2, dt)
        # 5 Hz square-ish dither around 10 after settling.
        for _ in range(400):
            lp.step(10.0)
        outputs = []
        for i in range(200):
            x = 10.0 + (5.0 if i % 2 == 0 else -5.0)
            outputs.append(lp.step(x))
        ripple = max(outputs) - min(outputs)
        assert ripple < 1.0  # 10-unit input swing crushed

    def test_settle_to_removes_transient(self):
        lp = SecondOrderLowpass.from_cutoff(0.5, 0.1)
        lp.settle_to(42.0)
        assert lp.step(42.0) == pytest.approx(42.0, rel=1e-9)

    def test_coefficient_validation(self):
        with pytest.raises(ValueError):
            lowpass_coefficients(0.0, 0.1)
        with pytest.raises(ValueError):
            lowpass_coefficients(10.0, 0.1)  # at/above Nyquist

    def test_stability(self):
        """Poles inside the unit circle: a2 < 1 and |a1| < 1 + a2."""
        for cutoff, dt in ((0.05, 0.25), (0.5, 0.25), (1.0, 0.25)):
            c = lowpass_coefficients(cutoff, dt)
            assert abs(c.a2) < 1.0
            assert abs(c.a1) < 1.0 + c.a2


class TestControlLawConfig:
    def _config(self):
        return ControlLawConfig(kp=-3.0, ki=-0.01, kd=0.0, dt_sec=0.25,
                                setpoint=50.0, filter_cutoff_hz=0.05,
                                integral_min=-10000.0,
                                integral_max=10000.0)

    def test_initial_memory_is_bumpless(self):
        config = self._config()
        memory = list(config.initial_memory(50.0, 11.48))
        controller = FilteredPidController(config, memory)
        assert controller.step(50.0) == pytest.approx(11.48, abs=1e-6)

    def test_reference_regulates_integrator_plant(self):
        """Closed loop with a simple level integrator converges."""
        config = self._config()
        controller = FilteredPidController(
            config, list(config.initial_memory(40.0, 11.48)))
        level = 40.0
        inflow = 12.67
        cv = 110.4
        for _ in range(4000):
            valve = controller.step(level)
            outflow = cv * valve / 100.0
            level += (inflow - outflow) * 0.25 * 100.0 / 12000.0
            level = max(0.0, min(100.0, level))
        assert level == pytest.approx(50.0, abs=1.0)

    def test_compile_and_reference_agree_with_noise(self):
        import random

        config = self._config()
        program = config.compile("law")
        reference = FilteredPidController(config)
        interp = Interpreter()
        memory = list(reference.memory)
        rng = random.Random(3)
        for _ in range(200):
            x = 50.0 + rng.gauss(0, 2)
            expected = reference.step(x)
            memory[SLOT_INPUT] = x
            interp.execute(program, memory)
            assert memory[SLOT_OUTPUT] == pytest.approx(expected, abs=1e-9)

    def test_filtered_value_exposed(self):
        config = self._config()
        program = config.compile("law")
        interp = Interpreter()
        memory = list(config.initial_memory(50.0, 11.48))
        memory[SLOT_INPUT] = 60.0
        interp.execute(program, memory)
        assert 50.0 < memory[SLOT_FILTERED] < 60.0  # lagged


class TestPassthrough:
    def test_gain_offset(self):
        program = compile_passthrough("p", gain=2.0, offset=1.0)
        interp = Interpreter()
        memory = [0.0] * 16
        memory[SLOT_INPUT] = 10.0
        interp.execute(program, memory)
        assert memory[SLOT_OUTPUT] == pytest.approx(21.0)

    def test_program_fits_slot_budget(self):
        config = ControlLawConfig(kp=-3.0, ki=-0.01, kd=0.1, dt_sec=0.25,
                                  setpoint=50.0, filter_cutoff_hz=0.05)
        program = config.compile("law")
        # Control-law capsules must disseminate in a handful of fragments.
        assert program.size_bytes < 300
