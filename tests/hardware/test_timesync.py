"""AM time synchronization: jitter bounds, drift, misses (claim F2)."""

import random

import pytest

from repro.hardware.timesync import AmTimeSync, NodeClock, TimeSyncSpec
from repro.sim.clock import MS, SEC, US


class TestNodeClock:
    def test_perfect_clock_tracks_global(self, engine):
        clock = NodeClock(engine, drift_ppm=0.0)
        engine.schedule(SEC, lambda: None)
        engine.run()
        assert clock.local_time() == engine.now
        assert clock.offset_error() == 0

    def test_drift_accumulates(self, engine):
        clock = NodeClock(engine, drift_ppm=100.0)
        engine.schedule(10 * SEC, lambda: None)
        engine.run()
        # 100 ppm over 10 s = 1 ms fast
        assert clock.offset_error() == pytest.approx(1000, abs=2)

    def test_sync_collapses_drift(self, engine):
        clock = NodeClock(engine, drift_ppm=100.0)
        engine.schedule(10 * SEC, lambda: clock.apply_sync(25))
        engine.run()
        assert clock.offset_error() == 25


class TestAmTimeSync:
    def _build(self, engine, n_nodes=5, **spec_kwargs):
        sync = AmTimeSync(engine, random.Random(7),
                          TimeSyncSpec(**spec_kwargs))
        clocks = {}
        for i in range(n_nodes):
            clock = NodeClock(engine, drift_ppm=10.0)
            sync.register(f"n{i}", clock)
            clocks[f"n{i}"] = clock
        return sync, clocks

    def test_pulses_fire_periodically(self, engine):
        sync, clocks = self._build(engine)
        sync.start()
        engine.run_until(5 * SEC)
        assert sync.pulse_count == 5
        assert all(c.sync_count == 5 for c in clocks.values())

    def test_jitter_under_150us(self, engine):
        """The paper's sub-150 us synchronization jitter claim."""
        sync, clocks = self._build(engine, n_nodes=10)
        sync.start()
        engine.run_until(100 * SEC)
        assert len(sync.jitter_samples) == 1000
        assert sync.max_abs_jitter() < 150 * US

    def test_jitter_is_nonzero(self, engine):
        sync, _clocks = self._build(engine)
        sync.start()
        engine.run_until(20 * SEC)
        assert any(j != 0 for j in sync.jitter_samples)

    def test_missed_pulses(self, engine):
        sync, clocks = self._build(engine, miss_probability=0.5)
        sync.start()
        engine.run_until(100 * SEC)
        total_missed = sum(c.missed_count for c in clocks.values())
        total_received = sum(c.sync_count for c in clocks.values())
        assert total_missed > 0
        assert total_received > 0
        assert total_missed + total_received == 5 * 100

    def test_duplicate_registration_rejected(self, engine):
        sync, _ = self._build(engine, n_nodes=1)
        with pytest.raises(ValueError):
            sync.register("n0", NodeClock(engine))

    def test_stop_halts_pulses(self, engine):
        sync, _ = self._build(engine)
        sync.start()
        engine.run_until(2 * SEC)
        sync.stop()
        engine.run_until(10 * SEC)
        assert sync.pulse_count == 2

    def test_clock_offsets_stay_bounded_with_sync(self, engine):
        """With 1 s pulses and 10 ppm drift, offsets stay ~ jitter bound."""
        sync, clocks = self._build(engine, n_nodes=5)
        sync.start()
        worst = 0

        def probe():
            nonlocal worst
            for clock in clocks.values():
                worst = max(worst, abs(clock.offset_error()))
            engine.schedule(500 * MS, probe)

        engine.schedule(750 * MS, probe)
        engine.run_until(60 * SEC)
        assert worst < 150 * US + 20  # jitter + sub-pulse drift
