"""Hardware models: MCU memory, radio energy, battery, sensors, node."""

import random

import pytest

from repro.hardware.battery import Battery, BatteryDepleted, BatterySpec
from repro.hardware.mcu import Mcu, McuSpec, MemoryExhausted
from repro.hardware.node import FireFlyNode, NodePosition
from repro.hardware.radio import Radio, RadioSpec, RadioState
from repro.hardware.sensors import SensorDisabled, standard_sensor_suite
from repro.sim.clock import MS, SEC


class TestMcu:
    def test_firefly_defaults(self):
        mcu = Mcu()
        assert mcu.spec.ram_bytes == 8 * 1024
        assert mcu.spec.rom_bytes == 128 * 1024

    def test_cycle_time_conversion(self):
        mcu = Mcu()
        # 7372800 cycles = 1 second
        assert mcu.cycles_to_ticks(7_372_800) == SEC
        assert mcu.cycles_to_ticks(0) == 0
        assert mcu.cycles_to_ticks(1) == 1  # rounds up to a tick

    def test_ticks_to_cycles_roundtrip_scale(self):
        mcu = Mcu()
        assert mcu.ticks_to_cycles(SEC) == 7_372_800

    def test_execute_accounts(self):
        mcu = Mcu()
        mcu.execute(1000)
        mcu.execute(500)
        assert mcu.cycles_executed == 1500

    def test_ram_allocation(self):
        mcu = Mcu()
        mcu.ram.allocate("stack:a", 1024)
        assert mcu.ram.used == 1024
        assert mcu.ram.free == 8 * 1024 - 1024

    def test_ram_exhaustion(self):
        mcu = Mcu()
        with pytest.raises(MemoryExhausted):
            mcu.ram.allocate("huge", 9 * 1024)

    def test_duplicate_region_rejected(self):
        mcu = Mcu()
        mcu.ram.allocate("x", 10)
        with pytest.raises(ValueError):
            mcu.ram.allocate("x", 10)

    def test_release_frees(self):
        mcu = Mcu()
        mcu.ram.allocate("x", 4096)
        mcu.ram.release("x")
        assert mcu.ram.free == 8 * 1024

    def test_resize(self):
        mcu = Mcu()
        mcu.rom.allocate("capsule:pid", 100)
        mcu.rom.resize("capsule:pid", 200)
        assert mcu.rom.used == 200
        with pytest.raises(KeyError):
            mcu.rom.resize("missing", 10)


class TestBattery:
    def test_draw_integrates_charge(self, engine):
        battery = Battery(engine)
        battery.draw(1.0, SEC)  # 1 A for 1 s = 1 C
        assert battery.charge_drawn == pytest.approx(1.0)

    def test_remaining_fraction(self, engine):
        spec = BatterySpec(capacity_coulombs=100.0)
        battery = Battery(engine, spec)
        battery.draw(1.0, 50 * SEC)
        assert battery.remaining_fraction == pytest.approx(0.5)

    def test_depletion_flag(self, engine):
        battery = Battery(engine, BatterySpec(capacity_coulombs=1.0))
        battery.draw(1.0, 2 * SEC)
        assert battery.depleted

    def test_depletion_raise(self, engine):
        battery = Battery(engine, BatterySpec(capacity_coulombs=1.0),
                          raise_when_empty=True)
        with pytest.raises(BatteryDepleted):
            battery.draw(1.0, 2 * SEC)

    def test_solar_offsets_draw(self, engine):
        spec = BatterySpec(capacity_coulombs=100.0, solar_current_a=0.5)
        battery = Battery(engine, spec)
        battery.draw(1.0, SEC)
        assert battery.charge_drawn == pytest.approx(0.5)

    def test_lifetime_projection(self, engine):
        battery = Battery(engine)
        engine.schedule(SEC, lambda: battery.draw(1e-3, SEC))
        engine.run()
        # 1 mA average over 1 s window
        years = battery.projected_lifetime_years()
        expected_hours = (battery.spec.capacity_coulombs / 1e-3) / 3600.0
        assert years == pytest.approx(expected_hours / (24 * 365.25),
                                      rel=1e-6)

    def test_no_draw_infinite_lifetime(self, engine):
        assert Battery(engine).projected_lifetime_years() == float("inf")

    def test_negative_rejected(self, engine):
        battery = Battery(engine)
        with pytest.raises(ValueError):
            battery.draw(-1.0, 10)
        with pytest.raises(ValueError):
            battery.draw(1.0, -10)


class TestRadio:
    def test_starts_off(self, engine):
        battery = Battery(engine)
        radio = Radio(engine, battery)
        assert radio.state is RadioState.OFF

    def test_airtime_matches_bitrate(self, engine):
        radio = Radio(engine, Battery(engine))
        # 6-byte PHY header + 25 bytes = 31 bytes = 248 bits at 250 kbps
        assert radio.airtime(25) == (31 * 8 * SEC) // 250_000

    def test_state_time_accounting(self, engine):
        battery = Battery(engine)
        radio = Radio(engine, battery)
        radio.set_state(RadioState.RX)
        engine.schedule(10 * MS, radio.set_state, RadioState.OFF)
        engine.run()
        assert radio.state_time(RadioState.RX) == 10 * MS

    def test_rx_draws_more_than_off(self, engine):
        def run_with(state):
            eng = type(engine)()
            battery = Battery(eng)
            radio = Radio(eng, battery)
            radio.set_state(state)
            eng.schedule(SEC, radio.set_state, RadioState.OFF)
            eng.run()
            radio._settle()
            return battery.charge_drawn

        assert run_with(RadioState.RX) > run_with(RadioState.OFF) * 100

    def test_duty_cycle(self, engine):
        radio = Radio(engine, Battery(engine))
        radio.set_state(RadioState.RX)
        engine.schedule(100 * MS, radio.set_state, RadioState.OFF)
        engine.schedule(1000 * MS, lambda: None)
        engine.run()
        assert radio.duty_cycle() == pytest.approx(0.1, abs=0.01)


class TestSensors:
    def test_suite_has_all_six(self, engine):
        suite = standard_sensor_suite(engine, Battery(engine))
        assert sorted(suite) == ["accel", "audio", "light", "pir",
                                 "temperature", "voltage"]

    def test_sample_tracks_environment(self, engine):
        suite = standard_sensor_suite(engine, Battery(engine),
                                      random.Random(1))
        sensor = suite["temperature"]
        sensor.attach_environment(lambda t: 25.0)
        readings = [sensor.sample() for _ in range(50)]
        assert abs(sum(readings) / 50 - 25.0) < 0.2

    def test_sample_clamped_to_range(self, engine):
        suite = standard_sensor_suite(engine, Battery(engine))
        sensor = suite["pir"]
        sensor.attach_environment(lambda t: 99.0)
        assert sensor.sample() == 1.0

    def test_disabled_sensor_raises(self, engine):
        suite = standard_sensor_suite(engine, Battery(engine))
        sensor = suite["light"]
        sensor.disable()
        with pytest.raises(SensorDisabled):
            sensor.sample()
        sensor.enable()
        sensor.sample()

    def test_sampling_costs_energy(self, engine):
        battery = Battery(engine)
        suite = standard_sensor_suite(engine, battery)
        before = battery.charge_drawn
        suite["audio"].sample()
        assert battery.charge_drawn > before


class TestNode:
    def test_composition(self, engine):
        node = FireFlyNode(engine, "x", position=NodePosition(3.0, 4.0))
        assert node.node_id == "x"
        assert node.position.distance_to(NodePosition(0, 0)) == 5.0
        assert node.mcu.spec.name == "ATmega1281"
        assert len(node.sensors) == 6

    def test_without_sensors(self, engine):
        node = FireFlyNode(engine, "x", with_sensors=False)
        assert node.sensors == {}
        with pytest.raises(KeyError):
            node.sensor("light")

    def test_fail_turns_radio_off(self, engine):
        node = FireFlyNode(engine, "x")
        node.radio.set_state(RadioState.RX)
        node.fail()
        assert node.failed
        assert node.radio.state is RadioState.OFF
        node.recover()
        assert not node.failed
