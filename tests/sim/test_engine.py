"""Engine: ordering, cancellation, run windows, determinism."""

import pytest

from repro.sim.clock import MS, SEC, SimClock, format_time
from repro.sim.engine import Engine, SimulationError


class TestClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0

    def test_advance(self):
        clock = SimClock()
        clock.advance_to(5)
        assert clock.now == 5

    def test_cannot_move_backwards(self):
        clock = SimClock(10)
        with pytest.raises(ValueError):
            clock.advance_to(5)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(-1)

    def test_now_seconds(self):
        clock = SimClock(1_500_000)
        assert clock.now_seconds == pytest.approx(1.5)

    def test_format_time(self):
        assert format_time(1_500_000) == "1.500000s"
        assert format_time(-250) == "-0.000250s"


class TestScheduling:
    def test_single_event(self, engine):
        fired = []
        engine.schedule(100, fired.append, 1)
        engine.run()
        assert fired == [1]
        assert engine.now == 100

    def test_time_order(self, engine):
        order = []
        engine.schedule(300, order.append, "c")
        engine.schedule(100, order.append, "a")
        engine.schedule(200, order.append, "b")
        engine.run()
        assert order == ["a", "b", "c"]

    def test_fifo_within_same_tick(self, engine):
        order = []
        for tag in "abcde":
            engine.schedule(50, order.append, tag)
        engine.run()
        assert order == list("abcde")

    def test_priority_breaks_ties(self, engine):
        order = []
        engine.schedule(50, order.append, "low", priority=5)
        engine.schedule(50, order.append, "high", priority=-5)
        engine.run()
        assert order == ["high", "low"]

    def test_negative_delay_rejected(self, engine):
        with pytest.raises(SimulationError):
            engine.schedule(-1, lambda: None)

    def test_schedule_at_past_rejected(self, engine):
        engine.schedule(100, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at(50, lambda: None)

    def test_events_can_schedule_events(self, engine):
        seen = []

        def chain(n):
            seen.append(n)
            if n < 3:
                engine.schedule(10, chain, n + 1)

        engine.schedule(10, chain, 0)
        engine.run()
        assert seen == [0, 1, 2, 3]
        assert engine.now == 40


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, engine):
        fired = []
        handle = engine.schedule(100, fired.append, 1)
        handle.cancel()
        engine.run()
        assert fired == []

    def test_cancel_is_idempotent(self, engine):
        handle = engine.schedule(100, lambda: None)
        handle.cancel()
        handle.cancel()
        assert not handle.pending

    def test_pending_lifecycle(self, engine):
        handle = engine.schedule(100, lambda: None)
        assert handle.pending
        engine.run()
        assert not handle.pending
        assert handle.dispatched


class TestRunWindows:
    def test_run_until_stops_at_boundary(self, engine):
        fired = []
        engine.schedule(100, fired.append, "early")
        engine.schedule(5000, fired.append, "late")
        engine.run_until(1000)
        assert fired == ["early"]
        assert engine.now == 1000

    def test_run_until_includes_boundary_events(self, engine):
        fired = []
        engine.schedule(1000, fired.append, "edge")
        engine.run_until(1000)
        assert fired == ["edge"]

    def test_run_for(self, engine):
        engine.schedule(100, lambda: None)
        engine.run_for(50)
        assert engine.now == 50
        engine.run_for(100)
        assert engine.now == 150

    def test_run_until_past_rejected(self, engine):
        engine.run_until(100)
        with pytest.raises(SimulationError):
            engine.run_until(50)

    def test_max_events(self, engine):
        for _ in range(10):
            engine.schedule(10, lambda: None)
        dispatched = engine.run(max_events=4)
        assert dispatched == 4
        assert engine.pending_events == 6

    def test_leftover_events_run_later(self, engine):
        fired = []
        engine.schedule(2000, fired.append, 1)
        engine.run_until(1000)
        assert fired == []
        engine.run_until(3000)
        assert fired == [1]

    def test_dispatched_count(self, engine):
        for _ in range(5):
            engine.schedule(1, lambda: None)
        engine.run()
        assert engine.dispatched_count == 5


class TestDeterminism:
    def test_identical_runs_identical_order(self):
        def run_once():
            engine = Engine()
            order = []
            for i in range(100):
                engine.schedule((i * 37) % 50, order.append, i)
            engine.run()
            return order

        assert run_once() == run_once()
