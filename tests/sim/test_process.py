"""Processes: delays, signals, timeouts, kill semantics."""

import pytest

from repro.sim.engine import Engine, SimulationError
from repro.sim.process import TIMEOUT, Delay, Process, Signal, WaitSignal


class TestDelay:
    def test_sequence_of_delays(self, engine):
        times = []

        def worker():
            for _ in range(3):
                yield Delay(100)
                times.append(engine.now)

        Process(engine, worker())
        engine.run()
        assert times == [100, 200, 300]

    def test_zero_delay_resumes_same_time(self, engine):
        times = []

        def worker():
            yield Delay(0)
            times.append(engine.now)

        Process(engine, worker())
        engine.run()
        assert times == [0]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Delay(-1)

    def test_result_captured(self, engine):
        def worker():
            yield Delay(10)
            return 42

        proc = Process(engine, worker())
        engine.run()
        assert proc.result == 42
        assert not proc.alive


class TestSignal:
    def test_signal_payload_delivered(self, engine):
        sig = Signal("ready")
        got = []

        def waiter():
            payload = yield WaitSignal(sig)
            got.append(payload)

        Process(engine, waiter())
        engine.schedule(50, sig.fire, "hello")
        engine.run()
        assert got == ["hello"]

    def test_signal_wakes_all_waiters(self, engine):
        sig = Signal()
        woken = []

        def waiter(name):
            yield WaitSignal(sig)
            woken.append(name)

        Process(engine, waiter("a"))
        Process(engine, waiter("b"))
        engine.schedule(10, sig.fire, None)
        engine.run()
        assert sorted(woken) == ["a", "b"]

    def test_signal_does_not_buffer(self, engine):
        sig = Signal()
        got = []
        # Fire before anyone waits: nothing is delivered later.
        sig.fire("lost")

        def late_waiter():
            payload = yield WaitSignal(sig, timeout=100)
            got.append(payload)

        Process(engine, late_waiter())
        engine.run()
        assert got == [TIMEOUT]

    def test_unsubscribe(self):
        sig = Signal()
        calls = []
        unsub = sig.wait(calls.append)
        unsub()
        sig.fire(1)
        assert calls == []
        unsub()  # idempotent

    def test_fire_count(self):
        sig = Signal()
        sig.fire(1)
        sig.fire(2)
        assert sig.fire_count == 2
        assert sig.last_payload == 2


class TestTimeout:
    def test_timeout_returns_sentinel(self, engine):
        sig = Signal()
        got = []

        def waiter():
            result = yield WaitSignal(sig, timeout=100)
            got.append((result, engine.now))

        Process(engine, waiter())
        engine.run()
        assert got == [(TIMEOUT, 100)]
        assert not TIMEOUT  # falsy for easy checks

    def test_signal_beats_timeout(self, engine):
        sig = Signal()
        got = []

        def waiter():
            result = yield WaitSignal(sig, timeout=100)
            got.append(result)

        Process(engine, waiter())
        engine.schedule(50, sig.fire, "fast")
        engine.run()
        assert got == ["fast"]

    def test_no_double_resume(self, engine):
        sig = Signal()
        resumes = []

        def waiter():
            result = yield WaitSignal(sig, timeout=50)
            resumes.append(result)
            yield Delay(1000)

        Process(engine, waiter())
        engine.schedule(50, sig.fire, "same-tick")
        engine.run()
        assert len(resumes) == 1


class TestKill:
    def test_killed_process_stops(self, engine):
        progress = []

        def worker():
            while True:
                yield Delay(10)
                progress.append(engine.now)

        proc = Process(engine, worker())
        engine.schedule(35, proc.kill)
        engine.run()
        assert progress == [10, 20, 30]
        assert not proc.alive

    def test_kill_removes_signal_waiter(self, engine):
        sig = Signal()

        def worker():
            yield WaitSignal(sig)

        proc = Process(engine, worker())
        engine.run(max_events=1)
        assert sig.waiter_count == 1
        proc.kill()
        assert sig.waiter_count == 0

    def test_bad_yield_raises(self, engine):
        def worker():
            yield "not a request"

        Process(engine, worker())
        with pytest.raises(SimulationError):
            engine.run()


class TestBadYieldCleanup:
    """An unsupported yield must tear the process down fully *before* the
    error propagates: generator closed (finally blocks run), no stale
    signal waiter left behind, process dead for good."""

    def test_bad_yield_closes_generator(self, engine):
        cleaned = []

        def worker():
            try:
                yield Delay(10)
                yield object()
            finally:
                cleaned.append(True)

        proc = Process(engine, worker())
        with pytest.raises(SimulationError):
            engine.run()
        assert cleaned == [True]
        assert not proc.alive

    def test_bad_yield_after_signal_leaves_no_waiter(self, engine):
        sig = Signal("evt")

        def worker():
            yield WaitSignal(sig)
            yield "garbage"

        proc = Process(engine, worker())
        engine.schedule(5, sig.fire, "go")
        with pytest.raises(SimulationError):
            engine.run()
        assert sig.waiter_count == 0
        assert not proc.alive
        # A later firing must not resurrect the dead process.
        sig.fire("again")
        engine.run()
        assert not proc.alive

    def test_process_survivors_unaffected(self, engine):
        """The failing process dies; an unrelated one can keep running."""
        ticks = []

        def bad():
            yield 3.14

        def good():
            for _ in range(3):
                yield Delay(10)
                ticks.append(engine.now)

        Process(engine, good())
        Process(engine, bad())
        with pytest.raises(SimulationError):
            engine.run()
        engine.run()  # drain the survivor past the poisoned dispatch
        assert len(ticks) >= 1


class TestGenerationGuard:
    """The resume-token fast path: stale resumes are inert no-ops."""

    def test_kill_mid_delay_leaves_stale_event_inert(self, engine):
        progress = []

        def worker():
            while True:
                yield Delay(10)
                progress.append(engine.now)

        proc = Process(engine, worker())
        engine.schedule(25, proc.kill)
        dispatched = engine.run()
        assert progress == [10, 20]
        assert not proc.alive
        # The stale resume dispatched as a no-op instead of resuming.
        assert dispatched >= 4

    def test_reused_delay_instance(self, engine):
        """A single Delay object re-yielded every lap (the benchmark and
        several MAC loops do this) arms a fresh generation each time."""
        laps = []
        wait = Delay(7)

        def worker():
            for _ in range(5):
                yield wait
                laps.append(engine.now)

        Process(engine, worker())
        engine.run()
        assert laps == [7, 14, 21, 28, 35]

    def test_timeout_then_signal_single_resume(self, engine):
        sig = Signal()
        got = []

        def worker():
            got.append((yield WaitSignal(sig, timeout=50)))
            got.append((yield Delay(100)) or "delayed")

        Process(engine, worker())
        engine.schedule(60, sig.fire, "late")  # after the timeout won
        engine.run()
        assert got == [TIMEOUT, "delayed"]

    def test_kill_between_signal_and_resume(self, engine):
        """Signal fires (resume posted), then the process is killed in the
        same tick before the resume dispatches: the resume must be stale."""
        sig = Signal()
        resumed = []

        def worker():
            resumed.append((yield WaitSignal(sig)))

        proc = Process(engine, worker())

        def fire_then_kill():
            sig.fire("payload")   # posts the resume for this tick
            proc.kill()           # bumps the generation first

        engine.schedule(10, fire_then_kill)
        engine.run()
        assert resumed == []
        assert not proc.alive
