"""Hypothesis properties for the lazily-materialized trace.

The production ``Trace`` keeps raw tuples and materializes
``TraceEvent`` rows on demand; ``_EagerReference`` below is a verbatim
transcription of the pre-change eager implementation.  For arbitrary
event sequences and arbitrary view queries, every observable --
``events``/``count``/``series``/``last``/``len``/iteration/``dump`` --
must be byte-identical between the two.  A second property pins the
ring-capacity mode to "exactly the most recent ``capacity`` rows".
"""

from __future__ import annotations

import dataclasses
import json

from hypothesis import given, settings, strategies as st

from repro.sim.trace import Trace, TraceEvent


class _EagerReference:
    """The seed Trace: one TraceEvent allocated per record, eagerly."""

    def __init__(self) -> None:
        self._events: list[TraceEvent] = []

    def record(self, time, category, source, **data):
        self._events.append(TraceEvent(time=time, category=category,
                                       source=source, data=data))

    def __len__(self):
        return len(self._events)

    def __iter__(self):
        return iter(self._events)

    def events(self, category=None, source=None, since=None, until=None):
        out = []
        for event in self._events:
            if category is not None and not event.category.startswith(category):
                continue
            if source is not None and event.source != source:
                continue
            if since is not None and event.time < since:
                continue
            if until is not None and event.time > until:
                continue
            out.append(event)
        return out

    def count(self, category=None, source=None):
        return len(self.events(category=category, source=source))

    def series(self, category, key, source=None):
        return [(e.time, e.data[key])
                for e in self.events(category=category, source=source)
                if key in e.data]

    def last(self, category, source=None):
        matches = self.events(category=category, source=source)
        return matches[-1] if matches else None

    def dump(self, categories=None):
        rows = []
        for event in self._events:
            if categories is not None and not any(
                    event.category.startswith(c) for c in categories):
                continue
            rows.append(str(event))
        return "\n".join(rows)


_categories = st.sampled_from(
    ["mac.tx", "mac.rx", "mac", "medium.rx", "rtos.crash",
     "evm.failover", "evm.fault_detected", ""])
_sources = st.sampled_from(["n1", "n2", "gw", "ctrl_a", ""])
_data = st.dictionaries(
    st.sampled_from(["seq", "v", "dst", "kind"]),
    st.one_of(st.integers(-5, 5), st.floats(allow_nan=False,
                                            allow_infinity=False,
                                            min_value=-10, max_value=10),
              st.text(max_size=3)),
    max_size=3)
_records = st.lists(
    st.tuples(st.integers(min_value=0, max_value=1000), _categories,
              _sources, _data),
    max_size=40)
_queries = st.lists(
    st.tuples(st.one_of(st.none(), _categories),
              st.one_of(st.none(), _sources),
              st.one_of(st.none(), st.integers(0, 1000)),
              st.one_of(st.none(), st.integers(0, 1000))),
    max_size=6)


def _canon(events) -> str:
    return json.dumps([dataclasses.asdict(e) for e in events],
                      sort_keys=True, default=str)


@settings(max_examples=200, deadline=None)
@given(records=_records, queries=_queries,
       key=st.sampled_from(["seq", "v", "dst"]))
def test_lazy_trace_matches_eager_reference(records, queries, key):
    lazy, eager = Trace(), _EagerReference()
    for time, category, source, data in records:
        lazy.record(time, category, source, **data)
        eager.record(time, category, source, **data)
        # Interleave reads with writes: laziness must not skew views
        # taken mid-run.
        assert len(lazy) == len(eager)
    assert _canon(lazy) == _canon(eager)
    assert lazy.dump() == eager.dump()
    assert lazy.dump(["mac", "evm"]) == eager.dump(["mac", "evm"])
    for category, source, since, until in queries:
        assert _canon(lazy.events(category, source, since, until)) == \
            _canon(eager.events(category, source, since, until))
        assert lazy.count(category, source) == eager.count(category, source)
        if category is not None:
            assert lazy.last(category, source) == eager.last(category, source)
            assert lazy.series(category, key, source) == \
                eager.series(category, key, source)


@settings(max_examples=150, deadline=None)
@given(records=_records, capacity=st.integers(min_value=1, max_value=30))
def test_ring_retains_exactly_the_most_recent(records, capacity):
    ring, eager = Trace(capacity=capacity), _EagerReference()
    for time, category, source, data in records:
        ring.record(time, category, source, **data)
        eager.record(time, category, source, **data)
    tail = eager.events()[-capacity:]
    assert _canon(ring) == _canon(tail)
    assert len(ring) == len(tail)
    assert ring.dropped == max(0, len(records) - capacity)


@settings(max_examples=100, deadline=None)
@given(records=_records)
def test_subscribers_see_value_identical_events(records):
    lazy = Trace()
    seen: list[TraceEvent] = []
    unsubscribe = lazy.subscribe(seen.append)
    for time, category, source, data in records:
        lazy.record(time, category, source, **data)
    assert _canon(seen) == _canon(lazy.events())
    unsubscribe()
    lazy.record(0, "post.unsub", "n")
    assert len(seen) == len(records)
