"""RNG registry determinism and trace filtering."""

from repro.sim.rng import RngRegistry
from repro.sim.trace import Trace


class TestRngRegistry:
    def test_same_name_same_stream_object(self):
        reg = RngRegistry(1)
        assert reg.stream("a") is reg.stream("a")

    def test_reproducible_across_registries(self):
        a = RngRegistry(1).stream("medium")
        b = RngRegistry(1).stream("medium")
        assert [a.random() for _ in range(10)] == \
            [b.random() for _ in range(10)]

    def test_streams_independent_of_creation_order(self):
        reg1 = RngRegistry(1)
        reg1.stream("x")
        x_then_y = reg1.stream("y").random()
        reg2 = RngRegistry(1)
        y_only = reg2.stream("y").random()
        assert x_then_y == y_only

    def test_different_seeds_differ(self):
        a = RngRegistry(1).stream("s").random()
        b = RngRegistry(2).stream("s").random()
        assert a != b

    def test_different_names_differ(self):
        reg = RngRegistry(1)
        assert reg.stream("a").random() != reg.stream("b").random()

    def test_fork_is_deterministic(self):
        a = RngRegistry(5).fork("run1").stream("s").random()
        b = RngRegistry(5).fork("run1").stream("s").random()
        c = RngRegistry(5).fork("run2").stream("s").random()
        assert a == b
        assert a != c

    def test_names_listing(self):
        reg = RngRegistry(0)
        reg.stream("b")
        reg.stream("a")
        assert list(reg.names()) == ["a", "b"]


class TestTrace:
    def test_record_and_count(self, trace):
        trace.record(10, "mac.tx", "n1", seq=1)
        trace.record(20, "mac.rx", "n2", seq=1)
        assert len(trace) == 2
        assert trace.count("mac.tx") == 1

    def test_category_prefix_filter(self, trace):
        trace.record(1, "evm.failover", "gw")
        trace.record(2, "evm.fault_detected", "b")
        trace.record(3, "rtos.complete", "a")
        assert trace.count("evm.") == 2

    def test_source_filter(self, trace):
        trace.record(1, "x", "a")
        trace.record(2, "x", "b")
        assert [e.time for e in trace.events("x", source="b")] == [2]

    def test_time_window(self, trace):
        for t in (10, 20, 30, 40):
            trace.record(t, "x", "n")
        assert len(trace.events("x", since=20, until=30)) == 2

    def test_series_extraction(self, trace):
        trace.record(1, "level", "s", value=50.0)
        trace.record(2, "level", "s", value=49.0)
        trace.record(3, "level", "s", other=1)
        assert trace.series("level", "value") == [(1, 50.0), (2, 49.0)]

    def test_last(self, trace):
        trace.record(1, "x", "n", v=1)
        trace.record(5, "x", "n", v=2)
        assert trace.last("x").data["v"] == 2
        assert trace.last("missing") is None

    def test_live_subscription(self, trace):
        seen = []
        unsub = trace.subscribe(lambda e: seen.append(e.category))
        trace.record(1, "a", "n")
        unsub()
        trace.record(2, "b", "n")
        assert seen == ["a"]

    def test_clear(self, trace):
        trace.record(1, "x", "n")
        trace.clear()
        assert len(trace) == 0

    def test_dump_filters(self, trace):
        trace.record(1, "a.b", "n")
        trace.record(2, "c.d", "n")
        text = trace.dump(categories=["a."])
        assert "a.b" in text
        assert "c.d" not in text
