"""CSV artifact writers round-trip the experiment results."""

import pytest

from repro.experiments.fig6 import Fig6Result
from repro.experiments.mac_comparison import MacTrialResult
from repro.experiments.report import (
    read_csv,
    write_fig6_events,
    write_fig6_series,
    write_mac_sweep,
)


def small_fig6_result() -> Fig6Result:
    result = Fig6Result(
        times_sec=[1.0, 2.0, 3.0],
        lts_level_pct=[50.0, 49.5, 10.0],
        sep_liq_flow=[6.5, 6.4, 4.0],
        lts_liq_flow=[12.7, 12.6, 60.0],
        tower_feed_flow=[19.2, 19.0, 64.0],
        valve_pct=[11.5, 11.5, 75.0],
        active_controller=["ctrl_a", "ctrl_a", "ctrl_a"],
    )
    result.detection_time_sec = 2.5
    result.failover_time_sec = 2.9
    result.pre_fault_level = 50.0
    result.min_level = 10.0
    return result


class TestFig6Artifacts:
    def test_series_roundtrip(self, tmp_path):
        result = small_fig6_result()
        path = write_fig6_series(result, tmp_path / "fig6.csv")
        rows = read_csv(path)
        assert len(rows) == 3
        assert float(rows[2]["lts_level_pct"]) == 10.0
        assert rows[0]["active_controller"] == "ctrl_a"

    def test_events_table(self, tmp_path):
        result = small_fig6_result()
        path = write_fig6_events(result, tmp_path / "events.csv")
        rows = {r["quantity"]: r["value"] for r in read_csv(path)}
        assert float(rows["detection_time_sec"]) == 2.5
        assert float(rows["min_level"]) == 10.0
        assert rows["dormant_time_sec"] in ("", "None")


class TestMacSweepArtifact:
    def test_sweep_table(self, tmp_path):
        results = {
            "rtlink": [MacTrialResult(
                protocol="rtlink", duty_target_pct=5.0,
                event_period_sec=2.0, lifetime_years=6.4,
                avg_current_ma=0.046, radio_duty_pct=0.07,
                delivery_ratio=0.99, mean_latency_ms=52.3, collisions=0)],
            "bmac": [MacTrialResult(
                protocol="bmac", duty_target_pct=5.0,
                event_period_sec=2.0, lifetime_years=0.11,
                avg_current_ma=2.6, radio_duty_pct=13.8,
                delivery_ratio=0.99, mean_latency_ms=62.4, collisions=0)],
        }
        path = write_mac_sweep(results, tmp_path / "sweep.csv")
        rows = read_csv(path)
        assert len(rows) == 2
        by_protocol = {r["protocol"]: r for r in rows}
        assert float(by_protocol["rtlink"]["lifetime_years"]) == \
            pytest.approx(6.4)
        assert int(by_protocol["bmac"]["collisions"]) == 0
