"""Experiment harnesses: the HIL rig, a fast Fig. 6 run, MAC trials, Fig. 1."""

import pytest

from repro.experiments.fig1 import build_fig1_problem
from repro.experiments.fig6 import Fig6Config, run_fig6
from repro.experiments.hil import (
    ACTUATOR,
    CTRL_A,
    CTRL_B,
    GATEWAY,
    HilConfig,
    HilRig,
    TASK_CTRL,
)
from repro.experiments.mac_comparison import run_mac_trial
from repro.experiments.metrics import (
    first_crossing_sec,
    max_in_window,
    percentile,
    settling_time_sec,
)
from repro.evm.failover import ControllerMode
from repro.sim.clock import MS, SEC


def fast_hil(**overrides) -> HilConfig:
    defaults = dict(settle_sec=800.0, arbitration_holdoff_ticks=1,
                    dormant_delay_ticks=10 * SEC)
    defaults.update(overrides)
    return HilConfig(**defaults)


class TestHilRig:
    @pytest.fixture(scope="class")
    def rig(self):
        rig = HilRig(fast_hil())
        rig.run_for_seconds(20.0)
        return rig

    def test_plant_stays_at_setpoint_under_wireless_control(self, rig):
        assert rig.read("lts_level_pct") == pytest.approx(50.0, abs=1.0)
        assert rig.read("lts_valve_pct") == pytest.approx(11.48, abs=1.0)

    def test_control_traffic_flows(self, rig):
        assert rig.runtimes["s1"].stats.data_published > 50
        assert rig.runtimes[CTRL_A].stats.data_published > 50
        assert rig.runtimes[ACTUATOR].stats.data_applied > 50

    def test_backup_shadows(self, rig):
        instance = rig.runtimes[CTRL_B].instances[TASK_CTRL]
        assert instance.mode is ControllerMode.BACKUP
        assert instance.jobs_run > 50

    def test_no_collisions_on_rtlink(self, rig):
        assert rig.medium.stats.collisions == 0

    def test_end_to_end_latency_meets_paper_objective(self, rig):
        """Claim C1: sensing-to-actuation within 1/3 of the 250 ms cycle."""
        assert len(rig.io_latencies) > 50
        worst = max(rig.io_latencies)
        assert worst <= rig.config.control_period_ticks // 3

    def test_control_cycle_meets_paper_objective(self, rig):
        assert rig.config.control_period_ticks <= 250 * MS

    def test_active_controller_is_a(self, rig):
        assert rig.active_controller() == CTRL_A


class TestFastFailover:
    def test_fast_failover_bounds_the_damage(self):
        """With no staged hold-off the backup takes over within ~1 s and
        the process barely deviates -- the EVM's graceful-degradation
        claim in its strongest form."""
        config = Fig6Config(t1_fault_sec=20.0, t2_target_sec=25.0,
                            duration_sec=120.0, hil=fast_hil())
        result = run_fig6(config)
        assert result.detection_time_sec is not None
        assert result.detection_time_sec == pytest.approx(20.0, abs=3.0)
        assert result.failover_time_sec is not None
        assert result.failover_time_sec < 25.0
        # The fault bites (flows spike) but the level barely moves before
        # the backup restores control.
        assert result.peak_tower_flow > 1.5 * result.pre_fault_tower_flow
        assert result.min_level > result.pre_fault_level - 5.0
        assert result.at_time(115, result.active_controller) == CTRL_B
        # And the plant returns to the operating point.
        assert result.final_level == pytest.approx(50.0, abs=2.0)
        assert result.final_tower_flow == pytest.approx(
            result.pre_fault_tower_flow, rel=0.1)

    def test_detection_latency_natural(self):
        """Without the staged hold-off, failover follows detection within
        a few control cycles."""
        config = Fig6Config(t1_fault_sec=10.0, t2_target_sec=11.0,
                            duration_sec=30.0, hil=fast_hil())
        result = run_fig6(config)
        gap = result.failover_time_sec - result.detection_time_sec
        assert gap < 1.0


class TestMacTrials:
    def test_rtlink_outlives_baselines(self):
        rtlink = run_mac_trial("rtlink", duty_pct=5.0,
                               event_period_sec=2.0, duration_sec=30.0)
        bmac = run_mac_trial("bmac", duty_pct=5.0, event_period_sec=2.0,
                             duration_sec=30.0)
        smac = run_mac_trial("smac", duty_pct=5.0, event_period_sec=2.0,
                             duration_sec=30.0)
        assert rtlink.lifetime_years > 2 * bmac.lifetime_years
        assert rtlink.lifetime_years > 2 * smac.lifetime_years

    def test_rtlink_collision_free(self):
        result = run_mac_trial("rtlink", duty_pct=5.0,
                               event_period_sec=0.5, duration_sec=30.0)
        assert result.collisions == 0
        assert result.delivery_ratio > 0.95

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            run_mac_trial("aloha")


class TestFig1:
    def test_three_components_composed(self):
        result = build_fig1_problem()
        assert len(result.components) == 3
        for name, outcome in result.bqp.items():
            assert outcome.feasible, name

    def test_bqp_not_worse_than_greedy(self):
        result = build_fig1_problem()
        for name in result.bqp:
            assert result.bqp[name].cost <= result.greedy[name].cost + 1e-9

    def test_capabilities_respected(self):
        result = build_fig1_problem()
        vc = result.components["vc-process"]
        placement = result.bqp["vc-process"].placement
        for task_name, node_id in placement.items():
            task = vc.tasks[task_name]
            member = vc.members[node_id]
            assert task.required_capabilities <= member.capabilities

    def test_describe_renders(self):
        text = build_fig1_problem().describe()
        assert "vc-process" in text


class TestMetrics:
    def test_percentile(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == pytest.approx(50, abs=1)
        assert percentile(values, 99) == pytest.approx(99, abs=1)
        assert percentile([], 50) == 0.0

    def test_settling_time(self):
        times = [0.0, 1.0, 2.0, 3.0, 4.0]
        series = [10.0, 5.0, 1.0, 0.5, 0.4]
        assert settling_time_sec(times, series, 0.0, 1.5) == 2.0
        assert settling_time_sec(times, series, 0.0, 0.1) is None

    def test_first_crossing(self):
        times = [0.0, 1.0, 2.0]
        series = [50.0, 30.0, 5.0]
        assert first_crossing_sec(times, series, 10.0, "below") == 2.0
        assert first_crossing_sec(times, series, 100.0, "above") is None

    def test_max_in_window(self):
        times = [0.0, 1.0, 2.0, 3.0]
        series = [1.0, 9.0, 4.0, 20.0]
        assert max_in_window(times, series, 0.5, 2.5) == 9.0
