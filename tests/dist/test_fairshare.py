"""Tenant isolation of the weighted deficit-round-robin arbiter.

Three altitudes:

- **arbiter-level** hypothesis property over random campaign mixes
  (sizes, weights, arrival times): grant counts track declared weights
  within the DRR deficit bound, every queue drains, no tenant waits
  longer than the bounded round length -- plus the deficit invariant
  ``0 <= deficit < 1 + weight`` after every grant;
- **wire-level** directed regressions with bare sockets: a
  late-arriving small campaign overtakes a monster FIFO backlog, a
  rejected weight never enqueues anything, and a crashed lease requeues
  to the front of its *own* campaign's lane;
- **client-edge** rejection: ``weight=0`` dies in the runner
  constructor and at the broker's submit edge, never silently clamps.
"""

import time

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dist import coordinator as coordinator_mod
from repro.dist.coordinator import Coordinator
from repro.dist.fairshare import FairScheduler, validate_weight
from repro.dist.protocol import (
    FEATURE_SCHED,
    dumps_payload,
    loads_payload,
    pack_blob_list,
    recv_message,
    send_message,
)
from repro.dist.runner import DistributedCampaignRunner


def _echo(x):
    return x


# ----------------------------------------------------------------------
# Arbiter level: the hypothesis fairness property
# ----------------------------------------------------------------------
campaign_mix = st.lists(
    st.tuples(st.integers(min_value=1, max_value=8),    # weight
              st.integers(min_value=1, max_value=30)),  # backlog size
    min_size=2, max_size=5)


def _drain(sched, record=None):
    """Drain the scheduler to empty, returning the grant order as a
    list of campaign keys (asserting the deficit invariant throughout).
    """
    grants = []
    while True:
        pick = sched.peek()
        if pick is None:
            return grants
        queue, _job = pick
        sched.commit(queue)
        grants.append(queue.campaign)
        for q in sched:
            assert 0.0 <= q.deficit < 1.0 + q.weight, \
                f"deficit invariant violated for {q.campaign}"
        if record is not None:
            record(grants)


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(mix=campaign_mix)
def test_backlogged_grants_track_weights(mix):
    """While every campaign stays backlogged, campaign *i*'s grant
    count stays within the DRR bound of its weighted ideal share."""
    sched = FairScheduler()
    sizes = {}
    weights = {}
    for i, (weight, size) in enumerate(mix):
        key = f"c{i}"
        sizes[key], weights[key] = size, float(weight)
        for j in range(size):
            sched.enqueue(key, float(weight), (key, j))
    total_weight = sum(weights.values())
    n = len(mix)

    counts = dict.fromkeys(sizes, 0)
    window = []  # grant counts while ALL campaigns are still backlogged

    def record(grants):
        counts[grants[-1]] += 1
        if all(counts[k] < sizes[k] for k in sizes):
            window.append(dict(counts))

    grants = _drain(sched, record)
    # Conservation: every job granted exactly once, FIFO per campaign.
    assert len(grants) == sum(sizes.values())
    for key, size in sizes.items():
        assert sum(1 for g in grants if g == key) == size
    # Fairness inside the fully-backlogged window.
    if window:
        final = window[-1]
        total = sum(final.values())
        for key, weight in weights.items():
            ideal = total * weight / total_weight
            slack = 2.0 + 2.0 * weight + n
            assert abs(final[key] - ideal) <= slack, \
                (key, final[key], ideal, slack)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(mix=campaign_mix)
def test_no_tenant_starves(mix):
    """Every backlogged campaign is granted within a bounded gap: at
    most one full replenish round of the whole mix."""
    sched = FairScheduler()
    sizes = {}
    for i, (weight, size) in enumerate(mix):
        key = f"c{i}"
        sizes[key] = size
        for j in range(size):
            sched.enqueue(key, float(weight), (key, j))
    grants = _drain(sched)
    max_gap = 2 * (len(mix) + sum(w for w, _ in mix))
    last_seen = dict.fromkeys(sizes, 0)
    seen = dict.fromkeys(sizes, 0)
    for pos, key in enumerate(grants):
        seen[key] += 1
        gap = pos - last_seen[key]
        last_seen[key] = pos
        if seen[key] > 1 and seen[key] <= sizes[key]:
            assert gap <= max_gap, (key, pos, gap, max_gap)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(arrivals=st.lists(st.tuples(st.integers(0, 2),
                                   st.integers(0, 1)),
                         min_size=1, max_size=60))
def test_interleaved_arrivals_all_drain(arrivals):
    """Random interleave of enqueues and grant rounds never loses or
    duplicates a job, whatever order tenants show up in."""
    sched = FairScheduler()
    submitted = []
    granted = []
    counter = 0
    for campaign_idx, do_grant in arrivals:
        key = f"c{campaign_idx}"
        job = (key, counter)
        counter += 1
        sched.enqueue(key, float(campaign_idx + 1), job)
        submitted.append(job)
        if do_grant:
            pick = sched.peek()
            if pick is not None:
                queue, job = pick
                assert sched.commit(queue) is job
                granted.append(job)
    while True:
        pick = sched.peek()
        if pick is None:
            break
        queue, job = pick
        sched.commit(queue)
        granted.append(job)
    assert sorted(granted) == sorted(submitted)
    assert len(sched) == 0


def test_single_campaign_is_exact_fifo():
    sched = FairScheduler()
    for i in range(50):
        sched.enqueue("solo", 1.0, i)
    order = []
    while True:
        pick = sched.peek()
        if pick is None:
            break
        queue, job = pick
        order.append(sched.commit(queue))
    assert order == list(range(50))


def test_late_small_campaign_overtakes_backlog_arbiter():
    """The FIFO-regression the tentpole exists for: 5 grants into a
    40-job monster, a 4-job tenant arrives and is fully served within
    ~2x its size, not after the monster drains."""
    sched = FairScheduler()
    for j in range(40):
        sched.enqueue("monster", 1.0, ("monster", j))
    for _ in range(5):
        queue, _job = sched.peek()
        sched.commit(queue)
    for j in range(4):
        sched.enqueue("late", 1.0, ("late", j))
    grants = _drain(sched)
    late_done_at = max(i for i, key in enumerate(grants) if key == "late")
    assert late_done_at <= 2 * 4 + 2, grants[:12]


def test_requeue_goes_to_own_front():
    sched = FairScheduler()
    sched.enqueue("a", 1.0, "a0")
    sched.enqueue("a", 1.0, "a1")
    sched.enqueue("b", 1.0, "b0")
    queue, job = sched.peek()
    assert sched.commit(queue) == "a0"
    # The lease crashed: back to the front of a's own lane.
    sched.enqueue("a", 1.0, "a0", front=True)
    drained = []
    while True:
        pick = sched.peek()
        if pick is None:
            break
        queue, job = pick
        drained.append(sched.commit(queue))
    a_order = [j for j in drained if j.startswith("a")]
    assert a_order == ["a0", "a1"]
    assert sorted(drained) == ["a0", "a1", "b0"]


def test_stale_jobs_pruned_and_credit_forfeited():
    live = {"a0", "b0", "b1"}
    sched = FairScheduler(is_live=lambda job: job in live)
    sched.enqueue("a", 4.0, "a0")
    sched.enqueue("b", 1.0, "b0")
    sched.enqueue("b", 1.0, "b1")
    live.discard("a0")  # settled out-of-band (first-win duplicate)
    drained = []
    while True:
        pick = sched.peek()
        if pick is None:
            break
        queue, job = pick
        drained.append(sched.commit(queue))
    assert drained == ["b0", "b1"]
    assert sched.pending() == 0


@pytest.mark.parametrize("bad", [0, -1, 0.0, -0.5, float("nan"),
                                 float("inf"), "heavy", None])
def test_validate_weight_rejects(bad):
    with pytest.raises(ValueError):
        validate_weight(bad)


def test_validate_weight_accepts_fractional():
    assert validate_weight(0.25) == 0.25
    assert validate_weight("3") == 3.0


def test_fractional_weight_replenish_is_closed_form():
    """A tiny-weight tenant must not cost a replenish loop: one peek
    tops it up in one arithmetic step and the mix still drains."""
    sched = FairScheduler()
    sched.enqueue("tiny", 1e-6, ("tiny", 0))
    for j in range(3):
        sched.enqueue("big", 5.0, ("big", j))
    grants = _drain(sched)
    assert sorted(grants) == ["big", "big", "big", "tiny"]


# ----------------------------------------------------------------------
# Wire level: the broker edge
# ----------------------------------------------------------------------
def _sched_client(address, name):
    sock = coordinator_mod.connect(address, role="client", name=name,
                                   features=(FEATURE_SCHED,))
    sock.settimeout(10.0)
    header, _ = recv_message(sock)
    assert header["type"] == "welcome"
    assert FEATURE_SCHED in header.get("features", [])
    return sock


def _submit_weighted(client, values, weight=None):
    header = {"type": "submit",
              "job_ids": [f"j{i}" for i in range(len(values))]}
    if weight is not None:
        header["weight"] = weight
    blobs = [dumps_payload((_echo, v)) for v in values]
    send_message(client, header, pack_blob_list(blobs))


def _serve_one(worker):
    """Lease one job, execute the echo, result it; returns the wire
    job key (``c<client>b<batch>:<job_id>``)."""
    while True:
        header, payload = recv_message(worker)
        if header["type"] == "job":
            break
    _fn, value = loads_payload(payload)
    send_message(worker, {"type": "result", "job_id": header["job_id"],
                          "attempt": header["attempt"], "ok": True},
                 dumps_payload(value))
    return header["job_id"]


def _campaign_of(wire_key):
    return wire_key.split(":", 1)[0]


def _fake_worker(address, slots=1, name="fw"):
    sock = coordinator_mod.connect(address, role="worker", name=name,
                                   slots=slots)
    sock.settimeout(10.0)
    header, _ = recv_message(sock)
    assert header["type"] == "welcome"
    return sock


def test_zero_weight_rejected_at_submit_edge():
    with Coordinator() as coordinator:
        client = _sched_client(coordinator.address, "zero")
        _submit_weighted(client, [1, 2], weight=0)
        header, _ = recv_message(client)
        assert header["type"] == "error"
        assert "weight" in header["error"]
        # Nothing was enqueued: the whole submit is rejected.
        assert coordinator.status()["pending"] == 0
        assert coordinator.stats.jobs_submitted == 0
        client.close()


def test_zero_weight_rejected_in_runner_constructor():
    with pytest.raises(ValueError):
        DistributedCampaignRunner("127.0.0.1:1", weight=0)
    with pytest.raises(ValueError):
        DistributedCampaignRunner("127.0.0.1:1", weight=float("nan"))


def test_weighted_grant_split_tracks_declared_weights():
    """Two backlogged sched tenants at weights 1:3 split a 1-slot
    worker's grants ~1:3 over any window."""
    with Coordinator() as coordinator:
        light = _sched_client(coordinator.address, "light")
        heavy = _sched_client(coordinator.address, "heavy")
        _submit_weighted(light, list(range(24)), weight=1)
        _submit_weighted(heavy, list(range(24)), weight=3)
        # Worker connects after both backlogs exist, so every grant is
        # an arbitration decision, not an arrival race.
        worker = _fake_worker(coordinator.address, slots=1)
        grants = [_campaign_of(_serve_one(worker)) for _ in range(16)]
        campaigns = sorted(set(grants))
        assert len(campaigns) == 2
        by_campaign = {c: grants.count(c) for c in campaigns}
        heavy_key = max(by_campaign, key=by_campaign.get)
        assert 10 <= by_campaign[heavy_key] <= 14, by_campaign
        worker.close(), light.close(), heavy.close()


def test_late_small_campaign_overtakes_fifo_backlog_on_wire():
    """End-to-end form of the FIFO regression: B's 3 jobs, submitted
    after A's 40-job monster started draining, finish while A still has
    a deep backlog -- the old single-FIFO broker made B wait for all of
    A."""
    with Coordinator() as coordinator:
        monster = _sched_client(coordinator.address, "monster")
        _submit_weighted(monster, list(range(40)), weight=1)
        worker = _fake_worker(coordinator.address, slots=1)
        for _ in range(5):
            assert _campaign_of(_serve_one(worker)) is not None
        late = _sched_client(coordinator.address, "late")
        _submit_weighted(late, [100, 101, 102], weight=1)
        grants = [_campaign_of(_serve_one(worker)) for _ in range(10)]
        assert len(set(grants)) == 2
        counts = {c: grants.count(c) for c in set(grants)}
        late_key = min(counts, key=counts.get)
        # All 3 of B's jobs were granted inside the 10-grant window.
        assert counts[late_key] == 3, counts
        # ...and B's client saw its done frame while A is still deep.
        done = recv_message(late)
        while done[0]["type"] != "done":
            done = recv_message(late)
        assert coordinator.status()["pending"] > 20
        worker.close(), monster.close(), late.close()


def test_crash_requeue_stays_in_tenant_lane():
    """A crashed lease returns to the front of its own campaign's
    queue: the victim tenant's next grant is the crashed job at
    attempt 2, ahead of its later jobs, and the other tenant's lane is
    untouched."""
    with Coordinator(worker_timeout=5.0) as coordinator:
        a = _sched_client(coordinator.address, "tenant-a")
        b = _sched_client(coordinator.address, "tenant-b")
        _submit_weighted(a, [0, 1, 2], weight=1)
        victim = _fake_worker(coordinator.address, name="victim")
        header, _payload = None, None
        while True:
            header, _payload = recv_message(victim)
            if header["type"] == "job":
                break
        crashed_key = header["job_id"]
        assert header["attempt"] == 1
        _submit_weighted(b, [10, 11], weight=1)
        victim.close()  # SIGKILL signature: no goodbye, lease lost
        survivor = _fake_worker(coordinator.address, name="survivor")
        a_campaign = _campaign_of(crashed_key)
        seen_a = []
        for _ in range(5):
            while True:
                header, payload = recv_message(survivor)
                if header["type"] == "job":
                    break
            if _campaign_of(header["job_id"]) == a_campaign:
                seen_a.append((header["job_id"], header["attempt"]))
            _fn, value = loads_payload(payload)
            send_message(survivor,
                         {"type": "result", "job_id": header["job_id"],
                          "attempt": header["attempt"], "ok": True},
                         dumps_payload(value))
        # A's first regrant is the crashed job, retried, at its front.
        assert seen_a[0] == (crashed_key, 2)
        assert [k for k, _ in seen_a] == sorted(k for k, _ in seen_a)
        assert coordinator.stats.jobs_requeued == 1
        survivor.close(), a.close(), b.close()


def test_legacy_client_interoperates_as_weight_one():
    """A client that never negotiated ``sched`` is a plain weight-1
    lane: its submit carries no weight, its jobs still complete, and a
    stray ``weight`` header from it is ignored rather than honoured."""
    with Coordinator() as coordinator:
        legacy = coordinator_mod.connect(coordinator.address,
                                         role="client", name="legacy")
        legacy.settimeout(10.0)
        header, _ = recv_message(legacy)
        assert header["type"] == "welcome"
        assert FEATURE_SCHED not in header.get("features", [])
        # Stray weight from a non-sched client must not be honoured
        # (and must not be rejected either: old clients never sent it).
        _submit_weighted(legacy, [7], weight=50)
        deadline = time.monotonic() + 10.0
        status = coordinator.status()
        while not status["campaigns"]:
            assert time.monotonic() < deadline, "submit never landed"
            time.sleep(0.02)
            status = coordinator.status()
        assert status["campaigns"][0]["weight"] == 1.0
        worker = _fake_worker(coordinator.address)
        _serve_one(worker)
        header, payload = recv_message(legacy)
        assert header["type"] == "result" and header["ok"]
        assert loads_payload(payload) == 7
        worker.close(), legacy.close()
