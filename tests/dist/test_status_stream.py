"""The coordinator's live status stream (subscribe / status_update).

Covers the wire protocol (subscribe ack, pushed snapshots, unsubscribe),
the enriched ``status()`` snapshot (worker health + lease latency,
per-campaign progress/rate/ETA), the ``status --follow`` CLI line
formatter, and the obs bridge that mirrors the stream into gauges.
"""

import subprocess
import sys
import time

import pytest

from repro.dist import LocalCluster
from repro.dist import coordinator as coordinator_mod
from repro.dist.cli import format_status_line
from repro.dist.cluster import sleepy_echo
from repro.dist.protocol import recv_message, send_message


def _double(x):
    return 2 * x


def _record_with_dropped(n):
    """A run-record-shaped result whose Trace ring evicted ``n`` rows."""
    return {"run_id": f"r{n}", "metrics": {"trace_dropped": n}}


@pytest.fixture(scope="module")
def cluster():
    with LocalCluster(n_workers=2, slots=2) as cluster:
        cluster.wait_for_workers()
        yield cluster


def _subscribe(address, period=0.1, timeout=5.0):
    sock = coordinator_mod.connect(address, role="client",
                                   name="stream-test", timeout=10.0)
    sock.settimeout(timeout)
    header, _ = recv_message(sock)
    assert header["type"] == "welcome"
    send_message(sock, {"type": "subscribe", "period": period})
    header, _ = recv_message(sock)
    assert header["type"] == "subscribed"
    return sock, header


def _next_update(sock):
    while True:
        header, _ = recv_message(sock)
        if header["type"] == "status_update":
            return header["status"]


class TestStatusStream:
    def test_subscribe_ack_clamps_period(self, cluster):
        sock, ack = _subscribe(cluster.address, period=0.0001)
        try:
            assert ack["period"] == pytest.approx(0.1)  # floor, not 0
        finally:
            sock.close()

    def test_updates_are_pushed_without_polling(self, cluster):
        sock, _ = _subscribe(cluster.address, period=0.1)
        try:
            first = _next_update(sock)
            second = _next_update(sock)  # keeps coming, unprompted
        finally:
            sock.close()
        for status in (first, second):
            assert status["pending"] == 0
            assert status["subscribers"] >= 1
            assert len(status["workers"]) == 2
            for worker in status["workers"]:
                assert worker["last_seen_age_sec"] >= 0.0
                assert worker["leases_granted"] >= 0
                assert worker["lease_wait_avg_sec"] >= 0.0

    def test_unsubscribe_stops_the_stream(self, cluster):
        sock, _ = _subscribe(cluster.address, period=0.1)
        try:
            _next_update(sock)
            send_message(sock, {"type": "unsubscribe"})
            runner = cluster.runner()
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if runner.status()["subscribers"] == 0:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("unsubscribe never took effect")
        finally:
            sock.close()

    def test_campaign_progress_and_lease_latency(self, cluster):
        runner = cluster.runner()
        jobs = [{"sleep_sec": 0.05, "value": i} for i in range(6)]
        assert runner.map_jobs(sleepy_echo, jobs) == list(range(6))
        status = runner.status()
        campaigns = {c["name"]: c for c in status["campaigns"]}
        mine = campaigns["campaign-client"]
        assert mine["outstanding"] == 0
        assert mine["completed"] == 6
        assert mine["failed"] == 0
        assert mine["batches"] >= 1
        assert mine["rate_per_sec"] > 0.0
        assert mine["eta_sec"] is None  # nothing outstanding
        assert sum(w["leases_granted"] for w in status["workers"]) >= 6
        assert all(w["lease_wait_avg_sec"] >= 0.0
                   for w in status["workers"])


    def test_trace_dropped_rides_result_frames_into_stats(self, cluster):
        runner = cluster.runner()
        before = runner.status()["stats"].get("trace_dropped", 0)
        results = runner.map_jobs(_record_with_dropped, [3, 0, 4])
        assert [r["metrics"]["trace_dropped"] for r in results] == [3, 0, 4]
        after = runner.status()["stats"]["trace_dropped"]
        assert after - before == 7  # the zero-row record adds nothing


class TestFormatStatusLine:
    def test_plain_counters(self):
        line = format_status_line(
            {"pending": 3, "leased": 2, "workers": [{}, {}],
             "stats": {"jobs_completed": 7, "jobs_failed": 1}})
        assert line == "pending=3 leased=2 workers=2 done=7 failed=1"

    def test_campaign_section_with_eta(self):
        line = format_status_line(
            {"pending": 0, "leased": 4, "workers": [{}],
             "stats": {"jobs_completed": 16, "jobs_failed": 0},
             "campaigns": [{"name": "grid", "outstanding": 4,
                            "completed": 16, "failed": 0,
                            "rate_per_sec": 2.0, "eta_sec": 2.0}]})
        assert "[grid: 16/20 @2.0/s eta=2s]" in line

    def test_trace_dropped_shown_only_when_nonzero(self):
        healthy = format_status_line(
            {"stats": {"jobs_completed": 2, "trace_dropped": 0}})
        assert "dropped=" not in healthy
        lossy = format_status_line(
            {"stats": {"jobs_completed": 2, "trace_dropped": 9}})
        assert "dropped=9" in lossy

    def test_campaign_section_without_eta(self):
        line = format_status_line(
            {"campaigns": [{"name": "grid", "outstanding": 0,
                            "completed": 5, "failed": 1,
                            "rate_per_sec": 0.5, "eta_sec": None}]})
        assert "[grid: 6/6 @0.5/s]" in line


class TestFollowCli:
    def test_follow_prints_bounded_updates(self, cluster):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.dist", "status",
             "--connect", cluster.address, "--follow",
             "--interval", "0.1", "--max-updates", "2"],
            env={"PYTHONPATH": "src"}, cwd="/root/repo",
            capture_output=True, text=True, timeout=60)
        assert proc.returncode == 0, proc.stderr
        lines = proc.stdout.strip().splitlines()
        assert len(lines) == 2
        assert all(line.startswith("pending=") for line in lines)

    def test_follow_json_mode(self, cluster):
        import json

        proc = subprocess.run(
            [sys.executable, "-m", "repro.dist", "status",
             "--connect", cluster.address, "--follow", "--json",
             "--interval", "0.1", "--max-updates", "1"],
            env={"PYTHONPATH": "src"}, cwd="/root/repo",
            capture_output=True, text=True, timeout=60)
        assert proc.returncode == 0, proc.stderr
        status = json.loads(proc.stdout.strip())
        assert "workers" in status and "stats" in status


class TestCoordinatorBridge:
    def test_bridge_mirrors_stream_into_gauges(self, cluster):
        from repro.obs import MetricsRegistry
        from repro.obs.bridge import CoordinatorBridge

        registry = MetricsRegistry()
        runner = cluster.runner()
        assert runner.map_jobs(_double, [1, 2, 3]) == [2, 4, 6]
        with CoordinatorBridge(registry, cluster.address, period=0.1):
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                values = registry.values()
                if values.get("=repro_dist_up") == 1.0:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("bridge never connected")
        values = registry.values()
        assert values["=repro_dist_workers"] == 2
        assert values["=repro_dist_pending_jobs"] == 0
        assert values["=repro_dist_jobs_completed"] >= 3
        text = registry.render_prometheus()
        assert "repro_dist_up" in text
        assert 'repro_dist_worker_inflight{worker="' in text

    def test_bridge_marks_down_without_coordinator(self):
        from repro.obs import MetricsRegistry
        from repro.obs.bridge import CoordinatorBridge

        registry = MetricsRegistry()
        bridge = CoordinatorBridge(registry, "127.0.0.1:1",
                                   period=0.1, redial_max=0.2)
        with bridge:
            time.sleep(0.3)
        assert registry.values()["=repro_dist_up"] == 0.0
        assert bridge.updates_received == 0


class TestSettledCampaignPinsItsClock:
    def test_rate_frozen_and_no_phantom_eta_after_settle(self, cluster):
        """Regression: a campaign that settles between snapshot ticks
        used to keep aging its rate denominator (``now - started``),
        so later snapshots reported a decaying rate -- and a stale-rate
        ETA could revive.  Settling pins the clock: every snapshot
        after the last result reports the rate the batch actually
        achieved, and no ETA."""
        with cluster.runner(name="pin-test") as runner:
            assert runner.map_jobs(sleepy_echo,
                                   [{"sleep_sec": 0.05, "value": i}
                                    for i in range(4)]) == [0, 1, 2, 3]
            first = {c["name"]: c for c in
                     runner.status()["campaigns"]}["pin-test"]
            time.sleep(0.35)  # several broadcast periods of idle age
            second = {c["name"]: c for c in
                      runner.status()["campaigns"]}["pin-test"]
        assert first["outstanding"] == 0
        assert first["rate_per_sec"] > 0.0
        assert first["rate_per_sec"] == second["rate_per_sec"]
        assert first["eta_sec"] is None and second["eta_sec"] is None
        # An idle tenant holds no share of the grant bandwidth.
        assert second["share"] == 0.0


class TestFormatStatusLineFairShare:
    def test_share_appended_only_when_backlogged(self):
        line = format_status_line(
            {"pending": 2, "leased": 1, "workers": [{}],
             "stats": {"jobs_completed": 1},
             "campaigns": [{"name": "grid", "outstanding": 2,
                            "completed": 1, "failed": 0,
                            "rate_per_sec": 1.0, "eta_sec": 2.0,
                            "share": 0.25}]})
        assert "[grid: 1/3 @1.0/s eta=2s share=25%]" in line

    def test_fleet_shown_only_for_autoscaled_brokers(self):
        base = {"pending": 0, "leased": 0, "workers": [{}, {}],
                "stats": {}}
        assert "fleet=" not in format_status_line(base)
        line = format_status_line(
            dict(base, fleet_size=2,
                 autoscale={"min": 1, "max": 6,
                            "scaled_up": 3, "scaled_down": 1}))
        assert "fleet=2[1:6]" in line
