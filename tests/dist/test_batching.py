"""Batched-frame safety: write serialization and byte-budget chunking.

Two failure modes the batch fast path must not reintroduce:

- **interleaved writes**: the worker's heartbeat thread and its result
  flusher share one socket; two threads inside ``sendall()`` at once
  can interleave a heartbeat into the middle of a multi-part result
  frame and corrupt the stream (the coordinator then drops the worker
  and requeues its leases).  Every write must go through one wire lock.
- **unbounded coalescing**: the outbox batches without limit, but N
  individually-sendable results concatenated can exceed the frame cap
  ``pack_message`` enforces -- batches must flush in budget-bounded
  chunks (``protocol.split_batch``), with a per-frame fallback if a
  chunk still packs past the cap.
"""

import socket
import threading
import time

from repro.dist import LocalCluster
from repro.dist import protocol as protocol_mod
from repro.dist import worker as worker_mod
from repro.dist.cluster import sleepy_echo
from repro.dist.protocol import (
    ProtocolError,
    recv_message,
    split_batch,
    unpack_blob_list,
)
from repro.dist.worker import WorkerAgent


# ----------------------------------------------------------------------
# split_batch unit behavior
# ----------------------------------------------------------------------
def test_split_batch_preserves_order_and_respects_budget():
    items = list(range(10))
    chunks = split_batch(items, lambda _i: 100, budget=250)
    assert [i for chunk in chunks for i in chunk] == items
    assert all(len(chunk) == 2 for chunk in chunks)


def test_split_batch_oversized_item_ships_alone():
    sizes = [10, 999, 10, 10]
    chunks = split_batch(sizes, lambda s: s, budget=100)
    assert chunks == [[10], [999], [10, 10]]


def test_split_batch_single_chunk_under_budget():
    assert split_batch([1, 2, 3], lambda s: s, budget=100) == [[1, 2, 3]]
    assert split_batch([], lambda s: s, budget=100) == []


def test_split_batch_default_budget_resolves_at_call_time(monkeypatch):
    monkeypatch.setattr(protocol_mod, "BATCH_BYTES_BUDGET", 5)
    assert split_batch([4, 4], lambda s: s) == [[4], [4]]


# ----------------------------------------------------------------------
# Worker wire lock: heartbeat vs. flusher on one socket
# ----------------------------------------------------------------------
class _OverlapDetectingSock:
    """A fake socket whose ``sendall`` records concurrent entries --
    any overlap means two threads were writing the wire at once."""

    def __init__(self):
        self._guard = threading.Lock()
        self._in_flight = 0
        self.max_in_flight = 0
        self.frames = 0

    def sendall(self, data):
        with self._guard:
            self._in_flight += 1
            self.max_in_flight = max(self.max_in_flight, self._in_flight)
        time.sleep(0.001)  # widen the race window a real sendall has
        with self._guard:
            self._in_flight -= 1
            self.frames += 1


def test_heartbeat_and_result_flush_never_interleave_on_the_wire():
    agent = WorkerAgent("127.0.0.1:0", processes=0)
    agent._batch = True
    sock = _OverlapDetectingSock()
    agent._sock = sock
    stop = threading.Event()

    def beat():
        while not stop.is_set():
            agent._send({"type": "heartbeat"})

    heartbeat = threading.Thread(target=beat, daemon=True)
    heartbeat.start()
    try:
        for i in range(100):
            agent._send_result_batched(
                {"job_id": f"j{i}", "attempt": 1, "ok": True}, b"x" * 700)
    finally:
        stop.set()
        heartbeat.join(timeout=10)
    assert sock.frames >= 100
    assert sock.max_in_flight == 1


# ----------------------------------------------------------------------
# Worker flush chunking + per-frame fallback
# ----------------------------------------------------------------------
def _batch_entries(n, payload_bytes=1000):
    return [({"job_id": f"j{i}", "attempt": 1, "ok": True},
             b"r" * payload_bytes) for i in range(n)]


def test_flush_splits_outbox_past_the_byte_budget(monkeypatch):
    monkeypatch.setattr(protocol_mod, "BATCH_BYTES_BUDGET", 2048)
    a, b = socket.socketpair()
    b.settimeout(10.0)
    agent = WorkerAgent("127.0.0.1:0", processes=0)
    agent._batch = True
    agent._sock = a
    agent._flush_results(_batch_entries(10))
    seen, frames = [], 0
    while len(seen) < 10:
        header, payload = recv_message(b)
        assert header["type"] == "result_batch"
        blobs = unpack_blob_list(payload)
        assert sum(len(blob) for blob in blobs) <= 2048
        seen.extend(meta["job_id"] for meta in header["results"])
        frames += 1
    assert frames == 5  # 2 x 1000B per chunk under the 2048B budget
    assert seen == [f"j{i}" for i in range(10)]
    a.close(), b.close()


def test_flush_falls_back_to_single_frames_on_protocol_error(monkeypatch):
    real_send = protocol_mod.send_message

    def batch_rejecting_send(sock, header, payload=None, compress=False):
        if header.get("type") == "result_batch":
            raise ProtocolError("synthetic oversized frame")
        real_send(sock, header, payload, compress=compress)

    monkeypatch.setattr(worker_mod, "send_message", batch_rejecting_send)
    a, b = socket.socketpair()
    b.settimeout(10.0)
    agent = WorkerAgent("127.0.0.1:0", processes=0)
    agent._batch = True
    agent._sock = a
    agent._flush_results(_batch_entries(3))
    for i in range(3):
        header, payload = recv_message(b)
        assert header["type"] == "result"
        assert header["job_id"] == f"j{i}"
        assert bytes(payload) == b"r" * 1000
    a.close(), b.close()


def test_failed_results_without_payload_batch_cleanly():
    a, b = socket.socketpair()
    b.settimeout(10.0)
    agent = WorkerAgent("127.0.0.1:0", processes=0)
    agent._batch = True
    agent._sock = a
    agent._flush_results([
        ({"job_id": "j0", "attempt": 1, "ok": True}, b"value"),
        ({"job_id": "j1", "attempt": 1, "ok": False,
          "retryable": False, "error": "boom"}, None),
    ])
    header, payload = recv_message(b)
    assert header["type"] == "result_batch"
    assert [m["job_id"] for m in header["results"]] == ["j0", "j1"]
    assert unpack_blob_list(payload) == [b"value", b""]
    a.close(), b.close()


# ----------------------------------------------------------------------
# End to end: a whole campaign under a tiny budget still round-trips
# ----------------------------------------------------------------------
def test_campaign_round_trips_with_tiny_batch_budget(monkeypatch):
    """Thread-mode cluster with the budget shrunk below single-digit
    job payloads: every batched frame (submit relay, job_batch grants,
    worker result flushes, broker result_batch delivery) must chunk --
    and the campaign must still return every value in order."""
    monkeypatch.setattr(protocol_mod, "BATCH_BYTES_BUDGET", 4096)
    with LocalCluster(n_workers=2, slots=4) as cluster:
        cluster.wait_for_workers()
        jobs = [{"value": "v" * 1500 + f"-{i:02d}"} for i in range(32)]
        values = cluster.runner().map_jobs(sleepy_echo, jobs)
        assert values == [j["value"] for j in jobs]
