"""Autoscaling: pure policy table, hysteresis in virtual time, and the
drain-then-exit retirement contract end to end.

The policy layer is a pure snapshot -> delta function, so its whole
decision surface is a table test.  The :class:`Autoscaler` adds only
cooldown state, driven here with an injected clock -- no sleeps.  The
e2e tests then pin the part no unit can: a :class:`LocalCluster` that
grows under a queue-depth spike, shrinks on drain, never loses a lease
to a *cooperative* retirement, and still requeues when a retiring
worker is SIGKILLed mid-drain.
"""

import threading
import time

import pytest

from repro.dist import LocalCluster
from repro.dist.autoscale import (
    Autoscaler,
    AutoscalePolicy,
    fleet_size,
    parse_autoscale,
)
from repro.dist.cluster import sleepy_echo


def _status(pending=0, workers=(), p95=0.0):
    return {"pending": pending, "lease_wait_p95_sec": p95,
            "workers": [{"slots": s, "inflight": i} for s, i in workers]}


def _wait_until(predicate, timeout=15.0, period=0.02, what="condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() >= deadline:
            raise TimeoutError(f"timed out waiting for {what}")
        time.sleep(period)


# ----------------------------------------------------------------------
# The pure policy: a decision table
# ----------------------------------------------------------------------
class TestPolicyDecisions:
    policy = AutoscalePolicy(min_workers=1, max_workers=4,
                             backlog_per_worker=2.0, wait_p95_sec=1.0)

    def test_bootstraps_to_min(self):
        assert self.policy.decide(_status()) == 1
        wide = AutoscalePolicy(min_workers=3, max_workers=8)
        assert wide.decide(_status(workers=[(1, 0)])) == 2

    def test_holds_at_min_when_idle(self):
        assert self.policy.decide(_status(workers=[(1, 0)])) == 0

    def test_backlog_sizes_the_fleet(self):
        # 6 pending / 2-per-worker => want 3, have 1 => +2.
        assert self.policy.decide(
            _status(pending=6, workers=[(1, 1)])) == 2

    def test_growth_clamped_at_max(self):
        assert self.policy.decide(
            _status(pending=100, workers=[(1, 1)])) == 3
        assert self.policy.decide(
            _status(pending=100,
                    workers=[(1, 1)] * 4)) == 0

    def test_wait_tail_breach_adds_one_even_when_queue_shallow(self):
        # want-by-backlog (1) < fleet (2), but the p95 breach asks for
        # one more anyway.
        assert self.policy.decide(
            _status(pending=1, workers=[(1, 1), (1, 1)], p95=2.5)) == 1

    def test_wait_tail_within_budget_does_not_grow(self):
        assert self.policy.decide(
            _status(pending=1, workers=[(1, 1), (1, 1)], p95=0.5)) == 0

    def test_drain_retires_idle_down_to_min(self):
        assert self.policy.decide(
            _status(workers=[(1, 0), (1, 0), (1, 0)])) == -2

    def test_busy_workers_never_retired(self):
        assert self.policy.decide(
            _status(workers=[(1, 1), (1, 1), (1, 0)])) == -1
        assert self.policy.decide(
            _status(workers=[(1, 1), (1, 1), (1, 1)])) == 0

    def test_retiring_workers_excluded_from_fleet(self):
        # A retiring worker announces slots=0: it neither blocks
        # scale-up toward min nor counts as retirable capacity.
        status = _status(workers=[(0, 1), (1, 0)])
        assert fleet_size(status) == 1
        assert self.policy.decide(status) == 0
        assert self.policy.decide(_status(workers=[(0, 1)])) == 1

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            AutoscalePolicy(min_workers=3, max_workers=1)
        with pytest.raises(ValueError):
            AutoscalePolicy(min_workers=-1, max_workers=2)
        with pytest.raises(ValueError):
            AutoscalePolicy(backlog_per_worker=0.0)


# ----------------------------------------------------------------------
# Hysteresis, in virtual time
# ----------------------------------------------------------------------
class _FakeDriver:
    def __init__(self):
        self.calls = []

    def scale_up(self, n):
        self.calls.append(("up", n))

    def scale_down(self, n):
        self.calls.append(("down", n))


class _FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


def _engine(min_workers=1, max_workers=4, up=1.0, down=5.0):
    driver, clock = _FakeDriver(), _FakeClock()
    policy = AutoscalePolicy(min_workers=min_workers,
                             max_workers=max_workers,
                             backlog_per_worker=2.0,
                             up_cooldown_sec=up, down_cooldown_sec=down)
    return Autoscaler(policy, driver, clock=clock), driver, clock


def test_up_cooldown_suppresses_rapid_growth():
    scaler, driver, clock = _engine()
    spike = _status(pending=8, workers=[(1, 1)])
    assert scaler.tick(spike) == 3
    # Same spike a blink later: held, not reapplied.
    clock.now += 0.2
    assert scaler.tick(spike) == 0
    clock.now += 1.0
    assert scaler.tick(spike) == 3
    assert driver.calls == [("up", 3), ("up", 3)]
    assert scaler.scaled_up == 6 and scaler.scaled_down == 0


def test_scale_down_blocked_while_recent_up_warms():
    """A spike's trailing edge cannot immediately undo its leading
    edge: down waits out ``down_cooldown`` from the *last action*,
    up or down."""
    scaler, driver, clock = _engine(up=0.5, down=5.0)
    assert scaler.tick(_status(pending=8, workers=[(1, 1)])) == 3
    drained = _status(workers=[(1, 0)] * 4)
    clock.now += 1.0  # past up_cooldown, well inside down_cooldown
    assert scaler.tick(drained) == 0
    clock.now += 5.0
    assert scaler.tick(drained) == -3
    clock.now += 1.0  # down_cooldown applies between downs too
    assert scaler.tick(_status(workers=[(1, 0), (1, 0)])) == 0
    assert driver.calls == [("up", 3), ("down", 3)]
    assert scaler.scaled_down == 3


def test_zero_delta_never_touches_cooldowns():
    scaler, driver, clock = _engine()
    steady = _status(workers=[(1, 0)])
    for _ in range(5):
        assert scaler.tick(steady) == 0
        clock.now += 0.01
    assert driver.calls == []
    assert scaler.ticks == 5


def test_parse_autoscale():
    assert parse_autoscale("2:6") == (2, 6)
    assert parse_autoscale("0:1") == (0, 1)
    for bad in ("6:2", "-1:4", "3", "a:b", ":", "2:"):
        with pytest.raises(ValueError):
            parse_autoscale(bad)


# ----------------------------------------------------------------------
# End to end: an elastic LocalCluster
# ----------------------------------------------------------------------
def _fleet(cluster):
    return fleet_size(cluster.coordinator.status())


def test_cluster_grows_on_spike_and_shrinks_on_drain():
    """Queue-depth spike spawns workers up to max; the drained fleet
    retires back to min; cooperative retirement loses no lease."""
    policy = AutoscalePolicy(min_workers=1, max_workers=3,
                             backlog_per_worker=2.0,
                             up_cooldown_sec=0.05,
                             down_cooldown_sec=0.15)
    with LocalCluster(n_workers=0, slots=1, autoscale=policy,
                      autoscale_period=0.05) as cluster:
        # Bootstrap: 0 workers is below min, the policy spawns one.
        _wait_until(lambda: _fleet(cluster) >= 1, what="bootstrap worker")
        runner = cluster.runner()
        jobs = [{"sleep_sec": 0.25, "value": i} for i in range(12)]
        grown = []
        collector = threading.Thread(
            target=lambda: grown.extend(
                runner.map_jobs(sleepy_echo, jobs)))
        collector.start()
        try:
            _wait_until(lambda: _fleet(cluster) >= 3, timeout=20.0,
                        what="fleet growth under backlog")
        finally:
            collector.join(timeout=30.0)
        assert not collector.is_alive()
        assert grown == [job["value"] for job in jobs]
        _wait_until(lambda: _fleet(cluster) == 1, timeout=20.0,
                    what="fleet shrink after drain")
        stats = cluster.coordinator.stats
        assert stats.jobs_requeued == 0
        assert stats.workers_retired >= 2
        assert stats.jobs_completed == 12


def test_retiring_worker_finishes_in_flight_lease():
    """Retirement is drain-then-exit: the in-flight lease completes on
    the retiring worker (no requeue), the worker then disconnects."""
    with LocalCluster(n_workers=1, slots=1) as cluster:
        cluster.wait_for_workers()
        runner = cluster.runner()
        done = []
        collector = threading.Thread(
            target=lambda: done.extend(runner.map_jobs(
                sleepy_echo, [{"sleep_sec": 0.8, "value": 42}])))
        collector.start()
        _wait_until(
            lambda: cluster.coordinator.status()["leased"] == 1,
            what="lease in flight")
        assert cluster.retire_workers(1) == 1
        status = cluster.coordinator.status()
        assert any(w["retiring"] for w in status["workers"])
        assert status["fleet_size"] == 0
        collector.join(timeout=30.0)
        assert done == [42]
        stats = cluster.coordinator.stats
        assert stats.jobs_requeued == 0
        assert stats.workers_retired == 1
        # Drained worker hangs up on its own; nothing left connected.
        _wait_until(
            lambda: not cluster.coordinator.status()["workers"],
            what="retired worker disconnect")


def test_sigkill_during_retire_still_requeues():
    """Cooperative drain is not a liveness assumption: a retiring
    subprocess worker killed mid-drain loses its lease to the requeue
    path like any other crash, and a replacement finishes the job."""
    with LocalCluster(n_workers=1, mode="subprocess", slots=1,
                      worker_timeout=4.0,
                      heartbeat_period=0.2) as cluster:
        cluster.wait_for_workers()
        runner = cluster.runner()
        done = []
        collector = threading.Thread(
            target=lambda: done.extend(runner.map_jobs(
                sleepy_echo, [{"sleep_sec": 3.0, "value": 7}])))
        collector.start()
        _wait_until(
            lambda: cluster.coordinator.status()["leased"] == 1,
            what="lease in flight")
        assert cluster.retire_workers(1) == 1
        cluster.kill_worker(0)  # SIGKILL mid-drain
        cluster.spawn_workers(1)
        collector.join(timeout=60.0)
        assert not collector.is_alive()
        assert done == [7]
        assert cluster.coordinator.stats.jobs_requeued >= 1
