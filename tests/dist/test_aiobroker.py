"""Asyncio-broker-specific coverage.

The synchronous :class:`Coordinator` facade routes *everything* through
:class:`repro.dist.aiobroker.AsyncCoordinator`, so the whole existing
``tests/dist`` suite already exercises the event-loop core.  This file
adds what that suite cannot see:

- the worker-failure core cases driven at the **wire level** with bare
  sockets (a no-goodbye disconnect mid-lease, a hung lease expiring,
  and the late result from the original holder being dropped), so the
  lease state machine is pinned independently of ``WorkerAgent``;
- the compressed/uncompressed **interop matrix** through a full
  campaign (a compression-enabled coordinator must serve plain peers);
- the status broadcaster's **shared-snapshot** bound: snapshot
  construction scales with ticks, not ticks x subscribers;
- a concurrent-connection ramp smoke (hundreds of idle clients on one
  loop -- the scale the threaded broker could not hold; the full
  1000-client ramp is benchmarked in ``benchmarks/hotpath.py``).
"""

import socket
import threading
import time

import pytest

from repro.dist import LocalCluster
from repro.dist import coordinator as coordinator_mod
from repro.dist.cluster import sleepy_echo
from repro.dist.coordinator import Coordinator
from repro.dist.protocol import (
    dumps_payload,
    loads_payload,
    pack_blob_list,
    recv_message,
    send_message,
    unpack_blob_list,
)


def _wait_until(predicate, timeout=15.0, period=0.02, what="condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() >= deadline:
            raise TimeoutError(f"timed out waiting for {what}")
        time.sleep(period)


def _echo(x):
    return x


# ----------------------------------------------------------------------
# Wire-level fakes: a worker and a client as bare sockets
# ----------------------------------------------------------------------
def _fake_worker(address, slots=1, name="fake-worker", features=()):
    sock = coordinator_mod.connect(address, role="worker", name=name,
                                   slots=slots, features=features or None)
    sock.settimeout(10.0)
    header, _ = recv_message(sock)
    assert header["type"] == "welcome"
    return sock


def _fake_client(address, name="fake-client"):
    sock = coordinator_mod.connect(address, role="client", name=name)
    sock.settimeout(10.0)
    header, _ = recv_message(sock)
    assert header["type"] == "welcome"
    return sock


def _submit(client, values, max_attempts=None):
    header = {"type": "submit",
              "job_ids": [f"j{i}" for i in range(len(values))]}
    if max_attempts is not None:
        header["max_attempts"] = max_attempts
    blobs = [dumps_payload((_echo, v)) for v in values]
    send_message(client, header, pack_blob_list(blobs))


def _recv_job(worker):
    while True:
        header, payload = recv_message(worker)
        if header["type"] == "job":
            return header, payload
        assert header["type"] != "shutdown"


def _heartbeat_forever(worker, stop, period=0.1):
    while not stop.wait(period):
        try:
            send_message(worker, {"type": "heartbeat"})
        except OSError:
            return


# ----------------------------------------------------------------------
# Failure-core ports (no-goodbye kill, hung lease, late result)
# ----------------------------------------------------------------------
def test_mid_lease_disconnect_requeues_to_survivor():
    """A worker that vanishes without goodbye (the SIGKILL signature on
    the wire) loses its lease to the surviving worker."""
    with Coordinator(worker_timeout=5.0) as coordinator:
        victim = _fake_worker(coordinator.address, name="victim")
        client = _fake_client(coordinator.address)
        _submit(client, [41])
        job, payload = _recv_job(victim)  # lease lands on the only worker
        # Die mid-lease: no goodbye, no result.
        victim.close()
        survivor = _fake_worker(coordinator.address, name="survivor")
        job2, payload2 = _recv_job(survivor)
        assert job2["job_id"] == job["job_id"]
        assert job2["attempt"] == job["attempt"] + 1
        send_message(survivor, {"type": "result", "job_id": job2["job_id"],
                                "attempt": job2["attempt"], "ok": True},
                     dumps_payload(_echo(loads_payload(payload2)[1])))
        header, result = recv_message(client)
        assert header["type"] == "result" and header["ok"]
        assert loads_payload(result) == 41
        assert recv_message(client)[0]["type"] == "done"
        assert coordinator.stats.workers_dropped == 1
        assert coordinator.stats.jobs_requeued == 1
        survivor.close(), client.close()


def test_hung_lease_expires_and_late_result_is_dropped():
    """A worker that sits on a lease past the deadline loses the job to
    a peer; its eventual (late) result is counted ignored, not
    delivered twice."""
    with Coordinator(lease_timeout=0.5, worker_timeout=30.0) as coordinator:
        hung = _fake_worker(coordinator.address, name="hung")
        stop = threading.Event()
        beat = threading.Thread(target=_heartbeat_forever,
                                args=(hung, stop), daemon=True)
        beat.start()  # chatty heartbeats: only the *lease* is hung
        client = _fake_client(coordinator.address)
        _submit(client, ["slowpoke"])
        job, payload = _recv_job(hung)
        # Do nothing: the reaper must take the lease back on deadline.
        rescuer = _fake_worker(coordinator.address, name="rescuer")
        job2, payload2 = _recv_job(rescuer)
        assert job2["job_id"] == job["job_id"]
        assert job2["attempt"] == job["attempt"] + 1
        send_message(rescuer, {"type": "result", "job_id": job2["job_id"],
                               "attempt": job2["attempt"], "ok": True},
                     dumps_payload("rescued"))
        header, result = recv_message(client)
        assert header["ok"] and loads_payload(result) == "rescued"
        assert recv_message(client)[0]["type"] == "done"
        # The hung worker finally answers: a late result for a settled
        # job is dropped, and the client sees exactly one result.
        ignored_before = coordinator.stats.results_ignored
        send_message(hung, {"type": "result", "job_id": job["job_id"],
                            "attempt": job["attempt"], "ok": True},
                     dumps_payload("too late"))
        _wait_until(lambda: coordinator.stats.results_ignored
                    > ignored_before, what="the late result to be dropped")
        client.settimeout(0.3)
        with pytest.raises((TimeoutError, socket.timeout, OSError)):
            recv_message(client)  # nothing else arrives
        stop.set()
        hung.close(), rescuer.close(), client.close()


def test_attempt_budget_exhaustion_fails_the_job():
    """Every worker that touches the job dies: after max_attempts
    grants the client gets a failed result, not an infinite retry."""
    with Coordinator(worker_timeout=5.0) as coordinator:
        client = _fake_client(coordinator.address)
        _submit(client, ["doomed"], max_attempts=2)
        for _ in range(2):
            worker = _fake_worker(coordinator.address)
            _recv_job(worker)
            worker.close()  # mid-lease death, attempt burned
        header, _ = recv_message(client)
        assert header["type"] == "result" and not header["ok"]
        assert "2 attempt(s)" in header["error"]
        assert recv_message(client)[0]["type"] == "done"
        assert coordinator.stats.jobs_failed == 1
        client.close()


# ----------------------------------------------------------------------
# Interop matrix: compressed coordinator, plain peers (and vice versa)
# ----------------------------------------------------------------------
def test_uncompressed_peers_against_compression_enabled_coordinator():
    """A cluster that never advertises zlib runs a full campaign
    against the (always compression-capable) coordinator."""
    with LocalCluster(n_workers=2, slots=2, compress=False) as cluster:
        cluster.wait_for_workers()
        values = cluster.runner().map_jobs(
            sleepy_echo, [{"value": i} for i in range(10)])
        assert values == list(range(10))


def test_mixed_compressed_and_plain_peers_share_one_campaign():
    """A zlib+batch worker and a plain worker serve the same batch; a
    plain client collects it.  Every pairing decodes every frame."""
    with Coordinator() as coordinator:
        from repro.dist.worker import WorkerAgent

        agents = [
            WorkerAgent(coordinator.address, processes=0, slots=2,
                        name="plain", compress=False).start(),
            WorkerAgent(coordinator.address, processes=0, slots=2,
                        name="rich", compress=True).start(),
        ]
        try:
            _wait_until(lambda: len(coordinator.status()["workers"]) == 2,
                        what="both workers to register")
            from repro.dist.runner import DistributedCampaignRunner

            with DistributedCampaignRunner(coordinator.address,
                                           compress=False) as runner:
                # Payloads fat enough to cross the compression floor.
                jobs = [{"value": "x" * 2000 + str(i)} for i in range(24)]
                values = runner.map_jobs(sleepy_echo, jobs)
                assert values == [j["value"] for j in jobs]
        finally:
            for agent in agents:
                agent.stop()


# ----------------------------------------------------------------------
# Broadcaster: one snapshot per tick, shared across subscribers
# ----------------------------------------------------------------------
def test_broadcaster_builds_one_snapshot_per_tick_not_per_subscriber():
    """5 subscribers at the same period: updates fan out per
    subscriber, snapshots are built once per broadcast round."""
    n_subs = 5
    with Coordinator() as coordinator:
        subs = []
        for i in range(n_subs):
            sock = _fake_client(coordinator.address, name=f"sub-{i}")
            send_message(sock, {"type": "subscribe", "period": 0.1})
            header, _ = recv_message(sock)
            assert header["type"] == "subscribed"
            subs.append(sock)
        core = coordinator.core
        built_before = core.snapshots_built
        sent_before = core.status_updates_sent
        # Let every subscriber receive a handful of pushes.
        for sock in subs:
            for _ in range(3):
                header, _ = recv_message(sock)
                assert header["type"] == "status_update"
        built = core.snapshots_built - built_before
        sent = core.status_updates_sent - sent_before
        assert built >= 3
        assert sent >= 3 * n_subs
        # The regression bound: construction tracks broadcast rounds
        # (every round served all 5 due subscribers from one snapshot),
        # NOT rounds x subscribers.
        assert built * (n_subs - 1) < sent
        for sock in subs:
            sock.close()


# ----------------------------------------------------------------------
# Concurrency smoke: hundreds of idle clients on one loop
# ----------------------------------------------------------------------
def test_hundred_concurrent_idle_clients_echo_status():
    """100 simultaneously-open client connections, all answered; a
    status round-trip stays live underneath them.  (The 1000-client
    ramp with latency bounds runs in benchmarks/hotpath.py.)"""
    from concurrent.futures import ThreadPoolExecutor

    with Coordinator() as coordinator:
        socks = []
        try:
            def dial(i):
                return _fake_client(coordinator.address, name=f"idle-{i}")

            with ThreadPoolExecutor(max_workers=16) as pool:
                socks = list(pool.map(dial, range(100)))
            status = coordinator.status()
            assert status["clients"] == 100
            # Echo round-trip under the idle herd.
            probe = socks[0]
            send_message(probe, {"type": "status"})
            header, _ = recv_message(probe)
            assert header["type"] == "status"
            assert header["status"]["clients"] == 100
        finally:
            for sock in socks:
                sock.close()
        _wait_until(lambda: coordinator.status()["clients"] == 0,
                    what="idle clients to drain")


def test_batched_job_frames_preserve_result_order():
    """A batch-negotiated worker fed a job_batch frame returns results
    that map_jobs still orders correctly."""
    with LocalCluster(n_workers=1, slots=16) as cluster:
        cluster.wait_for_workers()
        values = cluster.runner().map_jobs(
            sleepy_echo, [{"value": i} for i in range(64)])
        assert values == list(range(64))


def test_request_stop_before_run_exits_promptly():
    """A stop requested before the loop ever runs must still be
    honoured: run() has to observe the pre-set _stopping flag instead
    of waiting forever on a fresh event."""
    import asyncio

    from repro.dist.aiobroker import AsyncCoordinator

    listener = socket.create_server(("127.0.0.1", 0), backlog=8)
    listener.setblocking(False)
    core = AsyncCoordinator(listener)
    core.request_stop()

    async def main():
        await asyncio.wait_for(core.run(), timeout=5.0)

    asyncio.run(main())


def test_job_batch_grants_split_at_the_byte_budget(monkeypatch):
    """A grant round whose payloads sum past BATCH_BYTES_BUDGET ships
    as several job_batch frames, each within the budget -- one giant
    frame would trip the pack_message cap and kill the dispatch."""
    from repro.dist import protocol as protocol_mod

    monkeypatch.setattr(protocol_mod, "BATCH_BYTES_BUDGET", 4096)
    with Coordinator() as coordinator:
        worker = _fake_worker(coordinator.address, slots=8,
                              features=("batch",))
        client = _fake_client(coordinator.address)
        _submit(client, ["x" * 1500 for _ in range(8)])
        got, frames = 0, 0
        while got < 8:
            header, payload = recv_message(worker)
            if header["type"] == "job_batch":
                blobs = unpack_blob_list(payload)
                assert len(blobs) == len(header["jobs"])
                assert sum(len(b) for b in blobs) <= 4096
                got += len(blobs)
            else:
                assert header["type"] == "job"
                got += 1
            frames += 1
        assert frames > 1  # the round really split, all jobs arrived
        client.close(), worker.close()


def test_client_driven_shutdown_sets_stopped_event():
    """The facade's _stopped event fires on a client shutdown frame
    (the CLI's serve_forever unblocks on it)."""
    coordinator = Coordinator().start()
    client = _fake_client(coordinator.address)
    send_message(client, {"type": "shutdown"})
    header, _ = recv_message(client)
    assert header["type"] == "stopping"
    _wait_until(coordinator._stopped.is_set, what="stop event")
    client.close()
    coordinator.stop()


# ----------------------------------------------------------------------
# Multi-tenant parity: fair-share scheduling must not touch results
# ----------------------------------------------------------------------
def test_three_tenant_mixed_weights_byte_identical_to_solo():
    """Three tenants at weights 1/2/4 share one fleet concurrently;
    each tenant's summary and records are byte-identical to its own
    solo serial run.  The arbiter may reorder *grants* freely --
    determinism lives in (scenario, seed), never in scheduling."""
    import json

    from repro.scenarios import CampaignRunner, Scenario, sweep
    from repro.scenarios.stock import fast_hil

    def grid(tag, seeds):
        base = Scenario(f"tenant-{tag}", hil=fast_hil(),
                        duration_sec=2.0)
        return sweep([base], seeds=seeds)

    tenants = [("w1", 1.0, [11, 12]), ("w2", 2.0, [21, 22]),
               ("w4", 4.0, [41, 42])]
    solo = {tag: CampaignRunner(parallel=False).run(grid(tag, seeds))
            for tag, _w, seeds in tenants}
    shared = {}
    with LocalCluster(n_workers=2, slots=2) as cluster:
        cluster.wait_for_workers()

        def run_tenant(tag, weight, seeds):
            shared[tag] = cluster.runner(
                weight=weight, name=tag).run(grid(tag, seeds))

        threads = [threading.Thread(target=run_tenant, args=t)
                   for t in tenants]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120.0)
            assert not t.is_alive()
    for tag, _w, _seeds in tenants:
        assert not shared[tag].failed
        assert json.dumps(shared[tag].summary, sort_keys=True) == \
            json.dumps(solo[tag].summary, sort_keys=True)
        assert json.dumps([r["metrics"] for r in shared[tag].records],
                          sort_keys=True) == \
            json.dumps([r["metrics"] for r in solo[tag].records],
                       sort_keys=True)
