"""Framing unit tests: pack/recv round-trips, malformed-frame guards."""

import socket
import threading

import pytest

from repro.dist.protocol import (
    ConnectionClosed,
    ProtocolError,
    dumps_payload,
    loads_payload,
    pack_blob_list,
    pack_message,
    parse_address,
    recv_message,
    send_message,
    unpack_blob_list,
)


def _pipe() -> tuple[socket.socket, socket.socket]:
    return socket.socketpair()


def test_roundtrip_header_only():
    a, b = _pipe()
    send_message(a, {"type": "heartbeat"})
    header, payload = recv_message(b)
    assert header == {"type": "heartbeat"}
    assert payload == b""
    a.close(), b.close()


def test_roundtrip_header_and_payload():
    a, b = _pipe()
    value = {"metrics": [1.5, 2.5], "name": "run"}
    send_message(a, {"type": "result", "job_id": "j1", "ok": True},
                 dumps_payload(value))
    header, payload = recv_message(b)
    assert header["job_id"] == "j1"
    assert loads_payload(payload) == value
    a.close(), b.close()


def test_multiple_frames_stream_in_order():
    a, b = _pipe()
    for i in range(5):
        send_message(a, {"type": "job", "seq": i})
    for i in range(5):
        header, _ = recv_message(b)
        assert header["seq"] == i
    a.close(), b.close()


def test_eof_mid_frame_raises_connection_closed():
    a, b = _pipe()
    frame = pack_message({"type": "job"}, b"x" * 100)
    a.sendall(frame[: len(frame) // 2])
    a.close()
    with pytest.raises(ConnectionClosed):
        recv_message(b)
    b.close()


def test_eof_between_frames_raises_connection_closed():
    a, b = _pipe()
    a.close()
    with pytest.raises(ConnectionClosed):
        recv_message(b)
    b.close()


def test_implausible_length_prefix_rejected():
    a, b = _pipe()
    a.sendall((2 ** 31).to_bytes(4, "big"))
    with pytest.raises(ProtocolError):
        recv_message(b)
    a.close(), b.close()


def test_header_must_be_json_object_with_type():
    a, b = _pipe()
    head = b"[1,2,3]"
    body = len(head).to_bytes(4, "big") + head
    a.sendall((len(body)).to_bytes(4, "big") + body)
    with pytest.raises(ProtocolError):
        recv_message(b)
    a.close(), b.close()


def test_header_length_cannot_exceed_frame():
    a, b = _pipe()
    body = (1000).to_bytes(4, "big") + b"{}"
    a.sendall(len(body).to_bytes(4, "big") + body)
    with pytest.raises(ProtocolError):
        recv_message(b)
    a.close(), b.close()


def test_large_payload_roundtrip_threaded():
    """A payload bigger than any single recv() chunk reassembles."""
    a, b = _pipe()
    blob = bytes(range(256)) * 40_000  # ~10 MB
    received = {}

    def reader():
        received["frame"] = recv_message(b)

    thread = threading.Thread(target=reader)
    thread.start()
    send_message(a, {"type": "result"}, blob)
    thread.join(timeout=30)
    header, payload = received["frame"]
    assert header == {"type": "result"}
    assert payload == blob
    a.close(), b.close()


@pytest.mark.parametrize("text,expected", [
    ("127.0.0.1:7461", ("127.0.0.1", 7461)),
    ("example.org:80", ("example.org", 80)),
    ("myhost", ("myhost", 7461)),
    (":9000", ("127.0.0.1", 9000)),
    ("::1", ("::1", 7461)),
    ("[::1]:9000", ("::1", 9000)),
    ("[fe80::2]", ("fe80::2", 7461)),
])
def test_parse_address(text, expected):
    assert parse_address(text) == expected


def test_parse_address_rejects_unterminated_bracket():
    with pytest.raises(ValueError):
        parse_address("[::1:9000")


@pytest.mark.parametrize("blobs", [
    [],
    [b""],
    [b"a"],
    [b"one", b"", b"three" * 1000],
])
def test_blob_list_roundtrip(blobs):
    assert unpack_blob_list(pack_blob_list(blobs)) == blobs


def test_blob_list_rejects_truncation():
    packed = pack_blob_list([b"hello", b"world"])
    with pytest.raises(ProtocolError):
        unpack_blob_list(packed[:-2])
    with pytest.raises(ProtocolError):
        unpack_blob_list(packed + b"\x00\x00")
