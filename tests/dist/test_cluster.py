"""End-to-end conformance: LocalCluster campaigns match local runs.

The acceptance bar for the subsystem: a ``DistributedCampaignRunner``
over a 2+-worker cluster produces **byte-identical** ``summarize()``
output to the local ``CampaignRunner`` on the same seeded scenario
grid, honours the staged-commit store contract, and keeps the
``map_jobs`` ordering/streaming contracts.
"""

import json

import pytest

from repro.dist import DistributedCampaignRunner, LocalCluster
from repro.dist.cluster import sleepy_echo
from repro.scenarios import CampaignRunner, ResultsStore, Scenario
from repro.scenarios.stock import fast_hil


def _double(x):
    return 2 * x


def _grid(n=4, duration_sec=3.0):
    return [Scenario(f"dist-{i % 2}", hil=fast_hil(), seed=i,
                     duration_sec=duration_sec) for i in range(n)]


@pytest.fixture(scope="module")
def cluster():
    with LocalCluster(n_workers=2, slots=2) as cluster:
        cluster.wait_for_workers()
        yield cluster


def test_map_jobs_preserves_job_order(cluster):
    runner = cluster.runner()
    # Staggered sleeps force out-of-order completion; results must come
    # back in job order regardless.
    jobs = [{"sleep_sec": 0.3 - 0.05 * i, "value": i} for i in range(6)]
    assert runner.map_jobs(sleepy_echo, jobs) == list(range(6))


def test_map_jobs_on_result_streams_with_index_identity(cluster):
    runner = cluster.runner()
    seen = []
    results = runner.map_jobs(_double, list(range(8)),
                              on_result=lambda i, r: seen.append((i, r)))
    assert results == [2 * i for i in range(8)]
    # Completion order is scheduling-dependent, but every (index,
    # result) pair is delivered exactly once and self-consistent.
    assert sorted(seen) == [(i, 2 * i) for i in range(8)]


def test_map_jobs_empty_grid(cluster):
    assert cluster.runner().map_jobs(_double, []) == []


def test_sequential_campaigns_reuse_one_connection(cluster):
    runner = cluster.runner()
    assert runner.map_jobs(_double, [1, 2]) == [2, 4]
    assert runner.map_jobs(_double, [3]) == [6]
    status = runner.status()
    assert status["pending"] == 0 and status["leased"] == 0


def test_run_summary_byte_identical_to_local(cluster, tmp_path):
    """The headline acceptance criterion."""
    grid = _grid(4)
    local = CampaignRunner(parallel=False,
                           results_dir=str(tmp_path / "local")).run(grid)
    dist = cluster.runner(results_dir=str(tmp_path / "dist")).run(grid)
    assert not dist.failed
    assert json.dumps(dist.summary, sort_keys=True) == \
        json.dumps(local.summary, sort_keys=True)
    assert json.dumps([r["metrics"] for r in dist.records],
                      sort_keys=True) == \
        json.dumps([r["metrics"] for r in local.records], sort_keys=True)
    # And the persisted stores agree record-for-record.
    assert ResultsStore(tmp_path / "dist").load_runs() == \
        ResultsStore(tmp_path / "local").load_runs()
    assert ResultsStore(tmp_path / "dist").load_summary() == local.summary


def test_run_on_result_streams_records(cluster):
    grid = _grid(3)
    seen = []
    result = cluster.runner().run(grid, on_result=seen.append)
    assert sorted(r["run_id"] for r in seen) == \
        sorted(r["run_id"] for r in result.records)
    assert len(result.records) == 3


def test_local_runner_on_result_in_submission_order(tmp_path):
    """The local twin fires the callback in job order (satellite)."""
    grid = _grid(3)
    seen = []
    with CampaignRunner(parallel=False) as runner:
        result = runner.run(grid, on_result=seen.append)
    assert [r["run_id"] for r in seen] == \
        [r["run_id"] for r in result.records]
    indexed = []
    with CampaignRunner(max_workers=2) as runner:
        doubled = runner.map_jobs(_double, [5, 6, 7],
                                  on_result=lambda i, r:
                                  indexed.append((i, r)))
    assert doubled == [10, 12, 14]
    assert indexed == [(0, 10), (1, 12), (2, 14)]


def test_widegrid_campaign_routes_through_dist_runner(cluster):
    """The wide-grid specs ship over the wire unchanged and digest
    identically to a serial local run."""
    from repro.experiments.widegrid import (
        WideGridConfig,
        WideGridTrialSpec,
        run_widegrid_campaign,
    )

    specs = [
        WideGridTrialSpec(kind="placement",
                          config=WideGridConfig(n_nodes=16, seed=3,
                                                duration_sec=5.0)),
        WideGridTrialSpec(kind="placement",
                          config=WideGridConfig(n_nodes=16, seed=4,
                                                duration_sec=5.0)),
    ]
    local = run_widegrid_campaign(specs)
    dist = run_widegrid_campaign(specs, runner=cluster.runner())
    assert json.dumps(dist, sort_keys=True) == \
        json.dumps(local, sort_keys=True)


def test_concurrent_clients_do_not_cross_wires(cluster):
    """Two clients submit batches with colliding job ids at the same
    time: the broker namespaces jobs per client, so each client gets
    exactly its own results."""
    import threading

    runner_a = cluster.runner()
    runner_b = cluster.runner()
    out = {}

    def go(tag, runner, offset):
        jobs = [{"sleep_sec": 0.1, "value": offset + i} for i in range(6)]
        out[tag] = runner.map_jobs(sleepy_echo, jobs)

    threads = [threading.Thread(target=go, args=("a", runner_a, 0)),
               threading.Thread(target=go, args=("b", runner_b, 100))]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert out["a"] == list(range(6))
    assert out["b"] == [100 + i for i in range(6)]


def test_job_exception_raises_distributed_job_error(cluster):
    from repro.dist import DistributedJobError

    runner = cluster.runner()
    with pytest.raises(DistributedJobError) as excinfo:
        runner.map_jobs(_raise_on_odd, [2, 3, 4])
    assert len(excinfo.value.failures) == 1
    assert "odd" in excinfo.value.failures[0][1]
    # The connection survives a failed batch.
    assert runner.map_jobs(_double, [1]) == [2]


def _raise_on_odd(x):
    if x % 2:
        raise ValueError(f"odd value {x}")
    return x


def _unpicklable_result(_x):
    return lambda: None  # lambdas don't pickle


def test_unpicklable_result_fails_fast_not_by_timeout(cluster):
    """A result pickle rejects is a deterministic job defect: it must
    come back as an immediate failed result (with the serialization
    traceback), not hang until the lease deadline."""
    from repro.dist import DistributedJobError

    runner = cluster.runner()
    with pytest.raises(DistributedJobError) as excinfo:
        runner.map_jobs(_unpicklable_result, [1])
    (_, error), = excinfo.value.failures
    assert "pickle" in error.lower() or "Error" in error
    assert "lease" not in error  # not a timeout masquerade


def test_shutdown_coordinator_stops_cluster():
    with LocalCluster(n_workers=1) as cluster:
        cluster.wait_for_workers()
        runner = DistributedCampaignRunner(cluster.address)
        assert runner.map_jobs(_double, [21]) == [42]
        runner.shutdown_coordinator()
        assert cluster.coordinator._stopped.is_set()
