"""Worker failure modes: kill, hang, silence, poison jobs.

Every test drives a real coordinator over real sockets; "kill a worker
mid-lease" uses the subprocess cluster mode so the death is a genuine
SIGKILL, exactly what a crashed remote host looks like from the
broker's side.
"""

import json
import os
import threading
import time

import pytest

from repro.dist import (
    DistributedJobError,
    LocalCluster,
    WorkerAgent,
)
from repro.dist.cluster import sleepy_echo
from repro.scenarios import CampaignRunner, ResultsStore, Scenario
from repro.scenarios.stock import fast_hil


def _wait_until(predicate, timeout=15.0, period=0.02, what="condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() >= deadline:
            raise TimeoutError(f"timed out waiting for {what}")
        time.sleep(period)


def _grid(n=4, duration_sec=3.0):
    return [Scenario(f"fail-{i % 2}", hil=fast_hil(), seed=i,
                     duration_sec=duration_sec) for i in range(n)]


def _double(x):
    return 2 * x


def _kill_executing_process(_arg):
    """Poison pill: takes down the pool child executing it, every time."""
    os._exit(1)


# ----------------------------------------------------------------------
# Kill a worker mid-lease (the acceptance scenario)
# ----------------------------------------------------------------------
def test_killed_worker_jobs_complete_on_survivors(tmp_path):
    """SIGKILL one of two subprocess workers while it holds leases: the
    coordinator requeues them, the survivor finishes the campaign, and
    the previously committed campaign stays intact until the new one
    commits."""
    store_dir = tmp_path / "store"
    previous = CampaignRunner(parallel=False,
                              results_dir=str(store_dir)).run(_grid(2))
    before = json.dumps(ResultsStore(store_dir).load_runs(),
                        sort_keys=True)

    with LocalCluster(n_workers=2, mode="subprocess", processes=1,
                      worker_timeout=5.0, heartbeat_period=0.2) as cluster:
        cluster.wait_for_workers()
        runner = cluster.runner(results_dir=str(store_dir))
        jobs = [{"sleep_sec": 0.6, "value": i} for i in range(6)]
        outcome = {}

        def campaign():
            outcome["values"] = runner.map_jobs(sleepy_echo, jobs)

        thread = threading.Thread(target=campaign)
        thread.start()
        status = cluster.coordinator.status
        _wait_until(lambda: any(w["inflight"] for w in status()["workers"]),
                    what="a lease to land")
        victim = next(i for i, w in enumerate(status()["workers"])
                      if w["inflight"])
        cluster.kill_worker(victim)
        # Mid-campaign, nothing has touched the committed records.
        assert json.dumps(ResultsStore(store_dir).load_runs(),
                          sort_keys=True) == before
        thread.join(timeout=60)
        assert outcome["values"] == list(range(6))
        stats = status()["stats"]
        assert stats["workers_dropped"] >= 1
        assert stats["jobs_requeued"] >= 1
        assert stats["jobs_completed"] == 6
    # map_jobs does not write the store: the earlier commit survives.
    assert json.dumps(ResultsStore(store_dir).load_runs(),
                      sort_keys=True) == before
    assert ResultsStore(store_dir).load_summary() == previous.summary


# ----------------------------------------------------------------------
# Bounded retries -> failed-run record
# ----------------------------------------------------------------------
def test_poison_job_burns_attempts_then_fails(tmp_path):
    """A job that kills every pool child executing it is retried
    ``max_attempts`` times and then reported as failed -- while the
    healthy jobs in the same grid complete and commit."""
    with LocalCluster(n_workers=2, processes=1,
                      max_attempts=2) as cluster:
        cluster.wait_for_workers()
        runner = cluster.runner(max_attempts=2)
        with pytest.raises(DistributedJobError) as excinfo:
            runner.map_jobs(_kill_executing_process, [None])
        (job_id, error), = excinfo.value.failures
        assert job_id == "j000000"
        assert "2 attempt" in error
        stats = cluster.coordinator.status()["stats"]
        assert stats["jobs_failed"] == 1
        assert stats["jobs_requeued"] == 1  # attempt 1 -> requeue -> fail


def _crash_child_on_seed1(job):
    """Module-level sabotage (pickles by reference; pool children fork
    from this process): seed 1 kills its executor child every time."""
    from repro.scenarios.runner import _run_record

    _run_id, scenario = job
    if scenario.seed == 1:
        os._exit(1)
    return _run_record(job)


def test_run_records_failed_runs_and_commits_survivors(tmp_path,
                                                       monkeypatch):
    """``run`` on a grid with one permanently-failing scenario commits
    the surviving records plus an error record, and lists the loss on
    ``CampaignResult.failed`` instead of raising."""
    import repro.dist.runner as dist_runner_mod

    with LocalCluster(n_workers=2, processes=1,
                      max_attempts=2) as cluster:
        cluster.wait_for_workers()
        runner = cluster.runner(results_dir=str(tmp_path),
                                max_attempts=2)
        grid = _grid(3)
        # run() ships whatever ``_run_record`` names in its module, so
        # swapping the symbol routes the same jobs through the
        # sabotaged twin.
        monkeypatch.setattr(dist_runner_mod, "_run_record",
                            _crash_child_on_seed1)
        result = runner.run(grid)
    assert len(result.records) == 2
    assert len(result.failed) == 1
    assert result.failed[0]["run_id"].startswith("001_")
    assert "attempt" in result.failed[0]["error"]
    store = ResultsStore(tmp_path)
    runs = store.load_runs()
    assert len(runs) == 3
    errors = [r for r in runs if "error" in r]
    assert len(errors) == 1 and errors[0]["scenario"]["seed"] == 1
    # total_runs counts completed runs only; failed ones are listed.
    assert store.load_summary()["total_runs"] == 2
    # Re-summarizing the persisted mix skips the error record cleanly.
    from repro.scenarios import summarize

    assert summarize(runs)["total_runs"] == 2


# ----------------------------------------------------------------------
# Hangs and silence
# ----------------------------------------------------------------------
def test_lease_deadline_requeues_hung_job():
    """A worker that sits on a lease past the deadline loses it even
    though its heartbeat thread is alive; the job completes elsewhere
    (first result wins, the duplicate is ignored)."""
    with LocalCluster(n_workers=2, lease_timeout=0.4) as cluster:
        cluster.wait_for_workers()
        runner = cluster.runner()
        values = runner.map_jobs(sleepy_echo,
                                 [{"sleep_sec": 1.0, "value": "slow"}])
        assert values == ["slow"]
        stats = cluster.coordinator.status()["stats"]
        assert stats["jobs_requeued"] >= 1
        assert stats["jobs_completed"] == 1


def test_expired_lease_retries_on_a_different_worker():
    """After a lease deadline fires, the retry must land on a worker
    other than the one that timed out (which would just queue the job
    behind whatever wedged it).  With a 2-grant budget and a job that
    can never finish inside the lease, the observed lease-holder
    sequence is exactly [first worker, other worker]."""
    with LocalCluster(n_workers=2, lease_timeout=0.5,
                      max_attempts=2) as cluster:
        cluster.wait_for_workers()
        runner = cluster.runner(max_attempts=2)

        def campaign():
            try:
                runner.map_jobs(sleepy_echo,
                                [{"sleep_sec": 4.0, "value": "x"}])
            except Exception:
                pass  # a 4 s job can never beat a 0.5 s lease; the
                # test only observes *where* the retries land

        thread = threading.Thread(target=campaign)
        thread.start()
        status = cluster.coordinator.status
        holders = []
        deadline = time.monotonic() + 15.0
        while (status()["stats"]["jobs_failed"] < 1
               and time.monotonic() < deadline):
            for worker in status()["workers"]:
                if worker["inflight"] and \
                        (not holders or holders[-1] != worker["id"]):
                    holders.append(worker["id"])
            time.sleep(0.01)
        thread.join(timeout=30)
        # Each 0.5 s lease is sampled every ~10 ms, so both grants are
        # observed; the retry went to the other worker.
        assert len(holders) == 2
        assert holders[0] != holders[1]


def test_hung_job_fails_after_attempt_budget():
    """With one worker and a one-grant budget, a lease expiry is a
    permanent failure -- and the worker's eventual late result is
    dropped, not double-delivered."""
    with LocalCluster(n_workers=1, lease_timeout=0.3,
                      max_attempts=1) as cluster:
        cluster.wait_for_workers()
        runner = cluster.runner(max_attempts=1)
        with pytest.raises(DistributedJobError):
            runner.map_jobs(sleepy_echo, [{"sleep_sec": 1.2, "value": 9}])
        _wait_until(
            lambda: cluster.coordinator.status()["stats"]
            ["results_ignored"] >= 1,
            what="the late result to be ignored")


def test_silent_worker_dropped_and_job_rerun():
    """A worker that stops heartbeating is presumed dead: its leases
    requeue onto chatty survivors."""
    with LocalCluster(n_workers=0, worker_timeout=0.6) as cluster:
        silent = WorkerAgent(cluster.address, processes=0,
                             name="silent", heartbeat_period=60.0)
        silent.start()
        cluster.wait_for_workers(n=1)
        runner = cluster.runner()
        outcome = {}

        def campaign():
            outcome["values"] = runner.map_jobs(
                sleepy_echo, [{"sleep_sec": 2.5, "value": "v"}])

        thread = threading.Thread(target=campaign)
        thread.start()
        _wait_until(lambda: cluster.coordinator.status()["stats"]
                    ["workers_dropped"] >= 1,
                    what="the silent worker to be dropped")
        # Now attach a healthy worker; the requeued job lands on it.
        chatty = WorkerAgent(cluster.address, processes=0, name="chatty",
                             heartbeat_period=0.2)
        chatty.start()
        try:
            thread.join(timeout=30)
            assert outcome["values"] == ["v"]
        finally:
            silent.stop()
            chatty.stop()


def test_worker_loss_with_no_survivors_then_recovery():
    """All workers die mid-campaign: jobs wait in the queue (bounded
    only by attempts actually *granted*), and a fresh worker drains
    them -- the campaign blocks, it does not corrupt or complete
    half-done."""
    with LocalCluster(n_workers=1, worker_timeout=5.0) as cluster:
        cluster.wait_for_workers()
        runner = cluster.runner()
        outcome = {}

        def campaign():
            outcome["values"] = runner.map_jobs(
                sleepy_echo,
                [{"sleep_sec": 0.5, "value": i} for i in range(3)])

        thread = threading.Thread(target=campaign)
        thread.start()
        status = cluster.coordinator.status
        _wait_until(lambda: any(w["inflight"] for w in status()["workers"]),
                    what="a lease to land")
        cluster.kill_worker(0)
        _wait_until(lambda: status()["stats"]["workers_dropped"] >= 1,
                    what="the worker drop")
        thread.join(timeout=0.5)
        assert thread.is_alive()  # still waiting, not failed
        fresh = WorkerAgent(cluster.address, processes=0, name="fresh",
                            heartbeat_period=0.2)
        fresh.start()
        try:
            thread.join(timeout=30)
            assert outcome["values"] == [0, 1, 2]
        finally:
            fresh.stop()
