"""Jobs submitted from a ``python -m`` entry point must stay picklable.

``python -m pkg.mod`` runs ``pkg.mod`` as ``__main__``, so job
functions *and* job payload classes defined there pickle as
``__main__.<qualname>`` -- references the worker process (whose
``__main__`` is the worker CLI) cannot resolve, turning the whole
campaign into deterministic unpickle failures.  The client submit path
pickles through ``runner._PortablePickler``, which rebinds such
globals to the importable module runpy records on
``__main__.__spec__``.
"""

import importlib.machinery
import pickle
import subprocess
import sys
import types

import pytest

from repro.dist import LocalCluster
from repro.dist.cluster import sleepy_echo
from repro.dist.runner import _dumps_portable
from repro.experiments.widegrid import WideGridConfig, WideGridTrialSpec


def _fake_main(spec_name, monkeypatch):
    """Install a ``__main__`` shaped like runpy's for ``python -m
    <spec_name>``."""
    fake = types.ModuleType("__main__")
    fake.__spec__ = importlib.machinery.ModuleSpec(spec_name, None)
    monkeypatch.setitem(sys.modules, "__main__", fake)


def _main_alias(fn):
    """A copy of ``fn`` that believes it was defined in ``__main__``."""
    alias = types.FunctionType(
        fn.__code__, fn.__globals__, fn.__name__, fn.__defaults__,
        fn.__closure__)
    alias.__module__ = "__main__"
    alias.__qualname__ = fn.__qualname__
    return alias


def test_portable_pickle_rebinds_main_function(monkeypatch):
    _fake_main("repro.dist.cluster", monkeypatch)
    alias = _main_alias(sleepy_echo)
    with pytest.raises(Exception):
        pickle.loads(pickle.dumps(alias))  # the stock reference is dead
    assert pickle.loads(_dumps_portable(alias)) is sleepy_echo


def test_portable_pickle_rebinds_main_class_instances(monkeypatch):
    _fake_main("repro.experiments.widegrid", monkeypatch)
    monkeypatch.setattr(WideGridTrialSpec, "__module__", "__main__")
    monkeypatch.setattr(WideGridConfig, "__module__", "__main__")
    spec = WideGridTrialSpec(
        kind="failover", config=WideGridConfig(n_nodes=12, seed=1))
    out = pickle.loads(_dumps_portable(spec))
    assert type(out) is WideGridTrialSpec
    assert out == spec


def test_portable_pickle_is_stock_for_importable_objects():
    value = (sleepy_echo, {"value": "x"})
    assert _dumps_portable(value) == pickle.dumps(
        value, protocol=pickle.HIGHEST_PROTOCOL)


def test_portable_pickle_falls_back_without_a_module_spec(monkeypatch):
    fake = types.ModuleType("__main__")  # plain-script shape: no __spec__
    monkeypatch.setitem(sys.modules, "__main__", fake)
    alias = _main_alias(sleepy_echo)
    with pytest.raises(Exception):
        pickle.loads(_dumps_portable(alias))


def test_portable_pickle_falls_back_on_unresolvable_attr(monkeypatch):
    _fake_main("repro.dist.cluster", monkeypatch)
    alias = _main_alias(sleepy_echo)
    alias.__qualname__ = "no_such_function_here"
    with pytest.raises(Exception):
        pickle.loads(_dumps_portable(alias))


def test_widegrid_cli_dist_matches_local_byte_for_byte():
    """The documented surface end to end: ``python -m
    repro.experiments.widegrid --dist`` against a live cluster prints
    exactly what the local serial run prints."""
    argv = [sys.executable, "-m", "repro.experiments.widegrid",
            "--n-nodes", "12", "--seeds", "1", "--duration", "2.0"]
    env = {"PYTHONPATH": "src"}
    local = subprocess.run(
        argv + ["--workers", "0"], env=env, cwd="/root/repo",
        capture_output=True, text=True, timeout=120)
    assert local.returncode == 0, local.stderr
    with LocalCluster(n_workers=2, slots=2) as cluster:
        cluster.wait_for_workers()
        dist = subprocess.run(
            argv + ["--dist", cluster.address], env=env, cwd="/root/repo",
            capture_output=True, text=True, timeout=120)
    assert dist.returncode == 0, dist.stderr
    assert dist.stdout == local.stdout
    assert "widegrid-failover-n12-s1" in dist.stdout
