"""Compressed-frame protocol tests: the zlib flag bit, negotiation,
and the sender/receiver interop matrix.

The load-bearing invariant is that *receivers always accept both
forms*: the compression flag is carried per-frame in the length
prefix, so any mix of compressing and non-compressing peers on one
connection round-trips -- hypothesis drives random headers/payloads
through every flag combination.  The guard tests pin the failure
taxonomy: truncated zlib streams, zlib bombs and oversized frames are
:class:`ProtocolError` (a broken peer), never a hang or an allocation.
"""

import socket
import struct
import zlib

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dist.protocol import (
    COMPRESS_FLAG,
    COMPRESS_MIN_BYTES,
    FEATURE_BATCH,
    FEATURE_ZLIB,
    MAX_FRAME_BYTES,
    ProtocolError,
    negotiate_features,
    pack_message,
    recv_message,
    send_message,
)


def _pipe() -> tuple[socket.socket, socket.socket]:
    return socket.socketpair()


# ----------------------------------------------------------------------
# Negotiation
# ----------------------------------------------------------------------
def test_negotiate_features_is_the_supported_intersection():
    assert negotiate_features([FEATURE_ZLIB, "future-thing"]) == \
        {FEATURE_ZLIB}
    assert negotiate_features([FEATURE_ZLIB, FEATURE_BATCH]) == \
        {FEATURE_ZLIB, FEATURE_BATCH}


@pytest.mark.parametrize("advertised", [None, [], ()])
def test_old_peer_negotiates_nothing(advertised):
    assert negotiate_features(advertised) == set()


# ----------------------------------------------------------------------
# The frame itself
# ----------------------------------------------------------------------
def test_large_frame_actually_compresses_on_the_wire():
    payload = b"A" * 100_000  # maximally compressible
    raw = pack_message({"type": "result"}, payload)
    packed = pack_message({"type": "result"}, payload, compress=True)
    assert len(packed) < len(raw) // 10
    assert struct.unpack(">I", packed[:4])[0] & COMPRESS_FLAG


def test_small_frame_ships_raw_even_when_compression_negotiated():
    packed = pack_message({"type": "heartbeat"}, compress=True)
    assert not struct.unpack(">I", packed[:4])[0] & COMPRESS_FLAG
    assert len(pack_message({"type": "heartbeat"})) == len(packed)


def test_incompressible_frame_ships_raw():
    import random

    payload = random.Random(7).randbytes(8 * COMPRESS_MIN_BYTES)
    packed = pack_message({"type": "result"}, payload, compress=True)
    assert not struct.unpack(">I", packed[:4])[0] & COMPRESS_FLAG


# ----------------------------------------------------------------------
# Interop matrix (hypothesis): any sender flag mix round-trips
# ----------------------------------------------------------------------
_headers = st.fixed_dictionaries(
    {"type": st.sampled_from(["result", "job", "status_update"])},
    optional={
        "job_id": st.text(max_size=20),
        "ok": st.booleans(),
        "attempt": st.integers(min_value=0, max_value=10),
        "error": st.text(max_size=200),
        "nested": st.dictionaries(st.text(max_size=8),
                                  st.integers(), max_size=4),
    })

_payloads = st.one_of(
    st.none(),
    st.binary(max_size=64),
    # Compressible bodies (repeated structure) past the threshold.
    st.binary(min_size=1, max_size=64).map(lambda b: b * 200),
)


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(header=_headers, payload=_payloads,
       sender_flags=st.lists(st.booleans(), min_size=1, max_size=4))
def test_any_flag_mix_roundtrips_on_one_connection(header, payload,
                                                   sender_flags):
    """One connection, several frames, each independently compressed or
    not: the receiver reassembles every frame identically."""
    a, b = _pipe()
    try:
        for flag in sender_flags:
            send_message(a, header, payload, compress=flag)
        for flag in sender_flags:
            got_header, got_payload = recv_message(b)
            assert got_header == header
            assert got_payload == (payload or b"")
    finally:
        a.close(), b.close()


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(payload=st.binary(min_size=1, max_size=32).map(lambda b: b * 300))
def test_compressed_and_raw_encodings_parse_identically(payload):
    """pack(compress=True) and pack() decode to the same frame."""
    header = {"type": "result", "ok": True}
    for packed in (pack_message(header, payload),
                   pack_message(header, payload, compress=True)):
        a, b = _pipe()
        try:
            a.sendall(packed)
            got_header, got_payload = recv_message(b)
            assert got_header == header
            assert got_payload == payload
        finally:
            a.close(), b.close()


# ----------------------------------------------------------------------
# Rejection guards
# ----------------------------------------------------------------------
def _send_compressed_body(sock: socket.socket, body: bytes) -> None:
    sock.sendall(struct.pack(">I", len(body) | COMPRESS_FLAG) + body)


def test_truncated_zlib_stream_rejected():
    frame = pack_message({"type": "result"}, b"x" * 4096, compress=True)
    prefix = struct.unpack(">I", frame[:4])[0]
    assert prefix & COMPRESS_FLAG, "test needs a compressed frame"
    body = frame[4:-10]  # drop the stream's tail
    a, b = _pipe()
    try:
        _send_compressed_body(a, body)
        with pytest.raises(ProtocolError):
            recv_message(b)
    finally:
        a.close(), b.close()


def test_garbage_zlib_stream_rejected():
    a, b = _pipe()
    try:
        _send_compressed_body(a, b"\xff\xfenot zlib at all")
        with pytest.raises(ProtocolError):
            recv_message(b)
    finally:
        a.close(), b.close()


def test_zlib_bomb_rejected_without_allocating(monkeypatch):
    """A tiny zlib stream inflating past the cap dies mid-stream.
    The cap is monkeypatched down so the test's own allocations stay
    small; the guard logic is identical at the real 256 MB."""
    import repro.dist.protocol as protocol

    monkeypatch.setattr(protocol, "MAX_FRAME_BYTES", 1 << 16)
    bomb = zlib.compress(b"\x00" * (1 << 20), 9)  # 1 MiB -> ~1 KiB
    assert len(bomb) <= protocol.MAX_FRAME_BYTES
    a, b = _pipe()
    try:
        _send_compressed_body(a, bomb)
        with pytest.raises(ProtocolError):
            recv_message(b)
    finally:
        a.close(), b.close()


def test_oversized_compressed_prefix_rejected(monkeypatch):
    import repro.dist.protocol as protocol

    monkeypatch.setattr(protocol, "MAX_FRAME_BYTES", 1 << 16)
    a, b = _pipe()
    try:
        a.sendall(struct.pack(">I", ((1 << 16) + 1) | COMPRESS_FLAG))
        with pytest.raises(ProtocolError):
            recv_message(b)
    finally:
        a.close(), b.close()


def test_zero_length_compressed_frame_rejected():
    a, b = _pipe()
    try:
        a.sendall(struct.pack(">I", COMPRESS_FLAG))
        with pytest.raises(ProtocolError):
            recv_message(b)
    finally:
        a.close(), b.close()


def test_pack_rejects_bodies_over_the_cap(monkeypatch):
    import repro.dist.protocol as protocol

    monkeypatch.setattr(protocol, "MAX_FRAME_BYTES", 1 << 12)
    with pytest.raises(ProtocolError):
        pack_message({"type": "result"}, b"x" * (1 << 13))
    # Compression cannot rescue an oversized body: the cap applies to
    # the decompressed size, which is what the receiver would check.
    with pytest.raises(ProtocolError):
        pack_message({"type": "result"}, b"x" * (1 << 13), compress=True)


def test_max_frame_is_far_below_the_flag_bit():
    """The flag bit must never collide with a legal length."""
    assert MAX_FRAME_BYTES < COMPRESS_FLAG
