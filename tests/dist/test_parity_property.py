"""Property: distributed and local runners agree on any seeded grid.

Hypothesis draws small scenario x seed x noise grids; for each, the
serial local :class:`CampaignRunner` and a 2-worker
:class:`LocalCluster` must produce byte-identical ``summarize()``
output (and record-for-record identical metrics).  This is the
generalized form of the fixed-grid acceptance test: determinism lives
in ``(scenario, seed)``, never in *where* the run executed.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dist import LocalCluster
from repro.scenarios import CampaignRunner, Scenario, sweep
from repro.scenarios.stock import fast_hil


@pytest.fixture(scope="module")
def cluster():
    with LocalCluster(n_workers=2, slots=2) as cluster:
        cluster.wait_for_workers()
        yield cluster


@settings(max_examples=4, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seeds=st.lists(st.integers(min_value=1, max_value=10_000),
                      min_size=1, max_size=2, unique=True),
       noise=st.sampled_from([0.1, 0.2, 0.3]),
       duration_sec=st.sampled_from([2.0, 3.0]))
def test_distributed_and_local_summaries_identical(cluster, seeds, noise,
                                                   duration_sec):
    base = Scenario("parity", hil=fast_hil(), duration_sec=duration_sec)
    grid = sweep([base], seeds=seeds,
                 params={"sensor_noise_std": [noise]})
    local = CampaignRunner(parallel=False).run(grid)
    dist = cluster.runner().run(grid)
    assert not dist.failed
    assert json.dumps(dist.summary, sort_keys=True) == \
        json.dumps(local.summary, sort_keys=True)
    assert json.dumps(dist.records, sort_keys=True) == \
        json.dumps(local.records, sort_keys=True)
