"""Multi-hop Virtual Components over tree routing + flooding.

The paper's VCs are defined by object-transfer relationships, not radio
range.  Here a 5-node line topology (head -- relay -- ctrl_a -- ctrl_b --
act) hosts the same control pipeline as the single-hop tests: transfers
flood hop-by-hop, fault reports route to the head over two hops, and mode
changes flood back out.
"""

import random

import pytest

from repro.control.compiler import SLOT_INPUT, SLOT_OUTPUT, compile_passthrough
from repro.evm.capsule import Capsule
from repro.evm.failover import ControllerMode, FailoverPolicy
from repro.evm.object_transfer import (
    DirectionalTransfer,
    FaultResponse,
    HealthAssessment,
)
from repro.evm.runtime import EvmRuntime
from repro.evm.tasks import LogicalTask
from repro.evm.virtual_component import VcMember, VirtualComponent
from repro.hardware.node import FireFlyNode
from repro.hardware.timesync import AmTimeSync, TimeSyncSpec
from repro.net.mac.rtlink import RtLinkConfig, RtLinkMac, RtLinkSchedule
from repro.net.medium import Medium
from repro.net.routing import RoutedMacAdapter, build_tree_tables
from repro.net.topology import line
from repro.rtos.kernel import NanoRK
from repro.sim.clock import MS, SEC
from repro.sim.engine import Engine
from repro.sim.trace import Trace

IDS = ["head", "relay", "ctrl_a", "ctrl_b", "act"]


class MultiHopRig:
    def __init__(self, seed=3):
        self.engine = Engine()
        self.trace = Trace()
        topology = line(IDS, spacing_m=9.0)
        self.medium = Medium(self.engine, topology,
                             rng=random.Random(seed))
        self.sync = AmTimeSync(self.engine, random.Random(seed + 1),
                               TimeSyncSpec())
        config = RtLinkConfig(slots_per_frame=25, slot_ticks=5 * MS)
        schedule = RtLinkSchedule(config)
        # Line topology: listeners are radio neighbors only.
        neighbors = {nid: set(topology.neighbors(nid)) for nid in IDS}
        for slot, node_id in zip((0, 5, 10, 15, 20), IDS):
            schedule.assign(slot, node_id, neighbors[node_id])
        tables = build_tree_tables(topology, "head")
        self.vc = VirtualComponent("multihop-vc")
        capabilities = {
            "head": frozenset({"head"}),
            "relay": frozenset({"relay"}),
            "ctrl_a": frozenset({"controller"}),
            "ctrl_b": frozenset({"controller"}),
            "act": frozenset({"actuate"}),
        }
        for node_id in IDS:
            self.vc.admit(VcMember(node_id, capabilities[node_id]))
        self.vc.add_task(LogicalTask(
            name="ctrl", program_name="double", period_ticks=300 * MS,
            wcet_ticks=2 * MS,
            required_capabilities=frozenset({"controller"}), replicas=2))
        self.vc.add_task(LogicalTask(
            name="act", program_name="ident", period_ticks=300 * MS,
            wcet_ticks=1 * MS,
            required_capabilities=frozenset({"actuate"})))
        self.vc.assign("ctrl", "ctrl_a", backups=["ctrl_b"])
        self.vc.assign("act", "act")
        self.vc.add_transfer(DirectionalTransfer(
            producer="ctrl", consumer="act",
            slots=((SLOT_OUTPUT, SLOT_INPUT),)))
        self.vc.add_transfer(HealthAssessment(
            monitor="ctrl_b", subject="ctrl_a", task="ctrl",
            response=FaultResponse.TRIGGER_BACKUP, max_deviation=1.0,
            threshold=3, heartbeat_timeout_ticks=4 * SEC))
        programs = [compile_passthrough("double", gain=2.0),
                    compile_passthrough("ident", gain=1.0)]
        self.kernels, self.runtimes, self.adapters = {}, {}, {}
        for node_id in IDS:
            node = FireFlyNode(self.engine, node_id,
                               position=topology.position(node_id),
                               rng=random.Random(seed + len(node_id)),
                               with_sensors=False)
            node.join_timesync(self.sync)
            mac = RtLinkMac(self.engine, node, self.medium.attach(node),
                            schedule, queue_capacity=32)
            adapter = RoutedMacAdapter(mac, tables[node_id], flood_ttl=5)
            kernel = NanoRK(self.engine, node, trace=self.trace)
            kernel.attach_mac(adapter)
            runtime = EvmRuntime(
                kernel, self.vc, capabilities[node_id], trace=self.trace,
                failover_policy=FailoverPolicy(dormant_delay_ticks=8 * SEC))
            for program in programs:
                runtime.install_capsule(Capsule.from_program(program, 1))
            runtime.configure_from_vc(head_id="head")
            self.kernels[node_id] = kernel
            self.runtimes[node_id] = runtime
            self.adapters[node_id] = adapter
            mac.start()
        self.sync.start()
        self.runtimes["ctrl_a"].bind_input("ctrl", SLOT_INPUT, lambda: 7.0)
        self.runtimes["ctrl_b"].bind_input("ctrl", SLOT_INPUT, lambda: 7.0)

    def run(self, seconds):
        self.engine.run_until(self.engine.now + int(seconds * SEC))


class TestMultiHop:
    def test_transfers_flood_across_hops(self):
        rig = MultiHopRig()
        rig.run(6.0)
        # ctrl_a -> act is one hop on the line; ctrl output also reaches
        # the head (3 hops away) via flooding for monitoring.
        act_memory = rig.runtimes["act"].instances["act"].memory
        assert act_memory[SLOT_INPUT] == pytest.approx(14.0)
        assert rig.runtimes["head"].stats.messages_handled > 0

    def test_backup_two_hops_from_actuator_shadows(self):
        rig = MultiHopRig()
        rig.run(6.0)
        backup = rig.runtimes["ctrl_b"].instances["ctrl"]
        assert backup.jobs_run > 10
        assert backup.memory[SLOT_OUTPUT] == pytest.approx(14.0)

    def test_failover_across_multihop_paths(self):
        """Fault report routes ctrl_b -> head over 2 hops; the mode change
        floods back out; the actuator switches sources."""
        rig = MultiHopRig()
        rig.run(6.0)
        rig.runtimes["ctrl_a"].inject_output_fault("ctrl", SLOT_OUTPUT,
                                                   400.0)
        rig.run(15.0)
        assert rig.runtimes["head"].stats.failovers_executed == 1
        assert rig.runtimes["act"].task_primaries["ctrl"][0] == "ctrl_b"
        assert rig.runtimes["ctrl_b"].instances["ctrl"].mode is \
            ControllerMode.ACTIVE
        # Relay actually forwarded frames (it hosts nothing itself).
        assert rig.adapters["relay"].floods_relayed > 0

    def test_flood_dedup_terminates(self):
        rig = MultiHopRig()
        rig.run(10.0)
        # Bounded relaying: each broadcast relayed at most once per node.
        total_relays = sum(a.floods_relayed for a in rig.adapters.values())
        total_broadcasts = sum(r.stats.data_published
                               for r in rig.runtimes.values())
        assert total_relays <= total_broadcasts * (len(IDS) - 1)
