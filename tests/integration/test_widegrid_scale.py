"""Wide-grid stress & conformance suite: 100-256 node random meshes.

Marked ``slow`` and excluded from the tier-1 run (pyproject deselects the
marker); the dedicated ``scale-tests`` CI job runs it on a schedule and on
the ``scale-tests`` PR label.  Each test asserts the paper's behavior at
two orders of magnitude beyond the six-node testbed: end-to-end pipeline
convergence, failover under ``NodeCrash``, recovery, the MAC lifetime
ordering, placement quality -- and a bounded wall-clock, so scale-out
regressions fail loudly instead of just getting slower.
"""

from __future__ import annotations

import time

import pytest

from repro.experiments.widegrid import (
    CTRL_GAIN,
    SENSOR_VALUE,
    WideGridConfig,
    WideGridRig,
    WideGridTrialSpec,
    run_widegrid_campaign,
    run_widegrid_mac_lifetime,
    run_widegrid_placement,
    run_widegrid_trial,
)
from repro.scenarios.faults import NodeCrash
from repro.sim.clock import SEC

pytestmark = pytest.mark.slow

EXPECTED_ACT = SENSOR_VALUE * CTRL_GAIN

# Generous ceilings (CI runners are slow): locally the 100-node trial
# takes ~1.5 s, the 256-node one ~3 s, the 1000-node one ~6 s (slot
# calendar + flood suppression, the fourth perf wave).
WALL_CLOCK_100_SEC = 90.0
WALL_CLOCK_256_SEC = 180.0
WALL_CLOCK_1000_SEC = 300.0


class TestHundredNodeCampaign:
    def test_failover_campaign_converges_and_is_deterministic(self):
        start = time.perf_counter()
        specs = [WideGridTrialSpec("failover", WideGridConfig(
                     n_nodes=100, seed=seed, duration_sec=30.0,
                     crash_primary_at_sec=10.0))
                 for seed in (1, 2)]
        records = run_widegrid_campaign(specs)
        elapsed = time.perf_counter() - start
        assert elapsed < 2 * WALL_CLOCK_100_SEC
        assert [r["trial"] for r in records] == [s.label() for s in specs]
        for record in records:
            result = record["result"]
            # End-to-end convergence: sensor -> controller -> actuator
            # settled at gain*input despite 95 background reporters.
            assert result["act_input"] == pytest.approx(EXPECTED_ACT)
            assert result["delivery_ratio"] > 0.5
            # Failover under NodeCrash: detected, executed, actuator
            # switched to the backup.
            assert result["crashes"] == 1
            assert result["failovers_executed"] >= 1
            assert result["detection_time_sec"] is not None
            assert result["failover_time_sec"] >= 10.0
            assert result["active_controller_final"] == \
                result["roles"]["ctrl_b"]
        # Same spec -> bit-identical record (the campaign contract).
        replay = run_widegrid_campaign(specs[:1])
        assert replay[0] == records[0]

    def test_nodecrash_fault_primitive_applies_to_widegrid_rig(self):
        """The scenario-subsystem primitive drives the wide-grid rig
        directly (duck-typed ``rig.kernels``), not just the HIL rig."""
        config = WideGridConfig(n_nodes=100, seed=3, duration_sec=30.0)
        rig = WideGridRig(config)
        crash = NodeCrash(rig.roles["ctrl_a"])
        rig.engine.post(int(10.0 * SEC), crash.apply, rig)
        rig.run_for_seconds(config.duration_sec)
        result = rig.collect()
        assert result.crashes == 1
        assert result.failovers_executed >= 1
        assert result.active_controller_final == rig.roles["ctrl_b"]

    def test_crash_recover_cycle(self):
        result = run_widegrid_trial(WideGridConfig(
            n_nodes=100, seed=4, duration_sec=40.0,
            crash_primary_at_sec=10.0, recover_at_sec=25.0))
        assert result.crashes == 1
        assert result.failovers_executed >= 1
        # The recovered primary rejoined without destabilizing the pipe.
        assert result.act_input == pytest.approx(EXPECTED_ACT)


class TestTwoFiftySixNodes:
    def test_fault_free_convergence_and_wall_clock(self):
        start = time.perf_counter()
        result = run_widegrid_trial(WideGridConfig(
            n_nodes=256, area_m=240.0, radio_range_m=30.0, seed=2,
            duration_sec=40.0))
        elapsed = time.perf_counter() - start
        assert elapsed < WALL_CLOCK_256_SEC
        assert result.n_nodes == 256
        assert result.act_input == pytest.approx(EXPECTED_ACT)
        assert result.ctrl_jobs_run > 10
        assert result.delivery_ratio > 0.3
        assert result.crashes == 0

    def test_failover_at_256(self):
        result = run_widegrid_trial(WideGridConfig(
            n_nodes=256, area_m=240.0, radio_range_m=30.0, seed=2,
            duration_sec=40.0, crash_primary_at_sec=12.0))
        assert result.failovers_executed >= 1
        assert result.active_controller_final == result.roles["ctrl_b"]


class TestThousandNodes:
    def test_failover_and_wall_clock_at_1000(self):
        """The fourth-wave scale target: a 1000-node mesh (~10k links)
        completes a crash-failover trial inside the slow-suite budget.
        Flood suppression auto-gates on at this width
        (``FLOOD_SUPPRESS_AUTO_NODES``); the failover pipeline must be
        untouched by it."""
        from repro.sim.clock import SEC as _SEC

        config = WideGridConfig(
            n_nodes=1000, area_m=300.0, radio_range_m=25.0, seed=1,
            duration_sec=45.0, report_period_sec=15.0,
            control_period_ticks=5 * _SEC,
            heartbeat_timeout_ticks=15 * _SEC,
            crash_primary_at_sec=10.0)
        assert config.flood_suppression()[0] > 0  # auto-gate engaged
        start = time.perf_counter()
        rig = WideGridRig(config)
        rig.run_for_seconds(config.duration_sec)
        result = rig.collect()
        elapsed = time.perf_counter() - start
        assert elapsed < WALL_CLOCK_1000_SEC
        assert result.n_nodes == 1000
        assert result.crashes == 1
        assert result.failovers_executed >= 1
        assert result.active_controller_final == result.roles["ctrl_b"]
        assert result.act_input == pytest.approx(EXPECTED_ACT)
        # The suppression layer actually worked: some held relays were
        # dropped as redundant, none of which cost a delivery above.
        assert sum(a.floods_suppressed for a in rig.macs.values()) > 0

    def test_suppression_can_be_forced_off(self):
        config = WideGridConfig(n_nodes=1000, flood_suppress_threshold=0)
        assert config.flood_suppression()[0] == 0
        small = WideGridConfig(n_nodes=100)
        assert small.flood_suppression()[0] == 0
        forced = WideGridConfig(n_nodes=100, flood_suppress_threshold=3)
        assert forced.flood_suppression() == (3, forced.frame_ticks())


class TestMacLifetimeAtScale:
    def test_rtlink_outlives_csma_macs_on_wide_mesh(self):
        """The paper's C2 ordering -- scheduled TDMA beats low-power
        CSMA on lifetime -- holds on a 100-node mesh under tree-routed
        report traffic."""
        config = WideGridConfig(n_nodes=100, seed=1, duration_sec=20.0)
        rows = {protocol: run_widegrid_mac_lifetime(protocol, config)
                for protocol in ("rtlink", "bmac", "smac")}
        assert rows["rtlink"].lifetime_years > rows["bmac"].lifetime_years
        assert rows["rtlink"].lifetime_years > rows["smac"].lifetime_years
        assert rows["rtlink"].delivery_ratio >= rows["bmac"].delivery_ratio
        # Collision-free by construction vs. contention.
        assert rows["rtlink"].collisions == 0
        assert rows["bmac"].collisions > 0


class TestPlacementAtScale:
    @pytest.mark.parametrize("n_nodes,seed", [(100, 3), (192, 7)])
    def test_bqp_never_degrades_below_greedy(self, n_nodes, seed):
        result = run_widegrid_placement(n_nodes=n_nodes, seed=seed)
        assert result.n_nodes == n_nodes
        assert result.bqp_cost <= result.greedy_cost
        assert len(result.placement) == result.n_tasks
