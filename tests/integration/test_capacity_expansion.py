"""On-line capacity expansion (paper objectives 2 and 3).

"More controllers can be added to share the load and trigger
re-distribution of tasks" / "algorithm replication to a set of nodes
capable of performing the same control function".  On the live HIL rig:
the control task is replicated to the spare controller ctrl_c at runtime,
the head re-declares the assignment with two backups, and after a double
failure (primary wedged, first backup crashed) the second backup ends up
driving the valve.
"""

import pytest

from repro.control.compiler import SLOT_OUTPUT
from repro.evm.failover import ControllerMode
from repro.evm.scheduler_ops import NodeOperations
from repro.experiments.hil import (
    ACTUATOR,
    CTRL_A,
    CTRL_B,
    CTRL_C,
    GATEWAY,
    HilConfig,
    HilRig,
    TASK_CTRL,
)
from repro.sim.clock import SEC


def expanded_rig():
    rig = HilRig(HilConfig(settle_sec=800.0, arbitration_holdoff_ticks=1,
                           dormant_delay_ticks=5 * SEC))
    rig.run_for_seconds(10.0)
    # 1. Replicate the running controller (with its live state) to ctrl_c.
    outcomes = []
    ops = NodeOperations(rig.runtimes[CTRL_A])
    ops.replicate_task(TASK_CTRL, CTRL_C, on_done=outcomes.append)
    rig.run_for_seconds(20.0)
    assert outcomes and outcomes[0].ok, outcomes
    # 2. The head re-declares the assignment: two backups now.
    rig.runtimes[GATEWAY].update_assignment(TASK_CTRL, CTRL_A,
                                            [CTRL_B, CTRL_C])
    # 3. Extend the protection web: every controller watches every other
    # (the original rig only wires A <-> B).
    from repro.evm.object_transfer import FaultResponse, HealthAssessment

    controllers = (CTRL_A, CTRL_B, CTRL_C)
    existing = {(a.monitor, a.subject)
                for a in rig.vc.health_assessments()}
    for monitor in controllers:
        for subject in controllers:
            if monitor == subject or (monitor, subject) in existing:
                continue
            assessment = HealthAssessment(
                monitor=monitor, subject=subject, task=TASK_CTRL,
                response=FaultResponse.TRIGGER_BACKUP, max_deviation=5.0,
                threshold=3, heartbeat_timeout_ticks=2 * SEC)
            rig.vc.add_transfer(assessment)
            rig.runtimes[monitor]._add_monitor(assessment)
    rig.run_for_seconds(5.0)
    return rig


class TestCapacityExpansion:
    def test_replica_shadows_after_expansion(self):
        rig = expanded_rig()
        instance = rig.runtimes[CTRL_C].instances[TASK_CTRL]
        assert instance.mode is ControllerMode.BACKUP
        jobs_before = instance.jobs_run
        rig.run_for_seconds(10.0)
        assert instance.jobs_run > jobs_before
        # Its shadow output tracks the active controller's.
        a_out = rig.runtimes[CTRL_A].instances[TASK_CTRL].memory[SLOT_OUTPUT]
        assert instance.memory[SLOT_OUTPUT] == pytest.approx(a_out, abs=1.0)

    def test_double_failure_survived(self):
        rig = expanded_rig()
        # Failure 1: the primary wedges; a backup takes over.
        rig.inject_controller_fault(75.0)
        rig.run_for_seconds(15.0)
        first_successor = rig.active_controller()
        assert first_successor in (CTRL_B, CTRL_C)
        # Failure 2: the new primary crashes outright.
        rig.crash_node(first_successor)
        rig.run_for_seconds(15.0)
        survivor = rig.active_controller()
        assert survivor in {CTRL_B, CTRL_C} - {first_successor}
        assert rig.runtimes[survivor].instances[TASK_CTRL].mode is \
            ControllerMode.ACTIVE
        # The plant is still being commanded sanely (valve reseated low to
        # refill the drained vessel).
        rig.run_for_seconds(60.0)
        assert rig.read("lts_valve_pct") < 20.0
        level_now = rig.read("lts_level_pct")
        rig.run_for_seconds(60.0)
        assert rig.read("lts_level_pct") >= level_now - 0.5  # recovering
