"""Live EVM stack on a 4-node RT-Link network (no plant).

Exercises the distributed machinery end-to-end: object transfers, the
operation switch, shadow-deviation fault detection, head arbitration,
mode changes, dormant parking, state sharing, migration over the radio,
capsule dissemination, membership.
"""

import random
import zlib

import pytest

from repro.control.compiler import SLOT_INPUT, SLOT_OUTPUT, compile_passthrough
from repro.evm.capsule import Capsule
from repro.evm.failover import ControllerMode, FailoverPolicy
from repro.evm.object_transfer import (
    DirectionalTransfer,
    FaultResponse,
    HealthAssessment,
)
from repro.evm.runtime import EvmRuntime, StateSharingPolicy
from repro.evm.tasks import LogicalTask
from repro.evm.virtual_component import VcMember, VirtualComponent
from repro.hardware.node import FireFlyNode
from repro.hardware.timesync import AmTimeSync, TimeSyncSpec
from repro.net.mac.rtlink import RtLinkConfig, RtLinkMac, RtLinkSchedule
from repro.net.medium import Medium
from repro.net.topology import full_mesh
from repro.rtos.kernel import NanoRK
from repro.sim.clock import MS, SEC
from repro.sim.engine import Engine
from repro.sim.trace import Trace

HEAD, A, B, ACT = "head", "ctrl_a", "ctrl_b", "act"
IDS = [HEAD, A, B, ACT]


class Rig:
    """Compact 4-node EVM deployment."""

    def __init__(self, dormant_delay=10 * SEC, state_sharing="active",
                 detection_threshold=3, seed=5):
        self.engine = Engine()
        self.trace = Trace()
        topology = full_mesh(IDS, spacing_m=8.0)
        self.medium = Medium(self.engine, topology,
                             rng=random.Random(seed))
        self.sync = AmTimeSync(self.engine, random.Random(seed + 1),
                               TimeSyncSpec())
        config = RtLinkConfig(slots_per_frame=20, slot_ticks=5 * MS)
        schedule = RtLinkSchedule(config)
        slots = {HEAD: 0, A: 4, B: 8, ACT: 12}
        for node_id, slot in slots.items():
            schedule.assign(slot, node_id, set(IDS) - {node_id})
        self.vc = VirtualComponent("test-vc")
        capabilities = {
            HEAD: frozenset({"head"}),
            A: frozenset({"controller"}),
            B: frozenset({"controller"}),
            ACT: frozenset({"actuate"}),
        }
        for node_id in IDS:
            self.vc.admit(VcMember(node_id, capabilities[node_id]))
        self.ctrl_task = LogicalTask(
            name="ctrl", program_name="double", period_ticks=200 * MS,
            wcet_ticks=2 * MS,
            required_capabilities=frozenset({"controller"}), replicas=2)
        self.act_task = LogicalTask(
            name="act", program_name="ident", period_ticks=200 * MS,
            wcet_ticks=1 * MS,
            required_capabilities=frozenset({"actuate"}), replicas=1)
        self.vc.add_task(self.ctrl_task)
        self.vc.add_task(self.act_task)
        self.vc.assign("ctrl", A, backups=[B])
        self.vc.assign("act", ACT)
        self.vc.add_transfer(DirectionalTransfer(
            producer="ctrl", consumer="act",
            slots=((SLOT_OUTPUT, SLOT_INPUT),)))
        self.vc.add_transfer(HealthAssessment(
            monitor=B, subject=A, task="ctrl",
            response=FaultResponse.TRIGGER_BACKUP,
            plausible_min=-1000.0, plausible_max=1000.0,
            max_deviation=1.0, threshold=detection_threshold,
            heartbeat_timeout_ticks=2 * SEC))
        self.kernels = {}
        self.runtimes = {}
        programs = [compile_passthrough("double", gain=2.0),
                    compile_passthrough("ident", gain=1.0)]
        for node_id in IDS:
            node = FireFlyNode(self.engine, node_id,
                               position=topology.position(node_id),
                               rng=random.Random(
                                   seed + zlib.crc32(node_id.encode()) % 97),
                               with_sensors=False)
            node.join_timesync(self.sync)
            port = self.medium.attach(node)
            mac = RtLinkMac(self.engine, node, port, schedule,
                            queue_capacity=32)
            kernel = NanoRK(self.engine, node, trace=self.trace)
            kernel.attach_mac(mac)
            runtime = EvmRuntime(
                kernel, self.vc, capabilities=capabilities[node_id],
                trace=self.trace,
                failover_policy=FailoverPolicy(
                    dormant_delay_ticks=dormant_delay),
                state_sharing=StateSharingPolicy(mode=state_sharing))
            for program in programs:
                runtime.install_capsule(Capsule.from_program(program, 1))
            self.kernels[node_id] = kernel
            self.runtimes[node_id] = runtime
            mac.start()
        for node_id in IDS:
            self.runtimes[node_id].configure_from_vc(head_id=HEAD)
        self.sync.start()
        # Drive the controller input with a constant.
        self.runtimes[A].bind_input("ctrl", SLOT_INPUT, lambda: 10.0)
        self.runtimes[B].bind_input("ctrl", SLOT_INPUT, lambda: 10.0)

    def run(self, seconds):
        self.engine.run_until(self.engine.now + int(seconds * SEC))


class TestTransfers:
    def test_controller_output_reaches_actuator(self):
        rig = Rig()
        rig.run(2.0)
        act_instance = rig.runtimes[ACT].instances["act"]
        # double(10.0) = 20.0 shipped into the actuator's input slot.
        assert act_instance.memory[SLOT_INPUT] == pytest.approx(20.0)
        assert rig.runtimes[A].stats.data_published > 0
        assert rig.runtimes[ACT].stats.data_applied > 0

    def test_backup_shadows_but_does_not_publish(self):
        rig = Rig()
        rig.run(2.0)
        b_instance = rig.runtimes[B].instances["ctrl"]
        assert b_instance.jobs_run > 0
        assert b_instance.memory[SLOT_OUTPUT] == pytest.approx(20.0)
        assert rig.runtimes[B].stats.data_published == 0

    def test_operation_switch_rejects_non_primary(self):
        rig = Rig()
        rig.run(1.0)
        # Forge: B pretends to publish while A is primary.
        b_runtime = rig.runtimes[B]
        b_instance = b_runtime.instances["ctrl"]
        b_instance.mode = ControllerMode.ACTIVE  # bypass, locally only
        rig.run(1.0)
        assert rig.runtimes[ACT].stats.rejected_by_switch > 0
        act_in = rig.runtimes[ACT].instances["act"].memory[SLOT_INPUT]
        assert act_in == pytest.approx(20.0)  # still A's value


class TestFailover:
    def test_wrong_output_triggers_backup(self):
        rig = Rig(dormant_delay=5 * SEC)
        rig.run(2.0)
        rig.runtimes[A].inject_output_fault("ctrl", SLOT_OUTPUT, 500.0)
        rig.run(5.0)
        # B detected, head promoted B, actuator switched.
        assert rig.runtimes[B].stats.faults_reported >= 1
        assert rig.runtimes[HEAD].stats.failovers_executed == 1
        assert rig.runtimes[ACT].task_primaries["ctrl"][0] == B
        assert rig.runtimes[B].instances["ctrl"].mode is ControllerMode.ACTIVE
        assert rig.runtimes[A].instances["ctrl"].mode in (
            ControllerMode.INDICATOR, ControllerMode.DORMANT)
        rig.run(6.0)
        assert rig.runtimes[A].instances["ctrl"].mode is ControllerMode.DORMANT
        assert not rig.kernels[A].scheduler.tasks["ctrl"].state.name == "READY"

    def test_actuator_keeps_receiving_after_failover(self):
        rig = Rig(dormant_delay=5 * SEC)
        rig.run(2.0)
        rig.runtimes[A].inject_output_fault("ctrl", SLOT_OUTPUT, 500.0)
        rig.run(5.0)
        applied_before = rig.runtimes[ACT].stats.data_applied
        rig.run(3.0)
        assert rig.runtimes[ACT].stats.data_applied > applied_before
        assert rig.runtimes[ACT].instances["act"].memory[SLOT_INPUT] == \
            pytest.approx(20.0)

    def test_exactly_one_active_controller_after_settling(self):
        rig = Rig(dormant_delay=2 * SEC)
        rig.run(2.0)
        rig.runtimes[A].inject_output_fault("ctrl", SLOT_OUTPUT, 500.0)
        rig.run(8.0)
        modes = [rig.runtimes[n].instances["ctrl"].mode for n in (A, B)]
        assert modes.count(ControllerMode.ACTIVE) == 1

    def test_crash_detected_by_heartbeat(self):
        rig = Rig(dormant_delay=5 * SEC)
        rig.run(2.0)
        rig.kernels[A].crash()
        rig.run(6.0)
        assert rig.runtimes[HEAD].stats.failovers_executed == 1
        assert rig.runtimes[ACT].task_primaries["ctrl"][0] == B

    def test_detection_threshold_delays_confirmation(self):
        fast = Rig(detection_threshold=1)
        slow = Rig(detection_threshold=8)
        for rig in (fast, slow):
            rig.run(2.0)
            rig.runtimes[A].inject_output_fault("ctrl", SLOT_OUTPUT, 500.0)
            rig.run(6.0)

        def detect_time(rig):
            events = [e for e in rig.trace.events("evm.fault_detected")
                      if e.category == "evm.fault_detected"]
            return events[0].time if events else None

        assert detect_time(fast) is not None
        assert detect_time(slow) is not None
        assert detect_time(fast) < detect_time(slow)


class TestStateSharing:
    def test_passive_snapshots_flow(self):
        rig = Rig(state_sharing="passive")
        rig.run(4.0)
        assert rig.runtimes[A].stats.snapshots_sent > 0
        assert rig.runtimes[B].stats.snapshots_applied > 0

    def test_active_mode_sends_no_snapshots(self):
        rig = Rig(state_sharing="active")
        rig.run(4.0)
        assert rig.runtimes[A].stats.snapshots_sent == 0


class TestMigration:
    def test_task_migrates_over_radio(self):
        rig = Rig()
        rig.run(2.0)
        outcomes = []
        # Move the actuator-side task to the head node (it lacks the
        # capability) -> rejected; then controller task A -> B is blocked
        # because B already hosts it; so migrate to the actuator node
        # after granting capability.
        rig.vc.members[ACT].capabilities = frozenset({"actuate",
                                                      "controller"})
        rig.runtimes[ACT].capabilities = frozenset({"actuate", "controller"})
        rig.runtimes[A].migrate_task_to("ctrl", ACT,
                                        on_done=outcomes.append)
        rig.run(8.0)
        assert outcomes and outcomes[0].ok, outcomes
        assert not rig.kernels[A].has_task("ctrl")
        assert rig.kernels[ACT].has_task("ctrl")
        migrated = rig.runtimes[ACT].instances["ctrl"]
        assert migrated.memory[SLOT_INPUT] == pytest.approx(10.0)

    def test_migration_rejected_without_capability(self):
        rig = Rig()
        rig.run(2.0)
        outcomes = []
        rig.runtimes[A].migrate_task_to("ctrl", HEAD,
                                        on_done=outcomes.append)
        rig.run(8.0)
        assert outcomes and not outcomes[0].ok
        assert "capabilities" in outcomes[0].reason
        assert rig.kernels[A].has_task("ctrl")  # source kept its copy


class TestCapsulesAndMembership:
    def test_viral_dissemination(self):
        rig = Rig()
        rig.run(1.0)
        new_law = compile_passthrough("triple", gain=3.0)
        capsule = Capsule.from_program(new_law, version=1)
        rig.runtimes[A].install_capsule(capsule, disseminate=True)
        rig.run(3.0)
        for node_id in IDS:
            assert rig.runtimes[node_id].capsules.has("triple"), node_id

    def test_version_upgrade_propagates(self):
        rig = Rig()
        rig.run(1.0)
        v2 = Capsule.from_program(compile_passthrough("double", gain=2.5), 2)
        rig.runtimes[HEAD].install_capsule(v2, disseminate=True)
        rig.run(3.0)
        assert all(rig.runtimes[n].capsules.version_of("double") == 2
                   for n in IDS)

    def test_join_protocol(self):
        rig = Rig()
        rig.run(1.0)
        # A fresh node says hello; the head admits it.
        rig.vc.evict(ACT)
        rig.runtimes[ACT].say_hello()
        rig.run(2.0)
        assert ACT in rig.vc.members
        admitted = [e for e in rig.trace.events("evm.admitted")]
        assert admitted
