"""Golden-determinism guard for the hot-path optimization.

The threaded-code interpreter, the engine fast path and the indexed
medium are pure performance work: they must be *bit-identical* to the
seed semantics.  This suite pins that down three ways:

1. **Golden digests** -- SHA-256 over the canonical JSON of a fig6
   failover run, a serial campaign grid, and a fixed VM program suite
   (final states, memories, outputs and error strings).  The digests in
   ``golden_hotpath.json`` were captured from the *seed* implementation
   before the optimization landed; any semantic drift changes a digest.

   Recapture (only when semantics change deliberately)::

       PYTHONPATH=src:tests python tests/integration/test_hotpath_determinism.py --capture

2. **Reference-interpreter property** -- random programs are executed by
   both the production interpreter and a straight-line reference
   implementation of the seed dispatch semantics kept in this file;
   final state, memory and error strings must match exactly.

3. **Replay identity** -- the golden workloads also run twice in-process
   and must agree with themselves, so the guard stays meaningful even on
   a platform whose libm produces different float digits than the
   capture host.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.evm.bytecode import Assembler, Instruction, Opcode, Program
from repro.evm.interpreter import Interpreter, VmError, VmState

GOLDEN_PATH = Path(__file__).parent / "golden_hotpath.json"


# ----------------------------------------------------------------------
# Workload 1: fig6 failover timeline (reduced horizon)
# ----------------------------------------------------------------------
def fig6_payload() -> str:
    from repro.experiments.fig6 import Fig6Config, run_fig6

    config = Fig6Config(t1_fault_sec=30.0, t2_target_sec=60.0,
                        duration_sec=100.0)
    result = run_fig6(config)
    return json.dumps(dataclasses.asdict(result), sort_keys=True)


# ----------------------------------------------------------------------
# Workload 2: a serial campaign grid
# ----------------------------------------------------------------------
def campaign_payload() -> str:
    from repro.scenarios import (
        BabblingInterferer,
        CampaignRunner,
        LinkDegrade,
        NodeCrash,
        Scenario,
        sweep,
    )
    from repro.experiments.hil import CTRL_A, CTRL_B, TASK_ACT, TASK_CTRL
    from repro.scenarios.stock import fast_hil

    crash = Scenario("guard-crash", hil=fast_hil(), seed=0,
                     duration_sec=20.0).at(6.0, NodeCrash(CTRL_A))
    noisy = Scenario("guard-noisy", hil=fast_hil(), seed=0,
                     duration_sec=20.0) \
        .at(4.0, LinkDegrade(prr=0.8)) \
        .at(8.0, BabblingInterferer(node=CTRL_B, task=TASK_CTRL,
                                    consumer=TASK_ACT, value=99.0,
                                    period_ms=900))
    grid = sweep([crash, noisy], seeds=(1, 2))
    result = CampaignRunner(parallel=False).run(grid)
    return json.dumps({"records": result.records, "summary": result.summary},
                      sort_keys=True)


# ----------------------------------------------------------------------
# Workload 3: MAC-heavy trials (process-resume-dominated)
# ----------------------------------------------------------------------
def mac_heavy_payload() -> str:
    """All three MAC protocols on a small mesh at a high event rate.

    B-MAC/S-MAC/RT-Link all run as generator :class:`Process` loops, so
    this run is dominated by ``yield Delay(...)`` resumes -- it pins the
    resume-token fast path (and the batched medium resolution feeding
    it) to the seed semantics, stats, energy accounting and latencies.
    """
    from repro.experiments.mac_comparison import run_mac_trial

    rows = {}
    for protocol in ("rtlink", "bmac", "smac"):
        result = run_mac_trial(protocol, duty_pct=5.0, event_period_sec=0.5,
                               n_members=4, duration_sec=30.0, seed=11)
        rows[protocol] = dataclasses.asdict(result)
    return json.dumps(rows, sort_keys=True)


# ----------------------------------------------------------------------
# Workload 4: fixed VM program suite (states, outputs, errors)
# ----------------------------------------------------------------------
_VM_SUITE = {
    "arith": ("push 10\npush 4\nsub\nstore 0\npush 3\npush 5\nmul\nstore 1\n"
              "push 8\npush 2\ndiv\nstore 2\npush -7\nabs\nneg\nstore 3\nhalt"),
    "stackops": ("push 1\ndup\nadd\nstore 0\npush 5\npush 9\ndrop\nstore 1\n"
                 "push 1\npush 2\nswap\nstore 2\ndrop\n"
                 "push 7\npush 8\nover\nstore 3\ndrop\ndrop\n"
                 "push 1\npush 2\npush 3\nrot\nstore 4\ndrop\ndrop\nhalt"),
    "compare": ("push 1\npush 2\nlt\nstore 0\npush 2\npush 2\nle\nstore 1\n"
                "push 3\npush 2\ngt\nstore 2\npush 2\npush 3\nge\nstore 3\n"
                "push 2\npush 2\neq\nstore 4\npush 1\npush 2\nne\nstore 5\n"
                "push 1\npush 0\nand\nstore 6\npush 1\npush 0\nor\nstore 7\n"
                "push 0\nnot\nstore 8\npush 4\npush 9\nmin\nstore 9\n"
                "push 4\npush 9\nmax\nstore 10\nhalt"),
    "loop": ("top:\n    load 0\n    push 1\n    sub\n    store 0\n    load 0\n"
             "    jz done\n    jmp top\ndone: halt"),
    "callret": ("call sub\npush 100\nstore 1\nhalt\n"
                "sub:\n    push 42\n    store 0\n    ret"),
    "falloff": "push 1\nstore 0",
    "div_zero": "push 1\npush 0\ndiv\nhalt",
    "underflow": "add\nhalt",
    "overflow": "push 1\n" * 70 + "halt",
    "bad_load": "load 99\nhalt",
    "budget": "top: jmp top",
    "no_host": ".host ghost\nhost ghost\nhalt",
    "no_channel": ".channel ghost\nin ghost\nhalt",
    "no_word": ".word ghost\nword ghost\nhalt",
}


def vm_payload() -> str:
    assembler = Assembler()
    rows = {}
    for name, text in _VM_SUITE.items():
        interp = Interpreter(max_steps=2_000)
        outputs: list[float] = []
        interp.bind_input("sensor", lambda: 19.25)
        interp.bind_output("valve", outputs.append)
        interp.register_host("boost", lambda ctx: ctx.push(ctx.pop() * 3.0))
        program = assembler.assemble(text, name=name)
        memory = [5.0] + [0.0] * 15
        try:
            state = interp.execute(program, memory)
            outcome = {"state": state.snapshot(), "memory": memory,
                       "outputs": outputs}
        except VmError as exc:
            outcome = {"error": str(exc), "memory": memory}
        rows[name] = outcome

    # Words, hosts, channels together; exercised through nesting.
    interp = Interpreter()
    outputs = []
    interp.bind_input("sensor", lambda: 19.25)
    interp.bind_output("valve", outputs.append)
    interp.register_host("boost", lambda ctx: ctx.push(ctx.pop() * 3.0))
    interp.register_word(assembler.assemble(".name double\npush 2\nmul\nret"))
    interp.register_word(assembler.assemble(
        ".name quad\n.word double\nword double\nword double\nret"))
    program = assembler.assemble(
        ".channel sensor\n.channel valve\n.host boost\n.word quad\n"
        "in sensor\nword quad\nhost boost\ndup\nout valve\nstore 0\nhalt",
        name="composite")
    memory = [0.0] * 16
    state = interp.execute(program, memory)
    rows["composite"] = {"state": state.snapshot(), "memory": memory,
                         "outputs": outputs}

    # Mid-run pause, snapshot, restore into a *different* interpreter.
    interp_a = Interpreter()
    program = assembler.assemble(_VM_SUITE["loop"], name="loop")
    memory = [64.0] + [0.0] * 15
    state = interp_a.execute(program, memory, max_steps=100,
                             pause_on_budget=True)
    assert not state.halted
    blob = json.dumps(state.snapshot())
    interp_b = Interpreter()
    resumed = VmState.restore(json.loads(blob))
    final = interp_b.execute(program, memory, state=resumed)
    rows["migrate"] = {"paused": json.loads(blob), "state": final.snapshot(),
                       "memory": memory}
    return json.dumps(rows, sort_keys=True)


# ----------------------------------------------------------------------
# Workload 5: plant stepping (scalar/batched equivalence)
# ----------------------------------------------------------------------
def plant_payload() -> str:
    """The gas plant under local control, with a mid-run loop exclusion
    and external actuation -- every branch the batched/compiled step
    path takes.  Captured from the *scalar* (seed) implementation, so
    the vectorized ``NaturalGasPlant.step`` must be numerically
    identical to it."""
    from repro.plant.gas_plant import NaturalGasPlant

    plant = NaturalGasPlant()
    plant.enable_local_control()
    snapshots = []
    for i in range(400):
        plant.step(0.5)
        if i % 100 == 99:
            snapshots.append(plant.flowsheet.snapshot())
    # Hand the case-study loop to an external driver (the HIL shape):
    # the compiled controller pass must rebuild around the exclusion.
    plant.enable_local_control(exclude=("lts_level",))
    for i in range(200):
        plant.flowsheet.write("lts_liquid_valve_pct", 11.0 + (i % 7) * 0.5)
        plant.step(0.5)
        if i % 50 == 49:
            snapshots.append(plant.flowsheet.snapshot())
    plant.enable_local_control()
    for i in range(100):
        plant.step(0.5)
    snapshots.append(plant.flowsheet.snapshot())
    return json.dumps({"snapshots": snapshots,
                       "streams": plant.stream_table()}, sort_keys=True)


# ----------------------------------------------------------------------
# Workload 6: wide-grid failover / placement / MAC-lifetime trials
# ----------------------------------------------------------------------
def widegrid_payload() -> str:
    """A 100-node random-geometric failover trial plus one placement and
    one MAC-lifetime study -- the wide-grid drivers end to end."""
    from repro.experiments.widegrid import (
        WideGridConfig,
        run_widegrid_mac_lifetime,
        run_widegrid_placement,
        run_widegrid_trial,
    )

    trial = run_widegrid_trial(WideGridConfig(
        n_nodes=100, seed=1, duration_sec=20.0, crash_primary_at_sec=8.0))
    placement = run_widegrid_placement(n_nodes=100, seed=3)
    mac = run_widegrid_mac_lifetime("rtlink", WideGridConfig(
        n_nodes=64, seed=5, duration_sec=15.0, report_period_sec=6.0))
    return json.dumps({"trial": dataclasses.asdict(trial),
                       "placement": dataclasses.asdict(placement),
                       "mac": dataclasses.asdict(mac)}, sort_keys=True)


WORKLOADS = {
    "fig6": fig6_payload,
    "campaign": campaign_payload,
    "mac_heavy": mac_heavy_payload,
    "vm_suite": vm_payload,
    "plant": plant_payload,
    "widegrid": widegrid_payload,
}


def _digest(payload: str) -> str:
    return hashlib.sha256(payload.encode()).hexdigest()


def _goldens() -> dict[str, str]:
    return json.loads(GOLDEN_PATH.read_text())["digests"]


class TestGoldenDigests:
    def test_vm_suite_matches_seed_golden(self):
        assert _digest(vm_payload()) == _goldens()["vm_suite"]

    def test_fig6_matches_seed_golden(self):
        payload = fig6_payload()
        assert _digest(payload) == _goldens()["fig6"]

    def test_campaign_matches_seed_golden_and_replays(self):
        payload = campaign_payload()
        assert payload == campaign_payload()  # replay identity
        assert _digest(payload) == _goldens()["campaign"]

    def test_mac_heavy_matches_seed_golden(self):
        assert _digest(mac_heavy_payload()) == _goldens()["mac_heavy"]

    def test_plant_matches_scalar_golden(self):
        """The batched/compiled plant step is bit-identical to the scalar
        seed path this digest was captured from."""
        assert _digest(plant_payload()) == _goldens()["plant"]

    def test_widegrid_matches_seed_golden_and_replays(self):
        payload = widegrid_payload()
        assert payload == widegrid_payload()  # replay identity
        assert _digest(payload) == _goldens()["widegrid"]


class TestObsOnGoldenDigests:
    """Telemetry must be a pure observer: every golden workload digests
    identically with ``repro.obs`` enabled.  This is the guard that the
    instrumentation hooks (engine flush, medium batch counters, VM
    execute() metering, failover latency spans, plant step timing,
    campaign deltas) never perturb seeded semantics -- the run records
    a telemetry-on campaign persists stay byte-identical to obs-off."""

    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_digest_unchanged_with_telemetry(self, name):
        import repro.obs as obs

        obs.enable(obs.MetricsRegistry())
        try:
            payload = WORKLOADS[name]()
        finally:
            obs.disable()
        assert _digest(payload) == _goldens()[name]


# ----------------------------------------------------------------------
# Reference interpreter: the seed dispatch semantics, kept verbatim
# ----------------------------------------------------------------------
class _ReferenceVm:
    """Straight transcription of the seed ``Interpreter._dispatch`` loop."""

    def __init__(self, max_stack: int = 64, max_steps: int = 100_000) -> None:
        self.max_stack = max_stack
        self.max_steps = max_steps

    def execute(self, program: Program, memory: list[float]) -> VmState:
        state = VmState(routine=program.name)
        stack, rstack = state.stack, state.rstack

        def push(value: float) -> None:
            if len(stack) >= self.max_stack:
                raise VmError(f"stack overflow in {state.routine!r} "
                              f"(depth {self.max_stack})")
            stack.append(float(value))

        def pop() -> float:
            if not stack:
                raise VmError(f"stack underflow in {state.routine!r}")
            return stack.pop()

        def jump(target: int) -> None:
            if not 0 <= target <= len(program.instructions):
                raise VmError(f"jump target {target} out of range in "
                              f"{state.routine!r}")
            state.pc = target

        while not state.halted:
            if state.steps >= self.max_steps:
                raise VmError(f"step budget {self.max_steps} exhausted in "
                              f"{state.routine!r} (pc={state.pc})")
            if state.pc >= len(program.instructions):
                if rstack:
                    state.routine, state.pc = rstack.pop()
                    continue
                state.halted = True
                break
            ins = program.instructions[state.pc]
            state.pc += 1
            state.steps += 1
            op = ins.opcode
            if op is Opcode.HALT:
                state.halted = True
            elif op is Opcode.NOP:
                pass
            elif op is Opcode.PUSH:
                push(float(ins.arg))
            elif op is Opcode.DUP:
                v = pop(); push(v); push(v)
            elif op is Opcode.DROP:
                pop()
            elif op is Opcode.SWAP:
                b, a = pop(), pop(); push(b); push(a)
            elif op is Opcode.OVER:
                b, a = pop(), pop(); push(a); push(b); push(a)
            elif op is Opcode.ROT:
                c, b, a = pop(), pop(), pop(); push(b); push(c); push(a)
            elif op is Opcode.ADD:
                b, a = pop(), pop(); push(a + b)
            elif op is Opcode.SUB:
                b, a = pop(), pop(); push(a - b)
            elif op is Opcode.MUL:
                b, a = pop(), pop(); push(a * b)
            elif op is Opcode.DIV:
                b, a = pop(), pop()
                if b == 0.0:
                    raise VmError(f"division by zero in {state.routine!r}")
                push(a / b)
            elif op is Opcode.NEG:
                push(-pop())
            elif op is Opcode.ABS:
                push(abs(pop()))
            elif op is Opcode.MIN:
                b, a = pop(), pop(); push(min(a, b))
            elif op is Opcode.MAX:
                b, a = pop(), pop(); push(max(a, b))
            elif op is Opcode.LT:
                b, a = pop(), pop(); push(1.0 if a < b else 0.0)
            elif op is Opcode.GT:
                b, a = pop(), pop(); push(1.0 if a > b else 0.0)
            elif op is Opcode.LE:
                b, a = pop(), pop(); push(1.0 if a <= b else 0.0)
            elif op is Opcode.GE:
                b, a = pop(), pop(); push(1.0 if a >= b else 0.0)
            elif op is Opcode.EQ:
                b, a = pop(), pop(); push(1.0 if a == b else 0.0)
            elif op is Opcode.NE:
                b, a = pop(), pop(); push(1.0 if a != b else 0.0)
            elif op is Opcode.AND:
                b, a = pop(), pop()
                push(1.0 if (a != 0.0 and b != 0.0) else 0.0)
            elif op is Opcode.OR:
                b, a = pop(), pop()
                push(1.0 if (a != 0.0 or b != 0.0) else 0.0)
            elif op is Opcode.NOT:
                push(1.0 if pop() == 0.0 else 0.0)
            elif op is Opcode.JMP:
                jump(ins.arg)
            elif op is Opcode.JZ:
                if pop() == 0.0:
                    jump(ins.arg)
            elif op is Opcode.CALL:
                rstack.append((state.routine, state.pc))
                jump(ins.arg)
            elif op is Opcode.RET:
                if not rstack:
                    state.halted = True
                else:
                    state.routine, state.pc = rstack.pop()
            elif op is Opcode.LOAD:
                if not 0 <= ins.arg < len(memory):
                    raise VmError(f"LOAD slot {ins.arg} out of range")
                push(memory[ins.arg])
            elif op is Opcode.STORE:
                # Pop precedes slot validation (argument evaluation order
                # of the seed's `context.store(ins.arg, pop())`).
                value = pop()
                if not 0 <= ins.arg < len(memory):
                    raise VmError(f"STORE slot {ins.arg} out of range")
                memory[ins.arg] = value
            else:  # pragma: no cover - generator never emits the rest
                raise AssertionError(f"unexpected opcode {op!r}")
        return state


_GEN_ARGLESS = [
    Opcode.NOP, Opcode.DUP, Opcode.DROP, Opcode.SWAP, Opcode.OVER,
    Opcode.ROT, Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.NEG,
    Opcode.ABS, Opcode.MIN, Opcode.MAX, Opcode.LT, Opcode.GT, Opcode.LE,
    Opcode.GE, Opcode.EQ, Opcode.NE, Opcode.AND, Opcode.OR, Opcode.NOT,
    Opcode.RET, Opcode.HALT,
]

_raw_ops = st.one_of(
    st.sampled_from(_GEN_ARGLESS).map(lambda op: (op, None)),
    st.tuples(st.just(Opcode.PUSH),
              st.one_of(
                  st.integers(min_value=-4, max_value=4).map(float),
                  # Edge literals: infinities make NaN reachable (inf-inf)
                  # and signed zeros expose min/max tie-breaking.
                  st.sampled_from([float("inf"), float("-inf"), -0.0]))),
    # Memory is 10 slots; 10-12 exercise the out-of-range LOAD/STORE paths.
    st.tuples(st.sampled_from([Opcode.LOAD, Opcode.STORE]),
              st.integers(min_value=0, max_value=12)),
    # Jump targets are patched modulo len+2 below, so a few land out of
    # range and exercise the runtime "jump target out of range" path.
    st.tuples(st.sampled_from([Opcode.JMP, Opcode.JZ, Opcode.CALL]),
              st.integers(min_value=0, max_value=40)),
)


def _build_program(ops: list[tuple[Opcode, float | int | None]]) -> Program:
    instructions = []
    n = len(ops)
    for op, arg in ops:
        if op in (Opcode.JMP, Opcode.JZ, Opcode.CALL):
            arg = int(arg) % (n + 2)
        instructions.append(Instruction(op, arg))
    return Program("fuzz", instructions=tuple(instructions))


@settings(max_examples=200, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(_raw_ops, min_size=1, max_size=24),
       seed_mem=st.lists(st.integers(min_value=-3, max_value=3).map(float),
                         min_size=10, max_size=10))
def test_interpreter_matches_reference_semantics(ops, seed_mem):
    """Production interpreter == seed-semantics reference, byte for byte."""
    program = _build_program(ops)

    def run(vm, memory):
        # JSON-canonicalized so NaN results compare equal to themselves
        # and -0.0 stays distinguishable from 0.0.
        try:
            state = vm.execute(program, memory)
            return json.dumps({"state": state.snapshot(), "memory": memory},
                              sort_keys=True)
        except VmError as exc:
            return json.dumps({"error": str(exc), "memory": memory},
                              sort_keys=True)

    expected = run(_ReferenceVm(max_steps=400), list(seed_mem))
    # Twice through the production interpreter: the second run hits the
    # threaded-code cache, which must not change anything.
    interp = Interpreter(max_steps=400)
    actual_cold = run(interp, list(seed_mem))
    actual_warm = run(interp, list(seed_mem))
    assert actual_cold == expected
    assert actual_warm == expected


# ----------------------------------------------------------------------
# Peephole property: fused programs match the reference transcript
# ----------------------------------------------------------------------
# Chunks shaped like the idioms the peephole pass fuses, so generated
# programs hit fusion sites constantly instead of by uniform accident.
_consts = st.one_of(
    st.integers(min_value=-3, max_value=3).map(float),
    st.sampled_from([float("inf"), -0.0]))
_binops = st.sampled_from([
    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.MIN, Opcode.MAX,
    Opcode.LT, Opcode.GT, Opcode.LE, Opcode.GE, Opcode.EQ, Opcode.NE,
    Opcode.AND, Opcode.OR])

_idiom_chunks = st.one_of(
    # PUSH c; binop  -> push+binop fusion (DIV 0 exercises the no-fuse path)
    st.tuples(_consts, _binops).map(
        lambda t: [(Opcode.PUSH, t[0]), (t[1], None)]),
    # PUSH a; PUSH b; binop -> constant folding
    st.tuples(_consts, _consts, _binops).map(
        lambda t: [(Opcode.PUSH, t[0]), (Opcode.PUSH, t[1]), (t[2], None)]),
    st.just([(Opcode.DUP, None), (Opcode.DROP, None)]),
    # STORE s; LOAD s -> write-through (11-12 exercise bad slots)
    st.integers(min_value=0, max_value=12).map(
        lambda s: [(Opcode.STORE, s), (Opcode.LOAD, s)]),
    # LOAD s; JZ t -> fused branch
    st.tuples(st.integers(min_value=0, max_value=12),
              st.integers(min_value=0, max_value=40)).map(
        lambda t: [(Opcode.LOAD, t[0]), (Opcode.JZ, t[1])]),
    # JMP chains -> jump threading
    st.integers(min_value=0, max_value=40).map(
        lambda t: [(Opcode.JMP, t)]),
    # Interleaved singles keep the patterns from aligning trivially.
    _raw_ops.map(lambda op: [op]),
)


@settings(max_examples=200, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(chunks=st.lists(_idiom_chunks, min_size=1, max_size=8),
       seed_mem=st.lists(st.integers(min_value=-2, max_value=2).map(float),
                         min_size=10, max_size=10),
       budget=st.integers(min_value=1, max_value=400))
def test_peephole_matches_reference_transcript(chunks, seed_mem, budget):
    """Peephole-fused, plain-threaded and seed-reference execution agree
    instruction for instruction -- final state, memory image, error
    string -- at *every* step budget, including budgets that would land
    mid-superinstruction (the precise-mode fallback)."""
    ops = [op for chunk in chunks for op in chunk]
    program = _build_program(ops)

    def run(vm, memory):
        try:
            state = vm.execute(program, memory)
            return json.dumps({"state": state.snapshot(), "memory": memory},
                              sort_keys=True)
        except VmError as exc:
            return json.dumps({"error": str(exc), "memory": memory},
                              sort_keys=True)

    expected = run(_ReferenceVm(max_steps=budget), list(seed_mem))
    fused = run(Interpreter(max_steps=budget), list(seed_mem))
    plain = run(Interpreter(max_steps=budget, peephole=False),
                list(seed_mem))
    assert fused == expected
    assert plain == expected


@settings(max_examples=100, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(chunks=st.lists(_idiom_chunks, min_size=1, max_size=8),
       seed_mem=st.lists(st.integers(min_value=-2, max_value=2).map(float),
                         min_size=10, max_size=10))
def test_peephole_preserves_observable_effects(chunks, seed_mem):
    """The OUT-channel effect transcript (every value written, in order)
    is identical with and without the peephole pass."""
    ops = [op for chunk in chunks for op in chunk]
    # Splice OUT instructions between chunks so effects interleave with
    # fusion sites; channel 0 resolves through the root program's table.
    spliced = []
    for i, op in enumerate(ops):
        spliced.append(op)
        if i % 3 == 2:
            spliced.append((Opcode.OUT, 0))
    program_ops = spliced
    instructions = []
    n = len(program_ops)
    for op, arg in program_ops:
        if op in (Opcode.JMP, Opcode.JZ, Opcode.CALL):
            arg = int(arg) % (n + 2)
        instructions.append(Instruction(op, arg))
    program = Program("fuzz-out", instructions=tuple(instructions),
                      channels=("tap",))

    def run(peephole: bool):
        outputs: list[float] = []
        interp = Interpreter(max_steps=400, peephole=peephole)
        interp.bind_output("tap", outputs.append)
        memory = list(seed_mem)
        try:
            state = interp.execute(program, memory)
            return json.dumps({"state": state.snapshot(), "memory": memory,
                               "outputs": outputs}, sort_keys=True)
        except VmError as exc:
            return json.dumps({"error": str(exc), "memory": memory,
                               "outputs": outputs}, sort_keys=True)

    assert run(True) == run(False)


class TestSeedEdgeSemantics:
    """Edge cases the random generator is unlikely to hit, pinned against
    the reference interpreter explicitly."""

    def _both(self, instructions, memory):
        program = Program("edge", instructions=tuple(instructions))

        def run(vm):
            mem = list(memory)
            try:
                state = vm.execute(program, mem)
                return json.dumps({"state": state.snapshot(), "memory": mem},
                                  sort_keys=True)
            except VmError as exc:
                return json.dumps({"error": str(exc), "memory": mem},
                                  sort_keys=True)

        expected = run(_ReferenceVm(max_steps=400))
        actual = run(Interpreter(max_steps=400))
        assert actual == expected
        return actual

    def test_min_max_propagate_nan(self):
        # inf - inf produces NaN; min/max must propagate it like the seed.
        inf = float("inf")
        for op in (Opcode.MIN, Opcode.MAX):
            out = self._both([
                Instruction(Opcode.PUSH, inf), Instruction(Opcode.PUSH, inf),
                Instruction(Opcode.SUB), Instruction(Opcode.PUSH, 1.0),
                Instruction(op), Instruction(Opcode.STORE, 0),
                Instruction(Opcode.HALT)], [0.0])
            assert "NaN" in out

    def test_min_max_signed_zero_tie(self):
        out = self._both([
            Instruction(Opcode.PUSH, -0.0), Instruction(Opcode.PUSH, 0.0),
            Instruction(Opcode.MIN), Instruction(Opcode.STORE, 0),
            Instruction(Opcode.PUSH, 0.0), Instruction(Opcode.PUSH, -0.0),
            Instruction(Opcode.MAX), Instruction(Opcode.STORE, 1),
            Instruction(Opcode.HALT)], [9.0, 9.0])
        # min/max return their *first* operand on ties, preserving sign.
        assert json.loads(out)["memory"] == [-0.0, 0.0]

    def test_load_coerces_int_memory_to_float(self):
        # Int-seeded memory (the float type hint is unchecked) must not
        # leak ints onto the stack: the seed's push() coerced via float().
        out = self._both([Instruction(Opcode.LOAD, 0),
                          Instruction(Opcode.HALT)], [5])
        assert json.loads(out)["state"]["stack"] == [5.0]
        assert "5.0" in out


def _capture(names: list[str] | None = None) -> None:
    """(Re)capture golden digests.  With ``names``, only those workloads
    are recaptured and merged over the existing file -- digests captured
    from an earlier seed stay byte-for-byte untouched."""
    existing = (json.loads(GOLDEN_PATH.read_text())
                if GOLDEN_PATH.exists() else {"digests": {}})
    targets = names or list(WORKLOADS)
    digests = dict(existing.get("digests", {}))
    for name in targets:
        digests[name] = _digest(WORKLOADS[name]())
    GOLDEN_PATH.write_text(json.dumps(
        {"captured_from": "seed implementation (pre hot-path optimization)",
         "digests": digests}, indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH}")
    for name in targets:
        print(f"  {name}: {digests[name]}")


if __name__ == "__main__":
    import sys

    if "--capture" in sys.argv:
        names = [a for a in sys.argv[1:] if not a.startswith("--")]
        _capture(names or None)
    else:
        print(__doc__)
