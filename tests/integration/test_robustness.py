"""Robustness and failure injection on the full HIL stack.

The EVM's reason to exist is surviving the network's failure modes:
lossy links, babbling interferers, runtime reprogramming and parametric
retuning, and combined fault sequences.  Every fault sequence here is
expressed through the ``repro.scenarios`` DSL -- a declarative
:class:`Scenario` with a timed fault schedule, armed on the rig by the
:class:`FaultInjector` -- the same machinery the campaign runner sweeps.
"""

import pytest

from repro.control.compiler import SLOT_OUTPUT, SLOT_SETPOINT
from repro.evm.failover import ControllerMode
from repro.experiments.hil import (
    ACTUATOR,
    CTRL_A,
    CTRL_B,
    GATEWAY,
    HilRig,
    SENSOR,
    TASK_ACT,
    TASK_CTRL,
)
from repro.scenarios import (
    BabblingInterferer,
    CapsuleRetune,
    CapsuleUpgrade,
    LinkDegrade,
    NodeCrash,
    NodeRecover,
    OutputWedge,
    Scenario,
)
from repro.scenarios.stock import fast_hil
from repro.sim.clock import SEC


def scenario(name: str, duration_sec: float, **hil_overrides) -> Scenario:
    return Scenario(name, hil=fast_hil(**hil_overrides),
                    duration_sec=duration_sec)


class TestLossyLinks:
    def test_loop_holds_under_10pct_loss(self):
        spec = scenario("loss-10pct", 60.0).at(0.0, LinkDegrade(prr=0.9))
        rig = HilRig(spec)
        rig.run_for_seconds(60.0)
        assert rig.read("lts_level_pct") == pytest.approx(50.0, abs=2.0)
        assert rig.medium.stats.channel_losses > 0  # losses really occurred

    def test_failover_still_works_under_loss(self):
        spec = scenario("loss-then-wedge", 50.0, detection_threshold=3) \
            .at(0.0, LinkDegrade(prr=0.9)) \
            .at(20.0, OutputWedge(TASK_CTRL, 75.0))
        rig = HilRig(spec)
        rig.run_for_seconds(50.0)
        assert rig.active_controller() == CTRL_B
        assert rig.controller_mode(CTRL_B) is ControllerMode.ACTIVE

    def test_heavy_loss_degrades_but_does_not_crash(self):
        rig = HilRig(scenario("loss-50pct", 40.0)
                     .at(0.0, LinkDegrade(prr=0.5)))
        rig.run_for_seconds(40.0)
        # The loop wanders more but the stack keeps operating.
        assert 30.0 < rig.read("lts_level_pct") < 70.0
        assert rig.runtimes[ACTUATOR].stats.data_applied > 0


class TestBabblingNode:
    def test_forged_commands_rejected_by_switch(self):
        """A compromised *backup* babbles valve commands.  (The spare,
        ctrl_c, is physically filtered by the TDMA listen schedule; the
        backup is in the actuator's listen set, so the operation switch is
        the line of defense and must refuse every frame.)"""
        spec = scenario("babbler", 40.0).at(
            10.0, BabblingInterferer(node=CTRL_B, task=TASK_CTRL,
                                     consumer=TASK_ACT, value=99.0,
                                     slot=SLOT_OUTPUT, period_ms=500))
        rig = HilRig(spec)
        rig.run_for_seconds(10.0)
        rejected_before = rig.runtimes[ACTUATOR].stats.rejected_by_switch
        rig.run_for_seconds(30.0)
        assert rig.runtimes[ACTUATOR].stats.rejected_by_switch > \
            rejected_before
        # The plant never saw the forged 99 % command.
        assert rig.read("lts_level_pct") == pytest.approx(50.0, abs=1.5)
        assert rig.read("lts_valve_pct") < 20.0


class TestRuntimeReprogramming:
    def test_setpoint_retune_via_parametric_poke(self):
        """Remote parametric control: move the level setpoint 50 -> 42
        on both controllers without touching code."""
        spec = scenario("retune", 420.0).at(
            20.0, CapsuleRetune(TASK_CTRL, SLOT_SETPOINT, 42.0,
                                from_node=GATEWAY))
        rig = HilRig(spec)
        rig.run_for_seconds(420.0)
        assert rig.read("lts_level_pct") == pytest.approx(42.0, abs=1.5)
        # Both the active and backup instances follow the new setpoint.
        for ctrl in (CTRL_A, CTRL_B):
            memory = rig.runtimes[ctrl].instances[TASK_CTRL].memory
            assert memory[SLOT_SETPOINT] == pytest.approx(42.0)

    def test_control_law_upgrade_via_dissemination(self):
        """Ship a v2 control-law capsule over the air; both controllers
        pick it up on their next job (runtime reprogramming)."""
        spec = scenario("ota-upgrade", 40.0).at(
            10.0, CapsuleUpgrade(version=2, from_node=GATEWAY))
        rig = HilRig(spec)
        rig.run_for_seconds(20.0)
        for node_id in (CTRL_A, CTRL_B, SENSOR, ACTUATOR):
            assert rig.runtimes[node_id].capsules.version_of(
                "lts_ctrl_law") == 2, node_id
        # Still regulating on the upgraded law.
        rig.run_for_seconds(20.0)
        assert rig.read("lts_level_pct") == pytest.approx(50.0, abs=1.5)


class TestCombinedFaults:
    def test_fault_then_crash_of_new_primary_exhausts_backups(self):
        """Double failure: Ctrl-A wedges, Ctrl-B takes over, then Ctrl-B
        crashes.  With no remaining capable backup the head logs a failed
        arbitration rather than promoting garbage."""
        spec = scenario("wedge-then-crash", 35.0,
                        dormant_delay_ticks=3 * SEC) \
            .at(10.0, OutputWedge(TASK_CTRL, 75.0)) \
            .at(20.0, NodeCrash(CTRL_B))
        rig = HilRig(spec)
        rig.run_for_seconds(20.0)
        assert rig.active_controller() == CTRL_B
        rig.run_for_seconds(15.0)
        failures = [e for e in rig.trace.events("evm.failover_failed")]
        assert failures, "head should report exhausted backups"

    def test_sensor_noise_spike_does_not_trip_detection(self):
        """A burst of sensor noise hits both controllers identically, so
        shadow deviation stays near zero and no fault is confirmed."""
        rig = HilRig(scenario("noise-spike", 60.0, sensor_noise_std=1.5,
                              detection_threshold=3))
        rig.run_for_seconds(60.0)
        confirmed = [e for e in rig.trace.events("evm.fault_detected")
                     if e.category == "evm.fault_detected"]
        assert confirmed == []
        assert rig.active_controller() == CTRL_A


class TestCrashRecovery:
    def test_rebooted_primary_is_fenced_by_the_switch(self):
        """Ctrl-A crashes, Ctrl-B takes over, Ctrl-A reboots with stale
        ACTIVE state.  The epoch check in the actuator's operation switch
        must fence the stale ex-primary while the loop stays on Ctrl-B."""
        spec = scenario("crash-recover", 70.0) \
            .at(15.0, NodeCrash(CTRL_A)) \
            .at(35.0, NodeRecover(CTRL_A))
        rig = HilRig(spec)
        rig.run_for_seconds(35.0)
        assert rig.active_controller() == CTRL_B
        rejected_before = rig.runtimes[ACTUATOR].stats.rejected_by_switch
        rig.run_for_seconds(35.0)
        # The reboot really happened and the node is scheduling again.
        assert not rig.kernels[CTRL_A].crashed
        assert rig.trace.count("rtos.restart") == 1
        # ... but the component still answers to Ctrl-B,
        assert rig.active_controller() == CTRL_B
        # the stale replica's publishes were refused,
        assert rig.runtimes[ACTUATOR].stats.rejected_by_switch \
            > rejected_before
        # and the plant never noticed.
        assert rig.read("lts_level_pct") == pytest.approx(50.0, abs=2.0)
