"""Robustness and failure injection on the full HIL stack.

The EVM's reason to exist is surviving the network's failure modes:
lossy links, babbling interferers, runtime reprogramming and parametric
retuning, and combined fault sequences.
"""

import pytest

from repro.control.compiler import SLOT_OUTPUT, SLOT_SETPOINT
from repro.evm.capsule import Capsule
from repro.evm.failover import ControllerMode
from repro.experiments.hil import (
    ACTUATOR,
    CTRL_A,
    CTRL_B,
    GATEWAY,
    HilConfig,
    HilRig,
    SENSOR,
    TASK_CTRL,
)
from repro.net.packet import BROADCAST, Packet
from repro.sim.clock import MS, SEC


def fast_hil(**overrides) -> HilConfig:
    defaults = dict(settle_sec=800.0, arbitration_holdoff_ticks=1,
                    dormant_delay_ticks=10 * SEC)
    defaults.update(overrides)
    return HilConfig(**defaults)


class TestLossyLinks:
    def test_loop_holds_under_10pct_loss(self):
        rig = HilRig(fast_hil(link_prr=0.9))
        rig.run_for_seconds(60.0)
        assert rig.read("lts_level_pct") == pytest.approx(50.0, abs=2.0)
        assert rig.medium.stats.channel_losses > 0  # losses really occurred

    def test_failover_still_works_under_loss(self):
        rig = HilRig(fast_hil(link_prr=0.9, detection_threshold=3))
        rig.run_for_seconds(20.0)
        rig.inject_controller_fault(75.0)
        rig.run_for_seconds(30.0)
        assert rig.active_controller() == CTRL_B
        assert rig.controller_mode(CTRL_B) is ControllerMode.ACTIVE

    def test_heavy_loss_degrades_but_does_not_crash(self):
        rig = HilRig(fast_hil(link_prr=0.5))
        rig.run_for_seconds(40.0)
        # The loop wanders more but the stack keeps operating.
        assert 30.0 < rig.read("lts_level_pct") < 70.0
        assert rig.runtimes[ACTUATOR].stats.data_applied > 0


class TestBabblingNode:
    def test_forged_commands_rejected_by_switch(self):
        """A compromised *backup* babbles valve commands.  (The spare,
        ctrl_c, is physically filtered by the TDMA listen schedule; the
        backup is in the actuator's listen set, so the operation switch is
        the line of defense and must refuse every frame.)"""
        rig = HilRig(fast_hil())
        rig.run_for_seconds(10.0)
        babbler = rig.kernels[CTRL_B]

        def babble():
            packet = Packet(src=CTRL_B, dst=BROADCAST, kind="evm.data",
                            payload={
                                "task": TASK_CTRL,
                                "consumer": "lts_act",
                                "values": [(SLOT_OUTPUT, 0, 99.0)],
                                "sent_at": rig.engine.now,
                                "epoch": 0,
                            }, size_bytes=20)
            babbler.send_packet("EVM", packet)
            rig.engine.schedule(500 * MS, babble)

        rig.engine.schedule(0, babble)
        rejected_before = rig.runtimes[ACTUATOR].stats.rejected_by_switch
        rig.run_for_seconds(30.0)
        assert rig.runtimes[ACTUATOR].stats.rejected_by_switch > \
            rejected_before
        # The plant never saw the forged 99 % command.
        assert rig.read("lts_level_pct") == pytest.approx(50.0, abs=1.5)
        assert rig.read("lts_valve_pct") < 20.0


class TestRuntimeReprogramming:
    def test_setpoint_retune_via_parametric_poke(self):
        """Remote parametric control: move the level setpoint 50 -> 42
        on both controllers without touching code."""
        rig = HilRig(fast_hil())
        rig.run_for_seconds(20.0)
        rig.runtimes[GATEWAY].poke_remote(TASK_CTRL, SLOT_SETPOINT, 42.0)
        rig.run_for_seconds(400.0)
        assert rig.read("lts_level_pct") == pytest.approx(42.0, abs=1.5)
        # Both the active and backup instances follow the new setpoint.
        for ctrl in (CTRL_A, CTRL_B):
            memory = rig.runtimes[ctrl].instances[TASK_CTRL].memory
            assert memory[SLOT_SETPOINT] == pytest.approx(42.0)

    def test_control_law_upgrade_via_dissemination(self):
        """Ship a v2 control-law capsule over the air; both controllers
        pick it up on their next job (runtime reprogramming)."""
        rig = HilRig(fast_hil())
        rig.run_for_seconds(10.0)
        v2_program = rig.control_config.compile("lts_ctrl_law")
        capsule = Capsule.from_program(v2_program, version=2)
        rig.runtimes[GATEWAY].install_capsule(capsule, disseminate=True)
        rig.run_for_seconds(10.0)
        for node_id in (CTRL_A, CTRL_B, SENSOR, ACTUATOR):
            assert rig.runtimes[node_id].capsules.version_of(
                "lts_ctrl_law") == 2, node_id
        # Still regulating on the upgraded law.
        rig.run_for_seconds(20.0)
        assert rig.read("lts_level_pct") == pytest.approx(50.0, abs=1.5)


class TestCombinedFaults:
    def test_fault_then_crash_of_new_primary_exhausts_backups(self):
        """Double failure: Ctrl-A wedges, Ctrl-B takes over, then Ctrl-B
        crashes.  With no remaining capable backup the head logs a failed
        arbitration rather than promoting garbage."""
        rig = HilRig(fast_hil(dormant_delay_ticks=3 * SEC))
        rig.run_for_seconds(10.0)
        rig.inject_controller_fault(75.0)
        rig.run_for_seconds(10.0)
        assert rig.active_controller() == CTRL_B
        rig.crash_node(CTRL_B)
        rig.run_for_seconds(15.0)
        failures = [e for e in rig.trace.events("evm.failover_failed")]
        assert failures, "head should report exhausted backups"

    def test_sensor_noise_spike_does_not_trip_detection(self):
        """A burst of sensor noise hits both controllers identically, so
        shadow deviation stays near zero and no fault is confirmed."""
        rig = HilRig(fast_hil(sensor_noise_std=1.5, detection_threshold=3))
        rig.run_for_seconds(60.0)
        confirmed = [e for e in rig.trace.events("evm.fault_detected")
                     if e.category == "evm.fault_detected"]
        assert confirmed == []
        assert rig.active_controller() == CTRL_A
