"""Tree routing and the ModBus gateway."""

import pytest

from repro.net.modbus import (
    ModbusGatewayService,
    ModbusSerialLink,
    ProcessImage,
    RegisterSpec,
)
from repro.net.packet import Packet
from repro.net.routing import TreeRouter, build_tree_tables
from repro.net.topology import line, star
from repro.sim.clock import MS


class TestTreeTables:
    def test_line_routes_through_middle(self):
        topo = line(["a", "b", "c"])
        tables = build_tree_tables(topo, "a")
        assert tables["a"]["c"] == "b"
        assert tables["c"]["a"] == "b"
        assert tables["b"]["a"] == "a"

    def test_star_routes_through_center(self):
        topo = star("gw", ["x", "y"])
        tables = build_tree_tables(topo, "gw")
        assert tables["x"]["y"] == "gw"

    def test_unknown_root_rejected(self):
        with pytest.raises(KeyError):
            build_tree_tables(line(["a", "b"]), "zz")


class _FakeMac:
    """Captures sends; delivers on demand."""

    def __init__(self, node_id):
        self.node_id = node_id
        self.sent = []
        self.handler = None

    def send(self, packet):
        self.sent.append(packet)
        return True

    def set_receive_handler(self, fn):
        self.handler = fn


class TestTreeRouter:
    def test_send_wraps_and_addresses_next_hop(self):
        topo = line(["a", "b", "c"])
        tables = build_tree_tables(topo, "a")
        mac = _FakeMac("a")
        router = TreeRouter(mac, tables["a"])
        router.send(Packet(src="a", dst="c", kind="data", payload=7,
                           size_bytes=8, created_at=5))
        frame = mac.sent[0]
        assert frame.dst == "b"
        assert frame.kind == "route.data"
        assert frame.payload == ("c", 7)
        assert frame.created_at == 5

    def test_forwarding_at_intermediate(self):
        topo = line(["a", "b", "c"])
        tables = build_tree_tables(topo, "a")
        mac_b = _FakeMac("b")
        router_b = TreeRouter(mac_b, tables["b"])
        # Frame from a, destined to c, arriving at b.
        frame = Packet(src="a", dst="b", kind="route.data",
                       payload=("c", 99), size_bytes=8)
        mac_b.handler(frame)
        assert router_b.forwarded == 1
        assert mac_b.sent[0].dst == "c"

    def test_delivery_at_destination(self):
        topo = line(["a", "b", "c"])
        tables = build_tree_tables(topo, "a")
        mac_c = _FakeMac("c")
        router_c = TreeRouter(mac_c, tables["c"])
        delivered = []
        router_c.set_deliver_handler(delivered.append)
        mac_c.handler(Packet(src="b", dst="c", kind="route.data",
                             payload=("c", 42), size_bytes=8))
        assert delivered[0].payload == 42
        assert delivered[0].kind == "data"

    def test_single_hop_passthrough(self):
        mac = _FakeMac("b")
        router = TreeRouter(mac, {})
        delivered = []
        router.set_deliver_handler(delivered.append)
        mac.handler(Packet(src="a", dst="b", kind="plain", payload=1))
        assert len(delivered) == 1

    def test_no_route_counted(self):
        mac = _FakeMac("a")
        router = TreeRouter(mac, {})
        ok = router.send(Packet(src="a", dst="zz", kind="x"))
        assert not ok
        assert router.no_route_drops == 1


class TestProcessImage:
    def test_scaling_roundtrip(self):
        image = ProcessImage()
        image.define(1, "level", 0.0, 100.0, initial=50.0)
        assert image.read(1) == pytest.approx(50.0, abs=0.01)
        image.write(1, 11.48)
        assert image.read(1) == pytest.approx(11.48, abs=0.01)

    def test_quantization_is_16bit(self):
        image = ProcessImage()
        image.define(1, "x", 0.0, 100.0)
        image.write(1, 33.3333333)
        raw = image.read_raw(1)
        assert 0 <= raw <= 0xFFFF
        assert image.read(1) == pytest.approx(33.3333, abs=100.0 / 0xFFFF)

    def test_out_of_range_clamps(self):
        image = ProcessImage()
        image.define(1, "x", 0.0, 100.0)
        image.write(1, 150.0)
        assert image.read(1) == pytest.approx(100.0)
        image.write(1, -5.0)
        assert image.read(1) == pytest.approx(0.0)

    def test_write_hooks(self):
        image = ProcessImage()
        image.define(1, "x", 0.0, 1.0)
        seen = []
        image.on_write(lambda addr, v: seen.append((addr, v)))
        image.write(1, 0.5)
        assert seen[0][0] == 1

    def test_undefined_register(self):
        image = ProcessImage()
        with pytest.raises(KeyError):
            image.read(99)

    def test_duplicate_define_rejected(self):
        image = ProcessImage()
        image.define(1, "x")
        with pytest.raises(ValueError):
            image.define(1, "y")


class TestSerialLink:
    def test_read_has_latency(self, engine):
        image = ProcessImage()
        image.define(1, "x", 0.0, 100.0, initial=42.0)
        link = ModbusSerialLink(engine, image, transaction_ticks=5 * MS)
        got = []
        link.read_async(1, got.append)
        engine.run_until(4 * MS)
        assert got == []
        engine.run_until(6 * MS)
        assert got[0] == pytest.approx(42.0, abs=0.01)

    def test_write_applies_after_latency(self, engine):
        image = ProcessImage()
        image.define(1, "x", 0.0, 100.0)
        link = ModbusSerialLink(engine, image, transaction_ticks=5 * MS)
        link.write_async(1, 77.0)
        assert image.read(1) == pytest.approx(0.0, abs=0.01)
        engine.run()
        assert image.read(1) == pytest.approx(77.0, abs=0.01)
        assert link.transactions == 1


class TestGatewayService:
    def test_read_request_answered(self, engine):
        image = ProcessImage()
        image.define(100, "level", 0.0, 100.0, initial=50.0)
        mac = _FakeMac("gw")
        service = ModbusGatewayService(engine, mac, image)
        mac.handler(Packet(src="s1", dst="gw", kind="modbus.read",
                           payload=100))
        response = mac.sent[0]
        assert response.kind == "modbus.resp"
        assert response.dst == "s1"
        address, value = response.payload
        assert address == 100
        assert value == pytest.approx(50.0, abs=0.01)

    def test_write_applied(self, engine):
        image = ProcessImage()
        image.define(200, "valve", 0.0, 100.0)
        mac = _FakeMac("gw")
        service = ModbusGatewayService(engine, mac, image)
        mac.handler(Packet(src="a1", dst="gw", kind="modbus.write",
                           payload=(200, 75.0)))
        assert image.read(200) == pytest.approx(75.0, abs=0.01)
        assert service.writes_applied == 1

    def test_unknown_register_counted(self, engine):
        image = ProcessImage()
        mac = _FakeMac("gw")
        service = ModbusGatewayService(engine, mac, image)
        mac.handler(Packet(src="s1", dst="gw", kind="modbus.read",
                           payload=999))
        assert service.errors == 1
        assert mac.sent == []

    def test_fallthrough_for_evm_frames(self, engine):
        image = ProcessImage()
        mac = _FakeMac("gw")
        service = ModbusGatewayService(engine, mac, image)
        other = []
        service.set_fallthrough(other.append)
        mac.handler(Packet(src="x", dst="gw", kind="evm.data", payload={}))
        assert len(other) == 1
