"""Property: RT-Link is collision-free under ANY valid schedule and load.

The claim behind the paper's choice of substrate: scheduled slots +
hardware sync = no collisions, ever.  Hypothesis generates random slot
assignments, listener sets and traffic patterns; the medium must never
record a collision, and every frame transmitted while its addressee
listened must arrive.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.hardware.node import FireFlyNode
from repro.hardware.timesync import AmTimeSync, TimeSyncSpec
from repro.net.mac.rtlink import RtLinkConfig, RtLinkMac, RtLinkSchedule
from repro.net.medium import Medium
from repro.net.packet import Packet
from repro.net.topology import full_mesh
from repro.sim.clock import MS, SEC
from repro.sim.engine import Engine


@st.composite
def tdma_scenarios(draw):
    n_nodes = draw(st.integers(min_value=2, max_value=6))
    slots_per_frame = draw(st.sampled_from([16, 24, 32]))
    node_ids = [f"n{i}" for i in range(n_nodes)]
    slots = draw(st.lists(
        st.integers(min_value=0, max_value=slots_per_frame - 1),
        min_size=n_nodes, max_size=n_nodes, unique=True))
    # Per-node packet bursts (count, start offset ms).
    bursts = draw(st.lists(
        st.tuples(st.integers(min_value=0, max_value=6),
                  st.integers(min_value=0, max_value=500)),
        min_size=n_nodes, max_size=n_nodes))
    seed = draw(st.integers(min_value=0, max_value=999))
    return node_ids, slots_per_frame, slots, bursts, seed


@settings(max_examples=25, deadline=None)
@given(tdma_scenarios())
def test_rtlink_never_collides(scenario):
    node_ids, slots_per_frame, slots, bursts, seed = scenario
    engine = Engine()
    topology = full_mesh(node_ids, spacing_m=5.0)
    medium = Medium(engine, topology, rng=random.Random(seed))
    sync = AmTimeSync(engine, random.Random(seed + 1), TimeSyncSpec())
    config = RtLinkConfig(slots_per_frame=slots_per_frame)
    schedule = RtLinkSchedule(config)
    all_nodes = set(node_ids)
    for node_id, slot in zip(node_ids, slots):
        schedule.assign(slot, node_id, all_nodes - {node_id})
    macs = {}
    for node_id in node_ids:
        node = FireFlyNode(engine, node_id,
                           position=topology.position(node_id),
                           with_sensors=False)
        node.join_timesync(sync)
        mac = RtLinkMac(engine, node, medium.attach(node), schedule,
                        queue_capacity=64)
        macs[node_id] = mac
        mac.start()
    sync.start()
    for node_id, (count, offset_ms) in zip(node_ids, bursts):
        for k in range(count):
            engine.schedule(
                offset_ms * MS + k,
                lambda nid=node_id, i=k: macs[nid].send(
                    Packet(src=nid, dst="*", kind=f"b{i}", size_bytes=24)))
    engine.run_until(6 * SEC)
    assert medium.stats.collisions == 0
    # Everything queued eventually went out.
    total_sent = sum(mac.stats.sent for mac in macs.values())
    total_enqueued = sum(mac.stats.enqueued for mac in macs.values())
    assert total_sent == total_enqueued


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=2, max_value=5),
       st.integers(min_value=0, max_value=99))
def test_rtlink_delivery_complete_on_perfect_links(n_nodes, seed):
    """All unicast frames to listening neighbors are delivered exactly once."""
    engine = Engine()
    node_ids = [f"n{i}" for i in range(n_nodes)]
    topology = full_mesh(node_ids, spacing_m=5.0)
    medium = Medium(engine, topology, rng=random.Random(seed))
    sync = AmTimeSync(engine, random.Random(seed + 1), TimeSyncSpec())
    schedule = RtLinkSchedule.round_robin(RtLinkConfig(), node_ids)
    received = []
    macs = {}
    for node_id in node_ids:
        node = FireFlyNode(engine, node_id,
                           position=topology.position(node_id),
                           with_sensors=False)
        node.join_timesync(sync)
        mac = RtLinkMac(engine, node, medium.attach(node), schedule,
                        queue_capacity=64)
        mac.set_receive_handler(
            lambda p, n=node_id: received.append((n, p.seq)))
        macs[node_id] = mac
        mac.start()
    sync.start()
    rng = random.Random(seed + 2)
    expected = 0
    for _ in range(10):
        src, dst = rng.sample(node_ids, 2)
        macs[src].send(Packet(src=src, dst=dst, kind="u", size_bytes=16))
        expected += 1
    engine.run_until(5 * SEC)
    assert len(received) == expected
    assert len(set(received)) == expected  # exactly-once
