"""SlotWheel calendar and the versioned RtLinkSchedule indexes.

The wheel must be *provably* equivalent to the naive per-slot walker the
MAC used before the calendar existed: the hypothesis property below
replays random schedules, frame geometries and live assign/clear
mutations through both and demands identical TX/RX slot transcripts.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.mac.rtlink import RtLinkConfig, RtLinkSchedule
from repro.net.mac.slotwheel import SlotWheel


def naive_next_interesting(schedule: RtLinkSchedule, node_id: str,
                           from_slot: int):
    """The pre-calendar reference: scan one whole frame slot by slot."""
    spf = schedule.config.slots_per_frame
    for abs_slot in range(from_slot, from_slot + spf):
        slot = abs_slot % spf
        if schedule.transmitter(slot) == node_id:
            return abs_slot, "tx"
        if node_id in schedule.listeners(slot):
            return abs_slot, "rx"
    return None


def transcript(next_fn, from_slot: int, spf: int, length: int):
    """Walk ``length`` interesting slots the way ``RtLinkMac._run`` does:
    service the slot, advance the cursor past it; jump a frame when the
    node has nothing at all."""
    out, cursor = [], from_slot
    for _ in range(length):
        upcoming = next_fn(cursor)
        if upcoming is None:
            out.append(None)
            cursor += spf
            continue
        abs_slot, kind = upcoming
        out.append((abs_slot, kind))
        cursor = abs_slot + 1
    return out


class TestScheduleIndexes:
    def _schedule(self) -> RtLinkSchedule:
        config = RtLinkConfig(slots_per_frame=8)
        schedule = RtLinkSchedule(config)
        schedule.assign(1, "a", {"b", "c"})
        schedule.assign(3, "b", {"a"})
        schedule.assign(6, "c", {"a", "b"})
        return schedule

    def test_indexes_match_definition(self):
        schedule = self._schedule()
        assert schedule.tx_slots_of("a") == [1]
        assert schedule.rx_slots_of("a") == [3, 6]
        assert schedule.tx_slots_of("nobody") == []
        assert schedule.rx_slots_of("nobody") == []
        assert schedule.free_slots() == [0, 2, 4, 5, 7]

    def test_assign_and_clear_bump_version(self):
        schedule = self._schedule()
        before = schedule.version
        schedule.clear(3)
        assert schedule.version > before
        before = schedule.version
        schedule.assign(3, "c", {"b"})
        assert schedule.version > before

    def test_clear_of_empty_slot_is_a_noop_version_wise(self):
        schedule = self._schedule()
        before = schedule.version
        schedule.clear(0)  # never assigned
        assert schedule.version == before

    def test_interleaved_assign_clear_keeps_indexes_fresh(self):
        schedule = self._schedule()
        schedule.clear(1)
        assert schedule.tx_slots_of("a") == []
        assert schedule.rx_slots_of("b") == [6]
        assert 1 in schedule.free_slots()
        schedule.assign(1, "b", {"a", "c"})
        assert schedule.tx_slots_of("b") == [1, 3]
        assert schedule.rx_slots_of("a") == [1, 3, 6]
        assert schedule.free_slots() == [0, 2, 4, 5, 7]
        schedule.clear(6)
        schedule.assign(0, "c", set())
        assert schedule.tx_slots_of("c") == [0]
        assert schedule.rx_slots_of("a") == [1, 3]
        assert schedule.free_slots() == [2, 4, 5, 6, 7]

    def test_returned_lists_are_copies(self):
        schedule = self._schedule()
        schedule.tx_slots_of("a").append(99)
        schedule.free_slots().append(99)
        assert schedule.tx_slots_of("a") == [1]
        assert schedule.free_slots() == [0, 2, 4, 5, 7]

    def test_listeners_never_include_transmitter(self):
        schedule = RtLinkSchedule(RtLinkConfig(slots_per_frame=4))
        schedule.assign(2, "a", {"a", "b"})
        assert schedule.rx_slots_of("a") == []
        assert schedule.rx_slots_of("b") == [2]


class TestSlotWheel:
    def test_empty_wheel_has_no_interesting_slots(self):
        schedule = RtLinkSchedule(RtLinkConfig(slots_per_frame=8))
        schedule.assign(0, "a", {"b"})
        wheel = SlotWheel("ghost", schedule)
        assert len(wheel) == 0
        assert wheel.next_interesting(0) is None
        assert wheel.next_interesting(12345) is None

    def test_wraps_to_next_frame(self):
        schedule = RtLinkSchedule(RtLinkConfig(slots_per_frame=8))
        schedule.assign(2, "a", {"b"})
        wheel = SlotWheel("a", schedule)
        assert wheel.next_interesting(0) == (2, "tx")
        assert wheel.next_interesting(2) == (2, "tx")
        assert wheel.next_interesting(3) == (10, "tx")
        assert wheel.next_interesting(8 * 1000 + 7) == (8 * 1001 + 2, "tx")

    def test_stamped_with_schedule_version(self):
        schedule = RtLinkSchedule(RtLinkConfig(slots_per_frame=8))
        schedule.assign(0, "a", {"b"})
        wheel = SlotWheel("b", schedule)
        assert wheel.version == schedule.version
        schedule.assign(5, "c", {"b"})
        assert wheel.version != schedule.version
        rebuilt = SlotWheel("b", schedule)
        assert rebuilt.next_interesting(1) == (5, "rx")


# ----------------------------------------------------------------------
# Property: wheel transcript == naive walker transcript
# ----------------------------------------------------------------------
NODE_POOL = ["n0", "n1", "n2", "n3", "n4", "n5"]


@st.composite
def schedule_and_mutations(draw):
    spf = draw(st.integers(min_value=1, max_value=48))
    config = RtLinkConfig(slots_per_frame=spf)
    schedule = RtLinkSchedule(config)
    n_ops = draw(st.integers(min_value=0, max_value=24))
    for _ in range(n_ops):
        slot = draw(st.integers(min_value=0, max_value=spf - 1))
        if schedule.transmitter(slot) is None and draw(st.booleans()):
            transmitter = draw(st.sampled_from(NODE_POOL))
            listeners = set(draw(st.lists(st.sampled_from(NODE_POOL),
                                          max_size=len(NODE_POOL))))
            schedule.assign(slot, transmitter, listeners)
        else:
            schedule.clear(slot)
    return schedule


@settings(max_examples=120, deadline=None)
@given(data=st.data(), schedule=schedule_and_mutations())
def test_wheel_transcript_matches_naive_walker(data, schedule):
    spf = schedule.config.slots_per_frame
    node_id = data.draw(st.sampled_from(NODE_POOL), label="node")
    start = data.draw(st.integers(min_value=0, max_value=4 * spf),
                      label="start_slot")
    wheel = SlotWheel(node_id, schedule)
    got = transcript(wheel.next_interesting, start, spf, length=2 * spf + 3)
    want = transcript(
        lambda cursor: naive_next_interesting(schedule, node_id, cursor),
        start, spf, length=2 * spf + 3)
    assert got == want


@settings(max_examples=60, deadline=None)
@given(data=st.data(), schedule=schedule_and_mutations())
def test_wheel_agrees_after_live_mutation(data, schedule):
    """assign/clear mid-walk: a rebuilt wheel (version changed) must track
    the mutated schedule exactly, the way ``RtLinkMac`` rebuilds its
    calendar on a version mismatch."""
    spf = schedule.config.slots_per_frame
    node_id = data.draw(st.sampled_from(NODE_POOL), label="node")
    wheel = SlotWheel(node_id, schedule)
    version_before = schedule.version
    slot = data.draw(st.integers(min_value=0, max_value=spf - 1),
                     label="mutated_slot")
    if schedule.transmitter(slot) is None:
        schedule.assign(slot, node_id, set(NODE_POOL))
    else:
        schedule.clear(slot)
    assert schedule.version != version_before
    if wheel.version != schedule.version:
        wheel = SlotWheel(node_id, schedule)
    start = data.draw(st.integers(min_value=0, max_value=2 * spf),
                      label="start_slot")
    got = transcript(wheel.next_interesting, start, spf, length=spf + 2)
    want = transcript(
        lambda cursor: naive_next_interesting(schedule, node_id, cursor),
        start, spf, length=spf + 2)
    assert got == want
