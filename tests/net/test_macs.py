"""MAC protocols: RT-Link slot discipline, B-MAC LPL, S-MAC duty cycling."""

import random
import zlib

import pytest

from repro.hardware.node import FireFlyNode
from repro.hardware.timesync import AmTimeSync, TimeSyncSpec
from repro.net.mac.bmac import BMac, BMacConfig
from repro.net.mac.rtlink import RtLinkConfig, RtLinkMac, RtLinkSchedule
from repro.net.mac.smac import SMac, SMacConfig
from repro.net.medium import Medium
from repro.net.packet import Packet
from repro.net.topology import full_mesh
from repro.sim.clock import MS, SEC


def build_stack(engine, node_ids, mac_factory, with_sync=True):
    topology = full_mesh(node_ids, spacing_m=5.0)
    medium = Medium(engine, topology, rng=random.Random(3))
    sync = AmTimeSync(engine, random.Random(5), TimeSyncSpec())
    nodes, macs, inboxes = {}, {}, {}
    for node_id in node_ids:
        # Stable per-node seed: hash() varies with PYTHONHASHSEED and made
        # the contention outcomes flip between interpreter runs.
        node = FireFlyNode(engine, node_id, with_sensors=False,
                           rng=random.Random(zlib.crc32(node_id.encode())
                                             % 1000))
        if with_sync:
            node.join_timesync(sync)
        port = medium.attach(node)
        mac = mac_factory(engine, node, port)
        inboxes[node_id] = []
        mac.set_receive_handler(
            lambda p, n=node_id: inboxes[n].append(p))
        nodes[node_id] = node
        macs[node_id] = mac
    if with_sync:
        sync.start()
    for mac in macs.values():
        mac.start()
    return nodes, macs, inboxes, medium


class TestRtLinkSchedule:
    def test_round_robin_unique_slots(self):
        config = RtLinkConfig()
        schedule = RtLinkSchedule.round_robin(config, ["a", "b", "c"])
        assert schedule.transmitter(0) == "a"
        assert schedule.transmitter(1) == "b"
        assert schedule.tx_slots_of("c") == [2]
        assert "a" in schedule.listeners(1)

    def test_double_assignment_rejected(self):
        schedule = RtLinkSchedule(RtLinkConfig())
        schedule.assign(0, "a")
        with pytest.raises(ValueError):
            schedule.assign(0, "b")

    def test_slot_out_of_range(self):
        schedule = RtLinkSchedule(RtLinkConfig(slots_per_frame=8))
        with pytest.raises(ValueError):
            schedule.assign(8, "a")

    def test_too_many_nodes(self):
        config = RtLinkConfig(slots_per_frame=2)
        with pytest.raises(ValueError):
            RtLinkSchedule.round_robin(config, ["a", "b", "c"])

    def test_free_slots(self):
        schedule = RtLinkSchedule(RtLinkConfig(slots_per_frame=4))
        schedule.assign(1, "a")
        assert schedule.free_slots() == [0, 2, 3]


class TestRtLink:
    def _factory(self, schedule):
        def make(engine, node, port):
            return RtLinkMac(engine, node, port, schedule)

        return make

    def test_collision_free_under_load(self, engine):
        """Every node saturates its queue; RT-Link must never collide."""
        ids = ["a", "b", "c", "d"]
        config = RtLinkConfig()
        schedule = RtLinkSchedule.round_robin(config, ids)
        nodes, macs, inboxes, medium = build_stack(
            engine, ids, self._factory(schedule))
        for node_id in ids:
            for _ in range(10):
                macs[node_id].send(Packet(src=node_id, dst="*",
                                          kind="x", size_bytes=32))
        engine.run_until(10 * SEC)
        assert medium.stats.collisions == 0
        assert medium.stats.frames_sent == 40

    def test_unicast_delivery(self, engine):
        ids = ["a", "b", "c"]
        schedule = RtLinkSchedule.round_robin(RtLinkConfig(), ids)
        nodes, macs, inboxes, medium = build_stack(
            engine, ids, self._factory(schedule))
        macs["a"].send(Packet(src="a", dst="b", kind="hello", size_bytes=16))
        engine.run_until(2 * SEC)
        assert [p.kind for p in inboxes["b"]] == ["hello"]
        assert inboxes["c"] == []  # filtered: not addressed to c

    def test_latency_bounded_by_frame(self, engine):
        ids = ["a", "b"]
        config = RtLinkConfig()
        schedule = RtLinkSchedule.round_robin(config, ids)
        nodes, macs, inboxes, medium = build_stack(
            engine, ids, self._factory(schedule))
        engine.run_until(1 * SEC)
        macs["a"].send(Packet(src="a", dst="b", kind="x", size_bytes=16))
        engine.run_until(2 * SEC)
        assert macs["b"].stats.delivery_latencies[0] <= config.frame_ticks

    def test_nodes_sleep_outside_slots(self, engine):
        ids = ["a", "b"]
        schedule = RtLinkSchedule.round_robin(RtLinkConfig(), ids)
        nodes, macs, inboxes, medium = build_stack(
            engine, ids, self._factory(schedule))
        engine.run_until(10 * SEC)
        # 1 tx + 1 rx slot of 32 -> duty well under 10 %
        assert nodes["a"].radio.duty_cycle() < 0.10

    def test_oversize_packet_rejected(self, engine):
        ids = ["a", "b"]
        schedule = RtLinkSchedule.round_robin(RtLinkConfig(), ids)
        nodes, macs, _, _ = build_stack(engine, ids, self._factory(schedule))
        with pytest.raises(ValueError):
            macs["a"].send(Packet(src="a", dst="b", kind="big",
                                  size_bytes=200))

    def test_queue_overflow_counted(self, engine):
        ids = ["a", "b"]
        schedule = RtLinkSchedule.round_robin(RtLinkConfig(), ids)

        def factory(eng, node, port):
            return RtLinkMac(eng, node, port, schedule, queue_capacity=2)

        nodes, macs, _, _ = build_stack(engine, ids, factory)
        for _ in range(5):
            macs["a"].send(Packet(src="a", dst="b", kind="x", size_bytes=8))
        assert macs["a"].stats.queue_drops == 3

    def test_failed_node_goes_silent(self, engine):
        ids = ["a", "b"]
        schedule = RtLinkSchedule.round_robin(RtLinkConfig(), ids)
        nodes, macs, inboxes, medium = build_stack(
            engine, ids, self._factory(schedule))
        macs["a"].send(Packet(src="a", dst="b", kind="x", size_bytes=8))
        engine.run_until(1 * SEC)
        count = len(inboxes["b"])
        nodes["a"].fail()
        macs["a"].send(Packet(src="a", dst="b", kind="x", size_bytes=8))
        engine.run_until(3 * SEC)
        assert len(inboxes["b"]) == count

    def test_back_to_back_rx_slots_all_heard(self, engine):
        """Gateway listening in consecutive slots must not skip any."""
        ids = ["a", "b", "c", "gw"]
        config = RtLinkConfig()
        schedule = RtLinkSchedule(config)
        for i, node_id in enumerate(["a", "b", "c"]):
            schedule.assign(i, node_id, {"gw"})
        nodes, macs, inboxes, medium = build_stack(
            engine, ids, self._factory(schedule))
        for node_id in ("a", "b", "c"):
            macs[node_id].send(Packet(src=node_id, dst="gw", kind="r",
                                      size_bytes=16))
        engine.run_until(2 * SEC)
        assert sorted(p.src for p in inboxes["gw"]) == ["a", "b", "c"]


class TestBMac:
    def _factory(self, config=None):
        def make(engine, node, port):
            return BMac(engine, node, port, config or BMacConfig())

        return make

    def test_delivery(self, engine):
        nodes, macs, inboxes, medium = build_stack(
            engine, ["a", "b"], self._factory(), with_sync=False)
        macs["a"].send(Packet(src="a", dst="b", kind="x", size_bytes=24))
        engine.run_until(3 * SEC)
        assert [p.kind for p in inboxes["b"]] == ["x"]

    def test_preamble_not_delivered_upward(self, engine):
        nodes, macs, inboxes, medium = build_stack(
            engine, ["a", "b"], self._factory(), with_sync=False)
        macs["a"].send(Packet(src="a", dst="b", kind="x", size_bytes=24))
        engine.run_until(3 * SEC)
        assert all(p.kind != "bmac.preamble" for p in inboxes["b"])
        assert macs["a"].preambles_sent == 1

    def test_sender_pays_preamble_energy(self, engine):
        nodes, macs, _, _ = build_stack(
            engine, ["a", "b"], self._factory(), with_sync=False)
        for _ in range(5):
            macs["a"].send(Packet(src="a", dst="b", kind="x", size_bytes=24))
        engine.run_until(20 * SEC)
        # Preamble >= check interval: sender TX time dominates.
        from repro.hardware.radio import RadioState
        tx_time = nodes["a"].radio.state_time(RadioState.TX)
        assert tx_time > 5 * macs["a"].config.check_interval_ticks

    def test_periodic_channel_sampling(self, engine):
        nodes, macs, _, _ = build_stack(
            engine, ["a", "b"], self._factory(), with_sync=False)
        engine.run_until(5 * SEC)
        # ~50 samples in 5 s at 100 ms check interval
        assert 40 <= macs["b"].samples_taken <= 60


class TestSMac:
    def _factory(self, config=None):
        def make(engine, node, port):
            return SMac(engine, node, port, config or SMacConfig())

        return make

    def test_delivery_within_listen_window(self, engine):
        nodes, macs, inboxes, medium = build_stack(
            engine, ["a", "b"], self._factory(), with_sync=False)
        macs["a"].send(Packet(src="a", dst="b", kind="x", size_bytes=24))
        engine.run_until(5 * SEC)
        assert [p.kind for p in inboxes["b"]] == ["x"]

    def test_duty_cycle_near_configured(self, engine):
        config = SMacConfig(frame_ticks=1000 * MS, listen_ticks=100 * MS)
        nodes, macs, _, _ = build_stack(
            engine, ["a", "b"], self._factory(config), with_sync=False)
        engine.run_until(30 * SEC)
        duty = nodes["b"].radio.duty_cycle()
        assert 0.05 < duty < 0.2  # ~10 % listen window

    def test_latency_dominated_by_sleep(self, engine):
        """Packets queued mid-sleep wait for the next listen window."""
        config = SMacConfig(frame_ticks=1000 * MS, listen_ticks=100 * MS)
        nodes, macs, inboxes, _ = build_stack(
            engine, ["a", "b"], self._factory(config), with_sync=False)
        engine.run_until(1500 * MS)  # mid-sleep of frame 2
        macs["a"].send(Packet(src="a", dst="b", kind="x", size_bytes=24))
        engine.run_until(5 * SEC)
        assert macs["b"].stats.delivery_latencies[0] > 300 * MS

    def test_contention_loss_counted(self, engine):
        nodes, macs, inboxes, medium = build_stack(
            engine, ["a", "b", "c"], self._factory(), with_sync=False)
        for _ in range(10):
            macs["a"].send(Packet(src="a", dst="c", kind="x", size_bytes=24))
            macs["b"].send(Packet(src="b", dst="c", kind="y", size_bytes=24))
        engine.run_until(30 * SEC)
        assert (macs["a"].contention_losses + macs["b"].contention_losses
                > 0)
