"""Topology, link quality and the shared medium (collisions, losses)."""

import random

import pytest

from repro.hardware.node import FireFlyNode
from repro.hardware.radio import RadioState
from repro.net.link_quality import FixedPrr, PathLossModel, PerfectLinks
from repro.net.medium import Medium
from repro.net.packet import BROADCAST, Packet
from repro.net.topology import Topology, full_mesh, grid, line, star
from repro.sim.clock import MS


class TestTopology:
    def test_star(self):
        topo = star("gw", ["a", "b", "c"])
        assert topo.has_link("gw", "a")
        assert not topo.has_link("a", "b")
        assert sorted(topo.neighbors("gw")) == ["a", "b", "c"]

    def test_line_multihop(self):
        topo = line(["a", "b", "c", "d"])
        assert topo.shortest_path("a", "d") == ["a", "b", "c", "d"]

    def test_grid_connectivity(self):
        topo = grid(3, 3)
        assert len(topo.node_ids) == 9
        assert topo.is_connected()
        corner_neighbors = topo.neighbors("n0_0")
        assert sorted(corner_neighbors) == ["n0_1", "n1_0"]

    def test_full_mesh(self):
        topo = full_mesh(["a", "b", "c"])
        assert topo.has_link("a", "b")
        assert topo.has_link("b", "c")
        assert topo.has_link("a", "c")

    def test_remove_node_drops_links(self):
        topo = full_mesh(["a", "b", "c"])
        topo.remove_node("b")
        assert "b" not in topo
        assert not topo.has_link("a", "b")

    def test_connect_by_range(self):
        topo = line(["a", "b", "c"], spacing_m=10.0)
        topo.remove_link("a", "b")
        topo.remove_link("b", "c")
        topo.connect_by_range(15.0)
        assert topo.has_link("a", "b")
        assert not topo.has_link("a", "c")  # 20 m apart

    def test_bfs_tree(self):
        topo = line(["a", "b", "c"])
        parents = topo.bfs_tree_toward("a")
        assert parents == {"b": "a", "c": "b"}

    def test_duplicate_node_rejected(self):
        topo = Topology()
        topo.add_node("a")
        with pytest.raises(ValueError):
            topo.add_node("a")


class TestLinkQuality:
    def test_perfect_links(self):
        model = PerfectLinks()
        rng = random.Random(0)
        assert all(model.frame_survives(100.0, 128, rng) for _ in range(100))

    def test_fixed_prr_statistics(self):
        model = FixedPrr(0.7)
        rng = random.Random(1)
        survived = sum(model.frame_survives(1.0, 32, rng)
                       for _ in range(2000))
        assert 0.65 < survived / 2000 < 0.75

    def test_fixed_prr_range_validation(self):
        with pytest.raises(ValueError):
            FixedPrr(1.5)

    def test_path_loss_monotone_in_distance(self):
        model = PathLossModel()
        prrs = [model.expected_prr(d) for d in (1, 5, 10, 20, 40)]
        assert all(a >= b for a, b in zip(prrs, prrs[1:]))

    def test_path_loss_longer_frames_fare_worse(self):
        model = PathLossModel()
        assert model.expected_prr(15.0, 16) > model.expected_prr(15.0, 120)

    def test_close_links_are_good(self):
        model = PathLossModel()
        assert model.expected_prr(5.0, 32) > 0.95


class _Harness:
    def __init__(self, engine, node_ids, link_model=None):
        self.topology = full_mesh(node_ids, spacing_m=5.0)
        self.medium = Medium(engine, self.topology, link_model=link_model,
                             rng=random.Random(9))
        self.nodes = {}
        self.received = []
        for node_id in node_ids:
            node = FireFlyNode(engine, node_id, with_sensors=False)
            port = self.medium.attach(node)
            port.set_receive_callback(
                lambda pkt, n=node_id: self.received.append((n, pkt.seq)))
            self.nodes[node_id] = node


class TestMedium:
    def test_delivery_to_listening_neighbor(self, engine):
        h = _Harness(engine, ["a", "b"])
        h.medium.port("b").listen()
        h.medium.port("a").transmit(
            Packet(src="a", dst="b", kind="x", size_bytes=16))
        engine.run()
        assert len(h.received) == 1
        assert h.medium.stats.frames_delivered == 1

    def test_radio_off_misses_frame(self, engine):
        h = _Harness(engine, ["a", "b"])
        # b never listens
        h.medium.port("a").transmit(
            Packet(src="a", dst="b", kind="x", size_bytes=16))
        engine.run()
        assert h.received == []
        assert h.medium.stats.missed_radio_off == 1

    def test_overlapping_transmissions_collide(self, engine):
        h = _Harness(engine, ["a", "b", "c"])
        h.medium.port("c").listen()
        packet_a = Packet(src="a", dst="c", kind="x", size_bytes=64)
        packet_b = Packet(src="b", dst="c", kind="x", size_bytes=64)
        engine.schedule(0, h.medium.port("a").transmit, packet_a)
        engine.schedule(10, h.medium.port("b").transmit, packet_b)
        engine.run()
        assert h.received == []
        assert h.medium.stats.collisions == 2

    def test_non_overlapping_no_collision(self, engine):
        h = _Harness(engine, ["a", "b", "c"])
        h.medium.port("c").listen()
        airtime = h.nodes["a"].radio.airtime(64 + 11)
        engine.schedule(0, h.medium.port("a").transmit,
                        Packet(src="a", dst="c", kind="x", size_bytes=64))
        engine.schedule(airtime + 100, h.medium.port("b").transmit,
                        Packet(src="b", dst="c", kind="x", size_bytes=64))
        engine.run()
        assert len(h.received) == 2
        assert h.medium.stats.collisions == 0

    def test_transmitter_cannot_receive_while_sending(self, engine):
        h = _Harness(engine, ["a", "b"])
        h.medium.port("a").listen()
        h.medium.port("b").listen()
        # Both transmit simultaneously: each is in TX at delivery.
        engine.schedule(0, h.medium.port("a").transmit,
                        Packet(src="a", dst="b", kind="x", size_bytes=32))
        engine.schedule(0, h.medium.port("b").transmit,
                        Packet(src="b", dst="a", kind="x", size_bytes=32))
        engine.run()
        assert h.received == []

    def test_lossy_link_drops_frames(self, engine):
        h = _Harness(engine, ["a", "b"], link_model=FixedPrr(0.0))
        h.medium.port("b").listen()
        h.medium.port("a").transmit(
            Packet(src="a", dst="b", kind="x", size_bytes=16))
        engine.run()
        assert h.received == []
        assert h.medium.stats.channel_losses == 1

    def test_channel_busy_during_transmission(self, engine):
        h = _Harness(engine, ["a", "b"])
        h.medium.port("a").transmit(
            Packet(src="a", dst="b", kind="x", size_bytes=100))
        assert h.medium.port("b").channel_busy()
        engine.run()
        assert not h.medium.port("b").channel_busy()

    def test_broadcast_reaches_all_listeners(self, engine):
        h = _Harness(engine, ["a", "b", "c", "d"])
        for nid in ("b", "c", "d"):
            h.medium.port(nid).listen()
        h.medium.port("a").transmit(
            Packet(src="a", dst=BROADCAST, kind="x", size_bytes=16))
        engine.run()
        assert sorted(n for n, _ in h.received) == ["b", "c", "d"]

    def test_failed_node_cannot_transmit(self, engine):
        h = _Harness(engine, ["a", "b"])
        h.nodes["a"].fail()
        with pytest.raises(RuntimeError):
            h.medium.port("a").transmit(
                Packet(src="a", dst="b", kind="x", size_bytes=16))

    def test_unattached_node_rejected(self, engine):
        h = _Harness(engine, ["a", "b"])
        stranger = FireFlyNode(engine, "zz", with_sensors=False)
        with pytest.raises(KeyError):
            h.medium.attach(stranger)


class TestTraceFlag:
    def test_trace_attached_after_construction_records(self, engine):
        from repro.sim.trace import Trace

        h = _Harness(engine, ["a", "b"])
        h.medium.trace = Trace()  # post-construction attach must take
        assert h.medium.trace_enabled
        h.medium.port("b").listen()
        h.medium.port("a").transmit(
            Packet(src="a", dst="b", kind="x", size_bytes=16))
        engine.run()
        categories = [event.category for event in h.medium.trace]
        assert "medium.tx" in categories and "medium.rx" in categories

    def test_trace_detached_disables_recording(self, engine):
        from repro.sim.trace import Trace

        h = _Harness(engine, ["a", "b"])
        h.medium.trace = Trace()
        h.medium.trace = None
        assert not h.medium.trace_enabled
        h.medium.port("b").listen()
        h.medium.port("a").transmit(
            Packet(src="a", dst="b", kind="x", size_bytes=16))
        engine.run()  # must not AttributeError on a stale flag
        assert h.medium.stats.frames_delivered == 1


class TestMediumIndexes:
    """Topology-version hygiene of the cached medium indexes."""

    def _flood(self, engine, h, node_ids, seq0=0):
        for i, nid in enumerate(node_ids):
            h.medium.port(nid).listen()
            engine.schedule(i * 3 * MS, h.medium.port(nid).transmit,
                            Packet(src=nid, dst=BROADCAST, kind="x",
                                   size_bytes=16, seq=seq0 + i))
        engine.run()

    def test_caches_stay_bounded_across_version_bumps(self, engine):
        """Repeated topology mutations must not accrete stale cache keys
        (the receiver rows subsume the old per-pair distance cache, and
        every rebuild clears all of it)."""
        h = _Harness(engine, ["a", "b", "c", "d"])
        sizes = []
        for round_no in range(5):
            self._flood(engine, h, ["a", "b", "c", "d"], seq0=round_no * 10)
            # Structural mutation: drop and restore one link.
            h.topology.remove_link("a", "b")
            h.topology.add_link("a", "b")
            sizes.append(len(h.medium._receiver_rows)
                         + len(h.medium._neighbor_tuples)
                         + len(h.medium._audible_sets))
        assert max(sizes) <= 3 * 4  # bounded by the live topology, not time
        h.medium._check_indexes()  # fold in the last (unconsumed) bump
        assert h.medium.check_indexes_consistent()

    def test_indexes_consistent_after_traffic_and_rebuild(self, engine):
        h = _Harness(engine, ["a", "b", "c"])
        self._flood(engine, h, ["a", "b", "c"])
        assert h.medium.check_indexes_consistent()
        h.topology.remove_link("a", "c")
        # Next medium activity rebuilds against the new version.
        h.medium.port("a").transmit(
            Packet(src="a", dst=BROADCAST, kind="x", size_bytes=16, seq=99))
        engine.run()
        assert h.medium.check_indexes_consistent()
        assert h.medium._topo_version == h.topology.version

    def test_attach_after_traffic_invalidates_receiver_rows(self, engine):
        """A node attached after frames already flowed must be resolved as
        a receiver on the very next completion."""
        h = _Harness(engine, ["a", "b", "c"])
        del h.nodes["c"], h.medium._ports["c"]  # start with c unattached
        h.medium._receiver_rows.clear()
        h.medium.port("b").listen()
        h.medium.port("a").transmit(
            Packet(src="a", dst=BROADCAST, kind="x", size_bytes=16, seq=1))
        engine.run()
        assert ("b", 1) in h.received
        late = FireFlyNode(engine, "c", with_sensors=False)
        port = h.medium.attach(late)
        port.set_receive_callback(lambda pkt: h.received.append(("c", pkt.seq)))
        port.listen()
        h.medium.port("a").transmit(
            Packet(src="a", dst=BROADCAST, kind="x", size_bytes=16, seq=2))
        engine.run()
        assert ("c", 2) in h.received
        assert h.medium.check_indexes_consistent()
