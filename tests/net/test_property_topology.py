"""Hypothesis properties for random geometric topologies.

The wide-grid suite builds every 100+-node layout through
``random_geometric`` / ``random_geometric_connected``; these properties
pin the invariants the drivers rely on: the link set is exactly the
within-range pair set (no self links, no duplicates), generation is a
pure function of the rng seed, and the connected variant returns a
connected graph over the *same* placement without consuming extra
randomness.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.net.topology import random_geometric, random_geometric_connected

_params = dict(
    n=st.integers(min_value=1, max_value=40),
    area=st.floats(min_value=1.0, max_value=200.0,
                   allow_nan=False, allow_infinity=False),
    radio_range=st.floats(min_value=0.1, max_value=250.0,
                          allow_nan=False, allow_infinity=False),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)


@settings(max_examples=120, deadline=None)
@given(**_params)
def test_links_are_exactly_the_within_range_pairs(n, area, radio_range, seed):
    topo = random_geometric(n, area, radio_range, random.Random(seed))
    ids = topo.node_ids
    assert len(ids) == n
    for node in ids:
        assert not topo.has_link(node, node)  # no self links
    expected = {(a, b) for i, a in enumerate(ids) for b in ids[i + 1:]
                if topo.distance(a, b) <= radio_range}
    actual = {tuple(sorted(edge)) for edge in topo.graph.edges}
    expected = {tuple(sorted(pair)) for pair in expected}
    assert actual == expected
    # nx.Graph cannot hold parallel edges; the count doubles as a
    # no-duplicates check against the expected set.
    assert topo.graph.number_of_edges() == len(expected)


@settings(max_examples=60, deadline=None)
@given(**_params)
def test_deterministic_under_fixed_rng(n, area, radio_range, seed):
    a = random_geometric(n, area, radio_range, random.Random(seed))
    b = random_geometric(n, area, radio_range, random.Random(seed))
    assert a.node_ids == b.node_ids
    for node in a.node_ids:
        pa, pb = a.position(node), b.position(node)
        assert (pa.x, pa.y) == (pb.x, pb.y)
    assert set(a.graph.edges) == set(b.graph.edges)


@settings(max_examples=60, deadline=None)
@given(**_params)
def test_connected_variant_connects_same_placement(n, area, radio_range,
                                                   seed):
    topo, effective = random_geometric_connected(
        n, area, radio_range, random.Random(seed))
    assert topo.is_connected()
    assert effective >= radio_range
    # Same placement as the plain generator with the same seed: range
    # growth adds links, never moves nodes or redraws randomness.
    plain = random_geometric(n, area, radio_range, random.Random(seed))
    for node in topo.node_ids:
        pt, pp = topo.position(node), plain.position(node)
        assert (pt.x, pt.y) == (pp.x, pp.y)
    assert set(plain.graph.edges) <= set(topo.graph.edges)
    # Every added link is justified by the effective range.
    for a, b in topo.graph.edges:
        assert topo.distance(a, b) <= effective
