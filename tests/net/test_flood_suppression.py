"""VC broadcast flood suppression: relay holds, EVM dedup caches.

The fourth perf wave bounds the broadcast storm on dense meshes three
ways -- counter-based relay suppression in :class:`RoutedMacAdapter`,
bounded viral capsule re-dissemination, and stale/duplicate drops for
state and mode broadcasts in :class:`EvmRuntime`.  Everything defaults
*off*: the first tests pin that the classic relay-at-once flood is
untouched, the last ones that a suppressed wide-grid trial reaches the
same failover outcome on measurably less airtime.
"""

from __future__ import annotations

import pytest

from repro.control.compiler import compile_passthrough
from repro.evm.capsule import Capsule
from repro.evm.runtime import EvmRuntime, FloodDiscipline, StateSharingPolicy
from repro.evm.tasks import LogicalTask
from repro.evm.virtual_component import VcMember, VirtualComponent
from repro.hardware.node import FireFlyNode
from repro.net.packet import BROADCAST, Packet
from repro.net.routing import RoutedMacAdapter
from repro.rtos.kernel import NanoRK
from repro.sim.clock import MS
from repro.sim.engine import Engine


class _FakeMac:
    """Just enough MAC for the adapter: records sends, owns an engine."""

    def __init__(self, node_id, engine):
        self.node_id = node_id
        self.engine = engine
        self.sent = []
        self.handler = None
        self.stats = object()

    def send(self, packet):
        self.sent.append(packet)
        return True

    def set_receive_handler(self, fn):
        self.handler = fn

    def stop(self):
        pass


def _flood(seq, hops=0):
    return Packet(src="a", dst=BROADCAST, kind="flood.evm.data",
                  payload=("origin", seq, {"v": seq}), size_bytes=24,
                  hops=hops)


class TestRelaySuppression:
    def test_default_threshold_relays_at_once(self):
        engine = Engine()
        mac = _FakeMac("b", engine)
        adapter = RoutedMacAdapter(mac, {})
        adapter.set_receive_handler(lambda p: None)
        mac.handler(_flood(1))
        assert adapter.floods_relayed == 1
        assert len(mac.sent) == 1
        assert adapter._pending_relays == {}

    def test_local_delivery_is_never_delayed(self):
        engine = Engine()
        mac = _FakeMac("b", engine)
        adapter = RoutedMacAdapter(mac, {}, suppress_threshold=2,
                                   suppress_delay_ticks=50 * MS)
        delivered = []
        adapter.set_receive_handler(delivered.append)
        mac.handler(_flood(1))
        # Handed upward immediately; only the relay is held back.
        assert len(delivered) == 1
        assert mac.sent == []

    def test_relay_suppressed_when_neighbors_covered_it(self):
        engine = Engine()
        mac = _FakeMac("b", engine)
        adapter = RoutedMacAdapter(mac, {}, suppress_threshold=2,
                                   suppress_delay_ticks=50 * MS)
        delivered = []
        adapter.set_receive_handler(delivered.append)
        mac.handler(_flood(1))
        mac.handler(_flood(1))           # two neighbors relayed first
        mac.handler(_flood(1))
        engine.run_until(60 * MS)
        assert mac.sent == []            # our copy was redundant
        assert adapter.floods_suppressed == 1
        assert adapter.floods_relayed == 0
        assert adapter.duplicate_floods_heard == 2
        assert len(delivered) == 1       # delivered exactly once

    def test_relay_fires_when_neighborhood_is_quiet(self):
        engine = Engine()
        mac = _FakeMac("b", engine)
        adapter = RoutedMacAdapter(mac, {}, suppress_threshold=2,
                                   suppress_delay_ticks=50 * MS)
        adapter.set_receive_handler(lambda p: None)
        mac.handler(_flood(1))
        mac.handler(_flood(1))           # one duplicate: below threshold
        engine.run_until(60 * MS)
        assert adapter.floods_relayed == 1
        assert adapter.floods_suppressed == 0
        assert len(mac.sent) == 1
        assert mac.sent[0].hops == 1

    def test_late_duplicates_do_not_resurrect_the_decision(self):
        engine = Engine()
        mac = _FakeMac("b", engine)
        adapter = RoutedMacAdapter(mac, {}, suppress_threshold=1,
                                   suppress_delay_ticks=10 * MS)
        adapter.set_receive_handler(lambda p: None)
        mac.handler(_flood(1))
        engine.run_until(20 * MS)        # decision fired: relayed
        assert adapter.floods_relayed == 1
        mac.handler(_flood(1))           # duplicate after the window
        engine.run_until(40 * MS)
        assert adapter.floods_relayed == 1
        assert adapter.floods_suppressed == 0

    def test_ttl_still_bounds_held_relays(self):
        engine = Engine()
        mac = _FakeMac("b", engine)
        adapter = RoutedMacAdapter(mac, {}, flood_ttl=2,
                                   suppress_threshold=2,
                                   suppress_delay_ticks=10 * MS)
        adapter.set_receive_handler(lambda p: None)
        mac.handler(_flood(1, hops=1))   # hops+1 == ttl: never relayed
        engine.run_until(20 * MS)
        assert mac.sent == []
        assert adapter.floods_relayed == 0
        assert adapter.floods_suppressed == 0


# ----------------------------------------------------------------------
# EVM-side discipline
# ----------------------------------------------------------------------
def _build_runtime(engine, discipline, state_mode="active"):
    """One runtime on node 'c', hosting 'job' as the backup of primary
    'p', with a recording MAC underneath."""
    mac = _FakeMac("c", engine)
    vc = VirtualComponent("storm-vc")
    vc.admit(VcMember("p", frozenset({"x"})))
    vc.admit(VcMember("c", frozenset({"x"})))
    vc.add_task(LogicalTask(
        name="job", program_name="ident", period_ticks=100 * MS,
        wcet_ticks=1 * MS, memory_slots=16,
        required_capabilities=frozenset({"x"}), replicas=2))
    vc.assign("job", "p", backups=["c"])
    node = FireFlyNode(engine, "c", with_sensors=False)
    kernel = NanoRK(engine, node)
    kernel.attach_mac(mac)
    runtime = EvmRuntime(
        kernel, vc, frozenset({"x"}),
        state_sharing=StateSharingPolicy(mode=state_mode),
        flood_discipline=discipline)
    runtime.install_capsule(
        Capsule.from_program(compile_passthrough("ident", gain=1.0), 1))
    runtime.configure_from_vc(head_id="p")
    return runtime, mac


def _fragments(capsule, pieces=3):
    """Manually fragment a capsule blob into ``pieces`` capfrag payloads
    (the chunk size is the sender's choice; receivers just reassemble)."""
    blob = capsule.blob
    size = -(-len(blob) // pieces)
    chunks = [blob[i * size:(i + 1) * size] for i in range(pieces)]
    chunks = [c for c in chunks if c] or [b""]
    return [{"name": capsule.name, "version": capsule.version,
             "digest": capsule.digest, "index": i, "total": len(chunks),
             "chunk": chunk} for i, chunk in enumerate(chunks)]


def _capfrag(src, payload):
    return Packet(src=src, dst=BROADCAST, kind="evm.capfrag",
                  payload=payload, size_bytes=len(payload["chunk"]) + 12)


class TestCapsuleFanoutBound:
    def _spare_capsule(self):
        return Capsule.from_program(compile_passthrough("spare", gain=2.0), 1)

    def test_rebroadcast_suppressed_when_spreaders_heard(self):
        engine = Engine()
        runtime, mac = _build_runtime(
            engine, FloodDiscipline(capsule_fanout_bound=2))
        capsule = self._spare_capsule()
        frags = _fragments(capsule, pieces=3)
        # Two distinct spreaders heard before reassembly completes.
        runtime.deliver(_capfrag("n1", frags[0]))
        runtime.deliver(_capfrag("n2", frags[0]))
        runtime.deliver(_capfrag("n1", frags[1]))
        runtime.deliver(_capfrag("n1", frags[2]))
        assert runtime.capsules.has("spare")
        assert runtime.stats.capsule_rebroadcasts_suppressed == 1
        assert [p for p in mac.sent if p.kind == "evm.capfrag"] == []
        assert runtime._capsule_sources == {}  # cache drained on adopt

    def test_rebroadcast_proceeds_below_bound(self):
        engine = Engine()
        runtime, mac = _build_runtime(
            engine, FloodDiscipline(capsule_fanout_bound=2))
        capsule = self._spare_capsule()
        for frag in _fragments(capsule, pieces=3):
            runtime.deliver(_capfrag("n1", frag))   # one spreader only
        assert runtime.capsules.has("spare")
        assert runtime.stats.capsule_rebroadcasts_suppressed == 0
        assert [p for p in mac.sent if p.kind == "evm.capfrag"]

    def test_default_discipline_always_rebroadcasts(self):
        engine = Engine()
        runtime, mac = _build_runtime(engine, None)
        capsule = self._spare_capsule()
        frags = _fragments(capsule, pieces=3)
        runtime.deliver(_capfrag("n1", frags[0]))
        runtime.deliver(_capfrag("n2", frags[0]))
        runtime.deliver(_capfrag("n3", frags[1]))
        runtime.deliver(_capfrag("n4", frags[2]))
        assert runtime.capsules.has("spare")
        assert runtime.stats.capsule_rebroadcasts_suppressed == 0
        assert [p for p in mac.sent if p.kind == "evm.capfrag"]
        assert runtime._capsule_sources == {}  # never populated when off


class TestStateStaleDrop:
    def _snapshot(self, jobs, value):
        return Packet(src="p", dst=BROADCAST, kind="evm.state",
                      payload={"task": "job", "memory": [value] * 4,
                               "jobs": jobs}, size_bytes=40)

    def test_non_advancing_snapshots_dropped(self):
        engine = Engine()
        runtime, _mac = _build_runtime(
            engine, FloodDiscipline(state_stale_drop=True),
            state_mode="passive")
        runtime.deliver(self._snapshot(jobs=4, value=1.0))
        runtime.deliver(self._snapshot(jobs=4, value=2.0))   # duplicate
        runtime.deliver(self._snapshot(jobs=2, value=3.0))   # re-ordered
        assert runtime.stats.snapshots_applied == 1
        assert runtime.stats.snapshots_stale_dropped == 2
        assert runtime.instances["job"].memory[0] == 1.0
        runtime.deliver(self._snapshot(jobs=8, value=9.0))   # fresh
        assert runtime.stats.snapshots_applied == 2
        assert runtime.instances["job"].memory[0] == 9.0

    def test_default_discipline_applies_every_snapshot(self):
        engine = Engine()
        runtime, _mac = _build_runtime(engine, None, state_mode="passive")
        runtime.deliver(self._snapshot(jobs=4, value=1.0))
        runtime.deliver(self._snapshot(jobs=4, value=2.0))
        assert runtime.stats.snapshots_applied == 2
        assert runtime.stats.snapshots_stale_dropped == 0


class TestModeDedup:
    def _mode(self, epoch, primary="p", modes=None):
        return Packet(src="p", dst=BROADCAST, kind="evm.mode",
                      payload={"task": "job", "primary": primary,
                               "epoch": epoch,
                               "modes": modes or {"p": "active",
                                                  "c": "backup"}},
                      size_bytes=32)

    def test_exact_duplicates_dropped_once_applied(self):
        engine = Engine()
        runtime, _mac = _build_runtime(
            engine, FloodDiscipline(mode_dedup=True))
        runtime.deliver(self._mode(epoch=1))
        runtime.deliver(self._mode(epoch=1))
        assert runtime.stats.mode_duplicates_dropped == 1
        assert runtime.task_primaries["job"] == ("p", 1)

    def test_same_epoch_different_modes_still_applied(self):
        # _park_dormant re-broadcasts the same epoch with changed modes;
        # the fingerprint covers the modes map so it must go through.
        engine = Engine()
        runtime, _mac = _build_runtime(
            engine, FloodDiscipline(mode_dedup=True))
        runtime.deliver(self._mode(epoch=2, primary="c"))
        assert runtime.instances["job"].mode.value == "backup"
        runtime.deliver(self._mode(epoch=2, primary="c",
                                   modes={"p": "dormant", "c": "active"}))
        assert runtime.stats.mode_duplicates_dropped == 0
        assert runtime.instances["job"].mode.value == "active"


# ----------------------------------------------------------------------
# Dense-mesh behavior: same failover, less airtime
# ----------------------------------------------------------------------
class TestDenseMeshTrial:
    @pytest.fixture(scope="class")
    def trials(self):
        from repro.experiments.widegrid import WideGridConfig, WideGridRig

        rows = {}
        for threshold in (0, 2):
            config = WideGridConfig(n_nodes=100, seed=1, duration_sec=30.0,
                                    crash_primary_at_sec=10.0,
                                    flood_suppress_threshold=threshold)
            rig = WideGridRig(config)
            rig.run_for_seconds(config.duration_sec)
            rows[threshold] = (rig, rig.collect())
        return rows

    def test_duplicate_deliveries_bounded(self, trials):
        rig_off, off = trials[0]
        rig_on, on = trials[2]
        relayed = {t: sum(a.floods_relayed for a in rig.macs.values())
                   for t, (rig, _) in trials.items()}
        duplicates = {t: sum(a.duplicate_floods_heard
                             for a in rig.macs.values())
                      for t, (rig, _) in trials.items()}
        suppressed = sum(a.floods_suppressed
                         for a in rig_on.macs.values())
        assert suppressed > 0
        assert relayed[2] < relayed[0]
        assert duplicates[2] < duplicates[0]
        assert on.frames_sent < off.frames_sent

    def test_failover_timeline_unchanged(self, trials):
        _, off = trials[0]
        _, on = trials[2]
        # Fault detection rides direct-neighbor traffic: identical tick.
        assert on.detection_time_sec == off.detection_time_sec
        # The failover itself completes within the same beat.
        assert on.failover_time_sec == pytest.approx(off.failover_time_sec,
                                                     abs=0.1)
        assert on.failovers_executed == off.failovers_executed == 1
        assert on.active_controller_final == off.active_controller_final
        assert on.act_input == off.act_input

    def test_report_plane_unharmed(self, trials):
        _, off = trials[0]
        _, on = trials[2]
        # Reports are tree-routed unicast, not flooded: suppression must
        # not cost delivery (a freer medium may even help slightly).
        assert on.delivery_ratio >= off.delivery_ratio - 0.02
