"""RoutedMacAdapter: flooding, dedup, TTL, routed unicast."""

from repro.net.packet import BROADCAST, Packet
from repro.net.routing import RoutedMacAdapter


class _FakeMac:
    def __init__(self, node_id):
        self.node_id = node_id
        self.sent = []
        self.handler = None
        self.stats = object()

    def send(self, packet):
        self.sent.append(packet)
        return True

    def set_receive_handler(self, fn):
        self.handler = fn

    def stop(self):
        pass


class TestFlooding:
    def test_broadcast_wrapped_as_flood(self):
        mac = _FakeMac("a")
        adapter = RoutedMacAdapter(mac, {})
        adapter.send(Packet(src="a", dst=BROADCAST, kind="evm.data",
                            payload={"x": 1}, size_bytes=20))
        frame = mac.sent[0]
        assert frame.kind == "flood.evm.data"
        origin, seq, payload = frame.payload
        assert origin == "a"
        assert payload == {"x": 1}

    def test_received_flood_delivered_and_relayed(self):
        mac = _FakeMac("b")
        adapter = RoutedMacAdapter(mac, {}, flood_ttl=3)
        delivered = []
        adapter.set_receive_handler(delivered.append)
        mac.handler(Packet(src="a", dst=BROADCAST, kind="flood.evm.data",
                           payload=("a", 101, {"v": 2}), size_bytes=24,
                           hops=0))
        assert delivered[0].kind == "evm.data"
        assert delivered[0].src == "a"
        assert delivered[0].payload == {"v": 2}
        assert adapter.floods_relayed == 1
        relay = mac.sent[0]
        assert relay.hops == 1
        assert relay.src == "b"

    def test_duplicate_flood_suppressed(self):
        mac = _FakeMac("b")
        adapter = RoutedMacAdapter(mac, {})
        delivered = []
        adapter.set_receive_handler(delivered.append)
        frame = Packet(src="a", dst=BROADCAST, kind="flood.x",
                       payload=("a", 7, None), size_bytes=8, hops=0)
        mac.handler(frame)
        mac.handler(frame)
        assert len(delivered) == 1
        assert adapter.floods_relayed == 1

    def test_own_flood_not_redelivered(self):
        mac = _FakeMac("a")
        adapter = RoutedMacAdapter(mac, {})
        delivered = []
        adapter.set_receive_handler(delivered.append)
        adapter.send(Packet(src="a", dst=BROADCAST, kind="x",
                            payload=None, size_bytes=8))
        # Echo of our own flood comes back via a neighbor's relay.
        echo = mac.sent[0]
        mac.handler(Packet(src="c", dst=BROADCAST, kind=echo.kind,
                           payload=echo.payload, size_bytes=echo.size_bytes,
                           hops=1))
        assert delivered == []

    def test_ttl_stops_relay(self):
        mac = _FakeMac("b")
        adapter = RoutedMacAdapter(mac, {}, flood_ttl=2)
        adapter.set_receive_handler(lambda p: None)
        mac.handler(Packet(src="a", dst=BROADCAST, kind="flood.x",
                           payload=("a", 9, None), size_bytes=8, hops=1))
        # hops+1 == ttl: delivered but not relayed further.
        assert adapter.floods_relayed == 0


class TestRoutedUnicast:
    def test_unicast_uses_route_table(self):
        mac = _FakeMac("a")
        adapter = RoutedMacAdapter(mac, {"c": "b"})
        adapter.send(Packet(src="a", dst="c", kind="evm.fault",
                            payload={"r": 1}, size_bytes=16))
        frame = mac.sent[0]
        assert frame.dst == "b"
        assert frame.kind == "route.evm.fault"

    def test_plain_unicast_delivered(self):
        mac = _FakeMac("b")
        adapter = RoutedMacAdapter(mac, {})
        delivered = []
        adapter.set_receive_handler(delivered.append)
        mac.handler(Packet(src="a", dst="b", kind="evm.mode",
                           payload={}, size_bytes=8))
        assert len(delivered) == 1
