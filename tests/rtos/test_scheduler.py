"""Preemptive fixed-priority scheduler: preemption, throttling, deadlines."""

import pytest

from repro.rtos.reservations import CpuReservation
from repro.rtos.task import TaskSpec, TaskState, Tcb
from repro.rtos.scheduler import Scheduler
from repro.sim.clock import MS, SEC


def make(engine, trace=None):
    return Scheduler(engine, node_id="n", trace=trace)


class TestBasicExecution:
    def test_periodic_jobs_complete(self, engine):
        sched = make(engine)
        tcb = Tcb(TaskSpec("t", wcet_ticks=2 * MS, period_ticks=10 * MS))
        sched.add_task(tcb)
        engine.run_until(99 * MS)
        assert tcb.jobs_released == 10  # releases at 0, 10, ..., 90 ms
        assert tcb.jobs_completed == 10
        assert tcb.deadline_misses == 0

    def test_body_runs_at_completion(self, engine):
        sched = make(engine)
        times = []
        tcb = Tcb(TaskSpec("t", wcet_ticks=3 * MS, period_ticks=10 * MS),
                  body=lambda tcb: times.append(engine.now))
        sched.add_task(tcb)
        engine.run_until(25 * MS)
        assert times == [3 * MS, 13 * MS, 23 * MS]

    def test_offset_delays_first_release(self, engine):
        sched = make(engine)
        tcb = Tcb(TaskSpec("t", wcet_ticks=1 * MS, period_ticks=10 * MS,
                           offset_ticks=5 * MS))
        sched.add_task(tcb)
        engine.run_until(14 * MS)
        assert tcb.jobs_released == 1

    def test_duplicate_task_rejected(self, engine):
        sched = make(engine)
        sched.add_task(Tcb(TaskSpec("t", wcet_ticks=1, period_ticks=10)))
        with pytest.raises(ValueError):
            sched.add_task(Tcb(TaskSpec("t", wcet_ticks=1, period_ticks=10)))

    def test_body_exception_contained(self, engine, trace):
        sched = make(engine)
        sched.trace = trace

        def bad_body(tcb):
            raise RuntimeError("controller bug")

        tcb = Tcb(TaskSpec("t", wcet_ticks=1 * MS, period_ticks=10 * MS),
                  body=bad_body)
        sched.add_task(tcb)
        engine.run_until(25 * MS)
        assert tcb.jobs_completed == 3  # completes despite body fault
        assert trace.count("rtos.task_fault") == 3


class TestPreemption:
    def test_higher_priority_preempts(self, engine):
        sched = make(engine)
        finish = {}
        low = Tcb(TaskSpec("low", wcet_ticks=10 * MS, period_ticks=100 * MS,
                           priority=5),
                  body=lambda t: finish.setdefault("low", engine.now))
        high = Tcb(TaskSpec("high", wcet_ticks=2 * MS, period_ticks=100 * MS,
                            priority=1, offset_ticks=3 * MS),
                   body=lambda t: finish.setdefault("high", engine.now))
        sched.add_task(low)
        sched.add_task(high)
        engine.run_until(50 * MS)
        # high released at 3 ms, preempts, finishes at 5 ms;
        # low resumes and finishes at 12 ms.
        assert finish["high"] == 5 * MS
        assert finish["low"] == 12 * MS
        assert sched.preemptions == 1

    def test_equal_priority_no_preemption(self, engine):
        sched = make(engine)
        finish = {}
        a = Tcb(TaskSpec("a", wcet_ticks=5 * MS, period_ticks=100 * MS,
                         priority=3),
                body=lambda t: finish.setdefault("a", engine.now))
        b = Tcb(TaskSpec("b", wcet_ticks=5 * MS, period_ticks=100 * MS,
                         priority=3, offset_ticks=1 * MS),
                body=lambda t: finish.setdefault("b", engine.now))
        sched.add_task(a)
        sched.add_task(b)
        engine.run_until(50 * MS)
        assert finish["a"] == 5 * MS  # ran to completion
        assert finish["b"] == 10 * MS
        assert sched.preemptions == 0

    def test_preempted_work_is_conserved(self, engine):
        sched = make(engine)
        low = Tcb(TaskSpec("low", wcet_ticks=10 * MS, period_ticks=50 * MS,
                           priority=5))
        high = Tcb(TaskSpec("high", wcet_ticks=1 * MS, period_ticks=5 * MS,
                            priority=1))
        sched.add_task(low)
        sched.add_task(high)
        engine.run_until(50 * MS)
        assert low.jobs_completed == 1
        assert low.total_executed_ticks == 10 * MS


class TestDeadlines:
    def test_overrun_detected(self, engine, trace):
        sched = make(engine, trace)
        # Two tasks that cannot both fit: low misses.
        high = Tcb(TaskSpec("high", wcet_ticks=8 * MS, period_ticks=10 * MS,
                            priority=1))
        low = Tcb(TaskSpec("low", wcet_ticks=5 * MS, period_ticks=20 * MS,
                           priority=5))
        sched.add_task(high)
        sched.add_task(low)
        engine.run_until(100 * MS)
        assert low.deadline_misses > 0
        assert trace.count("rtos.deadline_miss") == low.deadline_misses

    def test_schedulable_set_never_misses(self, engine):
        sched = make(engine)
        tcbs = [Tcb(TaskSpec("t1", wcet_ticks=1 * MS, period_ticks=4 * MS,
                             priority=1)),
                Tcb(TaskSpec("t2", wcet_ticks=2 * MS, period_ticks=8 * MS,
                             priority=2)),
                Tcb(TaskSpec("t3", wcet_ticks=3 * MS, period_ticks=12 * MS,
                             priority=3))]
        for tcb in tcbs:
            sched.add_task(tcb)
        engine.run_until(1 * SEC)
        assert all(t.deadline_misses == 0 for t in tcbs)


class TestReservationThrottling:
    def test_budget_limits_execution(self, engine):
        sched = make(engine)
        hog = Tcb(TaskSpec("hog", wcet_ticks=8 * MS, period_ticks=10 * MS,
                           priority=1))
        sched.add_task(hog, CpuReservation(4 * MS, 10 * MS))
        engine.run_until(100 * MS)
        # 4 ms budget per 10 ms: each 8 ms job takes two budget periods.
        assert hog.jobs_completed == 5

    def test_throttling_protects_lower_priority(self, engine):
        sched = make(engine)
        hog = Tcb(TaskSpec("hog", wcet_ticks=9 * MS, period_ticks=10 * MS,
                           priority=1))
        meek = Tcb(TaskSpec("meek", wcet_ticks=2 * MS, period_ticks=20 * MS,
                            priority=5))
        sched.add_task(hog, CpuReservation(5 * MS, 10 * MS))
        sched.add_task(meek)
        engine.run_until(200 * MS)
        # Without the reservation the hog (prio 1, U=0.9) would starve meek.
        assert meek.deadline_misses == 0
        assert meek.jobs_completed == 10

    def test_throttle_trace(self, engine, trace):
        sched = make(engine, trace)
        hog = Tcb(TaskSpec("hog", wcet_ticks=8 * MS, period_ticks=10 * MS))
        sched.add_task(hog, CpuReservation(4 * MS, 10 * MS))
        engine.run_until(50 * MS)
        assert trace.count("rtos.throttle") > 0


class TestTaskManagement:
    def test_remove_task_stops_releases(self, engine):
        sched = make(engine)
        tcb = Tcb(TaskSpec("t", wcet_ticks=1 * MS, period_ticks=10 * MS))
        sched.add_task(tcb)
        engine.run_until(25 * MS)
        sched.remove_task("t")
        engine.run_until(100 * MS)
        assert tcb.jobs_released == 3
        assert tcb.state is TaskState.FINISHED

    def test_remove_running_task(self, engine):
        sched = make(engine)
        tcb = Tcb(TaskSpec("t", wcet_ticks=50 * MS, period_ticks=100 * MS))
        sched.add_task(tcb)
        engine.run_until(10 * MS)  # mid-job
        sched.remove_task("t")
        engine.run_until(200 * MS)
        assert tcb.jobs_completed == 0
        assert sched.running_task is None

    def test_suspend_skips_releases(self, engine):
        sched = make(engine)
        tcb = Tcb(TaskSpec("t", wcet_ticks=1 * MS, period_ticks=10 * MS))
        sched.add_task(tcb)
        engine.run_until(25 * MS)
        sched.suspend_task("t")
        engine.run_until(75 * MS)
        released_while_suspended = tcb.jobs_released
        sched.resume_task("t")
        engine.run_until(150 * MS)
        assert released_while_suspended == 3
        assert tcb.jobs_released > 3

    def test_sporadic_job(self, engine):
        sched = make(engine)
        runs = []
        tcb = Tcb(TaskSpec("aperiodic", wcet_ticks=5 * MS, priority=2),
                  body=lambda t: runs.append(engine.now))
        sched.add_task(tcb)
        engine.run_until(10 * MS)
        assert runs == []
        sched.spawn_job("aperiodic")
        engine.run_until(20 * MS)
        assert runs == [15 * MS]

    def test_halt_stops_everything(self, engine):
        sched = make(engine)
        tcb = Tcb(TaskSpec("t", wcet_ticks=1 * MS, period_ticks=10 * MS))
        sched.add_task(tcb)
        engine.run_until(25 * MS)
        sched.halt()
        engine.run_until(100 * MS)
        assert tcb.jobs_released == 3

    def test_restart_rephases_from_reboot_not_precrash_chain(self, engine):
        """A pre-crash release event stranded in the heap must never
        hijack the restarted chain: releases after restart() run at
        reboot-time + offset + k*period, not on the old phase."""
        releases = []
        sched = make(engine)
        tcb = Tcb(TaskSpec("t", wcet_ticks=1 * MS, period_ticks=200 * MS,
                           offset_ticks=100 * MS),
                  body=lambda t: releases.append(engine.now))
        sched.add_task(tcb)
        engine.run_until(50 * MS)
        sched.halt()      # strands the release due at t=100ms in the heap
        engine.run_until(60 * MS)
        sched.restart()   # chain restarts from now: 160, 360, 560 ...
        engine.run_until(600 * MS)
        assert releases == [161 * MS, 361 * MS, 561 * MS]  # +1ms wcet

    def test_remove_then_readd_ignores_stranded_chain(self, engine):
        sched = make(engine)
        tcb = Tcb(TaskSpec("t", wcet_ticks=1 * MS, period_ticks=10 * MS,
                           offset_ticks=8 * MS))
        sched.add_task(tcb)
        engine.run_until(5 * MS)
        sched.remove_task("t")  # strands the release due at t=8ms
        fresh = Tcb(TaskSpec("t", wcet_ticks=1 * MS, period_ticks=10 * MS,
                             offset_ticks=2 * MS))
        sched.add_task(fresh)   # new chain: releases at 7, 17, 27 ms
        engine.run_until(30 * MS)
        assert fresh.jobs_released == 3
        assert tcb.jobs_released == 0

    def test_utilization_now(self, engine):
        sched = make(engine)
        sched.add_task(Tcb(TaskSpec("a", wcet_ticks=2 * MS,
                                    period_ticks=10 * MS)))
        sched.add_task(Tcb(TaskSpec("b", wcet_ticks=1 * MS,
                                    period_ticks=10 * MS)))
        assert sched.utilization_now() == pytest.approx(0.3)
        sched.suspend_task("b")
        assert sched.utilization_now() == pytest.approx(0.2)


class TestEnergyAccounting:
    def test_busy_time_draws_active_current(self, engine):
        from repro.hardware.battery import Battery

        battery = Battery(engine)
        sched = Scheduler(engine, battery=battery,
                          active_current_a=6e-3, idle_current_a=2e-3)
        tcb = Tcb(TaskSpec("t", wcet_ticks=5 * MS, period_ticks=10 * MS))
        sched.add_task(tcb)
        engine.run_until(100 * MS)
        sched.finalize_energy_accounting()
        # 50 ms busy at 6 mA + 50 ms idle at 2 mA = 0.4 mC total
        expected = 6e-3 * 0.05 + 2e-3 * 0.05
        assert battery.charge_drawn == pytest.approx(expected, rel=0.05)
