"""Property-based tests: RTA soundness against the simulated scheduler.

The central invariant: if exact response-time analysis declares a synchronous
periodic task-set schedulable, the event-driven scheduler must not miss a
single deadline over a hyperperiod-scale window -- and the measured worst
response time must not exceed the analytical one.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.rtos.analysis import response_time_analysis
from repro.rtos.scheduler import Scheduler
from repro.rtos.task import TaskSpec, Tcb
from repro.sim.clock import MS
from repro.sim.engine import Engine


@st.composite
def task_sets(draw):
    """Small task-sets with rate-monotonic priorities and bounded load."""
    n = draw(st.integers(min_value=1, max_value=4))
    periods = draw(st.lists(
        st.sampled_from([4, 5, 8, 10, 16, 20, 40]),
        min_size=n, max_size=n))
    specs = []
    for i, period in enumerate(sorted(periods)):
        wcet = draw(st.integers(min_value=1,
                                max_value=max(1, period // 3)))
        specs.append(TaskSpec(f"t{i}", wcet_ticks=wcet * MS,
                              period_ticks=period * MS, priority=i))
    return specs


@settings(max_examples=40, deadline=None)
@given(task_sets())
def test_rta_schedulable_implies_no_misses(specs):
    report = response_time_analysis(specs)
    if not report.schedulable:
        return  # only the soundness direction is claimed
    engine = Engine()
    scheduler = Scheduler(engine)
    tcbs = [Tcb(spec) for spec in specs]
    for tcb in tcbs:
        scheduler.add_task(tcb)
    hyper = math.lcm(*(s.period_ticks for s in specs))
    engine.run_until(min(3 * hyper, 2_000 * MS))
    for tcb in tcbs:
        assert tcb.deadline_misses == 0, (
            f"{tcb.name} missed deadlines in an RTA-schedulable set")


@settings(max_examples=40, deadline=None)
@given(task_sets())
def test_measured_response_never_exceeds_rta(specs):
    report = response_time_analysis(specs)
    if not report.schedulable:
        return
    engine = Engine()
    scheduler = Scheduler(engine)
    worst: dict[str, int] = {}
    tcbs = []
    for spec in specs:
        tcb = Tcb(spec)
        tcbs.append(tcb)
        scheduler.add_task(tcb)
    # Track response times through completion trace events.
    from repro.sim.trace import Trace

    trace = Trace()
    scheduler.trace = trace
    hyper = math.lcm(*(s.period_ticks for s in specs))
    engine.run_until(min(3 * hyper, 2_000 * MS))
    for event in trace.events("rtos.complete"):
        task = event.data["task"]
        worst[task] = max(worst.get(task, 0), event.data["response"])
    for name, measured in worst.items():
        assert measured <= report.response_times[name], (
            f"{name}: measured {measured} > analytical "
            f"{report.response_times[name]}")


@settings(max_examples=30, deadline=None)
@given(task_sets(), st.integers(min_value=1, max_value=5))
def test_work_conservation(specs, window_periods):
    """Total executed time never exceeds elapsed wall time."""
    engine = Engine()
    scheduler = Scheduler(engine)
    tcbs = [Tcb(spec) for spec in specs]
    for tcb in tcbs:
        scheduler.add_task(tcb)
    horizon = window_periods * max(s.period_ticks for s in specs)
    engine.run_until(horizon)
    total = sum(t.total_executed_ticks for t in tcbs)
    assert total <= horizon
    assert scheduler.total_busy_ticks == total


@settings(max_examples=30, deadline=None)
@given(task_sets())
def test_highest_priority_task_always_meets_wcet_response(specs):
    """The top-priority task's response time equals its WCET exactly."""
    engine = Engine()
    scheduler = Scheduler(engine)
    from repro.sim.trace import Trace

    trace = Trace()
    scheduler.trace = trace
    tcbs = [Tcb(spec) for spec in specs]
    for tcb in tcbs:
        scheduler.add_task(tcb)
    engine.run_until(500 * MS)
    top = min(specs, key=lambda s: (s.priority, s.period_ticks))
    responses = [e.data["response"]
                 for e in trace.events("rtos.complete")
                 if e.data["task"] == top.name]
    assert responses
    assert all(r == top.wcet_ticks for r in responses)
