"""nano-RK kernel facade: admission, RAM budgets, network metering, crash."""

import pytest

from repro.net.packet import Packet
from repro.rtos.kernel import AdmissionRefused, NanoRK
from repro.rtos.reservations import NetworkReservation
from repro.rtos.task import TaskSpec
from repro.sim.clock import MS, SEC


class _FakeMac:
    def __init__(self):
        self.sent = []

    def send(self, packet):
        self.sent.append(packet)
        return True

    def start(self):
        pass

    def stop(self):
        pass

    def set_receive_handler(self, fn):
        pass


class TestTaskLifecycle:
    def test_create_and_run(self, engine, node):
        kernel = NanoRK(engine, node)
        runs = []
        kernel.create_task(
            TaskSpec("t", wcet_ticks=1 * MS, period_ticks=10 * MS),
            lambda tcb: runs.append(engine.now))
        engine.run_until(50 * MS)
        assert len(runs) == 5

    def test_stack_charged_to_ram(self, engine, node):
        kernel = NanoRK(engine, node)
        free_before = node.mcu.ram.free
        kernel.create_task(
            TaskSpec("t", wcet_ticks=1 * MS, period_ticks=10 * MS,
                     stack_bytes=512), None)
        assert node.mcu.ram.free == free_before - 512
        kernel.kill_task("t")
        assert node.mcu.ram.free == free_before

    def test_admission_refusal(self, engine, node):
        kernel = NanoRK(engine, node)
        kernel.create_task(
            TaskSpec("big", wcet_ticks=8 * MS, period_ticks=10 * MS,
                     priority=1), None)
        with pytest.raises(AdmissionRefused):
            kernel.create_task(
                TaskSpec("too-much", wcet_ticks=5 * MS,
                         period_ticks=10 * MS, priority=2), None)
        assert not kernel.has_task("too-much")

    def test_admission_refusal_releases_ram(self, engine, node):
        kernel = NanoRK(engine, node)
        kernel.create_task(
            TaskSpec("big", wcet_ticks=8 * MS, period_ticks=10 * MS,
                     priority=1), None)
        free_before = node.mcu.ram.free
        with pytest.raises(AdmissionRefused):
            kernel.create_task(
                TaskSpec("x", wcet_ticks=5 * MS, period_ticks=10 * MS,
                         priority=2), None)
        assert node.mcu.ram.free == free_before

    def test_admit_flag_bypasses_test(self, engine, node):
        kernel = NanoRK(engine, node)
        kernel.create_task(
            TaskSpec("a", wcet_ticks=8 * MS, period_ticks=10 * MS,
                     priority=1), None)
        kernel.create_task(
            TaskSpec("b", wcet_ticks=5 * MS, period_ticks=10 * MS,
                     priority=2), None, admit=False)
        assert kernel.has_task("b")

    def test_can_admit_probe(self, engine, node):
        kernel = NanoRK(engine, node)
        kernel.create_task(
            TaskSpec("a", wcet_ticks=2 * MS, period_ticks=10 * MS,
                     priority=1), None)
        assert kernel.can_admit(
            TaskSpec("ok", wcet_ticks=2 * MS, period_ticks=10 * MS,
                     priority=2))
        assert not kernel.can_admit(
            TaskSpec("no", wcet_ticks=9 * MS, period_ticks=10 * MS,
                     priority=2))


class TestNetworkMetering:
    def test_reservation_enforced(self, engine, node):
        kernel = NanoRK(engine, node)
        mac = _FakeMac()
        kernel.attach_mac(mac)
        kernel.create_task(
            TaskSpec("t", wcet_ticks=1 * MS, period_ticks=100 * MS), None)
        kernel.set_network_reservation("t", NetworkReservation(2, 1 * SEC))
        packet = Packet(src="n1", dst="x", kind="d", size_bytes=8)
        assert kernel.send_packet("t", packet)
        assert kernel.send_packet("t", packet)
        assert not kernel.send_packet("t", packet)
        assert kernel.network_sends_refused == 1

    def test_replenishment_restores_budget(self, engine, node):
        kernel = NanoRK(engine, node)
        kernel.attach_mac(_FakeMac())
        kernel.create_task(
            TaskSpec("t", wcet_ticks=1 * MS, period_ticks=100 * MS), None)
        kernel.set_network_reservation("t", NetworkReservation(1, 1 * SEC))
        packet = Packet(src="n1", dst="x", kind="d", size_bytes=8)
        assert kernel.send_packet("t", packet)
        assert not kernel.send_packet("t", packet)
        engine.run_until(1100 * MS)
        assert kernel.send_packet("t", packet)

    def test_unreserved_task_unrestricted(self, engine, node):
        kernel = NanoRK(engine, node)
        kernel.attach_mac(_FakeMac())
        kernel.create_task(
            TaskSpec("t", wcet_ticks=1 * MS, period_ticks=100 * MS), None)
        packet = Packet(src="n1", dst="x", kind="d", size_bytes=8)
        assert all(kernel.send_packet("t", packet) for _ in range(50))

    def test_no_mac_raises(self, engine, node):
        kernel = NanoRK(engine, node)
        kernel.create_task(
            TaskSpec("t", wcet_ticks=1 * MS, period_ticks=100 * MS), None)
        with pytest.raises(RuntimeError):
            kernel.send_packet("t", Packet(src="n", dst="x", kind="d"))


class TestCrash:
    def test_crash_halts_everything(self, engine, node):
        kernel = NanoRK(engine, node)
        mac = _FakeMac()
        kernel.attach_mac(mac)
        runs = []
        kernel.create_task(
            TaskSpec("t", wcet_ticks=1 * MS, period_ticks=10 * MS),
            lambda tcb: runs.append(engine.now))
        engine.run_until(25 * MS)
        kernel.crash()
        engine.run_until(100 * MS)
        assert len(runs) == 3  # bodies at 1, 11, 21 ms; none after crash
        assert node.failed

    def test_crashed_kernel_rejects_operations(self, engine, node):
        kernel = NanoRK(engine, node)
        kernel.crash()
        with pytest.raises(RuntimeError):
            kernel.create_task(
                TaskSpec("t", wcet_ticks=1, period_ticks=10), None)

    def test_crash_idempotent(self, engine, node):
        kernel = NanoRK(engine, node)
        kernel.crash()
        kernel.crash()
        assert kernel.crashed


class TestRestart:
    def test_restart_resumes_releases(self, engine, node):
        kernel = NanoRK(engine, node)
        kernel.attach_mac(_FakeMac())
        runs = []
        kernel.create_task(
            TaskSpec("t", wcet_ticks=1 * MS, period_ticks=10 * MS),
            lambda tcb: runs.append(engine.now))
        engine.run_until(25 * MS)
        kernel.crash()
        engine.run_until(50 * MS)
        count_at_reboot = len(runs)
        kernel.restart()
        engine.run_until(100 * MS)
        assert not kernel.crashed
        assert not node.failed
        assert len(runs) > count_at_reboot

    def test_restart_restores_network_replenishment(self, engine, node):
        """The replenish chain dies with the crash; a rebooted node must
        get a fresh one or its sends are refused forever once the
        residual budget runs out."""
        kernel = NanoRK(engine, node)
        kernel.attach_mac(_FakeMac())
        kernel.create_task(
            TaskSpec("t", wcet_ticks=1 * MS, period_ticks=100 * MS), None)
        kernel.set_network_reservation("t", NetworkReservation(1, 1 * SEC))
        packet = Packet(src="n1", dst="x", kind="d", size_bytes=8)
        assert kernel.send_packet("t", packet)
        kernel.crash()
        # More than one period elapses crashed: the old chain is dead.
        engine.run_until(2500 * MS)
        kernel.restart()
        engine.run_until(5 * SEC)
        assert kernel.send_packet("t", packet)
        # ... and the budget is still metered, not unlimited.
        assert not kernel.send_packet("t", packet)
        engine.run_until(engine.now + 1100 * MS)
        assert kernel.send_packet("t", packet)

    def test_restart_on_healthy_kernel_is_noop(self, engine, node):
        kernel = NanoRK(engine, node)
        kernel.attach_mac(_FakeMac())
        kernel.restart()
        assert not kernel.crashed
