"""Schedulability analysis: bounds, exact RTA, priority assignment."""

import math

import pytest

from repro.rtos.analysis import (
    admission_test,
    assign_rate_monotonic_priorities,
    hyperbolic_bound_test,
    liu_layland_bound,
    liu_layland_test,
    response_time_analysis,
    utilization,
)
from repro.rtos.task import TaskSpec
from repro.sim.clock import MS


def spec(name, wcet, period, priority=None, deadline=None):
    return TaskSpec(name, wcet_ticks=wcet, period_ticks=period,
                    priority=priority if priority is not None else period,
                    deadline_ticks=deadline)


class TestBounds:
    def test_liu_layland_known_values(self):
        assert liu_layland_bound(1) == pytest.approx(1.0)
        assert liu_layland_bound(2) == pytest.approx(0.8284, abs=1e-3)
        assert liu_layland_bound(3) == pytest.approx(0.7798, abs=1e-3)

    def test_bound_decreases_to_ln2(self):
        assert liu_layland_bound(1000) == pytest.approx(math.log(2),
                                                        abs=1e-3)

    def test_utilization_sum(self):
        tasks = [spec("a", 2 * MS, 10 * MS), spec("b", 5 * MS, 50 * MS)]
        assert utilization(tasks) == pytest.approx(0.3)

    def test_liu_layland_accepts_low_utilization(self):
        assert liu_layland_test([spec("a", 1 * MS, 10 * MS),
                                 spec("b", 1 * MS, 10 * MS)])

    def test_liu_layland_rejects_high_utilization(self):
        assert not liu_layland_test([spec("a", 5 * MS, 10 * MS),
                                     spec("b", 5 * MS, 10 * MS)])

    def test_hyperbolic_tighter_than_liu_layland(self):
        # U1 = U2 = 0.45: sum 0.9 > LL bound, but (1.45)^2 = 2.1025 > 2
        # fails hyperbolic too; pick 0.41: (1.41)^2 = 1.988 < 2 passes HB
        # while 0.82 fails LL(2) = 0.828... so use 0.413 each: sum 0.826
        tasks = [spec("a", 413, 1000), spec("b", 413, 1000)]
        assert hyperbolic_bound_test(tasks)

    def test_empty_task_set_schedulable(self):
        assert liu_layland_test([])
        assert response_time_analysis([]).schedulable


class TestResponseTimeAnalysis:
    def test_single_task_response_is_wcet(self):
        report = response_time_analysis([spec("a", 2 * MS, 10 * MS)])
        assert report.schedulable
        assert report.response_times["a"] == 2 * MS

    def test_classic_example(self):
        # Buttazzo-style: C=(1,2,3), T=(4,8,12), RM priorities.
        tasks = [spec("t1", 1, 4, priority=1),
                 spec("t2", 2, 8, priority=2),
                 spec("t3", 3, 12, priority=3)]
        report = response_time_analysis(tasks)
        assert report.schedulable
        assert report.response_times["t1"] == 1
        assert report.response_times["t2"] == 3
        # t3: R = 3 + ceil(R/4)*1 + ceil(R/8)*2 -> fixpoint 7
        assert report.response_times["t3"] == 7

    def test_unschedulable_detected(self):
        tasks = [spec("t1", 5, 10, priority=1),
                 spec("t2", 6, 12, priority=2)]
        report = response_time_analysis(tasks)
        assert not report.schedulable
        assert "t2" in report.failing_tasks

    def test_over_unit_utilization_fast_path(self):
        tasks = [spec("t1", 9, 10), spec("t2", 9, 10)]
        report = response_time_analysis(tasks)
        assert not report.schedulable
        assert "utilization" in report.reason

    def test_constrained_deadline(self):
        ok = response_time_analysis(
            [spec("t", 3, 10, deadline=5)]).schedulable
        assert ok
        bad = response_time_analysis(
            [spec("t", 3, 10, deadline=2)]).schedulable
        assert not bad

    def test_same_priority_peers_interfere(self):
        tasks = [spec("a", 6, 10, priority=1),
                 spec("b", 6, 10, priority=1)]
        assert not response_time_analysis(tasks).schedulable

    def test_sporadic_tasks_ignored(self):
        tasks = [spec("p", 2 * MS, 10 * MS),
                 TaskSpec("sporadic", wcet_ticks=100 * MS)]
        report = response_time_analysis(tasks)
        assert report.schedulable
        assert "sporadic" not in report.response_times

    def test_admission_test(self):
        existing = [spec("a", 2, 10, priority=1)]
        assert admission_test(existing, spec("b", 2, 10, priority=2))
        assert not admission_test(existing, spec("c", 9, 10, priority=2))

    def test_report_bool(self):
        assert response_time_analysis([spec("a", 1, 10)])
        assert not response_time_analysis([spec("a", 9, 10),
                                           spec("b", 9, 10)])


class TestPriorityAssignment:
    def test_rate_monotonic_order(self):
        tasks = [spec("slow", 1, 100, priority=0),
                 spec("fast", 1, 10, priority=9),
                 spec("mid", 1, 50, priority=5)]
        reassigned = assign_rate_monotonic_priorities(tasks)
        by_name = {t.name: t.priority for t in reassigned}
        assert by_name["fast"] < by_name["mid"] < by_name["slow"]

    def test_sporadic_keeps_priority(self):
        tasks = [spec("p", 1, 10), TaskSpec("s", wcet_ticks=5, priority=3)]
        reassigned = assign_rate_monotonic_priorities(tasks)
        sporadic = next(t for t in reassigned if t.name == "s")
        assert sporadic.priority == 3

    def test_rm_makes_unschedulable_set_schedulable(self):
        """Inverted priorities fail; RM ordering fixes them."""
        inverted = [spec("fast", 4, 10, priority=9),
                    spec("slow", 10, 100, priority=1)]
        assert not response_time_analysis(inverted).schedulable
        fixed = assign_rate_monotonic_priorities(inverted)
        assert response_time_analysis(fixed).schedulable
