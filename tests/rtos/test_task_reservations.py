"""Task specs, TCB images, reservations."""

import pytest

from repro.rtos.reservations import (
    CpuReservation,
    EnergyReservation,
    NetworkReservation,
    ReservationError,
)
from repro.rtos.task import TaskSpec, TaskState, Tcb
from repro.sim.clock import MS


class TestTaskSpec:
    def test_implicit_deadline_is_period(self):
        spec = TaskSpec("t", wcet_ticks=1 * MS, period_ticks=10 * MS)
        assert spec.effective_deadline == 10 * MS

    def test_explicit_deadline(self):
        spec = TaskSpec("t", wcet_ticks=1 * MS, period_ticks=10 * MS,
                        deadline_ticks=5 * MS)
        assert spec.effective_deadline == 5 * MS

    def test_utilization(self):
        spec = TaskSpec("t", wcet_ticks=2 * MS, period_ticks=10 * MS)
        assert spec.utilization == pytest.approx(0.2)

    def test_sporadic_has_no_utilization(self):
        spec = TaskSpec("t", wcet_ticks=1 * MS)
        assert spec.utilization == 0.0
        with pytest.raises(ValueError):
            _ = spec.effective_deadline

    def test_wcet_exceeding_period_rejected(self):
        with pytest.raises(ValueError):
            TaskSpec("t", wcet_ticks=20 * MS, period_ticks=10 * MS)

    def test_nonpositive_wcet_rejected(self):
        with pytest.raises(ValueError):
            TaskSpec("t", wcet_ticks=0, period_ticks=10 * MS)

    def test_with_priority(self):
        spec = TaskSpec("t", wcet_ticks=1 * MS, period_ticks=10 * MS,
                        priority=9)
        assert spec.with_priority(1).priority == 1
        assert spec.priority == 9  # original untouched


class TestTcbImage:
    def _tcb(self):
        spec = TaskSpec("ctrl", wcet_ticks=2 * MS, period_ticks=250 * MS,
                        stack_bytes=128)
        tcb = Tcb(spec)
        tcb.data["memory"] = [1.0, 2.5, -3.0]
        tcb.registers["pc"] = 14
        tcb.stack[0:4] = b"\xde\xad\xbe\xef"
        tcb.jobs_released = 7
        tcb.jobs_completed = 6
        tcb.last_completion_time = 1_000_000
        return tcb

    def test_snapshot_restore_roundtrip(self):
        source = self._tcb()
        image = source.snapshot_image()
        target = Tcb(TaskSpec("ctrl", wcet_ticks=1 * MS,
                              period_ticks=100 * MS))
        target.restore_image(image)
        assert target.spec == source.spec
        assert target.data == source.data
        assert target.registers == source.registers
        assert bytes(target.stack) == bytes(source.stack)
        assert target.jobs_completed == 6

    def test_snapshot_is_deep_for_data(self):
        tcb = self._tcb()
        image = tcb.snapshot_image()
        tcb.data["memory"] = [9.0]
        assert image["data"]["memory"] == [1.0, 2.5, -3.0]

    def test_image_size_scales_with_stack(self):
        small = Tcb(TaskSpec("a", wcet_ticks=1, period_ticks=10,
                             stack_bytes=64))
        large = Tcb(TaskSpec("b", wcet_ticks=1, period_ticks=10,
                             stack_bytes=1024))
        assert large.image_size_bytes() > small.image_size_bytes() + 900


class TestReservations:
    def test_cpu_budget_consumption(self):
        res = CpuReservation(5 * MS, 100 * MS)
        assert res.consume(3 * MS)
        assert res.available() == 2 * MS
        assert not res.consume(3 * MS)
        assert res.overrun_attempts == 1

    def test_consume_upto(self):
        res = CpuReservation(5 * MS, 100 * MS)
        granted = res.consume_upto(8 * MS)
        assert granted == 5 * MS
        assert res.exhausted

    def test_replenish_restores(self):
        res = CpuReservation(5 * MS, 100 * MS)
        res.consume_upto(5 * MS)
        res.replenish()
        assert res.available() == 5 * MS
        assert res.replenish_count == 1

    def test_utilization(self):
        assert CpuReservation(5 * MS, 100 * MS).utilization == \
            pytest.approx(0.05)

    def test_network_try_send(self):
        res = NetworkReservation(2, 1000 * MS)
        assert res.try_send()
        assert res.try_send()
        assert not res.try_send()

    def test_energy_try_spend(self):
        res = EnergyReservation(1.0, 1000 * MS)
        assert res.try_spend(0.6)
        assert not res.try_spend(0.6)

    def test_invalid_parameters(self):
        with pytest.raises(ReservationError):
            CpuReservation(0, 100)
        with pytest.raises(ReservationError):
            CpuReservation(10, 0)
        with pytest.raises(ReservationError):
            CpuReservation(10, 100).consume(-1)
