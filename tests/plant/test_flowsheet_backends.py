"""Backend conformance: fused kernels == scalar reference, bit for bit.

``Flowsheet(backend="py")`` is the executable specification (the
per-unit scalar ``step()`` sweep).  The fused pure-python kernels
("auto") and the numpy struct-of-arrays kernels ("np") must reproduce
*exactly* the same floats -- not approximately: the golden workload
digests hash every sensor reading, so a single ULP of drift anywhere
breaks reproducibility.
"""

from __future__ import annotations

import sys

import pytest

from repro.plant.components import Stream
from repro.plant.flowsheet import Flowsheet
from repro.plant.gas_plant import NaturalGasPlant

try:
    import numpy  # noqa: F401
    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - numpy is in the dev env
    HAVE_NUMPY = False

BACKENDS = ["auto"] + (["np"] if HAVE_NUMPY else [])


def plant_state(plant: NaturalGasPlant) -> dict:
    """Every float the plant exposes, exactly as produced."""
    state = dict(plant.flowsheet.snapshot())
    state["stream_table"] = plant.stream_table()
    state["inlet_sep_holdup"] = [float(h) for h in plant.inlet_sep.holdup]
    state["lts_holdup"] = [float(h) for h in plant.lts.holdup]
    state["drum_holdup"] = [float(h)
                            for h in plant.depropanizer.drum_holdup]
    state["sump_holdup"] = [float(h)
                            for h in plant.depropanizer.sump_holdup]
    state["overflow"] = (plant.inlet_sep.overflow_mol,
                         plant.lts.overflow_mol)
    state["blow_by"] = (plant.inlet_sep.blow_by_flow,
                        plant.lts.blow_by_flow)
    state["pressures"] = (plant.sales_header.pressure_kpa,
                          plant.depropanizer.pressure_kpa)
    state["valves"] = [(v.opening_pct, v.command_pct)
                       for v in (plant.inlet_sep_valve, plant.lts_valve,
                                 plant.sales_valve, plant.distillate_valve,
                                 plant.bottoms_valve,
                                 plant.deprop_gas_valve)]
    return state


def drive(plant: NaturalGasPlant, steps: int) -> list[dict]:
    """A workout hitting every kernel branch: steady stepping, feed
    loss (empty-stream paths), feed surge (blow-by + overflow),
    actuator slams, and recovery."""
    plant.enable_local_control(exclude=("lts_level",))
    plant.flowsheet.write("lts_liquid_valve_pct", 11.5)
    snapshots = []
    nominal_feed1 = plant.feed1
    for k in range(steps):
        if k == steps // 4:          # feed 1 lost: empty/low-flow paths
            plant.feed1 = Stream(0.0, nominal_feed1.composition, 25.0,
                                 4000.0)
        if k == steps // 2:          # surge: blow-by and overflow paths
            plant.feed1 = Stream(240.0, nominal_feed1.composition, 25.0,
                                 4000.0)
            plant.flowsheet.write("lts_liquid_valve_pct", 95.0)
        if k == (3 * steps) // 4:    # recovery
            plant.feed1 = nominal_feed1
            plant.flowsheet.write("lts_liquid_valve_pct", 11.5)
        plant.step(0.5)
        if k % 7 == 0:
            snapshots.append(plant_state(plant))
    snapshots.append(plant_state(plant))
    return snapshots


@pytest.mark.parametrize("backend", BACKENDS)
def test_backend_matches_scalar_reference_exactly(backend):
    reference = drive(NaturalGasPlant(backend="py"), steps=400)
    fused = drive(NaturalGasPlant(backend=backend), steps=400)
    assert fused == reference


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable")
def test_np_backend_settles_identically():
    ref = NaturalGasPlant(backend="py")
    ref_snap = ref.settle(duration_sec=300.0)
    fused = NaturalGasPlant(backend="np")
    fused_snap = fused.settle(duration_sec=300.0)
    assert fused_snap == ref_snap
    assert fused.stream_table() == ref.stream_table()


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="unknown backend"):
        Flowsheet("x", backend="cuda")


def test_np_backend_requires_numpy(monkeypatch):
    monkeypatch.setitem(sys.modules, "numpy", None)
    with pytest.raises(RuntimeError, match="requires numpy"):
        Flowsheet("x", backend="np")


def test_default_backend_is_auto():
    assert NaturalGasPlant().flowsheet.backend == "auto"
    assert Flowsheet("x").backend == "auto"


@pytest.mark.parametrize("backend", BACKENDS)
def test_snapshot_values_are_plain_floats(backend):
    plant = NaturalGasPlant(backend=backend)
    plant.enable_local_control()
    for _ in range(20):
        plant.step(0.5)
    for name, value in plant.flowsheet.snapshot().items():
        assert type(value) is float, name
    for stream in plant.stream_table().values():
        for key, value in stream.items():
            assert isinstance(value, float), key
