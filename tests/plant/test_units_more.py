"""Heat exchange, chiller, depropanizer, vapor header, HIL bridge."""

import pytest

from repro.plant.components import Composition, Stream
from repro.plant.gas_plant import NaturalGasPlant, VaporHeader
from repro.plant.hil import HilBridge
from repro.plant.units.column import Depropanizer
from repro.plant.units.heat_exchanger import Chiller, GasGasExchanger
from repro.plant.units.valve import ControlValve
from repro.sim.clock import MS, SEC
from repro.sim.engine import Engine


def gas(flow=100.0, t=25.0, p=4000.0):
    return Stream(flow, Composition({"C1": 0.8, "C3": 0.2}), t, p)


class TestGasGasExchanger:
    def test_heat_moves_hot_to_cold(self):
        hot = gas(t=25.0)
        cold = gas(t=-20.0)
        hx = GasGasExchanger("hx", lambda: hot, lambda: cold,
                             effectiveness=0.65)
        hx.step(1.0)
        assert hx.hot_out.temperature_c < 25.0
        assert hx.cold_out.temperature_c > -20.0
        assert hx.duty_watts > 0

    def test_energy_balance(self):
        hot = gas(flow=100.0, t=25.0)
        cold = gas(flow=100.0, t=-20.0)
        hx = GasGasExchanger("hx", lambda: hot, lambda: cold)
        hx.step(1.0)
        hot_drop = 25.0 - hx.hot_out.temperature_c
        cold_rise = hx.cold_out.temperature_c - (-20.0)
        assert hot_drop == pytest.approx(cold_rise, rel=1e-9)

    def test_no_heat_against_gradient(self):
        hot = gas(t=-30.0)   # "hot" side actually colder
        cold = gas(t=20.0)
        hx = GasGasExchanger("hx", lambda: hot, lambda: cold)
        hx.step(1.0)
        assert hx.hot_out.temperature_c == pytest.approx(-30.0)

    def test_zero_flow_passthrough(self):
        hot = gas(flow=0.0)
        cold = gas(t=-20.0)
        hx = GasGasExchanger("hx", lambda: hot, lambda: cold)
        hx.step(1.0)
        assert hx.duty_watts == 0.0

    def test_effectiveness_validation(self):
        with pytest.raises(ValueError):
            GasGasExchanger("hx", lambda: gas(), lambda: gas(),
                            effectiveness=1.5)


class TestChiller:
    def test_tracks_duty_setpoint(self):
        chiller = Chiller("ch", lambda: gas(t=0.0), t_min_c=-35.0,
                          t_max_c=10.0, initial_duty_pct=0.0, tau_sec=5.0)
        chiller.set_duty(100.0)
        for _ in range(100):
            chiller.step(1.0)
        assert chiller.outlet_temperature_c == pytest.approx(-35.0, abs=0.5)

    def test_duty_zero_is_warm_end(self):
        chiller = Chiller("ch", lambda: gas(t=0.0), initial_duty_pct=0.0,
                          tau_sec=1.0)
        for _ in range(50):
            chiller.step(1.0)
        assert chiller.outlet_temperature_c == pytest.approx(10.0, abs=0.5)

    def test_first_order_lag(self):
        chiller = Chiller("ch", lambda: gas(t=0.0), initial_duty_pct=0.0,
                          tau_sec=20.0)
        chiller.set_duty(100.0)
        chiller.step(1.0)
        # One step of a 20 s lag moves only a few percent of the way.
        assert chiller.outlet_temperature_c > 5.0

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            Chiller("ch", lambda: gas(), t_min_c=10.0, t_max_c=-10.0)


class TestDepropanizer:
    def _column(self):
        feed = Stream(20.0, Composition({"C2": 0.02, "C3": 0.53,
                                         "iC4": 0.22, "nC4": 0.23}),
                      -5.0, 3900.0)
        return Depropanizer(
            "col", feed=lambda: feed,
            distillate_valve=ControlValve("d", 30.0, 23.0,
                                          actuator_tau_sec=0.0),
            bottoms_valve=ControlValve("b", 40.0, 21.0,
                                       actuator_tau_sec=0.0),
            overhead_gas_valve=ControlValve("g", 20.0, 16.0,
                                            actuator_tau_sec=0.0))

    def test_bottoms_low_in_propane(self):
        column = self._column()
        for _ in range(600):
            column.step(1.0)
        assert column.bottoms_propane_fraction() < 0.15
        assert column.distillate_out.composition["C3"] > 0.5

    def test_levels_respond_to_valves(self):
        column = self._column()
        column.bottoms_valve.set_command(0.0)
        start = column.sump_level_pct
        for _ in range(200):
            column.step(1.0)
        assert column.sump_level_pct > start

    def test_pressure_rises_when_gas_valve_closes(self):
        column = self._column()
        for _ in range(100):
            column.step(1.0)
        p0 = column.pressure_kpa
        column.overhead_gas_valve.set_command(0.0)
        for _ in range(200):
            column.step(1.0)
        assert column.pressure_kpa > p0

    def test_reboil_duty_raises_temperature(self):
        column = self._column()
        column.set_reboil_duty(100.0)
        for _ in range(300):
            column.step(1.0)
        assert column.temperature_c == pytest.approx(110.0, abs=1.0)

    def test_higher_temperature_sharpens_c3_recovery(self):
        cold = self._column()
        cold.set_reboil_duty(0.0)
        hot = self._column()
        hot.set_reboil_duty(100.0)
        for _ in range(400):
            cold.step(1.0)
            hot.step(1.0)
        assert hot._overhead_recovery("C3") > cold._overhead_recovery("C3")


class TestVaporHeader:
    def test_pressure_integrates_imbalance(self):
        inlet = gas(flow=100.0)
        valve = ControlValve("v", cv_mol_s=200.0, initial_opening_pct=0.0,
                             actuator_tau_sec=0.0)
        header = VaporHeader("hdr", lambda: inlet, valve,
                             pressure_kpa=3800.0)
        p0 = header.pressure_kpa
        for _ in range(10):
            header.step(1.0)
        assert header.pressure_kpa > p0  # inflow, no outflow

    def test_wide_open_valve_bleeds_pressure(self):
        inlet = gas(flow=50.0)
        valve = ControlValve("v", cv_mol_s=400.0,
                             initial_opening_pct=100.0,
                             actuator_tau_sec=0.0)
        header = VaporHeader("hdr", lambda: inlet, valve,
                             pressure_kpa=3800.0)
        for _ in range(50):
            header.step(1.0)
        assert header.pressure_kpa < 3800.0


class TestHilBridge:
    def test_sensor_registers_track_plant(self):
        engine = Engine()
        plant = NaturalGasPlant()
        plant.settle(800.0)
        bridge = HilBridge(engine, plant, plant_dt_ticks=500 * MS)
        bridge.start()
        engine.run_until(3 * SEC)
        level = bridge.read_sensor("lts_level_pct")
        assert level == pytest.approx(plant.flowsheet.read("lts_level_pct"),
                                      abs=0.1)

    def test_actuator_write_reaches_plant(self):
        engine = Engine()
        plant = NaturalGasPlant()
        plant.settle(800.0)
        plant.disable_local_control("lts_level")
        bridge = HilBridge(engine, plant, plant_dt_ticks=500 * MS)
        bridge.start()
        address = bridge.actuator_address("lts_liquid_valve_pct")
        bridge.link.write_async(address, 42.0)
        engine.run_until(5 * SEC)
        assert plant.lts_valve.command_pct == pytest.approx(42.0, abs=0.1)

    def test_register_values_quantized_16bit(self):
        engine = Engine()
        plant = NaturalGasPlant()
        plant.settle(800.0)
        bridge = HilBridge(engine, plant)
        address = bridge.sensor_address("lts_level_pct")
        raw = bridge.image.read_raw(address)
        assert 0 <= raw <= 0xFFFF

    def test_modbus_latency_applies(self):
        engine = Engine()
        plant = NaturalGasPlant()
        plant.settle(800.0)
        bridge = HilBridge(engine, plant, plant_dt_ticks=500 * MS,
                           modbus_transaction_ticks=5 * MS)
        bridge.start()
        # The register copy lags the plant by one serial transaction: step
        # at 500 ms publishes at 505 ms.
        engine.run_until(502 * MS)
        assert bridge.link.transactions > 0
