"""Plant substrate: streams, thermo, units, the full gas plant."""

import pytest

from repro.plant.components import (
    Composition,
    N_SPECIES,
    SPECIES,
    Stream,
)
from repro.plant.thermo import (
    effective_boiling_point_c,
    flash,
    liquid_fraction,
)
from repro.plant.units.separator import TwoPhaseSeparator
from repro.plant.units.valve import ControlValve
from repro.plant.gas_plant import NaturalGasPlant


class TestComposition:
    def test_normalization(self):
        comp = Composition({"C1": 2.0, "C3": 2.0})
        assert comp["C1"] == pytest.approx(0.5)
        assert sum(comp.fractions) == pytest.approx(1.0)

    def test_unknown_species_rejected(self):
        with pytest.raises(KeyError):
            Composition({"He": 1.0})

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Composition({"C1": -0.1, "C2": 1.1})

    def test_molar_mass(self):
        pure_methane = Composition({"C1": 1.0})
        assert pure_methane.molar_mass() == pytest.approx(16.04)


class TestStream:
    def test_component_flows(self):
        stream = Stream(100.0, Composition({"C1": 0.8, "C3": 0.2}),
                        25.0, 4000.0)
        assert stream.component_flow("C3") == pytest.approx(20.0)

    def test_mix_conserves_moles(self):
        a = Stream(60.0, Composition({"C1": 1.0}), 20.0, 4000.0)
        b = Stream(40.0, Composition({"C3": 1.0}), 30.0, 3900.0)
        mixed = Stream.mix([a, b])
        assert mixed.molar_flow == pytest.approx(100.0)
        assert mixed.component_flow("C1") == pytest.approx(60.0)
        assert mixed.component_flow("C3") == pytest.approx(40.0)
        assert mixed.temperature_c == pytest.approx(24.0)
        assert mixed.pressure_kpa == 3900.0

    def test_mix_empty(self):
        assert Stream.mix([]).molar_flow == 0.0

    def test_negative_flow_rejected(self):
        with pytest.raises(ValueError):
            Stream(-1.0, Composition({"C1": 1.0}), 25.0, 100.0)


class TestThermo:
    def test_pressure_raises_effective_boiling_point(self):
        base = effective_boiling_point_c(-42.1, 101.3)
        pressurized = effective_boiling_point_c(-42.1, 4000.0)
        assert pressurized > base + 30

    def test_heavier_condense_more(self):
        t, p = -20.0, 3900.0
        fractions = [liquid_fraction(s.boiling_point_c, t, p)
                     for s in SPECIES]
        # Species are ordered light to heavy within the hydrocarbons:
        c1, c2, c3, ic4, nc4 = (fractions[2], fractions[3], fractions[4],
                                fractions[5], fractions[6])
        assert c1 < c2 < c3 < ic4 <= nc4

    def test_colder_condenses_more(self):
        warm = liquid_fraction(-42.1, 25.0, 4000.0)
        cold = liquid_fraction(-42.1, -20.0, 4000.0)
        assert cold > warm

    def test_flash_conserves_mass(self):
        feed = Stream(100.0, Composition({"C1": 0.7, "C3": 0.2,
                                          "nC4": 0.1}), 25.0, 4000.0)
        vapor, liquid = flash(feed, -20.0, 3900.0)
        assert vapor.molar_flow + liquid.molar_flow == \
            pytest.approx(100.0)
        for s in ("C1", "C3", "nC4"):
            assert (vapor.component_flow(s) + liquid.component_flow(s)
                    == pytest.approx(feed.component_flow(s)))


class TestValve:
    def test_linear_characteristic(self):
        valve = ControlValve("v", cv_mol_s=100.0, initial_opening_pct=25.0)
        assert valve.requested_flow == pytest.approx(25.0)

    def test_actuator_lag(self):
        valve = ControlValve("v", cv_mol_s=100.0, initial_opening_pct=0.0,
                             actuator_tau_sec=2.0)
        valve.set_command(100.0)
        valve.step(1.0)
        assert 0.0 < valve.opening_pct < 100.0
        for _ in range(50):
            valve.step(1.0)
        assert valve.opening_pct == pytest.approx(100.0, abs=0.1)

    def test_command_clamped(self):
        valve = ControlValve("v", cv_mol_s=10.0)
        valve.set_command(150.0)
        assert valve.command_pct == 100.0
        valve.set_command(-5.0)
        assert valve.command_pct == 0.0


class TestSeparator:
    def _separator(self, opening=10.0, feed_flow=100.0):
        feed = Stream(feed_flow, Composition({"C1": 0.7, "C3": 0.2,
                                              "nC4": 0.1}), -20.0, 3900.0)
        valve = ControlValve("v", cv_mol_s=100.0,
                             initial_opening_pct=opening,
                             actuator_tau_sec=0.0)
        sep = TwoPhaseSeparator("sep", feed=lambda: feed,
                                liquid_valve=valve, temperature_c=-20.0,
                                pressure_kpa=3900.0,
                                holdup_capacity_mol=10000.0,
                                initial_level_pct=50.0)
        return sep, valve

    def test_level_rises_when_valve_closed(self):
        sep, valve = self._separator(opening=0.0)
        level0 = sep.level_pct
        for _ in range(100):
            sep.step(1.0)
        assert sep.level_pct > level0

    def test_level_falls_when_valve_wide_open(self):
        sep, valve = self._separator(opening=100.0)
        level0 = sep.level_pct
        for _ in range(100):
            sep.step(1.0)
        assert sep.level_pct < level0

    def test_drain_limited_by_holdup(self):
        sep, valve = self._separator(opening=100.0)
        for _ in range(2000):
            sep.step(1.0)
        assert sep.level_pct == pytest.approx(0.0, abs=1.0)
        # Once dry, outflow equals condensation inflow (cannot exceed).
        _, liquid = flash(sep.feed(), -20.0, 3900.0)
        assert sep.liquid_out.molar_flow <= \
            liquid.molar_flow + sep.blow_by_flow + 1e-6

    def test_blow_by_on_dry_vessel(self):
        sep, valve = self._separator(opening=100.0)
        for _ in range(2000):
            sep.step(1.0)
        assert sep.blow_by_flow > 0.0

    def test_mass_balance(self):
        """Holdup change equals liquid in minus liquid out."""
        sep, valve = self._separator(opening=20.0)
        dt = 1.0
        for _ in range(50):
            before = sep.holdup_mol
            sep.step(dt)
            _, liquid = flash(sep.feed(), -20.0, 3900.0)
            inflow = liquid.molar_flow * dt
            outflow = (sep.liquid_out.molar_flow - sep.blow_by_flow) * dt
            assert sep.holdup_mol - before == pytest.approx(
                inflow - outflow, rel=1e-6, abs=1e-6)


class TestGasPlant:
    @pytest.fixture(scope="class")
    def settled_plant(self):
        plant = NaturalGasPlant()
        plant.settle(1500.0)
        return plant

    def test_reaches_paper_operating_point(self, settled_plant):
        snap = settled_plant.flowsheet.snapshot()
        assert snap["lts_level_pct"] == pytest.approx(50.0, abs=0.5)
        assert snap["lts_valve_pct"] == pytest.approx(11.48, abs=0.5)

    def test_all_eight_loops_at_setpoint(self, settled_plant):
        plant = settled_plant
        for loop in plant.loops:
            pv = plant.flowsheet.read(loop.pv)
            span = abs(loop.config.setpoint) * 0.05 + 2.0
            assert pv == pytest.approx(loop.config.setpoint, abs=span), \
                loop.name

    def test_bottoms_are_low_propane(self, settled_plant):
        """The paper's 'low-propane-content bottoms product'."""
        c3 = settled_plant.flowsheet.read("bottoms_c3_frac")
        assert c3 < 0.15

    def test_stream_table_mass_balance(self, settled_plant):
        table = settled_plant.stream_table()
        feed = table["feed"]["molar_flow"]
        sales = table["sales_gas"]["molar_flow"]
        distillate = table["distillate"]["molar_flow"]
        bottoms = table["bottoms"]["molar_flow"]
        deprop_gas = settled_plant.depropanizer.overhead_gas_out.molar_flow
        total_out = sales + distillate + bottoms + deprop_gas
        assert total_out == pytest.approx(feed, rel=0.1)

    def test_lts_colder_than_inlet(self, settled_plant):
        table = settled_plant.stream_table()
        assert table["chiller_out"]["temperature_c"] < \
            table["feed"]["temperature_c"] - 30

    def test_wedged_valve_drains_lts(self):
        plant = NaturalGasPlant()
        plant.settle(1200.0)
        plant.disable_local_control("lts_level")
        plant.flowsheet.write("lts_liquid_valve_pct", 75.0)
        for _ in range(400):
            plant.step(0.5)
        assert plant.flowsheet.read("lts_level_pct") < 10.0
        assert plant.flowsheet.read("lts_liq_flow") > 20.0  # blow-by spike

    def test_loop_lookup(self, settled_plant):
        assert settled_plant.loop("lts_level").mv == "lts_liquid_valve_pct"
        with pytest.raises(KeyError):
            settled_plant.loop("nonexistent")
