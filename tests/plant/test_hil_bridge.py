"""HilBridge stepping chain: batched PV publish + stale-callback guard.

The bridge schedules one recurring engine event per plant step and ships
the whole sensor sweep through a single batched ModBus transaction event.
Mirrors ``TestGenerationGuard`` (tests/sim/test_process.py): stale events
from a stopped chain must dispatch as inert no-ops, even when the bridge
is restarted before they fire.
"""

from __future__ import annotations

import pytest

from repro.plant.gas_plant import NaturalGasPlant
from repro.plant.hil import HilBridge
from repro.sim.clock import MS, SEC
from repro.sim.engine import Engine


@pytest.fixture
def bridge():
    engine = Engine()
    plant = NaturalGasPlant()
    return engine, HilBridge(engine, plant, plant_dt_ticks=100 * MS)


class TestHilBridgeGenerationGuard:
    def test_stop_leaves_stale_step_inert(self, bridge):
        engine, hil = bridge
        hil.start()
        engine.run_until(350 * MS)
        assert hil.steps_taken == 3
        hil.stop()
        # The armed step event (t=400ms) is still in the queue; it must
        # dispatch as a no-op.
        engine.run_until(1 * SEC)
        assert hil.steps_taken == 3
        assert hil.plant.flowsheet.steps == 3

    def test_stop_then_restart_runs_exactly_one_chain(self, bridge):
        engine, hil = bridge
        hil.start()
        engine.run_until(150 * MS)  # one step at 100ms; next armed at 200ms
        assert hil.steps_taken == 1
        hil.stop()
        hil.start()  # re-armed at 150+100=250ms, BEFORE the stale event fires
        engine.run_until(1 * SEC)
        # New chain: 250, 350, ..., 950 -> 8 steps.  A double chain (the
        # pre-generation-token bug) would roughly double this.
        assert hil.steps_taken == 1 + 8
        assert hil.plant.flowsheet.steps == hil.steps_taken

    def test_restart_after_idle_resumes(self, bridge):
        engine, hil = bridge
        hil.start()
        engine.run_until(200 * MS)
        hil.stop()
        engine.run_until(600 * MS)  # stale event long gone
        taken = hil.steps_taken
        hil.start()
        engine.run_until(1 * SEC)
        assert hil.steps_taken > taken


class TestBatchedPublish:
    def test_pvs_land_after_one_transaction_delay(self, bridge):
        engine, hil = bridge
        address = hil.sensor_address("lts_level_pct")
        initial = hil.image.read(address)
        hil.start()
        # Step fires at t=100ms; the batch applies one transaction later.
        engine.run_until(102 * MS)
        assert hil.image.read(address) == initial
        engine.run_until(105 * MS)
        level = hil.plant.flowsheet.read("lts_level_pct")
        assert hil.image.read(address) == pytest.approx(level, abs=0.01)

    def test_all_sensor_registers_published(self, bridge):
        engine, hil = bridge
        hil.start()
        # Stop between steps (last step at 900ms, its batch applied at
        # 905ms) so no publish is still in flight at the horizon.
        engine.run_until(950 * MS)
        for signal, binding in hil.sensor_bindings.items():
            value = hil.plant.flowsheet.read(signal)
            lo, hi = binding.lo, binding.hi
            quantum = (hi - lo) / 0xFFFF
            clamped = min(hi, max(lo, value))
            assert hil.image.read(binding.address) == pytest.approx(
                clamped, abs=quantum)

    def test_transactions_count_one_per_register(self, bridge):
        engine, hil = bridge
        hil.start()
        engine.run_until(500 * MS)
        assert hil.link.transactions == \
            hil.steps_taken * len(hil.sensor_bindings)

    def test_actuator_write_hook_reaches_plant(self, bridge):
        engine, hil = bridge
        address = hil.actuator_address("chiller_duty_pct")
        hil.image.write(address, 80.0)
        assert hil.plant.chiller.duty_pct == pytest.approx(80.0, abs=0.01)
