"""The disabled-telemetry fast path must stay free.

With ``repro.obs`` off (the default), every instrumented subsystem
binds ``self._obs = None`` at construction and hot sites pay exactly
one ``is not None`` test -- no registry, no metric objects, and no
allocations attributed to the obs package at all.  These are the
regression tests behind the "telemetry off costs nothing" claim the
BENCH trend gate rests on.
"""

import sys
import tracemalloc

import repro.obs as obs
from repro.net.medium import Medium
from repro.net.topology import line
from repro.sim.engine import Engine


def _assert_disabled():
    assert not obs.enabled()
    assert obs.get_registry() is None


def test_default_state_is_disabled():
    _assert_disabled()


def test_enable_disable_roundtrip():
    _assert_disabled()
    try:
        reg = obs.enable()
        assert obs.enabled()
        assert obs.enable() is reg  # idempotent without an explicit arg
        custom = obs.MetricsRegistry()
        assert obs.enable(custom) is custom
        assert obs.get_registry() is custom
    finally:
        obs.disable()
    _assert_disabled()


def test_instrumented_constructors_bind_none_when_disabled():
    from repro.evm.interpreter import Interpreter
    from repro.plant.gas_plant import NaturalGasPlant
    from repro.rtos.scheduler import Scheduler

    _assert_disabled()
    engine = Engine()
    medium = Medium(engine, line(["a", "b"]))
    assert engine._obs is None
    assert medium._obs is None
    assert Interpreter()._obs is None
    assert Scheduler(Engine())._obs is None
    assert NaturalGasPlant()._obs is None


def test_meter_factories_return_none_when_disabled():
    from repro.obs import instrument

    _assert_disabled()
    for factory in (instrument.engine_meters, instrument.medium_meters,
                    instrument.rtlink_meters, instrument.vm_meters,
                    instrument.scheduler_meters, instrument.evm_meters,
                    instrument.health_meters, instrument.plant_meters,
                    instrument.campaign_meters):
        assert factory() is None


def _engine_workload() -> int:
    engine = Engine()
    hits = []
    for i in range(200):
        engine.schedule_at(i * 100, hits.append, i)
    engine.run()
    return len(hits)


def test_zero_obs_allocations_when_disabled():
    """tracemalloc attributes no allocations to repro/obs files while a
    workload runs with telemetry off."""
    _assert_disabled()
    _engine_workload()  # warm caches outside the traced window
    obs_filter = tracemalloc.Filter(True, "*repro/obs/*")
    tracemalloc.start(10)
    try:
        before = tracemalloc.take_snapshot()
        assert _engine_workload() == 200
        after = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    diff = after.filter_traces([obs_filter]).compare_to(
        before.filter_traces([obs_filter]), "lineno")
    grew = [stat for stat in diff if stat.size_diff > 0]
    assert not grew, f"obs allocated while disabled: {grew}"


def test_disabled_workload_touches_no_registry_state():
    """Running a workload while disabled leaves a subsequently enabled
    registry completely empty -- nothing leaked through the off path."""
    _assert_disabled()
    _engine_workload()
    try:
        reg = obs.enable(obs.MetricsRegistry())
        assert reg.values() == {}
        assert reg.bundles == {}
    finally:
        obs.disable()


def test_repro_obs_env_enables_fresh_processes():
    """``REPRO_OBS=1`` flips telemetry on at import -- the path that
    carries enablement into pool and dist worker subprocesses."""
    import subprocess

    code = ("import repro.obs as obs; "
            "print('enabled' if obs.enabled() else 'disabled')")
    for env_value, expected in (("1", "enabled"), ("", "disabled"),
                                ("yes", "enabled"), ("0", "disabled")):
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env={"PYTHONPATH": "src", "REPRO_OBS": env_value},
            cwd="/root/repo", capture_output=True, text=True, timeout=60)
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == expected
