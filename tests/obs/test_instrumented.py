"""Telemetry-on behaviour: meters move, exports serve, stores persist.

Counterpart to ``test_fastpath.py``: with a registry enabled, the
instrumented layers publish real series, the campaign runner routes
per-run deltas into ``metrics.jsonl`` while keeping the run records
byte-identical to obs-off runs, and the HTTP edge serves all three
endpoints.
"""

import json
import urllib.error
import urllib.request

import pytest

import repro.obs as obs
from repro.obs.http import PROMETHEUS_CONTENT_TYPE, MetricsServer
from repro.scenarios import CampaignRunner, ResultsStore, Scenario
from repro.scenarios.stock import fast_hil


@pytest.fixture
def registry():
    reg = obs.enable(obs.MetricsRegistry())
    try:
        yield reg
    finally:
        obs.disable()


def _grid(n=2, duration_sec=3.0):
    return [Scenario(f"obs-{i}", hil=fast_hil(), seed=i,
                     duration_sec=duration_sec) for i in range(n)]


def test_engine_meters_flush_per_run(registry):
    from repro.sim.engine import Engine

    engine = Engine()
    hits = []
    for i in range(50):
        engine.schedule_at(i * 1000, hits.append, i)
    engine.run()
    values = registry.values()
    assert values["repro_engine_events_dispatched_total"] == 50
    assert values["repro_engine_runs_total"] == 1
    assert values["=repro_engine_pending_events"] == 0


def test_vm_meters_count_retired_instructions(registry):
    from repro.evm import Assembler, Interpreter

    program = Assembler().assemble("""
        .name sum
        push 2.0
        push 3.0
        add
        store 0
        halt
    """)
    state = Interpreter().execute(program, [0.0] * 8)
    assert state.halted
    values = registry.values()
    assert values["repro_vm_instructions_total"] == state.steps
    assert values["repro_vm_faults_total"] == 0


def test_campaign_meters_and_metrics_jsonl(registry, tmp_path):
    grid = _grid(2)
    with CampaignRunner(parallel=False,
                        results_dir=str(tmp_path)) as runner:
        result = runner.run(grid)
    # Records are byte-identical to obs-off runs: no transient "obs"
    # key survives into the result or the committed store.
    assert all("obs" not in record for record in result.records)
    store = ResultsStore(tmp_path)
    assert all("obs" not in record for record in store.load_runs())
    assert result.summary["total_runs"] == 2
    assert result.summary["failed_runs"] == 0
    assert "trace_dropped" in result.summary
    # The deltas land in the side channel instead, one row per run.
    rows = store.load_metrics_jsonl()
    assert [row["run_id"] for row in rows] == \
        [record["run_id"] for record in result.records]
    for row in rows:
        assert row["metrics"]["repro_campaign_runs_total"] == 1
        assert row["metrics"]["repro_campaign_run_seconds:count"] == 1
        assert row["metrics"]["repro_engine_events_dispatched_total"] > 0
    # And the process-wide registry agrees with the per-run sum.
    assert registry.values()["repro_campaign_runs_total"] == 2


def test_stale_metrics_jsonl_removed_on_obs_off_rerun(tmp_path):
    grid = _grid(1)
    reg = obs.enable(obs.MetricsRegistry())
    try:
        with CampaignRunner(parallel=False,
                            results_dir=str(tmp_path)) as runner:
            runner.run(grid)
    finally:
        obs.disable()
    store = ResultsStore(tmp_path)
    assert store.load_metrics_jsonl()
    with CampaignRunner(parallel=False,
                        results_dir=str(tmp_path)) as runner:
        runner.run(grid)
    # Wholesale replacement: an obs-off campaign must not leave the
    # previous campaign's telemetry paired with its records.
    assert store.load_metrics_jsonl() == []


def test_metrics_server_endpoints():
    reg = obs.MetricsRegistry()
    reg.counter("repro_http_total", "served").inc(3)
    with MetricsServer(reg, port=0) as server:
        with urllib.request.urlopen(server.url + "/metrics") as resp:
            assert resp.headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
            body = resp.read().decode()
        assert "repro_http_total 3" in body
        with urllib.request.urlopen(server.url + "/snapshot") as resp:
            snap = json.loads(resp.read().decode())
        assert snap["repro_http_total"]["samples"][0]["value"] == 3
        with urllib.request.urlopen(server.url + "/healthz") as resp:
            assert resp.read() == b"ok\n"
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(server.url + "/nope")
        assert err.value.code == 404
