"""Unit tests for the metrics registry and its export faces."""

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    delta_values,
    merge_values,
)


class TestRegistration:
    def test_counter_get_or_create_is_identity(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_test_total", "help text")
        b = reg.counter("repro_test_total")
        assert a is b
        a.inc()
        a.inc(2.5)
        assert b.value == 3.5

    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_labeled_total", node="n1", role="tx")
        b = reg.counter("repro_labeled_total", role="tx", node="n1")
        c = reg.counter("repro_labeled_total", role="rx", node="n1")
        assert a is b
        assert a is not c

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("repro_pinned")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("repro_pinned")
        with pytest.raises(ValueError, match="already registered"):
            reg.histogram("repro_pinned")
        with pytest.raises(ValueError, match="already registered"):
            reg.register_callback("repro_pinned", lambda: 0.0)

    def test_histogram_buckets_pinned_per_name(self):
        reg = MetricsRegistry()
        a = reg.histogram("repro_lat_seconds", buckets=(1.0, 2.0))
        b = reg.histogram("repro_lat_seconds", node="n1")
        assert a.buckets == (1.0, 2.0)
        assert b.buckets == (1.0, 2.0)  # later series inherit the pin

    def test_slots_keep_series_lean(self):
        for cls, args in ((Counter, ("c",)), (Gauge, ("g",)),
                          (Histogram, ("h",))):
            obj = cls(*args)
            with pytest.raises(AttributeError):
                obj.surprise = 1


class TestValuesAndDeltas:
    def test_gauge_reports_counter_subtracts(self):
        reg = MetricsRegistry()
        runs = reg.counter("repro_runs_total")
        depth = reg.gauge("repro_depth")
        lat = reg.histogram("repro_lat_seconds", buckets=(0.1, 1.0))
        before = reg.values()
        runs.inc(3)
        depth.set(7.0)
        lat.observe(0.05)
        lat.observe(0.5)
        delta = delta_values(before, reg.values())
        assert delta["repro_runs_total"] == 3
        assert delta["repro_depth"] == 7.0  # gauges report, not subtract
        assert delta["repro_lat_seconds:count"] == 2
        assert delta["repro_lat_seconds:sum"] == pytest.approx(0.55)

    def test_zero_deltas_are_dropped(self):
        reg = MetricsRegistry()
        reg.counter("repro_idle_total")
        moved = reg.counter("repro_busy_total")
        before = reg.values()
        moved.inc()
        delta = delta_values(before, reg.values())
        assert "repro_idle_total" not in delta
        assert delta == {"repro_busy_total": 1.0}

    def test_merge_values_sums_rows(self):
        rows = [{"a": 1.0, "b": 2.0}, {"a": 3.0, "c": 0.5}]
        assert merge_values(rows) == {"a": 4.0, "b": 2.0, "c": 0.5}


class TestPrometheusRendering:
    def test_counter_gauge_text(self):
        reg = MetricsRegistry()
        reg.counter("repro_runs_total", "Runs completed").inc(2)
        reg.gauge("repro_depth", node="n1").set(4.0)
        text = reg.render_prometheus()
        assert "# HELP repro_runs_total Runs completed" in text
        assert "# TYPE repro_runs_total counter" in text
        assert "repro_runs_total 2" in text
        assert 'repro_depth{node="n1"} 4' in text
        assert text.endswith("\n")

    def test_histogram_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        hist = reg.histogram("repro_lat_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.05, 0.5, 5.0):
            hist.observe(value)
        lines = reg.render_prometheus().splitlines()
        assert 'repro_lat_seconds_bucket{le="0.1"} 2' in lines
        assert 'repro_lat_seconds_bucket{le="1"} 3' in lines
        assert 'repro_lat_seconds_bucket{le="+Inf"} 4' in lines
        assert "repro_lat_seconds_count 4" in lines
        assert any(line.startswith("repro_lat_seconds_sum ")
                   for line in lines)

    def test_label_values_are_escaped(self):
        reg = MetricsRegistry()
        reg.counter("repro_esc_total", path='we"ird\\path\n').inc()
        text = reg.render_prometheus()
        assert r'path="we\"ird\\path\n"' in text

    def test_callback_gauges_sampled_and_faults_swallowed(self):
        reg = MetricsRegistry()
        reg.register_callback("repro_cb", lambda: 42.0, "sampled")
        reg.register_callback("repro_dead_cb",
                              lambda: 1 / 0)  # must not break export
        text = reg.render_prometheus()
        assert "repro_cb 42" in text
        assert "repro_dead_cb" not in text  # skipped wholesale

    def test_snapshot_is_json_able(self):
        reg = MetricsRegistry()
        reg.counter("repro_runs_total").inc()
        reg.histogram("repro_lat_seconds",
                      buckets=DEFAULT_BUCKETS).observe(0.01)
        snap = json.loads(json.dumps(reg.snapshot()))
        assert snap["repro_runs_total"]["samples"][0]["value"] == 1
        hist = snap["repro_lat_seconds"]["samples"][0]
        assert hist["count"] == 1
        assert "+Inf" in hist["buckets"]
