"""Capsules, health monitors, failover arbitration, virtual components."""

import pytest

from repro.evm.capsule import Capsule, CapsuleInstallError, CapsuleStore
from repro.evm.bytecode import Assembler
from repro.evm.failover import (
    ArbitrationError,
    Arbitrator,
    Candidate,
    ControllerMode,
)
from repro.evm.health import HeartbeatMonitor, OutputPlausibilityMonitor
from repro.evm.object_transfer import (
    BidirectionalTransfer,
    DirectionalTransfer,
    FaultResponse,
    HealthAssessment,
    TemporalConditionalTransfer,
    directional_legs,
)
from repro.evm.tasks import LogicalTask
from repro.evm.virtual_component import (
    MembershipError,
    VcMember,
    VirtualComponent,
)
from repro.hardware.mcu import Mcu
from repro.sim.clock import MS, SEC


def make_program(name="law"):
    return Assembler().assemble(f".name {name}\nhalt")


class TestCapsules:
    def test_install_and_retrieve(self):
        store = CapsuleStore()
        capsule = Capsule.from_program(make_program(), version=1)
        assert store.install(capsule)
        assert store.get("law").version == 1

    def test_stale_version_refused(self):
        store = CapsuleStore()
        store.install(Capsule.from_program(make_program(), version=2))
        assert not store.install(Capsule.from_program(make_program(),
                                                      version=1))
        assert store.rejected_stale == 1

    def test_newer_version_replaces(self):
        store = CapsuleStore()
        store.install(Capsule.from_program(make_program(), version=1))
        assert store.install(Capsule.from_program(make_program(), version=2))
        assert store.version_of("law") == 2

    def test_corruption_rejected(self):
        store = CapsuleStore()
        capsule = Capsule.from_program(make_program(), version=1)
        with pytest.raises(CapsuleInstallError):
            store.install(capsule.corrupted_copy(3))
        assert store.rejected_corrupt == 1
        assert not store.has("law")

    def test_rom_accounting(self):
        mcu = Mcu()
        store = CapsuleStore(rom_bank=mcu.rom)
        capsule = Capsule.from_program(make_program(), version=1)
        store.install(capsule)
        assert mcu.rom.used == capsule.size_bytes

    def test_install_hook(self):
        installed = []
        store = CapsuleStore(on_install=installed.append)
        store.install(Capsule.from_program(make_program(), version=1))
        assert len(installed) == 1

    def test_summary(self):
        store = CapsuleStore()
        store.install(Capsule.from_program(make_program("a"), version=3))
        assert store.summary() == {"a": 3}


class TestOutputPlausibility:
    def test_confirms_after_threshold(self):
        monitor = OutputPlausibilityMonitor(plausible_max=100.0, threshold=3)
        assert not monitor.observe(1, 150.0)
        assert not monitor.observe(2, 150.0)
        assert monitor.observe(3, 150.0)  # third consecutive confirms
        assert monitor.confirmed

    def test_good_sample_resets_count(self):
        monitor = OutputPlausibilityMonitor(plausible_max=100.0, threshold=3)
        monitor.observe(1, 150.0)
        monitor.observe(2, 150.0)
        monitor.observe(3, 50.0)  # healthy sample
        assert not monitor.observe(4, 150.0)
        assert monitor.consecutive == 1

    def test_deviation_from_shadow(self):
        """The case-study detection: 75 % is in range but deviates."""
        monitor = OutputPlausibilityMonitor(
            plausible_min=0.0, plausible_max=100.0, max_deviation=5.0,
            threshold=2)
        assert not monitor.observe(1, 75.0, expected=11.5)
        assert monitor.observe(2, 75.0, expected=11.5)
        assert "shadow" in monitor.anomalies[-1].reason

    def test_rate_limit(self):
        monitor = OutputPlausibilityMonitor(max_rate_per_sec=10.0,
                                            threshold=1)
        monitor.observe(0, 0.0)
        assert monitor.observe(1 * SEC, 50.0)  # 50 %/s >> 10 %/s

    def test_confirm_fires_once(self):
        monitor = OutputPlausibilityMonitor(plausible_max=10.0, threshold=1)
        assert monitor.observe(1, 99.0)
        assert not monitor.observe(2, 99.0)

    def test_reset(self):
        monitor = OutputPlausibilityMonitor(plausible_max=10.0, threshold=1)
        monitor.observe(1, 99.0)
        monitor.reset()
        assert not monitor.confirmed
        assert monitor.consecutive == 0

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            OutputPlausibilityMonitor(threshold=0)


class TestHeartbeat:
    def test_silence_detected(self):
        monitor = HeartbeatMonitor(timeout_ticks=2 * SEC)
        monitor.beat(0)
        assert not monitor.is_silent(1 * SEC)
        assert monitor.is_silent(3 * SEC)

    def test_never_heard_is_not_silent(self):
        monitor = HeartbeatMonitor(timeout_ticks=1 * SEC)
        assert not monitor.is_silent(100 * SEC)

    def test_beat_refreshes(self):
        monitor = HeartbeatMonitor(timeout_ticks=2 * SEC)
        monitor.beat(0)
        monitor.beat(5 * SEC)
        assert not monitor.is_silent(6 * SEC)


class TestArbitrator:
    def _candidate(self, node_id, headroom=0.5, capable=True, healthy=True,
                   hops=1):
        return Candidate(node_id=node_id, capable=capable, healthy=healthy,
                         utilization_headroom=headroom,
                         hops_to_actuator=hops)

    def test_prefers_headroom(self):
        chosen = Arbitrator().select([
            self._candidate("a", headroom=0.2),
            self._candidate("b", headroom=0.6),
        ])
        assert chosen == "b"

    def test_breaks_ties_by_hops_then_id(self):
        chosen = Arbitrator().select([
            self._candidate("z", hops=1),
            self._candidate("a", hops=1),
            self._candidate("b", hops=3),
        ])
        assert chosen == "a"

    def test_skips_incapable_and_unhealthy(self):
        chosen = Arbitrator().select([
            self._candidate("a", capable=False),
            self._candidate("b", healthy=False),
            self._candidate("c", headroom=0.1),
        ])
        assert chosen == "c"

    def test_exclusion(self):
        with pytest.raises(ArbitrationError):
            Arbitrator().select([self._candidate("a")], exclude={"a"})

    def test_no_headroom_rejected(self):
        with pytest.raises(ArbitrationError):
            Arbitrator().select([self._candidate("a", headroom=0.0)])

    def test_deterministic(self):
        candidates = [self._candidate(n) for n in ("c", "a", "b")]
        assert all(Arbitrator().select(list(candidates)) == "a"
                   for _ in range(5))


class TestControllerMode:
    def test_mode_semantics(self):
        assert ControllerMode.ACTIVE.computes
        assert ControllerMode.ACTIVE.actuates
        assert ControllerMode.BACKUP.computes
        assert not ControllerMode.BACKUP.actuates
        assert not ControllerMode.INDICATOR.computes
        assert not ControllerMode.DORMANT.computes


class TestTransfers:
    def test_directional_legs(self):
        t = DirectionalTransfer("a", "b", ((1, 0),))
        assert directional_legs(t) == [("a", "b", ((1, 0),))]

    def test_bidirectional_legs(self):
        t = BidirectionalTransfer("a", "b", ((1, 0),), ((2, 3),))
        legs = directional_legs(t)
        assert ("a", "b", ((1, 0),)) in legs
        assert ("b", "a", ((2, 3),)) in legs

    def test_temporal_carries_age(self):
        t = TemporalConditionalTransfer("a", "b", ((0, 0),),
                                        max_age_ticks=100 * MS)
        assert t.max_age_ticks == 100 * MS

    def test_health_has_no_legs(self):
        t = HealthAssessment(monitor="b", subject="a", task="t",
                             response=FaultResponse.TRIGGER_BACKUP)
        assert directional_legs(t) == []


def _task(name="ctrl", caps=frozenset({"controller"}), replicas=2):
    return LogicalTask(name=name, program_name="law",
                       period_ticks=250 * MS, wcet_ticks=2 * MS,
                       required_capabilities=caps, replicas=replicas)


class TestVirtualComponent:
    def _vc(self):
        vc = VirtualComponent("vc")
        for node_id in ("a", "b", "c"):
            vc.admit(VcMember(node_id, frozenset({"controller"})))
        vc.add_task(_task())
        return vc

    def test_admission_and_eviction(self):
        vc = self._vc()
        assert sorted(vc.members) == ["a", "b", "c"]
        vc.evict("c")
        assert "c" not in vc.members
        with pytest.raises(MembershipError):
            vc.evict("c")

    def test_duplicate_admission_rejected(self):
        vc = self._vc()
        with pytest.raises(MembershipError):
            vc.admit(VcMember("a", frozenset()))

    def test_head_election_lowest_healthy(self):
        vc = self._vc()
        assert vc.elect_head() == "a"
        vc.mark_unhealthy("a")
        assert vc.elect_head() == "b"

    def test_assignment_modes(self):
        vc = self._vc()
        assignment = vc.assign("ctrl", "a", backups=["b"])
        assert assignment.mode_of("a") is ControllerMode.ACTIVE
        assert assignment.mode_of("b") is ControllerMode.BACKUP
        assert assignment.mode_of("c") is ControllerMode.DORMANT

    def test_capability_enforcement(self):
        vc = VirtualComponent("vc")
        vc.admit(VcMember("weak", frozenset()))
        vc.add_task(_task())
        with pytest.raises(MembershipError):
            vc.assign("ctrl", "weak")

    def test_promotion(self):
        vc = self._vc()
        vc.assign("ctrl", "a", backups=["b"])
        assignment = vc.promote("ctrl", "b")
        assert assignment.primary == "b"
        assert assignment.mode_of("a") is ControllerMode.INDICATOR
        assert assignment.epoch == 1

    def test_promote_non_host_rejected(self):
        vc = self._vc()
        vc.assign("ctrl", "a", backups=["b"])
        with pytest.raises(MembershipError):
            vc.promote("ctrl", "c")

    def test_utilization_counts_computing_modes(self):
        vc = self._vc()
        vc.assign("ctrl", "a", backups=["b"])
        util = vc.tasks["ctrl"].utilization
        assert vc.utilization_of("a") == pytest.approx(util)
        assert vc.utilization_of("b") == pytest.approx(util)  # backup computes
        vc.set_mode("ctrl", "b", ControllerMode.DORMANT)
        assert vc.utilization_of("b") == 0.0

    def test_describe_renders(self):
        vc = self._vc()
        vc.assign("ctrl", "a", backups=["b"])
        text = vc.describe()
        assert "primary=a" in text
        assert "ctrl" in text
