"""Property-based tests for EVM data-plane invariants.

- assembler/disassembler and encode/decode round-trips over arbitrary
  well-formed programs;
- the migration image codec round-trips arbitrary value trees;
- attestation detects any single-byte corruption;
- the compiled control law matches the reference implementation on
  arbitrary measurement sequences.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.control.controller import ControlLawConfig, FilteredPidController
from repro.evm.attestation import attest_digest, verify_attestation
from repro.evm.bytecode import Assembler, Instruction, Opcode, Program
from repro.evm.interpreter import Interpreter
from repro.evm.migration import decode_value, encode_value
from repro.rtos.task import TaskSpec

# ----------------------------------------------------------------------
# Program round-trips
# ----------------------------------------------------------------------
_ARGLESS = [Opcode.NOP, Opcode.DUP, Opcode.DROP, Opcode.SWAP, Opcode.ADD,
            Opcode.SUB, Opcode.MUL, Opcode.MIN, Opcode.MAX, Opcode.RET]


@st.composite
def programs(draw):
    n = draw(st.integers(min_value=1, max_value=30))
    instructions = []
    for _ in range(n):
        kind = draw(st.integers(min_value=0, max_value=3))
        if kind == 0:
            instructions.append(Instruction(draw(st.sampled_from(_ARGLESS))))
        elif kind == 1:
            value = draw(st.floats(min_value=-1e6, max_value=1e6,
                                   allow_nan=False, width=32))
            instructions.append(Instruction(Opcode.PUSH, value))
        elif kind == 2:
            instructions.append(Instruction(
                draw(st.sampled_from([Opcode.LOAD, Opcode.STORE])),
                draw(st.integers(min_value=0, max_value=63))))
        else:
            instructions.append(Instruction(
                draw(st.sampled_from([Opcode.JMP, Opcode.JZ])),
                draw(st.integers(min_value=0, max_value=n))))
    instructions.append(Instruction(Opcode.HALT))
    return Program(name=draw(st.text(
        alphabet="abcdefghij_", min_size=1, max_size=12)),
        instructions=tuple(instructions))


@settings(max_examples=100, deadline=None)
@given(programs())
def test_encode_decode_roundtrip(program):
    assert Program.decode(program.encode()) == program


@settings(max_examples=50, deadline=None)
@given(programs())
def test_disassemble_reassemble_roundtrip(program):
    listing = program.disassemble()
    again = Assembler().assemble(listing, name=program.name)
    assert again.instructions == program.instructions


# ----------------------------------------------------------------------
# Image codec
# ----------------------------------------------------------------------
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-2**62, max_value=2**62),
    st.floats(allow_nan=False),
    st.text(max_size=40),
    st.binary(max_size=40),
)

_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=8), children, max_size=5),
    ),
    max_leaves=25,
)


@settings(max_examples=150, deadline=None)
@given(_values)
def test_image_codec_roundtrip(value):
    assert decode_value(encode_value(value)) == value


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=10_000),
       st.integers(min_value=2, max_value=20_000))
def test_image_codec_taskspec(wcet, extra):
    spec = TaskSpec("t", wcet_ticks=wcet, period_ticks=wcet + extra,
                    priority=3, stack_bytes=128)
    assert decode_value(encode_value(spec)) == spec


# ----------------------------------------------------------------------
# Attestation
# ----------------------------------------------------------------------
@settings(max_examples=100, deadline=None)
@given(st.binary(min_size=1, max_size=512),
       st.binary(min_size=1, max_size=16),
       st.integers(min_value=0))
def test_attestation_detects_single_byte_corruption(image, nonce, index):
    digest = attest_digest(image, nonce)
    assert verify_attestation(image, nonce, digest)
    corrupted = bytearray(image)
    corrupted[index % len(image)] ^= 0xFF
    assert not verify_attestation(bytes(corrupted), nonce, digest)


@settings(max_examples=50, deadline=None)
@given(st.binary(min_size=1, max_size=128),
       st.binary(min_size=1, max_size=8),
       st.binary(min_size=1, max_size=8))
def test_attestation_nonce_binding(image, nonce_a, nonce_b):
    if nonce_a == nonce_b:
        return
    digest = attest_digest(image, nonce_a)
    assert not verify_attestation(image, nonce_b, digest)


# ----------------------------------------------------------------------
# Compiled control law equivalence
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=100.0,
                          allow_nan=False), min_size=1, max_size=60),
       st.floats(min_value=0.5, max_value=5.0),
       st.floats(min_value=0.01, max_value=0.2))
def test_bytecode_matches_reference(measurements, kp, ki):
    config = ControlLawConfig(kp=kp, ki=ki, kd=0.05, dt_sec=0.25,
                              setpoint=50.0, filter_cutoff_hz=0.4)
    program = config.compile("law")
    reference = FilteredPidController(config)
    interp = Interpreter()
    memory = list(reference.memory)
    for x in measurements:
        expected = reference.step(x)
        memory[0] = x
        interp.execute(program, memory)
        assert math.isclose(memory[1], expected, rel_tol=1e-9, abs_tol=1e-9)
