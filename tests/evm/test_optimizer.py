"""BQP assignment optimizer and greedy baseline."""

import pytest

from repro.evm.optimizer import (
    INFEASIBLE,
    AssignmentProblem,
    bqp_assign,
    evaluate,
    greedy_assign,
)
from repro.evm.tasks import LogicalTask
from repro.evm.virtual_component import VcMember
from repro.sim.clock import MS


def task(name, util=0.1, caps=frozenset()):
    period = 100 * MS
    return LogicalTask(name=name, program_name="law",
                       period_ticks=period,
                       wcet_ticks=max(1, int(period * util)),
                       required_capabilities=caps)


def member(node_id, capacity=0.5, caps=frozenset({"controller"}),
           healthy=True):
    m = VcMember(node_id, caps, cpu_capacity=capacity)
    m.healthy = healthy
    return m


class TestEvaluate:
    def test_infeasible_when_capability_missing(self):
        problem = AssignmentProblem(
            tasks=[task("t", caps=frozenset({"dsp"}))],
            nodes=[member("n")])
        assert evaluate(problem, {"t": "n"}) == INFEASIBLE

    def test_infeasible_when_over_capacity(self):
        problem = AssignmentProblem(
            tasks=[task("a", util=0.3), task("b", util=0.3)],
            nodes=[member("n", capacity=0.5)])
        assert evaluate(problem, {"a": "n", "b": "n"}) == INFEASIBLE

    def test_traffic_cost_scales_with_hops(self):
        problem = AssignmentProblem(
            tasks=[task("a"), task("b")],
            nodes=[member("n1"), member("n2")],
            traffic={("a", "b"): 2.0},
            hops={("n1", "n2"): 3})
        colocated = evaluate(problem, {"a": "n1", "b": "n1"})
        spread = evaluate(problem, {"a": "n1", "b": "n2"})
        assert colocated == 0.0
        assert spread == 6.0

    def test_unhealthy_node_infeasible(self):
        problem = AssignmentProblem(
            tasks=[task("t")], nodes=[member("n", healthy=False)])
        assert evaluate(problem, {"t": "n"}) == INFEASIBLE


class TestGreedy:
    def test_respects_capacity(self):
        problem = AssignmentProblem(
            tasks=[task(f"t{i}", util=0.3) for i in range(3)],
            nodes=[member("n1", capacity=0.65),
                   member("n2", capacity=0.65)])
        result = greedy_assign(problem)
        assert result.feasible
        loads = {}
        for name, node in result.placement.items():
            loads[node] = loads.get(node, 0) + 0.3
        assert all(load <= 0.65 for load in loads.values())

    def test_reports_infeasible(self):
        problem = AssignmentProblem(
            tasks=[task("t", util=0.9)],
            nodes=[member("n", capacity=0.5)])
        result = greedy_assign(problem)
        assert not result.feasible

    def test_respects_capabilities(self):
        problem = AssignmentProblem(
            tasks=[task("sense", caps=frozenset({"sensor"}))],
            nodes=[member("plain"),
                   member("sensing", caps=frozenset({"controller",
                                                     "sensor"}))])
        result = greedy_assign(problem)
        assert result.placement["sense"] == "sensing"


class TestBqp:
    def test_exact_finds_optimum_colocate(self):
        """Heavy traffic: optimal placement co-locates the pair."""
        problem = AssignmentProblem(
            tasks=[task("a", util=0.2), task("b", util=0.2)],
            nodes=[member("n1"), member("n2")],
            traffic={("a", "b"): 10.0},
            hops={("n1", "n2"): 2})
        result = bqp_assign(problem)
        assert result.method == "bqp-exact"
        assert result.placement["a"] == result.placement["b"]
        assert result.cost == 0.0

    def test_exact_spreads_when_capacity_forces(self):
        problem = AssignmentProblem(
            tasks=[task("a", util=0.4), task("b", util=0.4)],
            nodes=[member("n1", capacity=0.5), member("n2", capacity=0.5)],
            traffic={("a", "b"): 10.0})
        result = bqp_assign(problem)
        assert result.feasible
        assert result.placement["a"] != result.placement["b"]

    def test_bqp_never_worse_than_greedy(self):
        """On a batch of randomized instances the optimizer dominates."""
        import random

        rng = random.Random(11)
        for trial in range(10):
            tasks = [task(f"t{i}", util=rng.choice([0.1, 0.2, 0.3]))
                     for i in range(4)]
            nodes = [member(f"n{j}", capacity=rng.choice([0.4, 0.6, 0.8]))
                     for j in range(3)]
            traffic = {}
            for i, a in enumerate(tasks):
                for b in tasks[i + 1:]:
                    if rng.random() < 0.6:
                        traffic[(a.name, b.name)] = rng.uniform(0.5, 4.0)
            hops = {("n0", "n1"): 1, ("n0", "n2"): 2, ("n1", "n2"): 1}
            problem = AssignmentProblem(tasks=tasks, nodes=nodes,
                                        traffic=traffic, hops=hops)
            exact = bqp_assign(problem)
            baseline = greedy_assign(problem)
            if baseline.feasible:
                assert exact.cost <= baseline.cost + 1e-9

    def test_local_search_on_large_instance(self):
        tasks = [task(f"t{i}", util=0.05) for i in range(12)]
        nodes = [member(f"n{j}", capacity=0.4) for j in range(8)]
        traffic = {(f"t{i}", f"t{i + 1}"): 2.0 for i in range(11)}
        problem = AssignmentProblem(tasks=tasks, nodes=nodes,
                                    traffic=traffic)
        result = bqp_assign(problem, exact_limit=1000)
        assert result.method == "bqp-local"
        assert result.feasible
        baseline = greedy_assign(problem)
        assert result.cost <= baseline.cost + 1e-9

    def test_infeasible_instance(self):
        problem = AssignmentProblem(
            tasks=[task("t", caps=frozenset({"impossible"}))],
            nodes=[member("n")])
        result = bqp_assign(problem)
        assert not result.feasible

    def test_affinity_steers_placement(self):
        problem = AssignmentProblem(
            tasks=[task("t")],
            nodes=[member("near"), member("far")],
            affinity={("t", "far"): 5.0})
        result = bqp_assign(problem)
        assert result.placement["t"] == "near"
