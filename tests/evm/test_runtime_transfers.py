"""Object-transfer semantics in the live runtime.

Exercises the transfer types the HIL scenario does not: temporal-
conditional freshness drops, causal-conditional gating, bidirectional
exchange, and failsafe engagement -- on a deterministic loopback fabric.
"""

import pytest

from repro.control.compiler import compile_passthrough
from repro.evm.capsule import Capsule
from repro.evm.failover import ControllerMode
from repro.evm.object_transfer import (
    BidirectionalTransfer,
    CausalConditionalTransfer,
    FaultResponse,
    HealthAssessment,
    TemporalConditionalTransfer,
)
from repro.evm.runtime import EvmRuntime
from repro.evm.tasks import LogicalTask
from repro.evm.virtual_component import VcMember, VirtualComponent
from repro.hardware.node import FireFlyNode
from repro.rtos.kernel import NanoRK
from repro.sim.clock import MS, SEC
from repro.sim.engine import Engine


class _Fabric:
    """Loopback delivery with configurable latency per link."""

    def __init__(self, engine, latency=2 * MS):
        self.engine = engine
        self.latency = latency
        self.runtimes = {}


class _Mac:
    def __init__(self, node_id, fabric):
        self.node_id = node_id
        self.fabric = fabric

    def send(self, packet):
        for node_id, runtime in self.fabric.runtimes.items():
            if node_id == self.node_id:
                continue
            if packet.dst in ("*", node_id):
                self.fabric.engine.schedule(self.fabric.latency,
                                            runtime.deliver, packet)
        return True

    def set_receive_handler(self, fn):
        pass

    def stop(self):
        pass


def build_pair(engine, transfers, producer_mode=ControllerMode.ACTIVE,
               latency=2 * MS, memory_slots=16):
    """Two nodes: 'p' hosts task 'prod', 'c' hosts task 'cons'."""
    fabric = _Fabric(engine, latency)
    vc = VirtualComponent("xfer-vc")
    vc.admit(VcMember("p", frozenset({"x"})))
    vc.admit(VcMember("c", frozenset({"x"})))
    prod = LogicalTask(name="prod", program_name="ident",
                       period_ticks=100 * MS, wcet_ticks=1 * MS,
                       memory_slots=memory_slots,
                       required_capabilities=frozenset({"x"}), replicas=1)
    cons = LogicalTask(name="cons", program_name="ident",
                       period_ticks=100 * MS, wcet_ticks=1 * MS,
                       memory_slots=memory_slots,
                       required_capabilities=frozenset({"x"}), replicas=1)
    vc.add_task(prod)
    vc.add_task(cons)
    vc.assign("prod", "p")
    vc.assign("cons", "c")
    for transfer in transfers:
        vc.add_transfer(transfer)
    runtimes = {}
    program = compile_passthrough("ident", gain=1.0)
    for node_id in ("p", "c"):
        node = FireFlyNode(engine, node_id, with_sensors=False)
        kernel = NanoRK(engine, node)
        kernel.attach_mac(_Mac(node_id, fabric))
        runtime = EvmRuntime(kernel, vc, frozenset({"x"}))
        runtime.install_capsule(Capsule.from_program(program, 1))
        runtime.configure_from_vc(head_id="p")
        fabric.runtimes[node_id] = runtime
        runtimes[node_id] = runtime
    return runtimes


class TestTemporalConditional:
    def test_fresh_samples_applied(self, engine):
        runtimes = build_pair(engine, [TemporalConditionalTransfer(
            producer="prod", consumer="cons", slots=((1, 3),),
            max_age_ticks=50 * MS)], latency=2 * MS)
        runtimes["p"].instances["prod"].memory[0] = 7.5
        engine.run_until(1 * SEC)
        assert runtimes["c"].instances["cons"].memory[3] == 7.5
        assert runtimes["c"].stats.stale_dropped == 0

    def test_stale_samples_dropped(self, engine):
        runtimes = build_pair(engine, [TemporalConditionalTransfer(
            producer="prod", consumer="cons", slots=((1, 3),),
            max_age_ticks=50 * MS)], latency=80 * MS)  # late arrival
        runtimes["p"].instances["prod"].memory[0] = 7.5
        engine.run_until(1 * SEC)
        assert runtimes["c"].instances["cons"].memory[3] == 0.0
        assert runtimes["c"].stats.stale_dropped > 0


class TestCausalConditional:
    def _transfers(self):
        return [CausalConditionalTransfer(
            producer="prod", consumer="cons", slots=((1, 3),),
            guard_slot=8, guard_threshold=1.0)]

    def test_blocked_until_guard_set(self, engine):
        runtimes = build_pair(engine, self._transfers())
        runtimes["p"].instances["prod"].memory[0] = 9.0
        engine.run_until(500 * MS)
        assert runtimes["c"].instances["cons"].memory[3] == 0.0
        assert runtimes["p"].stats.causal_blocked > 0

    def test_flows_once_guard_set(self, engine):
        runtimes = build_pair(engine, self._transfers())
        runtimes["p"].instances["prod"].memory[0] = 9.0
        engine.run_until(500 * MS)
        runtimes["p"].instances["prod"].memory[8] = 2.0  # enter mode
        engine.run_until(1 * SEC)
        assert runtimes["c"].instances["cons"].memory[3] == 9.0


class TestBidirectional:
    def test_both_directions_exchange(self, engine):
        runtimes = build_pair(engine, [BidirectionalTransfer(
            task_a="prod", task_b="cons",
            slots_a_to_b=((1, 4),), slots_b_to_a=((2, 5),))])
        runtimes["p"].instances["prod"].memory[0] = 3.0
        runtimes["c"].instances["cons"].memory[2] = 4.0
        engine.run_until(1 * SEC)
        assert runtimes["c"].instances["cons"].memory[4] == 3.0
        assert runtimes["p"].instances["prod"].memory[5] == 4.0


class TestLocalFailsafe:
    def test_failsafe_engages_on_fault(self, engine):
        assessment = HealthAssessment(
            monitor="c", subject="p", task="prod",
            response=FaultResponse.LOCAL_FAILSAFE,
            plausible_min=0.0, plausible_max=10.0, threshold=2)
        runtimes = build_pair(engine, [
            TemporalConditionalTransfer(
                producer="prod", consumer="cons", slots=((1, 3),),
                max_age_ticks=1 * SEC),
            assessment,
        ])
        # The consumer side also hosts a failsafe binding on 'prod'?  No:
        # the monitor engages failsafe on ITS instance of the monitored
        # task; here 'c' does not host 'prod', so only the alert path runs.
        # Give 'c' a failsafe on its own consumer task and point the
        # assessment response there via the runtime API.
        written = []
        runtimes["c"].bind_output("cons", 3, written.append)
        runtimes["c"].set_failsafe("cons", 3, -1.0)
        engine.run_until(300 * MS)
        runtimes["p"].instances["prod"].memory[0] = 999.0  # out of range
        engine.run_until(1 * SEC)
        assert runtimes["c"].stats.faults_reported >= 1
        anomalies = [e for e in (runtimes["c"].monitors[0]
                                 .plausibility.anomalies)]
        assert anomalies

    def test_halt_response_suspends_subject(self, engine):
        assessment = HealthAssessment(
            monitor="c", subject="p", task="prod",
            response=FaultResponse.HALT,
            plausible_min=0.0, plausible_max=10.0, threshold=2)
        runtimes = build_pair(engine, [
            TemporalConditionalTransfer(
                producer="prod", consumer="cons", slots=((1, 3),),
                max_age_ticks=1 * SEC),
            assessment,
        ])
        engine.run_until(300 * MS)
        runtimes["p"].instances["prod"].memory[0] = 999.0
        engine.run_until(2 * SEC)
        # The HALT command reached 'p' and parked its task.
        assert runtimes["p"].instances["prod"].mode is ControllerMode.DORMANT
        from repro.rtos.task import TaskState

        assert runtimes["p"].kernel.task("prod").state is TaskState.SUSPENDED
