"""Bytecode: instruction validation, assembler, wire format round-trips."""

import pytest

from repro.evm.bytecode import (
    Assembler,
    AssemblyError,
    Instruction,
    Opcode,
    Program,
)


class TestInstruction:
    def test_argless_rejects_argument(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.ADD, 1)

    def test_int_arg_required(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.JMP, None)
        with pytest.raises(ValueError):
            Instruction(Opcode.JMP, -1)
        with pytest.raises(ValueError):
            Instruction(Opcode.LOAD, 1.5)

    def test_push_numeric(self):
        assert Instruction(Opcode.PUSH, 2.5).arg == 2.5
        with pytest.raises(ValueError):
            Instruction(Opcode.PUSH, None)

    def test_str_rendering(self):
        assert str(Instruction(Opcode.ADD)) == "add"
        assert str(Instruction(Opcode.PUSH, 1.5)) == "push 1.5"


class TestAssembler:
    def test_basic_program(self):
        program = Assembler().assemble("""
            .name demo
            push 1.0
            push 2.0
            add
            store 0
            halt
        """)
        assert program.name == "demo"
        assert [i.opcode for i in program.instructions] == [
            Opcode.PUSH, Opcode.PUSH, Opcode.ADD, Opcode.STORE, Opcode.HALT]

    def test_labels_resolve(self):
        program = Assembler().assemble("""
            start:
                load 0
                jz end
                jmp start
            end:
                halt
        """)
        assert program.instructions[1] == Instruction(Opcode.JZ, 3)
        assert program.instructions[2] == Instruction(Opcode.JMP, 0)

    def test_comments_ignored(self):
        program = Assembler().assemble("""
            push 1.0   ; inline comment
            # whole-line comment
            halt
        """)
        assert len(program) == 2

    def test_channel_host_word_tables(self):
        program = Assembler().assemble("""
            .channel level
            .host get_time
            .word square
            in level
            host get_time
            word square
            out level
            halt
        """)
        assert program.channels == ("level",)
        assert program.host_names == ("get_time",)
        assert program.word_names == ("square",)
        assert program.instructions[0] == Instruction(Opcode.IN, 0)

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblyError):
            Assembler().assemble("frobnicate 3")

    def test_unknown_label(self):
        with pytest.raises(AssemblyError):
            Assembler().assemble("jmp nowhere")

    def test_undeclared_channel(self):
        with pytest.raises(AssemblyError):
            Assembler().assemble("in level")

    def test_duplicate_label(self):
        with pytest.raises(AssemblyError):
            Assembler().assemble("x: nop\nx: halt")

    def test_missing_operand(self):
        with pytest.raises(AssemblyError):
            Assembler().assemble("push")

    def test_operand_on_argless(self):
        with pytest.raises(AssemblyError):
            Assembler().assemble("add 3")


class TestWireFormat:
    def _programs(self):
        asm = Assembler()
        yield asm.assemble(".name empty\nhalt")
        yield asm.assemble("""
            .name rich
            .channel a
            .channel b
            .host h1
            .word w1
            top:
                push -12.5
                load 3
                in a
                out b
                host h1
                word w1
                jz top
                call 0
                ret
                halt
        """)

    def test_roundtrip(self):
        for program in self._programs():
            assert Program.decode(program.encode()) == program

    def test_push_constants_are_float32(self):
        program = Assembler().assemble("push 0.1\nhalt")
        decoded = Program.decode(program.encode())
        import struct

        expected = struct.unpack(">f", struct.pack(">f", 0.1))[0]
        assert decoded.instructions[0].arg == expected

    def test_encoding_is_compact(self):
        program = Assembler().assemble("\n".join(["nop"] * 50) + "\nhalt")
        # header + 51 one-byte instructions
        assert program.size_bytes < 80

    def test_disassemble_reassembles(self):
        for program in self._programs():
            listing = program.disassemble()
            again = Assembler().assemble(listing, name=program.name)
            assert again.instructions == program.instructions
            assert again.channels == program.channels
