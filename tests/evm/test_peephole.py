"""The peephole pass: every fusion is invisible except for speed.

`Interpreter(peephole=False)` runs the same threaded code without the
pass, which (by the golden-determinism suite) is pinned to the seed
semantics -- so on/off equality here means the fusions are
semantics-preserving instruction for instruction: final states, memory
images, error strings, step accounting, budget pauses and resumes.
"""

import json

import pytest

from repro.evm.bytecode import Assembler, Instruction, Opcode, Program
from repro.evm.bytecode import fold_constants
from repro.evm.interpreter import (
    Interpreter,
    VmError,
    VmState,
    _optimize_code,
)

_asm = Assembler()


def _outcome(interp: Interpreter, program: Program, memory: list[float],
             **kw) -> str:
    mem = list(memory)
    try:
        state = interp.execute(program, mem, **kw)
        payload = {"state": state.snapshot(), "memory": mem,
                   "total": interp.total_steps}
    except VmError as exc:
        payload = {"error": str(exc), "memory": mem,
                   "total": interp.total_steps}
    return json.dumps(payload, sort_keys=True)


def _both(program: Program, memory: list[float], interp_kw=None,
          **kw) -> str:
    interp_kw = interp_kw or {}
    on = _outcome(Interpreter(**interp_kw), program, memory, **kw)
    off = _outcome(Interpreter(peephole=False, **interp_kw), program,
                   memory, **kw)
    assert on == off
    return on


def _fused_slots(program: Program) -> list[int]:
    interp = Interpreter()
    plain, fused = interp.compiled_pair(program)
    if plain is fused:
        return []
    return [i for i, (p, f) in enumerate(zip(plain, fused)) if p != f]


class TestPatternsFuseAndMatch:
    def test_push_binop_fuses(self):
        program = _asm.assemble("push 5\npush 3\nsub\nstore 0\nhalt", name="p")
        # Slot 0 folds the triple; slot 1 fuses push+sub as a landing pad.
        assert _fused_slots(program) == [0, 1]
        out = _both(program, [0.0] * 4)
        assert json.loads(out)["memory"][0] == 2.0

    def test_every_push_binop_operator(self):
        for op in ("add", "sub", "mul", "div", "min", "max", "lt", "gt",
                   "le", "ge", "eq", "ne", "and", "or"):
            program = _asm.assemble(f"load 0\npush 2\n{op}\nstore 1\nhalt",
                                    name=op)
            assert 1 in _fused_slots(program)
            _both(program, [7.0, 0.0])

    def test_constant_fold_matches_runtime_arithmetic(self):
        inf = float("inf")
        for a, b, op in ((1.5, 2.25, Opcode.ADD), (inf, inf, Opcode.SUB),
                         (-0.0, 0.0, Opcode.MIN), (3.0, 0.0, Opcode.DIV),
                         (0.0, 5.0, Opcode.AND)):
            program = Program("fold", (
                Instruction(Opcode.PUSH, a), Instruction(Opcode.PUSH, b),
                Instruction(op), Instruction(Opcode.STORE, 0),
                Instruction(Opcode.HALT)))
            _both(program, [9.0])

    def test_div_by_zero_constant_not_folded(self):
        program = _asm.assemble("push 1\npush 0\ndiv\nhalt", name="dz")
        out = _both(program, [0.0])
        assert "division by zero" in out
        folded = fold_constants(Opcode.DIV, 1.0, 0.0)
        assert folded is None

    def test_dup_drop_eliminated(self):
        program = _asm.assemble("push 4\ndup\ndrop\nstore 0\nhalt", name="dd")
        assert 1 in _fused_slots(program)
        out = _both(program, [0.0])
        assert json.loads(out)["memory"][0] == 4.0

    def test_store_load_write_through(self):
        program = _asm.assemble("push 8\nstore 2\nload 2\nstore 3\nhalt",
                                name="sl")
        assert 1 in _fused_slots(program)
        out = _both(program, [0.0] * 4)
        assert json.loads(out)["memory"][2:4] == [8.0, 8.0]

    def test_store_load_different_slots_not_fused(self):
        program = _asm.assemble("push 8\nstore 2\nload 3\nhalt", name="sl2")
        plain, fused = Interpreter().compiled_pair(program)
        assert plain[1] == fused[1]

    def test_load_jz_fused_branch(self):
        program = _asm.assemble(
            "top:\n load 0\n push 1\n sub\n store 0\n load 0\n jz done\n"
            " jmp top\ndone: halt", name="count")
        assert 4 in _fused_slots(program)  # the load 0 / jz done pair
        out = _both(program, [5.0])
        decoded = json.loads(out)
        assert decoded["memory"][0] == 0.0
        assert decoded["state"]["steps"] == 5 * 7  # virtual steps preserved

    def test_jump_threading_collapses_chains(self):
        program = _asm.assemble(
            "jmp a\nhalt\na: jmp b\nb: jmp c\nc: push 1\nstore 0\nhalt",
            name="chain")
        assert 0 in _fused_slots(program)
        out = _both(program, [0.0])
        decoded = json.loads(out)
        assert decoded["memory"][0] == 1.0
        # Collapsed hops still count as executed instructions.
        assert decoded["state"]["steps"] == 6

    def test_self_jump_cycle_not_threaded(self):
        program = _asm.assemble("top: jmp top", name="spin")
        out = _both(program, [0.0], interp_kw={"max_steps": 50})
        assert "step budget 50 exhausted" in out


class TestMidPatternEdges:
    def test_jump_into_middle_of_fused_pair(self):
        # A jump lands on the `add` that is the second half of a fused
        # push+add: the landing-pad slot must execute the original add.
        program = Program("landing", (
            Instruction(Opcode.LOAD, 0),      # 0 \ fused load+jz
            Instruction(Opcode.JZ, 6),        # 1 /
            Instruction(Opcode.LOAD, 0),      # 2
            Instruction(Opcode.PUSH, 1.0),    # 3 \ fused pair
            Instruction(Opcode.ADD),          # 4 /  (4 is the landing pad)
            Instruction(Opcode.HALT),         # 5
            Instruction(Opcode.PUSH, 20.0),   # 6
            Instruction(Opcode.PUSH, 22.0),   # 7
            Instruction(Opcode.JMP, 4),       # 8 -> into the pair's middle
        ))
        taken = json.loads(_both(program, [0.0]))
        assert taken["state"]["stack"] == [42.0]
        not_taken = json.loads(_both(program, [5.0]))
        assert not_taken["state"]["stack"] == [6.0]

    def test_push_binop_underflow_replicates_seed_state(self):
        program = _asm.assemble("push 3\nadd\nhalt", name="uf")
        out = _both(program, [0.0])
        decoded = json.loads(out)
        assert "stack underflow" in decoded["error"]
        assert decoded["total"] == 2  # PUSH executed, ADD faulted

    def test_fold_second_push_overflow(self):
        program = _asm.assemble("push 1\npush 2\nadd\nhalt", name="of")
        for depth in (0, 1, 2, 3):
            kw = {"max_stack": depth}
            on = _outcome(Interpreter(**kw), program, [0.0])
            off = _outcome(Interpreter(peephole=False, **kw), program, [0.0])
            assert on == off

    def test_store_load_bad_slot(self):
        program = _asm.assemble("push 1\nstore 9\nload 9\nhalt", name="bad")
        out = _both(program, [0.0] * 4)
        assert "STORE slot 9 out of range" in out

    def test_load_jz_bad_slot_and_full_stack(self):
        program = _asm.assemble("load 9\njz 0\nhalt", name="badload")
        out = _both(program, [0.0] * 4)
        assert "LOAD slot 9 out of range" in out
        program = _asm.assemble("push 1\nload 0\njz 0\nhalt", name="full")
        on = _outcome(Interpreter(max_stack=1), program, [0.0])
        off = _outcome(Interpreter(peephole=False, max_stack=1),
                       program, [0.0])
        assert on == off and "stack overflow" in on


class TestBudgetPrecision:
    COUNTDOWN = ("top:\n load 0\n push 1\n sub\n store 0\n load 0\n"
                 " jz done\n jmp top\ndone: halt")

    def test_budget_error_lands_on_exact_step(self):
        program = _asm.assemble(self.COUNTDOWN, name="count")
        for budget in range(1, 40):
            on = _outcome(Interpreter(max_steps=budget), program, [50.0])
            off = _outcome(Interpreter(peephole=False, max_steps=budget),
                           program, [50.0])
            assert on == off, budget

    def test_pause_and_resume_any_budget(self):
        program = _asm.assemble(self.COUNTDOWN, name="count")
        for budget in range(1, 30):
            interp_on = Interpreter()
            interp_off = Interpreter(peephole=False)
            mem_on, mem_off = [9.0] + [0.0] * 3, [9.0] + [0.0] * 3
            st_on = interp_on.execute(program, mem_on, max_steps=budget,
                                      pause_on_budget=True)
            st_off = interp_off.execute(program, mem_off, max_steps=budget,
                                        pause_on_budget=True)
            assert st_on.snapshot() == st_off.snapshot(), budget
            assert mem_on == mem_off
            # Resume the paused state (crossing interpreters, as the
            # migration layer does) and run to completion.
            resumed = VmState.restore(st_on.snapshot())
            final = Interpreter().execute(program, mem_on, state=resumed)
            assert final.halted and mem_on[0] == 0.0

    def test_threaded_jump_chain_budget(self):
        program = _asm.assemble(
            "a: jmp b\nb: jmp c\nc: jmp a", name="cycle")
        for budget in range(1, 12):
            on = _outcome(Interpreter(max_steps=budget), program, [0.0])
            off = _outcome(Interpreter(peephole=False, max_steps=budget),
                           program, [0.0])
            assert on == off, budget


class TestPassMechanics:
    def test_no_opportunity_reuses_plain_list(self):
        program = _asm.assemble("nop\nswap\nhalt", name="plain")
        plain, fused = Interpreter().compiled_pair(program)
        assert plain is fused

    def test_peephole_false_never_rewrites(self):
        program = _asm.assemble("push 1\npush 2\nadd\nhalt", name="p")
        plain, fused = Interpreter(peephole=False).compiled_pair(program)
        assert plain is fused

    def test_optimize_code_is_pure(self):
        program = _asm.assemble("push 1\npush 2\nadd\nhalt", name="p")
        from repro.evm.interpreter import _compile_program

        plain = _compile_program(program)
        before = list(plain)
        fused = _optimize_code(program, plain)
        assert plain == before  # input untouched
        assert fused is not plain


@pytest.mark.parametrize("source,memory", [
    ("push 2\npush 3\nmul\nstore 0\nhalt", [0.0]),
    ("load 0\npush 1\nsub\ndup\ndrop\nstore 0\nload 0\njz 9\njmp 0\nhalt",
     [6.0]),
    ("call w\nhalt\nw: push 2\npush 2\nadd\nstore 1\nret", [0.0, 0.0]),
])
def test_smoke_programs_match(source, memory):
    program = _asm.assemble(source, name="smoke")
    _both(program, memory)
