"""Interpreter: stack semantics, control flow, words, hosts, containment."""

import pytest

from repro.evm.bytecode import Assembler, Instruction, Opcode, Program
from repro.evm.interpreter import Interpreter, VmError, VmState


def run(text, memory=None, interp=None, **kwargs):
    program = Assembler().assemble(text)
    interp = interp or Interpreter()
    memory = memory if memory is not None else [0.0] * 16
    state = interp.execute(program, memory, **kwargs)
    return state, memory


class TestArithmetic:
    def test_add_sub_mul_div(self):
        _, mem = run("push 10\npush 4\nsub\nstore 0\n"
                     "push 3\npush 5\nmul\nstore 1\n"
                     "push 8\npush 2\ndiv\nstore 2\nhalt")
        assert mem[:3] == [6.0, 15.0, 4.0]

    def test_neg_abs_min_max(self):
        _, mem = run("push 5\nneg\nstore 0\n"
                     "push -7\nabs\nstore 1\n"
                     "push 3\npush 9\nmin\nstore 2\n"
                     "push 3\npush 9\nmax\nstore 3\nhalt")
        assert mem[:4] == [-5.0, 7.0, 3.0, 9.0]

    def test_division_by_zero_raises(self):
        with pytest.raises(VmError, match="division by zero"):
            run("push 1\npush 0\ndiv\nhalt")

    def test_comparisons(self):
        _, mem = run("push 1\npush 2\nlt\nstore 0\n"
                     "push 2\npush 2\nle\nstore 1\n"
                     "push 3\npush 2\ngt\nstore 2\n"
                     "push 2\npush 3\nge\nstore 3\n"
                     "push 2\npush 2\neq\nstore 4\n"
                     "push 1\npush 2\nne\nstore 5\nhalt")
        assert mem[:6] == [1.0, 1.0, 1.0, 0.0, 1.0, 1.0]

    def test_logic(self):
        _, mem = run("push 1\npush 0\nand\nstore 0\n"
                     "push 1\npush 0\nor\nstore 1\n"
                     "push 0\nnot\nstore 2\nhalt")
        assert mem[:3] == [0.0, 1.0, 1.0]


class TestStackOps:
    def test_dup_drop_swap_over_rot(self):
        _, mem = run("push 1\ndup\nadd\nstore 0\n"          # 2
                     "push 5\npush 9\ndrop\nstore 1\n"       # 5
                     "push 1\npush 2\nswap\nstore 2\ndrop\n"  # 1 (2 dropped)
                     "push 7\npush 8\nover\nstore 3\ndrop\ndrop\n"  # 7
                     "push 1\npush 2\npush 3\nrot\nstore 4\ndrop\ndrop\n"
                     "halt")
        assert mem[0] == 2.0
        assert mem[1] == 5.0
        assert mem[2] == 1.0
        assert mem[3] == 7.0
        assert mem[4] == 1.0  # rot brings bottom to top

    def test_underflow(self):
        with pytest.raises(VmError, match="underflow"):
            run("add\nhalt")

    def test_overflow(self):
        interp = Interpreter(max_stack=4)
        with pytest.raises(VmError, match="overflow"):
            run("push 1\n" * 5 + "halt", interp=interp)


class TestControlFlow:
    def test_loop_terminates(self):
        _, mem = run("""
            top:
                load 0
                push 1
                sub
                store 0
                load 0
                jz done
                jmp top
            done: halt
        """, memory=[5.0] + [0.0] * 15)
        assert mem[0] == 0.0

    def test_call_ret(self):
        state, mem = run("""
            call sub
            push 100
            store 1
            halt
            sub:
                push 42
                store 0
                ret
        """)
        assert mem[0] == 42.0
        assert mem[1] == 100.0

    def test_infinite_loop_bounded(self):
        with pytest.raises(VmError, match="step budget"):
            run("top: jmp top", max_steps=1000)

    def test_bad_jump_target(self):
        program = Program("bad", (Instruction(Opcode.JMP, 99),))
        with pytest.raises(VmError, match="out of range"):
            Interpreter().execute(program, [0.0])

    def test_fall_off_end_halts(self):
        program = Program("fall", (Instruction(Opcode.PUSH, 1.0),))
        state = Interpreter().execute(program, [0.0])
        assert state.halted


class TestMemory:
    def test_load_store(self):
        _, mem = run("push 3.5\nstore 7\nload 7\npush 2\nmul\nstore 8\nhalt")
        assert mem[7] == 3.5
        assert mem[8] == 7.0

    def test_slot_out_of_range(self):
        with pytest.raises(VmError, match="out of range"):
            run("load 99\nhalt")


class TestChannelsAndHosts:
    def test_input_channel(self):
        interp = Interpreter()
        interp.bind_input("level", lambda: 42.5)
        _, mem = run(".channel level\nin level\nstore 0\nhalt",
                     interp=interp)
        assert mem[0] == 42.5

    def test_output_channel(self):
        interp = Interpreter()
        written = []
        interp.bind_output("valve", written.append)
        run(".channel valve\npush 11.48\nout valve\nhalt", interp=interp)
        assert written == [pytest.approx(11.48)]

    def test_unbound_channel_raises(self):
        with pytest.raises(VmError, match="no input bound"):
            run(".channel ghost\nin ghost\nhalt")

    def test_host_hook(self):
        interp = Interpreter()
        interp.register_host("get_time", lambda ctx: ctx.push(123.0))
        _, mem = run(".host get_time\nhost get_time\nstore 0\nhalt",
                     interp=interp)
        assert mem[0] == 123.0

    def test_missing_host_raises(self):
        with pytest.raises(VmError, match="no host hook"):
            run(".host nothing\nhost nothing\nhalt")


class TestWords:
    def test_word_call(self):
        interp = Interpreter()
        interp.register_word(Assembler().assemble(
            ".name square\ndup\nmul\nret"))
        _, mem = run("""
            .word square
            push 6
            word square
            store 0
            halt
        """, interp=interp)
        assert mem[0] == 36.0

    def test_nested_words(self):
        interp = Interpreter()
        interp.register_word(Assembler().assemble(
            ".name double\npush 2\nmul\nret"))
        interp.register_word(Assembler().assemble(
            ".name quad\n.word double\nword double\nword double\nret"))
        _, mem = run(".word quad\npush 3\nword quad\nstore 0\nhalt",
                     interp=interp)
        assert mem[0] == 12.0

    def test_missing_word_raises(self):
        with pytest.raises(VmError, match="not installed"):
            run(".word ghost\nword ghost\nhalt")

    def test_runtime_extension(self):
        """The instruction set grows at runtime (vs Mate's fixed set)."""
        interp = Interpreter()
        assert not interp.has_word("clamp01")
        interp.register_word(Assembler().assemble(
            ".name clamp01\npush 1\nmin\npush 0\nmax\nret"))
        assert interp.has_word("clamp01")
        _, mem = run(".word clamp01\npush 7\nword clamp01\nstore 0\nhalt",
                     interp=interp)
        assert mem[0] == 1.0


class TestStateSnapshot:
    def test_snapshot_restore_roundtrip(self):
        state = VmState(stack=[1.0, 2.0], rstack=[("main", 3)], pc=7,
                        routine="w", steps=11, halted=False)
        again = VmState.restore(state.snapshot())
        assert again.stack == state.stack
        assert again.rstack == state.rstack
        assert again.pc == state.pc
        assert again.routine == state.routine

    def test_cycle_estimation(self):
        interp = Interpreter()
        state, _ = run("push 1\npush 2\nadd\nstore 0\nhalt", interp=interp)
        assert interp.estimated_cycles(state) == state.steps * 80
