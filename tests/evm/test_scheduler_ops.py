"""The eight EVM node-specific operations (paper section 3.1.1)."""

import random

import pytest

from repro.control.compiler import compile_passthrough
from repro.evm.capsule import Capsule
from repro.evm.runtime import EvmRuntime
from repro.evm.scheduler_ops import NodeOperations, register_parametric_hooks
from repro.evm.tasks import LogicalTask
from repro.evm.virtual_component import VcMember, VirtualComponent
from repro.evm.bytecode import Assembler
from repro.evm.failover import ControllerMode
from repro.hardware.node import FireFlyNode
from repro.rtos.kernel import NanoRK
from repro.rtos.task import TaskSpec
from repro.sim.clock import MS, SEC
from repro.sim.engine import Engine


class _LoopbackMac:
    """Delivers sends straight back to a peer runtime (no radio)."""

    def __init__(self, node_id):
        self.node_id = node_id
        self.peer = None
        self.handler = None

    def send(self, packet):
        if self.peer is not None and (packet.dst in ("*", self.peer.node_id)):
            self.peer.engine.schedule(1 * MS, self.peer.deliver, packet)
        return True

    def set_receive_handler(self, fn):
        self.handler = fn

    def stop(self):
        pass


def build_node(engine, node_id, capabilities=frozenset({"controller"})):
    node = FireFlyNode(engine, node_id, with_sensors=True,
                       rng=random.Random(1))
    kernel = NanoRK(engine, node)
    mac = _LoopbackMac(node_id)
    kernel.attach_mac(mac)
    vc = VirtualComponent("ops-vc")
    vc.admit(VcMember(node_id, capabilities))
    runtime = EvmRuntime(kernel, vc, capabilities=capabilities)
    runtime.head_id = node_id
    runtime.install_capsule(
        Capsule.from_program(compile_passthrough("law", gain=1.0), 1))
    return node, kernel, mac, runtime


def logical(name="work", wcet=2 * MS, period=100 * MS):
    return LogicalTask(name=name, program_name="law", period_ticks=period,
                       wcet_ticks=wcet,
                       required_capabilities=frozenset({"controller"}))


class TestOps:
    def test_op1_assign_and_replicate(self, engine):
        _, kernel_a, mac_a, runtime_a = build_node(engine, "a")
        _, kernel_b, mac_b, runtime_b = build_node(engine, "b")
        mac_a.peer = runtime_b
        mac_b.peer = runtime_a
        ops = NodeOperations(runtime_a)
        task = logical()
        runtime_a.vc.add_task(task)
        runtime_b.vc.add_task(task)
        ops.assign_task(task)
        assert kernel_a.has_task("work")
        engine.run_until(1 * SEC)
        outcomes = []
        ops.replicate_task("work", "b", on_done=outcomes.append)
        engine.run_until(3 * SEC)
        assert outcomes and outcomes[0].ok
        assert kernel_a.has_task("work")  # replica: source keeps its copy
        assert kernel_b.has_task("work")

    def test_op1_migrate(self, engine):
        _, kernel_a, mac_a, runtime_a = build_node(engine, "a")
        _, kernel_b, mac_b, runtime_b = build_node(engine, "b")
        mac_a.peer = runtime_b
        mac_b.peer = runtime_a
        ops = NodeOperations(runtime_a)
        task = logical()
        runtime_a.vc.add_task(task)
        runtime_b.vc.add_task(task)
        ops.assign_task(task)
        engine.run_until(500 * MS)
        outcomes = []
        ops.migrate_task("work", "b", on_done=outcomes.append)
        engine.run_until(3 * SEC)
        assert outcomes and outcomes[0].ok
        assert not kernel_a.has_task("work")  # migration moves
        assert kernel_b.has_task("work")

    def test_op1_partition(self, engine):
        _, kernel_a, mac_a, runtime_a = build_node(engine, "a")
        _, kernel_b, mac_b, runtime_b = build_node(engine, "b")
        mac_a.peer = runtime_b
        mac_b.peer = runtime_a
        ops = NodeOperations(runtime_a)
        task = logical(wcet=10 * MS)
        runtime_a.vc.add_task(task)
        ops.assign_task(task)
        engine.run_until(200 * MS)
        ops.partition_task("work", "b", fraction=0.5)
        engine.run_until(3 * SEC)
        assert kernel_a.task("work").spec.wcet_ticks == 5 * MS
        assert kernel_b.has_task("work.part")
        assert kernel_b.task("work.part").spec.wcet_ticks == 5 * MS

    def test_op2_resource_allocation(self, engine):
        _, kernel, _, runtime = build_node(engine, "a")
        ops = NodeOperations(runtime)
        task = logical()
        runtime.vc.add_task(task)
        ops.assign_task(task)
        ops.allocate_cpu("work", budget_ticks=1 * MS, period_ticks=100 * MS)
        ops.allocate_network("work", packets=5, period_ticks=1 * SEC)
        ops.allocate_energy("work", joules=0.5, period_ticks=1 * SEC)
        assert "work" in kernel.scheduler.cpu_reservations
        assert "work" in kernel.network_reservations
        assert "work" in kernel.energy_reservations

    def test_op3_schedulability(self, engine):
        _, kernel, _, runtime = build_node(engine, "a")
        ops = NodeOperations(runtime)
        report = ops.analyze_schedulability()
        assert report.schedulable  # just the EVM housekeeping task
        # With the 1 ms / 100 ms EVM task present, 99.5 ms of demand per
        # 100 ms pushes utilization past 1.0.
        assert not ops.can_admit(TaskSpec("huge", wcet_ticks=99_500,
                                          period_ticks=100 * MS,
                                          priority=9))

    def test_op4_priority_assignment(self, engine):
        _, kernel, _, runtime = build_node(engine, "a")
        ops = NodeOperations(runtime)
        slow = logical("slow", period=500 * MS)
        fast = logical("fast", period=50 * MS)
        runtime.vc.add_task(slow)
        runtime.vc.add_task(fast)
        ops.assign_task(slow)
        ops.assign_task(fast)
        priorities = ops.reprioritize_rate_monotonic()
        assert priorities["fast"] < priorities["slow"]
        # The EVM housekeeping task (100 ms) slots between them.
        assert priorities["fast"] < priorities["EVM"] < priorities["slow"]

    def test_op5_fault_adaptation(self, engine):
        _, _, _, runtime = build_node(engine, "a")
        ops = NodeOperations(runtime)
        seen = []
        ops.on_fault(seen.append)
        ops.raise_fault({"kind": "battery_low", "node": "a"})
        assert seen == [{"kind": "battery_low", "node": "a"}]

    def test_op6_membership(self, engine):
        _, _, _, runtime = build_node(engine, "a")
        ops = NodeOperations(runtime)
        runtime.vc.admit(VcMember("b", frozenset()))
        ops.evict_member("b")
        assert "b" not in runtime.vc.members

    def test_op7_optimization(self, engine):
        from repro.evm.optimizer import AssignmentProblem

        _, _, _, runtime = build_node(engine, "a")
        ops = NodeOperations(runtime)
        problem = AssignmentProblem(
            tasks=[logical("x")],
            nodes=[VcMember("a", frozenset({"controller"}))])
        result = ops.optimize_assignment(problem)
        assert result.feasible
        assert result.placement == {"x": "a"}

    def test_op8_attestation(self, engine):
        _, _, _, runtime = build_node(engine, "a")
        ops = NodeOperations(runtime)
        digest = ops.attest(b"code image", b"nonce")
        assert ops.verify(b"code image", b"nonce", digest)
        assert not ops.verify(b"code imagX", b"nonce", digest)


class TestParametricHooks:
    def test_bytecode_reads_kernel_state(self, engine):
        _, kernel, _, runtime = build_node(engine, "a")
        ops = NodeOperations(runtime)
        register_parametric_hooks(ops)
        program = Assembler().assemble("""
            .name probe
            .host get_time
            .host node_util
            .host task_count
            host get_time
            store 0
            host node_util
            store 1
            host task_count
            store 2
            halt
        """)
        engine.run_until(5 * SEC)
        memory = [0.0] * 8
        runtime.interpreter.execute(program, memory)
        assert memory[0] == pytest.approx(5.0)  # seconds
        assert memory[1] > 0.0                  # EVM task utilization
        assert memory[2] >= 1.0

    def test_bytecode_toggles_sensor_driver(self, engine):
        """Remote runtime triggering of sensor drivers (paper sec. 4)."""
        node, _, _, runtime = build_node(engine, "a")
        ops = NodeOperations(runtime)
        register_parametric_hooks(ops)
        program = Assembler().assemble("""
            .name toggle
            .host sensor_disable
            push 0
            host sensor_disable
            halt
        """)
        runtime.interpreter.execute(program, [0.0] * 4)
        first = sorted(node.sensors)[0]
        assert not node.sensors[first].enabled
