"""Migration protocol over a loopback message fabric (no radio)."""

import pytest

from repro.evm.migration import (
    FRAGMENT_BYTES,
    MigrationManager,
    decode_value,
    encode_value,
)
from repro.rtos.task import TaskSpec, Tcb
from repro.sim.clock import MS, SEC
from repro.sim.engine import Engine


class _Fabric:
    """Delivers messages between managers with a configurable drop filter."""

    def __init__(self, engine, latency=1 * MS):
        self.engine = engine
        self.latency = latency
        self.managers = {}
        self.drop = lambda dst, kind, payload: False
        self.log = []

    def sender_for(self, src):
        def send(dst, kind, payload, size_bytes):
            self.log.append((src, dst, kind))
            if self.drop(dst, kind, payload):
                return True  # lost in flight
            self.engine.schedule(
                self.latency,
                lambda: self.managers[dst].handle_message(src, kind,
                                                          payload))
            return True

        return send


def make_pair(engine, accept=(True, ""), install_ok=(True, "")):
    fabric = _Fabric(engine)
    installed = []

    def can_accept(src, spec, caps):
        return accept

    def install(image):
        installed.append(image)
        return install_ok

    src_mgr = MigrationManager(engine, "src", fabric.sender_for("src"),
                               can_accept=lambda *a: (False, "n/a"),
                               install=lambda *a: (False, "n/a"),
                               timeout_ticks=5 * SEC)
    dst_mgr = MigrationManager(engine, "dst", fabric.sender_for("dst"),
                               can_accept=can_accept, install=install,
                               timeout_ticks=5 * SEC)
    fabric.managers = {"src": src_mgr, "dst": dst_mgr}
    return fabric, src_mgr, dst_mgr, installed


def make_image(stack_bytes=256, data=None):
    spec = TaskSpec("ctrl", wcet_ticks=2 * MS, period_ticks=250 * MS,
                    stack_bytes=stack_bytes)
    tcb = Tcb(spec)
    tcb.data.update(data or {"memory": [1.0, 2.0, 3.0], "mode": "active"})
    tcb.registers["pc"] = 17
    return tcb.snapshot_image()


class TestHappyPath:
    def test_image_transferred_and_installed(self, engine):
        fabric, src, dst, installed = make_pair(engine)
        outcomes = []
        image = make_image()
        src.initiate(image, "dst", on_done=outcomes.append)
        engine.run_until(1 * SEC)
        assert len(installed) == 1
        assert installed[0]["data"]["memory"] == [1.0, 2.0, 3.0]
        assert installed[0]["registers"]["pc"] == 17
        assert outcomes[0].ok

    def test_fragmentation(self, engine):
        fabric, src, dst, installed = make_pair(engine)
        image = make_image(stack_bytes=1024)
        src.initiate(image, "dst")
        engine.run_until(1 * SEC)
        frags = [entry for entry in fabric.log if entry[2] == "evm.mig.frag"]
        blob_len = len(encode_value(image))
        assert len(frags) == -(-blob_len // FRAGMENT_BYTES)
        assert len(installed) == 1

    def test_outcome_metrics(self, engine):
        fabric, src, dst, installed = make_pair(engine)
        outcomes = []
        src.initiate(make_image(), "dst", on_done=outcomes.append)
        engine.run_until(1 * SEC)
        outcome = outcomes[0]
        assert outcome.bytes_sent > 0
        assert outcome.fragments > 0
        assert outcome.duration_ticks > 0


class TestRejection:
    def test_capability_rejection(self, engine):
        fabric, src, dst, installed = make_pair(
            engine, accept=(False, "missing capabilities"))
        outcomes = []
        src.initiate(make_image(), "dst", on_done=outcomes.append)
        engine.run_until(1 * SEC)
        assert not outcomes[0].ok
        assert "capabilities" in outcomes[0].reason
        assert installed == []

    def test_install_failure_reported(self, engine):
        fabric, src, dst, installed = make_pair(
            engine, install_ok=(False, "admission failed"))
        outcomes = []
        src.initiate(make_image(), "dst", on_done=outcomes.append)
        engine.run_until(1 * SEC)
        assert not outcomes[0].ok
        assert "admission" in outcomes[0].reason


class TestLossRecovery:
    def test_nack_recovers_lost_fragments(self, engine):
        fabric, src, dst, installed = make_pair(engine)
        dropped = {"count": 0}

        def drop(dst_id, kind, payload):
            # Lose the first two non-final fragments once.
            if (kind == "evm.mig.frag" and dropped["count"] < 2
                    and payload["index"] < payload["total"] - 1):
                dropped["count"] += 1
                return True
            return False

        fabric.drop = drop
        outcomes = []
        src.initiate(make_image(stack_bytes=512), "dst",
                     on_done=outcomes.append)
        engine.run_until(2 * SEC)
        assert dropped["count"] == 2
        assert outcomes[0].ok
        assert len(installed) == 1
        nacks = [e for e in fabric.log if e[2] == "evm.mig.nack"]
        assert len(nacks) >= 1

    def test_timeout_when_destination_silent(self, engine):
        fabric, src, dst, installed = make_pair(engine)
        fabric.drop = lambda dst_id, kind, payload: kind == "evm.mig.request"
        outcomes = []
        src.initiate(make_image(), "dst", on_done=outcomes.append)
        engine.run_until(10 * SEC)
        assert not outcomes[0].ok
        assert outcomes[0].reason == "timeout"

    def test_corrupted_fragment_fails_attestation(self, engine):
        fabric, src, dst, installed = make_pair(engine)

        original_sender = fabric.sender_for("src")
        src.send = lambda dst_id, kind, payload, size: (
            original_sender(dst_id, kind,
                            _corrupt(kind, payload), size))
        outcomes = []
        src.initiate(make_image(), "dst", on_done=outcomes.append)
        engine.run_until(10 * SEC)
        assert not outcomes[0].ok
        assert "attestation" in outcomes[0].reason
        assert installed == []


def _corrupt(kind, payload):
    if kind == "evm.mig.frag" and payload["index"] == 0:
        chunk = bytearray(payload["chunk"])
        chunk[-1] ^= 0xFF
        payload = dict(payload)
        payload["chunk"] = bytes(chunk)
    return payload
