"""Mid-computation migration: pause the VM, move its state, resume.

The paper's task replication invokes an instance "using the same state
information, stack and register settings".  The interpreter supports
pausing on a step budget; the paused :class:`VmState` (data stack, return
stack, pc) rides the migration image codec and resumes on another
interpreter instance with bit-identical results.
"""

from hypothesis import given, settings, strategies as st

from repro.evm.bytecode import Assembler
from repro.evm.interpreter import Interpreter, VmState
from repro.evm.migration import decode_value, encode_value

LOOP_PROGRAM = """
.name accumulate
top:
    load 0
    push 1
    sub
    store 0
    load 1
    load 0
    add
    store 1
    load 0
    jz done
    jmp top
done: halt
"""


def run_uninterrupted(n):
    program = Assembler().assemble(LOOP_PROGRAM)
    memory = [float(n), 0.0]
    Interpreter().execute(program, memory)
    return memory[1]


class TestPauseResume:
    def test_pause_preserves_progress(self):
        program = Assembler().assemble(LOOP_PROGRAM)
        memory = [10.0, 0.0]
        state = Interpreter().execute(program, memory, max_steps=17,
                                      pause_on_budget=True)
        assert not state.halted
        assert state.steps == 17

    def test_resume_completes_identically(self):
        program = Assembler().assemble(LOOP_PROGRAM)
        memory = [10.0, 0.0]
        interp = Interpreter()
        state = interp.execute(program, memory, max_steps=17,
                               pause_on_budget=True)
        state = interp.execute(program, memory, state=state)
        assert state.halted
        assert memory[1] == run_uninterrupted(10)

    def test_state_migrates_through_codec(self):
        """Pause on node A, encode (stack+rstack+pc), decode on node B,
        resume on a fresh interpreter: identical final memory."""
        program = Assembler().assemble(LOOP_PROGRAM)
        memory = [25.0, 0.0]
        node_a = Interpreter()
        state = node_a.execute(program, memory, max_steps=53,
                               pause_on_budget=True)
        assert not state.halted
        image = {"vm": state.snapshot(), "memory": list(memory)}
        wire = encode_value(image)
        received = decode_value(wire)
        node_b = Interpreter()
        resumed_state = VmState.restore(received["vm"])
        resumed_memory = list(received["memory"])
        node_b.execute(program, resumed_memory, state=resumed_state)
        assert resumed_memory[1] == run_uninterrupted(25)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=40),
           st.integers(min_value=1, max_value=400))
    def test_any_pause_point_resumes_correctly(self, n, pause_at):
        """Property: pausing at ANY step boundary and resuming elsewhere
        yields the uninterrupted result."""
        program = Assembler().assemble(LOOP_PROGRAM)
        memory = [float(n), 0.0]
        interp = Interpreter()
        state = interp.execute(program, memory, max_steps=pause_at,
                               pause_on_budget=True)
        if not state.halted:
            wire = encode_value({"vm": state.snapshot(),
                                 "memory": list(memory)})
            received = decode_value(wire)
            memory = list(received["memory"])
            state = VmState.restore(received["vm"])
            Interpreter().execute(program, memory, state=state)
        assert memory[1] == run_uninterrupted(n)

    def test_paused_word_call_survives_migration(self):
        """The return stack (mid-word) also migrates."""
        interp_a = Interpreter()
        interp_a.register_word(Assembler().assemble(
            ".name slowsquare\ndup\nmul\npush 0\nadd\nret"))
        program = Assembler().assemble("""
            .word slowsquare
            push 6
            word slowsquare
            store 0
            halt
        """)
        memory = [0.0]
        # Pause inside the word (after WORD + DUP = 3 steps).
        state = interp_a.execute(program, memory, max_steps=3,
                                 pause_on_budget=True)
        assert state.routine == "slowsquare"
        assert state.rstack
        wire = encode_value({"vm": state.snapshot(), "memory": memory})
        received = decode_value(wire)
        interp_b = Interpreter()
        interp_b.register_word(Assembler().assemble(
            ".name slowsquare\ndup\nmul\npush 0\nadd\nret"))
        resumed = VmState.restore(received["vm"])
        resumed_memory = list(received["memory"])
        interp_b.execute(program, resumed_memory, state=resumed)
        assert resumed_memory[0] == 36.0
