"""Shared fixtures."""

from __future__ import annotations

import random

import pytest

from repro.hardware.node import FireFlyNode
from repro.sim.engine import Engine
from repro.sim.trace import Trace


@pytest.fixture
def engine() -> Engine:
    return Engine()


@pytest.fixture
def trace() -> Trace:
    return Trace()


@pytest.fixture
def node(engine) -> FireFlyNode:
    return FireFlyNode(engine, "n1", rng=random.Random(42))
