"""The six-node wireless hardware-in-loop rig (paper Fig. 5).

Physical layout: a gateway node (ModBus to the plant, Virtual Component
head), a sensor node wired to the LTS level transmitter, two controller
nodes (primary Ctrl-A and backup Ctrl-B), an actuator node wired to the LTS
liquid valve, and a spare controller -- six FireFly motes on RT-Link with
AM time synchronization.

Data path each 250 ms control cycle (one TDMA frame = 50 x 5 ms slots):

1. the sensor task samples the level (HIL register copy + noise), its node
   transmits in slot 2;
2. both controllers (offset 30 ms) run the second-order-filter + PID
   bytecode; the ACTIVE one publishes the valve command in its slot
   (A: slot 10, B: slot 12); the BACKUP shadows and monitors;
3. the actuator task (offset 60 ms) applies the accepted command through
   its analog output (ModBus write latency applies);
4. the gateway transmits VC control traffic (mode changes, etc.) in slot 30.

End-to-end sensing-to-actuation latency is ~65 ms, within the paper's
objective of 1/3 of the 250 ms control cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.control.compiler import SLOT_INPUT, SLOT_OUTPUT, SLOT_SETPOINT
from repro.control.controller import ControlLawConfig
from repro.evm.capsule import Capsule
from repro.evm.failover import ControllerMode, FailoverPolicy
from repro.evm.object_transfer import (
    DirectionalTransfer,
    FaultResponse,
    HealthAssessment,
)
from repro.evm.runtime import EvmRuntime, StateSharingPolicy
from repro.evm.tasks import LogicalTask
from repro.evm.virtual_component import VcMember, VirtualComponent
from repro.hardware.node import FireFlyNode
from repro.hardware.timesync import AmTimeSync, TimeSyncSpec
from repro.net.mac.rtlink import RtLinkConfig, RtLinkMac, RtLinkSchedule
from repro.net.medium import Medium
from repro.net.modbus import ModbusGatewayService
from repro.net.topology import full_mesh
from repro.plant.gas_plant import NaturalGasPlant
from repro.plant.hil import HilBridge
from repro.sim.clock import MS, SEC
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.trace import Trace

GATEWAY = "gw"
SENSOR = "s1"
CTRL_A = "ctrl_a"
CTRL_B = "ctrl_b"
CTRL_C = "ctrl_c"
ACTUATOR = "act1"

NODE_IDS = [GATEWAY, SENSOR, CTRL_A, CTRL_B, CTRL_C, ACTUATOR]

TASK_SENSOR = "lts_sensor"
TASK_CTRL = "lts_ctrl"
TASK_ACT = "lts_act"


@dataclass
class HilConfig:
    """Scenario knobs (ablated across benchmarks)."""

    seed: int = 1
    control_period_ticks: int = 250 * MS
    slots_per_frame: int = 50
    slot_ticks: int = 5 * MS
    detection_threshold: int = 3
    max_deviation: float = 5.0
    heartbeat_timeout_ticks: int = 2 * SEC
    arbitration_holdoff_ticks: int = 0
    dormant_delay_ticks: int = 200 * SEC
    state_sharing_mode: str = "active"
    sensor_noise_std: float = 0.15
    settle_sec: float = 1500.0
    plant_dt_ticks: int = 500 * MS
    trace_medium: bool = False
    link_prr: float | None = None  # per-frame reception ratio (None = ideal)


class HilRig:
    """Builds and owns the full stack for one scenario run.

    Accepts either a bare :class:`HilConfig` or a declarative
    :class:`repro.scenarios.spec.Scenario` (positionally or via the
    ``scenario`` keyword).  With a scenario, the rig derives its config
    from the spec (the scenario seed wins) and arms a
    :class:`~repro.scenarios.injector.FaultInjector` so the fault
    schedule fires as engine events during the run -- experiments,
    examples, integration tests, and campaign sweeps all drive this one
    entry point.
    """

    def __init__(self, config: HilConfig | None = None, *,
                 scenario=None) -> None:
        if scenario is None and config is not None:
            # Deferred import (as below): repro.scenarios.spec imports
            # this module, so it cannot be imported at module load.
            from repro.scenarios.spec import Scenario

            if isinstance(config, Scenario):
                scenario, config = config, None
        if scenario is not None:
            if config is not None:
                raise ValueError("pass either a config or a scenario")
            config = scenario.build_config()
        self.scenario = scenario
        self.config = config or HilConfig()
        self.engine = Engine()
        self.trace = Trace()
        self.rng = RngRegistry(self.config.seed)
        self._build_plant()
        self._build_network()
        self._build_vc()
        self._build_runtimes()
        self._wire_io()
        self.injector = None
        if scenario is not None:
            from repro.scenarios.injector import FaultInjector

            self.injector = FaultInjector(self, scenario)
            self.injector.arm()
        self._started = False

    # ------------------------------------------------------------------
    # Plant
    # ------------------------------------------------------------------
    def _build_plant(self) -> None:
        cfg = self.config
        self.plant = NaturalGasPlant()
        self.plant.settle(cfg.settle_sec)
        # The wireless Virtual Component takes over the LTS level loop;
        # the remaining seven loops stay on plant-side regulators.
        self.plant.enable_local_control(exclude=("lts_level",))
        self.bridge = HilBridge(self.engine, self.plant,
                                plant_dt_ticks=cfg.plant_dt_ticks)
        self.loop = self.plant.loop("lts_level")

    # ------------------------------------------------------------------
    # Network
    # ------------------------------------------------------------------
    def _build_network(self) -> None:
        cfg = self.config
        self.topology = full_mesh(NODE_IDS, spacing_m=12.0)
        link_model = None
        if cfg.link_prr is not None:
            from repro.net.link_quality import FixedPrr

            link_model = FixedPrr(cfg.link_prr)
        self.medium = Medium(
            self.engine, self.topology, link_model=link_model,
            rng=self.rng.stream("medium"),
            trace=self.trace if cfg.trace_medium else None)
        self.sync = AmTimeSync(self.engine, self.rng.stream("timesync"),
                               TimeSyncSpec())
        self.mac_config = RtLinkConfig(slots_per_frame=cfg.slots_per_frame,
                                       slot_ticks=cfg.slot_ticks)
        self.schedule = RtLinkSchedule(self.mac_config)
        listeners = {
            SENSOR: {CTRL_A, CTRL_B, CTRL_C, GATEWAY},
            CTRL_A: {ACTUATOR, CTRL_B, CTRL_C, GATEWAY},
            CTRL_B: {ACTUATOR, CTRL_A, CTRL_C, GATEWAY},
            # The spare is a full peer: its replies (migration accepts,
            # future shadow traffic) must reach the other controllers and
            # the actuator.
            CTRL_C: {ACTUATOR, CTRL_A, CTRL_B, GATEWAY},
            ACTUATOR: {GATEWAY},
            GATEWAY: {SENSOR, CTRL_A, CTRL_B, CTRL_C, ACTUATOR},
        }
        # Slot phases as fractions of the frame, so alternative control
        # periods (and hence frame lengths) keep the sense->control->act
        # pipeline ordering: sensor early, controllers mid, actuator after,
        # gateway late.
        fractions = {SENSOR: 0.04, CTRL_A: 0.20, CTRL_B: 0.24,
                     CTRL_C: 0.28, ACTUATOR: 0.40, GATEWAY: 0.60}
        used: set[int] = set()
        for node_id, fraction in fractions.items():
            slot = min(cfg.slots_per_frame - 1,
                       max(0, int(round(fraction * cfg.slots_per_frame))))
            while slot in used:
                slot = (slot + 1) % cfg.slots_per_frame
            used.add(slot)
            self.schedule.assign(slot, node_id, listeners[node_id])
        self.nodes: dict[str, FireFlyNode] = {}
        self.macs: dict[str, RtLinkMac] = {}
        for node_id in NODE_IDS:
            node = FireFlyNode(
                self.engine, node_id,
                position=self.topology.position(node_id),
                drift_ppm=10.0,
                rng=self.rng.stream(f"node:{node_id}"))
            node.join_timesync(self.sync)
            port = self.medium.attach(node)
            mac = RtLinkMac(self.engine, node, port, self.schedule,
                            queue_capacity=32, trace=None)
            self.nodes[node_id] = node
            self.macs[node_id] = mac

    # ------------------------------------------------------------------
    # Virtual Component
    # ------------------------------------------------------------------
    def _build_vc(self) -> None:
        cfg = self.config
        self.vc = VirtualComponent("lts-level-vc")
        capabilities = {
            GATEWAY: frozenset({"gateway", "head"}),
            SENSOR: frozenset({"sensor:lts_level"}),
            CTRL_A: frozenset({"controller"}),
            CTRL_B: frozenset({"controller"}),
            CTRL_C: frozenset({"controller"}),
            ACTUATOR: frozenset({"actuate:lts_valve"}),
        }
        self.capabilities = capabilities
        for node_id in NODE_IDS:
            self.vc.admit(VcMember(node_id, capabilities[node_id],
                                   cpu_capacity=0.7))
        control_config = ControlLawConfig(
            kp=self.loop.config.kp, ki=self.loop.config.ki,
            kd=self.loop.config.kd,
            dt_sec=cfg.control_period_ticks / SEC,
            setpoint=self.loop.config.setpoint,
            filter_cutoff_hz=self.loop.config.filter_cutoff_hz,
            out_min=self.loop.config.out_min,
            out_max=self.loop.config.out_max,
            integral_min=self.loop.config.integral_min,
            integral_max=self.loop.config.integral_max)
        self.control_config = control_config
        nominal = self.loop.nominal_output
        level0 = self.plant.flowsheet.read("lts_level_pct")
        ctrl_memory = control_config.initial_memory(level0, nominal)
        period = cfg.control_period_ticks
        self.sensor_program = _passthrough_program("lts_sensor_law")
        self.ctrl_program = control_config.compile("lts_ctrl_law")
        self.act_program = _passthrough_program("lts_act_law")
        self.vc.add_task(LogicalTask(
            name=TASK_SENSOR, program_name="lts_sensor_law",
            period_ticks=period, wcet_ticks=2 * MS, priority=5,
            memory_slots=16,
            required_capabilities=frozenset({"sensor:lts_level"}),
            replicas=1))
        self.vc.add_task(LogicalTask(
            name=TASK_CTRL, program_name="lts_ctrl_law",
            period_ticks=period, wcet_ticks=2 * MS, priority=5,
            memory_slots=16, initial_memory=ctrl_memory,
            required_capabilities=frozenset({"controller"}),
            replicas=2))
        self.vc.add_task(LogicalTask(
            name=TASK_ACT, program_name="lts_act_law",
            period_ticks=period, wcet_ticks=2 * MS, priority=5,
            memory_slots=16,
            required_capabilities=frozenset({"actuate:lts_valve"}),
            replicas=1))
        self.vc.assign(TASK_SENSOR, SENSOR)
        self.vc.assign(TASK_CTRL, CTRL_A, backups=[CTRL_B])
        self.vc.assign(TASK_ACT, ACTUATOR)
        # Object transfers: sensor -> controller -> actuator (Fig. 6(a)).
        self.vc.add_transfer(DirectionalTransfer(
            producer=TASK_SENSOR, consumer=TASK_CTRL,
            slots=((SLOT_OUTPUT, SLOT_INPUT),)))
        self.vc.add_transfer(DirectionalTransfer(
            producer=TASK_CTRL, consumer=TASK_ACT,
            slots=((SLOT_OUTPUT, SLOT_INPUT),)))
        # Health assessment: each controller watches the other (OS-1's
        # trigger-backup response).
        for monitor, subject in ((CTRL_B, CTRL_A), (CTRL_A, CTRL_B)):
            self.vc.add_transfer(HealthAssessment(
                monitor=monitor, subject=subject, task=TASK_CTRL,
                response=FaultResponse.TRIGGER_BACKUP,
                plausible_min=-1.0, plausible_max=101.0,
                max_deviation=cfg.max_deviation,
                threshold=cfg.detection_threshold,
                heartbeat_timeout_ticks=cfg.heartbeat_timeout_ticks))

    # ------------------------------------------------------------------
    # Kernels + runtimes
    # ------------------------------------------------------------------
    def _build_runtimes(self) -> None:
        from repro.rtos.kernel import NanoRK

        cfg = self.config
        self.kernels: dict[str, NanoRK] = {}
        self.runtimes: dict[str, EvmRuntime] = {}
        for node_id in NODE_IDS:
            kernel = NanoRK(self.engine, self.nodes[node_id],
                            trace=self.trace)
            kernel.attach_mac(self.macs[node_id])
            self.kernels[node_id] = kernel
            runtime = EvmRuntime(
                kernel, self.vc,
                capabilities=self.capabilities[node_id],
                trace=self.trace,
                failover_policy=FailoverPolicy(
                    detection_threshold=cfg.detection_threshold,
                    demote_mode=ControllerMode.INDICATOR,
                    dormant_delay_ticks=cfg.dormant_delay_ticks),
                state_sharing=StateSharingPolicy(
                    mode=cfg.state_sharing_mode),
                arbitration_holdoff_ticks=cfg.arbitration_holdoff_ticks)
            self.runtimes[node_id] = runtime
        # The gateway fronts its MAC with the ModBus service; EVM frames
        # fall through to the runtime.
        self.gateway_service = ModbusGatewayService(
            self.engine, self.macs[GATEWAY], self.bridge.image)
        self.gateway_service.set_fallthrough(self.runtimes[GATEWAY].deliver)
        # Distribute code capsules and instantiate each node's share.
        capsules = [Capsule.from_program(p, version=1)
                    for p in (self.sensor_program, self.ctrl_program,
                              self.act_program)]
        for node_id in NODE_IDS:
            for capsule in capsules:
                self.runtimes[node_id].install_capsule(capsule)
        self._stagger_offsets()
        for node_id in NODE_IDS:
            self.runtimes[node_id].configure_from_vc(head_id=GATEWAY)

    def _stagger_offsets(self) -> None:
        """Phase task releases inside the frame: sense -> control -> act.

        Offsets scale with the control period (12 % and 24 %), keeping the
        sensing-to-actuation pipeline inside a third of the cycle at any
        rate.  Applied after hosting (in :meth:`_wire_io`) by restarting
        each kernel task's release chain at its offset.
        """
        period = self.config.control_period_ticks
        self._task_offsets = {TASK_SENSOR: 0,
                              TASK_CTRL: int(period * 0.12),
                              TASK_ACT: int(period * 0.24)}

    # ------------------------------------------------------------------
    # I/O wiring
    # ------------------------------------------------------------------
    def _wire_io(self) -> None:
        cfg = self.config
        noise_rng = self.rng.stream("sensor-noise")
        level_address = self.bridge.sensor_address("lts_level_pct")
        valve_address = self.bridge.actuator_address("lts_liquid_valve_pct")
        # Sensing-to-actuation latency instrumentation (claim C1).
        self.io_latencies: list[int] = []
        self._last_sample_time: int | None = None

        def read_level() -> float:
            self._last_sample_time = self.engine.now
            value = self.bridge.image.read(level_address)
            if cfg.sensor_noise_std > 0:
                value += noise_rng.gauss(0.0, cfg.sensor_noise_std)
            return value

        def write_valve(value: float) -> None:
            if self._last_sample_time is not None:
                self.io_latencies.append(
                    self.engine.now - self._last_sample_time)
            self.bridge.link.write_async(valve_address, value)

        sensor_rt = self.runtimes[SENSOR]
        sensor_rt.bind_input(TASK_SENSOR, SLOT_INPUT, read_level)
        act_rt = self.runtimes[ACTUATOR]
        act_rt.bind_output(TASK_ACT, SLOT_OUTPUT, write_valve)
        # Apply the release offsets by re-phasing the kernel tasks.
        for node_id, runtime in self.runtimes.items():
            for task_name, offset in self._task_offsets.items():
                if runtime.kernel.has_task(task_name) and offset > 0:
                    self._rephase(runtime.kernel, task_name, offset)

    def _rephase(self, kernel, task_name: str, offset_ticks: int) -> None:
        """Restart a periodic task's release chain at ``offset_ticks``."""
        kernel.scheduler.rephase_release(task_name, offset_ticks)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.sync.start()
        for mac in self.macs.values():
            mac.start()
        self.bridge.start()

    def run_for_seconds(self, seconds: float) -> None:
        self.start()
        self.engine.run_until(self.engine.now + int(seconds * SEC))

    # ------------------------------------------------------------------
    # Scenario controls
    # ------------------------------------------------------------------
    def inject_controller_fault(self, value_pct: float = 75.0) -> None:
        """Wedge the ACTIVE controller's published valve output."""
        primary, _ = self.runtimes[CTRL_A].task_primaries[TASK_CTRL]
        self.runtimes[primary].inject_output_fault(TASK_CTRL, SLOT_OUTPUT,
                                                   value_pct)

    def crash_node(self, node_id: str) -> None:
        self.kernels[node_id].crash()

    def active_controller(self) -> str:
        """The actuator's current view of who commands the valve."""
        return self.runtimes[ACTUATOR].task_primaries[TASK_CTRL][0]

    def commanded_setpoint(self) -> float:
        """The setpoint the active controller is regulating to right now
        (parametric retunes move it mid-run; control-quality metrics must
        score against the commanded value, not the pre-run default)."""
        instance = self.runtimes[self.active_controller()] \
            .instances.get(TASK_CTRL)
        if instance is not None and len(instance.memory) > SLOT_SETPOINT:
            return instance.memory[SLOT_SETPOINT]
        return self.loop.config.setpoint

    def controller_mode(self, node_id: str) -> ControllerMode:
        return self.runtimes[node_id].instances[TASK_CTRL].mode

    def read(self, sensor: str) -> float:
        return self.plant.flowsheet.read(sensor)


def _passthrough_program(name: str):
    from repro.control.compiler import compile_passthrough

    return compile_passthrough(name, gain=1.0, offset=0.0)
