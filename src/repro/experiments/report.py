"""Result export: figure series and sweep tables as CSV artifacts.

Downstream users replot the reproduced figures from these files rather
than scraping benchmark stdout.  Writers are plain-stdlib ``csv`` and take
the result objects the experiment harnesses return.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.experiments.fig6 import Fig6Result
from repro.experiments.mac_comparison import MacTrialResult


def write_fig6_series(result: Fig6Result, path: str | Path) -> Path:
    """The four Fig. 6(b) series + valve + active controller, one row per
    sample."""
    path = Path(path)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time_sec", "lts_level_pct", "sep_liq_flow",
                         "lts_liq_flow", "tower_feed_flow", "valve_pct",
                         "active_controller"])
        rows = zip(result.times_sec, result.lts_level_pct,
                   result.sep_liq_flow, result.lts_liq_flow,
                   result.tower_feed_flow, result.valve_pct,
                   result.active_controller)
        for row in rows:
            writer.writerow(row)
    return path


def write_fig6_events(result: Fig6Result, path: str | Path) -> Path:
    """The extracted T1/T2/T3 event times and shape scalars."""
    path = Path(path)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["quantity", "value"])
        writer.writerow(["detection_time_sec", result.detection_time_sec])
        writer.writerow(["failover_time_sec", result.failover_time_sec])
        writer.writerow(["dormant_time_sec", result.dormant_time_sec])
        writer.writerow(["pre_fault_level", result.pre_fault_level])
        writer.writerow(["min_level", result.min_level])
        writer.writerow(["final_level", result.final_level])
        writer.writerow(["pre_fault_tower_flow",
                         result.pre_fault_tower_flow])
        writer.writerow(["peak_tower_flow", result.peak_tower_flow])
        writer.writerow(["final_tower_flow", result.final_tower_flow])
    return path


def write_mac_sweep(results: dict[str, list[MacTrialResult]],
                    path: str | Path) -> Path:
    """A lifetime/latency sweep table, one row per (protocol, point)."""
    path = Path(path)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["protocol", "duty_target_pct", "event_period_sec",
                         "lifetime_years", "avg_current_ma",
                         "radio_duty_pct", "delivery_ratio",
                         "mean_latency_ms", "collisions"])
        for protocol, rows in sorted(results.items()):
            for r in rows:
                writer.writerow([
                    r.protocol, r.duty_target_pct, r.event_period_sec,
                    f"{r.lifetime_years:.4f}", f"{r.avg_current_ma:.5f}",
                    f"{r.radio_duty_pct:.3f}", f"{r.delivery_ratio:.4f}",
                    f"{r.mean_latency_ms:.2f}", r.collisions,
                ])
    return path


def read_csv(path: str | Path) -> list[dict[str, str]]:
    """Load a written artifact back (round-trip checks, notebooks)."""
    with open(path, newline="") as handle:
        return list(csv.DictReader(handle))
