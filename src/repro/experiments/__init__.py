"""Experiment harnesses.

Scenario builders shared by the examples, the integration tests and the
benchmarks.  Each maps to an entry of DESIGN.md's per-experiment index:

- :mod:`~repro.experiments.hil` -- the six-node wireless HIL rig of Fig. 5
  (gateway + sensor + two controllers + actuator + spare over RT-Link,
  plant behind a ModBus gateway);
- :mod:`~repro.experiments.fig6` -- the headline failover transient
  (Fig. 6(b)) and the primary/backup configuration (Fig. 6(a));
- :mod:`~repro.experiments.mac_comparison` -- RT-Link vs B-MAC vs S-MAC
  lifetime/latency (the paper's section 2.1 claims);
- :mod:`~repro.experiments.fig1` -- Virtual Component composition and
  BQP/greedy assignment (Fig. 1);
- :mod:`~repro.experiments.metrics` -- series and latency utilities.
"""

from repro.experiments.fig6 import Fig6Config, Fig6Result, run_fig6
from repro.experiments.hil import HilConfig, HilRig

__all__ = [
    "HilConfig",
    "HilRig",
    "Fig6Config",
    "Fig6Result",
    "run_fig6",
]
