"""Fig. 1: Virtual Components over a wireless sensor-actuator-controller grid.

The figure shows (a) a WSAC network, (b) control algorithms assigned to
controllers mapped onto physical nodes, and (c) three Virtual Components
composed of several network elements each.  This experiment reproduces that
composition computationally: a 9-node network hosts three VCs (process
control, conveyor interlock, monitoring), each with its own logical tasks;
the BQP optimizer places tasks onto nodes against capability, capacity and
communication costs, and the greedy baseline provides the comparison for
the degradation claim (C3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.evm.optimizer import (
    AssignmentProblem,
    AssignmentResult,
    bqp_assign,
    greedy_assign,
)
from repro.evm.tasks import LogicalTask
from repro.evm.virtual_component import VcMember, VirtualComponent
from repro.net.topology import Topology, grid
from repro.sim.clock import MS


@dataclass
class Fig1Result:
    """Composition outcome for the three VCs."""

    components: dict[str, VirtualComponent]
    bqp: dict[str, AssignmentResult]
    greedy: dict[str, AssignmentResult]
    topology: Topology

    def describe(self) -> str:
        lines = ["Fig. 1: three Virtual Components over one 9-node WSAC grid"]
        for name, vc in sorted(self.components.items()):
            result = self.bqp[name]
            lines.append(f"  VC {name}: cost(bqp)={result.cost:.2f} "
                         f"cost(greedy)={self.greedy[name].cost:.2f}")
            for task, node in sorted(result.placement.items()):
                lines.append(f"    {task} -> {node}")
        return "\n".join(lines)


def _hop_table(topology: Topology) -> dict[tuple[str, str], int]:
    hops = {}
    ids = topology.node_ids
    for i, a in enumerate(ids):
        for b in ids[i + 1:]:
            hops[(a, b)] = len(topology.shortest_path(a, b)) - 1
    return hops


def build_fig1_problem(seed: int = 3) -> Fig1Result:
    """Build the 3-VC composition and solve placements both ways."""
    topology = grid(3, 3, spacing_m=10.0)
    rng = random.Random(seed)
    node_ids = topology.node_ids
    capabilities = {}
    for i, node_id in enumerate(node_ids):
        caps = {"controller"}
        if i % 3 == 0:
            caps.add("sensor:temp")
        if i % 3 == 1:
            caps.add("sensor:flow")
        if i % 2 == 0:
            caps.add("actuate:valve")
        capabilities[node_id] = frozenset(caps)
    hops = _hop_table(topology)

    vcs: dict[str, VirtualComponent] = {}
    bqp_results: dict[str, AssignmentResult] = {}
    greedy_results: dict[str, AssignmentResult] = {}
    specs = {
        "vc-process": [
            ("pid_a", frozenset({"controller"}), 2),
            ("pid_b", frozenset({"controller"}), 2),
            ("flow_sense", frozenset({"sensor:flow"}), 1),
            ("valve_drive", frozenset({"actuate:valve"}), 1),
        ],
        "vc-interlock": [
            ("interlock", frozenset({"controller"}), 2),
            ("temp_sense", frozenset({"sensor:temp"}), 1),
        ],
        "vc-monitoring": [
            ("aggregator", frozenset({"controller"}), 1),
            ("temp_log", frozenset({"sensor:temp"}), 1),
            ("flow_log", frozenset({"sensor:flow"}), 1),
        ],
    }
    for vc_name, task_specs in specs.items():
        vc = VirtualComponent(vc_name)
        members = []
        for node_id in node_ids:
            member = VcMember(node_id, capabilities[node_id],
                              cpu_capacity=0.5)
            vc.admit(member)
            members.append(member)
        tasks = []
        traffic = {}
        for task_name, caps, replicas in task_specs:
            task = LogicalTask(
                name=f"{vc_name}.{task_name}",
                program_name="law", period_ticks=250 * MS,
                wcet_ticks=(5 + rng.randrange(10)) * MS,
                required_capabilities=caps, replicas=replicas)
            vc.add_task(task)
            tasks.append(task)
        for i, a in enumerate(tasks):
            for b in tasks[i + 1:]:
                traffic[(a.name, b.name)] = 1.0 + rng.random() * 3.0
        problem = AssignmentProblem(tasks=tasks, nodes=members,
                                    traffic=traffic, hops=hops)
        bqp_results[vc_name] = bqp_assign(problem)
        greedy_results[vc_name] = greedy_assign(problem)
        for task in tasks:
            placement = bqp_results[vc_name].placement
            if task.name in placement:
                vc.assign(task.name, placement[task.name])
        vcs[vc_name] = vc
    return Fig1Result(components=vcs, bqp=bqp_results,
                      greedy=greedy_results, topology=topology)
