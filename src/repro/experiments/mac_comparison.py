"""MAC protocol comparison: RT-Link vs B-MAC vs S-MAC.

Reproduces the section 2.1 claims: RT-Link's scheduled, hardware-synchronized
slots outperform low-power-listen CSMA (B-MAC) and loosely-synchronized duty
cycling (S-MAC) on battery lifetime across duty cycles and event rates, and
FireFly nodes project multi-year lifetimes at low slot duty.

Each trial runs N member nodes reporting to a sink at a given event rate for
a simulated window, then projects battery lifetime from the measured average
current (radio states + deep-sleep MCU floor).  Absolute lifetimes depend on
the radio/battery constants (documented in EXPERIMENTS.md); the *ordering*
and its persistence across the sweep are the reproduced result.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.metrics import project_node_energy
from repro.hardware.node import FireFlyNode
from repro.hardware.timesync import AmTimeSync, TimeSyncSpec
from repro.net.mac.base import MacProtocol
from repro.net.mac.bmac import BMac, BMacConfig
from repro.net.mac.rtlink import RtLinkConfig, RtLinkMac, RtLinkSchedule
from repro.net.mac.smac import SMac, SMacConfig
from repro.net.medium import Medium
from repro.net.packet import Packet
from repro.net.topology import full_mesh
from repro.sim.clock import MS, SEC
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry

PAYLOAD_BYTES = 24


@dataclass
class MacTrialResult:
    """Aggregate outcome of one (protocol, duty, rate) trial."""

    protocol: str
    duty_target_pct: float
    event_period_sec: float
    lifetime_years: float
    avg_current_ma: float
    radio_duty_pct: float
    delivery_ratio: float
    mean_latency_ms: float
    collisions: int


def run_mac_trial(protocol: str, duty_pct: float = 5.0,
                  event_period_sec: float = 2.0, n_members: int = 5,
                  duration_sec: float = 120.0, seed: int = 7,
                  ) -> MacTrialResult:
    """One trial; ``protocol`` in {"rtlink", "bmac", "smac"}."""
    engine = Engine()
    rng = RngRegistry(seed)
    node_ids = ["sink"] + [f"m{i}" for i in range(n_members)]
    topology = full_mesh(node_ids, spacing_m=10.0)
    medium = Medium(engine, topology, rng=rng.stream("medium"))
    sync = AmTimeSync(engine, rng.stream("sync"), TimeSyncSpec())
    nodes: dict[str, FireFlyNode] = {}
    for node_id in node_ids:
        node = FireFlyNode(engine, node_id,
                           position=topology.position(node_id),
                           rng=rng.stream(f"node:{node_id}"),
                           with_sensors=False)
        node.join_timesync(sync)
        nodes[node_id] = node
    macs = _build_macs(protocol, engine, nodes, medium, duty_pct, node_ids)
    received: list[int] = []
    macs["sink"].set_receive_handler(
        lambda packet: received.append(engine.now - packet.created_at))
    sent_counter = {"n": 0}

    def make_sender(member: str):
        period_ticks = int(event_period_sec * SEC)
        jitter = rng.stream(f"traffic:{member}")

        def send() -> None:
            packet = Packet(src=member, dst="sink", kind="report",
                            size_bytes=PAYLOAD_BYTES, created_at=engine.now)
            if macs[member].send(packet):
                sent_counter["n"] += 1
            engine.post(period_ticks + jitter.randrange(0, 20 * MS),
                        send)

        engine.post(jitter.randrange(0, period_ticks), send)

    for member in node_ids[1:]:
        make_sender(member)
    sync.start()
    for mac in macs.values():
        mac.start()
    engine.run_until(int(duration_sec * SEC))

    # Member-node energy: radio profile + deep-sleep MCU floor.
    lifetimes = []
    currents = []
    duties = []
    for member in node_ids[1:]:
        current_ma, lifetime, duty = project_node_energy(
            nodes[member], engine.now)
        currents.append(current_ma)
        lifetimes.append(lifetime)
        duties.append(duty)
    delivered = len(received)
    sent = max(1, sent_counter["n"])
    return MacTrialResult(
        protocol=protocol,
        duty_target_pct=duty_pct,
        event_period_sec=event_period_sec,
        lifetime_years=sum(lifetimes) / len(lifetimes),
        avg_current_ma=sum(currents) / len(currents),
        radio_duty_pct=sum(duties) / len(duties),
        delivery_ratio=min(1.0, delivered / sent),
        mean_latency_ms=(sum(received) / len(received) / MS
                         if received else float("inf")),
        collisions=medium.stats.collisions,
    )


def _build_macs(protocol: str, engine: Engine,
                nodes: dict[str, FireFlyNode], medium: Medium,
                duty_pct: float, node_ids: list[str],
                ) -> dict[str, MacProtocol]:
    members = node_ids[1:]
    if protocol == "rtlink":
        # Duty ~ one 5 ms TX slot per member per frame; frame length set
        # so slot/frame matches the duty target.  The sink listens in all
        # member slots.
        slot_ticks = 5 * MS
        slots = max(len(members) + 1,
                    min(64, int(round(100.0 / max(0.5, duty_pct)))))
        config = RtLinkConfig(slots_per_frame=slots, slot_ticks=slot_ticks)
        schedule = RtLinkSchedule(config)
        for i, member in enumerate(members):
            schedule.assign(i, member, {"sink"})
        return {nid: RtLinkMac(engine, nodes[nid], medium.attach(nodes[nid]),
                               schedule) for nid in node_ids}
    if protocol == "bmac":
        # Duty ~ CCA sample / check interval.
        sample = 2500  # ticks
        check = int(sample * 100.0 / max(0.5, duty_pct))
        config = BMacConfig(check_interval_ticks=check)
        return {nid: BMac(engine, nodes[nid], medium.attach(nodes[nid]),
                          config) for nid in node_ids}
    if protocol == "smac":
        frame = 1000 * MS
        listen = int(frame * duty_pct / 100.0)
        config = SMacConfig(frame_ticks=frame,
                            listen_ticks=max(20 * MS, listen))
        return {nid: SMac(engine, nodes[nid], medium.attach(nodes[nid]),
                          config) for nid in node_ids}
    raise ValueError(f"unknown protocol {protocol!r}")


def lifetime_sweep(duties=(1.0, 2.0, 5.0, 10.0, 25.0),
                   event_period_sec: float = 2.0,
                   duration_sec: float = 60.0,
                   ) -> dict[str, list[MacTrialResult]]:
    """Lifetime vs duty cycle for all three protocols (claim C2)."""
    results: dict[str, list[MacTrialResult]] = {}
    for protocol in ("rtlink", "bmac", "smac"):
        results[protocol] = [
            run_mac_trial(protocol, duty_pct=duty,
                          event_period_sec=event_period_sec,
                          duration_sec=duration_sec)
            for duty in duties
        ]
    return results


def rate_sweep(event_periods=(0.5, 1.0, 2.0, 5.0, 10.0),
               duty_pct: float = 5.0, duration_sec: float = 60.0,
               ) -> dict[str, list[MacTrialResult]]:
    """Lifetime vs event rate for all three protocols (claim C2)."""
    results: dict[str, list[MacTrialResult]] = {}
    for protocol in ("rtlink", "bmac", "smac"):
        results[protocol] = [
            run_mac_trial(protocol, duty_pct=duty_pct,
                          event_period_sec=period,
                          duration_sec=duration_sec)
            for period in event_periods
        ]
    return results
