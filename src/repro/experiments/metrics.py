"""Series, latency and energy utilities shared by benches and tests."""

from __future__ import annotations

from repro.sim.clock import MS

MCU_SLEEP_CURRENT_A = 10e-6
"""Deep-sleep MCU floor added when projecting member-node lifetimes."""


def project_node_energy(node, now_ticks: int,
                        mcu_sleep_current_a: float = MCU_SLEEP_CURRENT_A,
                        ) -> tuple[float, float, float]:
    """Finalize one node's energy accounting at the end of a trial.

    Applies the deep-sleep MCU draw up to ``now_ticks``, settles the
    radio's state accounting, and returns ``(avg_current_ma,
    lifetime_years, radio_duty_pct)`` -- the projection every MAC
    lifetime study (claim C2) reports.  One implementation so the
    six-node comparison and the wide-grid studies can never diverge.
    """
    node.battery.draw(mcu_sleep_current_a, now_ticks)
    node.radio._settle()
    return (node.battery.average_current_a() * 1e3,
            node.battery.projected_lifetime_years(),
            node.radio.duty_cycle() * 100.0)


def mean(values: list[float]) -> float:
    if not values:
        return 0.0
    return sum(values) / len(values)


def percentile(values: list[float], p: float) -> float:
    """Nearest-rank percentile; p in [0, 100]."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1,
                      int(round(p / 100.0 * (len(ordered) - 1)))))
    return ordered[rank]


def ticks_to_ms(values: list[int]) -> list[float]:
    return [v / MS for v in values]


def settling_time_sec(times_sec: list[float], series: list[float],
                      target: float, tolerance: float,
                      after_sec: float = 0.0) -> float | None:
    """First time after ``after_sec`` the series enters and stays within
    ``target +/- tolerance``.  None if it never settles."""
    candidate = None
    for t, value in zip(times_sec, series):
        if t < after_sec:
            continue
        if abs(value - target) <= tolerance:
            if candidate is None:
                candidate = t
        else:
            candidate = None
    return candidate


def first_crossing_sec(times_sec: list[float], series: list[float],
                       threshold: float, direction: str = "below",
                       after_sec: float = 0.0) -> float | None:
    """First time the series crosses ``threshold`` in ``direction``."""
    for t, value in zip(times_sec, series):
        if t < after_sec:
            continue
        if direction == "below" and value < threshold:
            return t
        if direction == "above" and value > threshold:
            return t
    return None


def max_in_window(times_sec: list[float], series: list[float],
                  start_sec: float, end_sec: float) -> float:
    values = [v for t, v in zip(times_sec, series)
              if start_sec <= t <= end_sec]
    return max(values) if values else float("-inf")


def min_in_window(times_sec: list[float], series: list[float],
                  start_sec: float, end_sec: float) -> float:
    values = [v for t, v in zip(times_sec, series)
              if start_sec <= t <= end_sec]
    return min(values) if values else float("inf")
