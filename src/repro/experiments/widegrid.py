"""Wide-grid scale-out experiments: 100-256 node random geometric meshes.

The paper demonstrates EVM failover on a six-node testbed; the ROADMAP's
scale-out direction asks whether the same machinery holds up on grids two
orders of magnitude wider.  This driver reproduces the repo's headline
experiment shapes on :func:`repro.net.topology.random_geometric` layouts:

- :func:`run_widegrid_trial` -- a **fig6-style failover trial**: a Virtual
  Component control cluster (sensor -> primary/backup controller ->
  actuator) placed in the densest neighborhood of the mesh, every node
  running RT-Link over implicit-tree routing toward the cluster head, the
  rest of the grid generating report traffic that funnels to the head.
  Optionally crashes the primary controller mid-run (``NodeCrash``
  semantics: kernel halted, radio off) and records the
  detection/failover timeline alongside network-health counters.
- :func:`run_widegrid_placement` -- a **fig1-style placement study**: a
  capability-annotated wide grid, BQP task assignment versus the greedy
  baseline, reporting both costs (the degradation claim at scale).
- :func:`run_widegrid_mac_lifetime` -- the **MAC lifetime study** on a
  wide mesh: reporters over tree routing on RT-Link / B-MAC / S-MAC,
  projecting battery lifetime from measured average current.

All trials are deterministic in their config (every stochastic draw comes
from the config seed), so they golden-digest cleanly and campaign records
reproduce bit-identically.  :func:`run_widegrid_campaign` fans a mixed
list of trial specs across the scenario subsystem's
:class:`~repro.scenarios.runner.CampaignRunner` worker pool.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.control.compiler import SLOT_INPUT, SLOT_OUTPUT, compile_passthrough
from repro.evm.capsule import Capsule
from repro.evm.failover import FailoverPolicy
from repro.evm.object_transfer import (
    DirectionalTransfer,
    FaultResponse,
    HealthAssessment,
)
from repro.evm.optimizer import (
    AssignmentProblem,
    bqp_assign,
    greedy_assign,
)
from repro.evm.runtime import EvmRuntime, FloodDiscipline
from repro.evm.tasks import LogicalTask
from repro.evm.virtual_component import VcMember, VirtualComponent
from repro.experiments.metrics import project_node_energy
from repro.hardware.node import FireFlyNode
from repro.hardware.timesync import AmTimeSync, TimeSyncSpec
from repro.net.mac.bmac import BMac, BMacConfig
from repro.net.mac.rtlink import RtLinkConfig, RtLinkMac, RtLinkSchedule
from repro.net.mac.smac import SMac, SMacConfig
from repro.net.medium import Medium
from repro.net.packet import Packet
from repro.net.routing import RoutedMacAdapter, build_tree_tables
from repro.net.topology import Topology, random_geometric_connected
from repro.rtos.kernel import NanoRK
from repro.sim.clock import MS, SEC
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.trace import Trace

TASK_SENSOR = "grid_sensor"
TASK_CTRL = "grid_ctrl"
TASK_ACT = "grid_act"

SENSOR_VALUE = 21.0
CTRL_GAIN = 2.0

REPORT_BYTES = 24

MIN_NODES = 5
"""The role cluster needs head + sensor + two controllers + actuator."""

FLOOD_SUPPRESS_AUTO_NODES = 512
"""Flood suppression switches on automatically at this grid size.

Below it (every golden workload runs at 256 nodes or fewer) trials keep
the classic relay-at-once flood, bit for bit; at and above it the
broadcast storm dominates the trial's wall clock and counter-based
suppression is the default."""


@dataclass
class WideGridConfig:
    """One wide-grid trial, fully determined (picklable, JSON-able)."""

    n_nodes: int = 100
    area_m: float = 150.0
    radio_range_m: float = 25.0
    seed: int = 1
    duration_sec: float = 30.0
    report_period_sec: float = 10.0
    slot_ticks: int = 5 * MS
    # 0 = derived: two TDMA frames, floored at 1 s.
    control_period_ticks: int = 0
    # 0 = derived: five control periods.
    heartbeat_timeout_ticks: int = 0
    detection_threshold: int = 3
    flood_ttl: int = 3
    queue_capacity: int = 32
    # None = auto: suppression on (threshold 2) at
    # FLOOD_SUPPRESS_AUTO_NODES nodes and wider, off below; 0 = force
    # off; N > 0 = force on with that duplicate threshold.
    flood_suppress_threshold: int | None = None
    # 0 = derived: one TDMA frame (every earlier-slotted neighbor has
    # had its chance to relay by then).
    flood_suppress_delay_ticks: int = 0
    # None = no fault; otherwise the primary controller's kernel crashes.
    crash_primary_at_sec: float | None = None
    recover_at_sec: float | None = None

    def __post_init__(self) -> None:
        if self.n_nodes < MIN_NODES:
            raise ValueError(
                f"wide-grid trials need at least {MIN_NODES} nodes "
                f"(the role cluster), got {self.n_nodes}")

    def frame_ticks(self) -> int:
        return self.n_nodes * self.slot_ticks

    def control_period(self) -> int:
        if self.control_period_ticks:
            return self.control_period_ticks
        return max(SEC, 2 * self.frame_ticks())

    def heartbeat_timeout(self) -> int:
        if self.heartbeat_timeout_ticks:
            return self.heartbeat_timeout_ticks
        return 5 * self.control_period()

    def flood_suppression(self) -> tuple[int, int]:
        """Resolved ``(threshold, delay_ticks)`` for the relay layer."""
        threshold = self.flood_suppress_threshold
        if threshold is None:
            threshold = (2 if self.n_nodes >= FLOOD_SUPPRESS_AUTO_NODES
                         else 0)
        delay = self.flood_suppress_delay_ticks or self.frame_ticks()
        return threshold, delay


@dataclass
class WideGridResult:
    """Deterministic outcome of one fig6-style wide-grid trial."""

    n_nodes: int
    n_links: int
    effective_range_m: float
    mean_degree: float
    roles: dict[str, str] = field(default_factory=dict)
    # Report plane (the mesh under load)
    reports_sent: int = 0
    reports_delivered: int = 0
    delivery_ratio: float = 0.0
    mean_report_latency_ms: float = 0.0
    # Medium health
    frames_sent: int = 0
    frames_delivered: int = 0
    collisions: int = 0
    channel_losses: int = 0
    # Control plane (fig6-style)
    act_input: float = 0.0
    ctrl_jobs_run: int = 0
    crashes: int = 0
    failovers_executed: int = 0
    detection_time_sec: float | None = None
    failover_time_sec: float | None = None
    active_controller_final: str = ""
    # Energy projection over the non-role membership
    mean_member_current_ma: float = 0.0
    mean_member_lifetime_years: float = 0.0


def _role_nodes(topology: Topology) -> dict[str, str]:
    """Place the control cluster in the densest neighborhood.

    The head is the highest-degree node (ties broken by id, so the choice
    is deterministic); sensor, both controllers and the actuator are its
    nearest neighbors.  Wide grids keep the *control* traffic local --
    the paper's VC spans a neighborhood -- while report traffic exercises
    the whole mesh.
    """
    ids = sorted(topology.node_ids)
    head = min(ids, key=lambda n: (-len(topology.neighbors(n)), n))
    neighbors = sorted(topology.neighbors(head),
                       key=lambda n: (topology.distance(head, n), n))
    if len(neighbors) < 4:
        # Sparse fallback: recruit nearest non-neighbors as well.
        rest = sorted((n for n in ids if n != head and n not in neighbors),
                      key=lambda n: (topology.distance(head, n), n))
        neighbors = neighbors + rest
    ctrl_a, ctrl_b, sensor, act = neighbors[:4]
    return {"head": head, "ctrl_a": ctrl_a, "ctrl_b": ctrl_b,
            "sensor": sensor, "act": act}


class WideGridRig:
    """Builds and owns the full wide-grid stack for one trial.

    Exposes ``engine``/``trace``/``nodes``/``kernels``/``medium`` with the
    same shapes the scenario fault primitives expect, so ``NodeCrash`` /
    ``NodeRecover`` / ``BatteryDrain`` apply unchanged.
    """

    def __init__(self, config: WideGridConfig) -> None:
        self.config = config
        self.engine = Engine()
        self.trace = Trace()
        self.rng = RngRegistry(config.seed)
        self.topology, self.effective_range_m = random_geometric_connected(
            config.n_nodes, config.area_m, config.radio_range_m,
            self.rng.stream("topology"))
        self.roles = _role_nodes(self.topology)
        self.head = self.roles["head"]
        self._build_network()
        self._build_vc()
        self._build_runtimes()
        self._wire_reports()
        self._arm_faults()
        self._started = False

    # ------------------------------------------------------------------
    def _build_network(self) -> None:
        cfg = self.config
        self.medium = Medium(self.engine, self.topology,
                             rng=self.rng.stream("medium"))
        self.sync = AmTimeSync(self.engine, self.rng.stream("timesync"),
                               TimeSyncSpec())
        self.mac_config = RtLinkConfig(slots_per_frame=cfg.n_nodes,
                                       slot_ticks=cfg.slot_ticks)
        node_ids = sorted(self.topology.node_ids)
        listeners = {nid: set(self.topology.neighbors(nid))
                     for nid in node_ids}
        self.schedule = RtLinkSchedule.round_robin(
            self.mac_config, node_ids, listeners_of=listeners)
        tables = build_tree_tables(self.topology, self.head)
        suppress_threshold, suppress_delay = cfg.flood_suppression()
        self.nodes: dict[str, FireFlyNode] = {}
        self.macs: dict[str, RoutedMacAdapter] = {}
        for node_id in node_ids:
            node = FireFlyNode(self.engine, node_id,
                               position=self.topology.position(node_id),
                               rng=self.rng.stream(f"node:{node_id}"),
                               with_sensors=False)
            node.join_timesync(self.sync)
            mac = RtLinkMac(self.engine, node, self.medium.attach(node),
                            self.schedule,
                            queue_capacity=cfg.queue_capacity)
            adapter = RoutedMacAdapter(
                mac, tables.get(node_id, {}), flood_ttl=cfg.flood_ttl,
                suppress_threshold=suppress_threshold,
                suppress_delay_ticks=suppress_delay)
            self.nodes[node_id] = node
            self.macs[node_id] = adapter

    # ------------------------------------------------------------------
    def _build_vc(self) -> None:
        cfg = self.config
        self.vc = VirtualComponent("widegrid-vc")
        self.capabilities = {
            self.roles["head"]: frozenset({"head"}),
            self.roles["sensor"]: frozenset({"sensor:grid"}),
            self.roles["ctrl_a"]: frozenset({"controller"}),
            self.roles["ctrl_b"]: frozenset({"controller"}),
            self.roles["act"]: frozenset({"actuate:grid"}),
        }
        for node_id, caps in self.capabilities.items():
            self.vc.admit(VcMember(node_id, caps, cpu_capacity=0.7))
        period = cfg.control_period()
        self.vc.add_task(LogicalTask(
            name=TASK_SENSOR, program_name="grid_sensor_law",
            period_ticks=period, wcet_ticks=2 * MS, priority=5,
            memory_slots=16,
            required_capabilities=frozenset({"sensor:grid"})))
        self.vc.add_task(LogicalTask(
            name=TASK_CTRL, program_name="grid_ctrl_law",
            period_ticks=period, wcet_ticks=2 * MS, priority=5,
            memory_slots=16,
            required_capabilities=frozenset({"controller"}), replicas=2))
        self.vc.add_task(LogicalTask(
            name=TASK_ACT, program_name="grid_act_law",
            period_ticks=period, wcet_ticks=2 * MS, priority=5,
            memory_slots=16,
            required_capabilities=frozenset({"actuate:grid"})))
        self.vc.assign(TASK_SENSOR, self.roles["sensor"])
        self.vc.assign(TASK_CTRL, self.roles["ctrl_a"],
                       backups=[self.roles["ctrl_b"]])
        self.vc.assign(TASK_ACT, self.roles["act"])
        self.vc.add_transfer(DirectionalTransfer(
            producer=TASK_SENSOR, consumer=TASK_CTRL,
            slots=((SLOT_OUTPUT, SLOT_INPUT),)))
        self.vc.add_transfer(DirectionalTransfer(
            producer=TASK_CTRL, consumer=TASK_ACT,
            slots=((SLOT_OUTPUT, SLOT_INPUT),)))
        for monitor, subject in ((self.roles["ctrl_b"], self.roles["ctrl_a"]),
                                 (self.roles["ctrl_a"], self.roles["ctrl_b"])):
            self.vc.add_transfer(HealthAssessment(
                monitor=monitor, subject=subject, task=TASK_CTRL,
                response=FaultResponse.TRIGGER_BACKUP,
                plausible_min=-1000.0, plausible_max=1000.0,
                max_deviation=1.0, threshold=cfg.detection_threshold,
                heartbeat_timeout_ticks=cfg.heartbeat_timeout()))

    # ------------------------------------------------------------------
    def _build_runtimes(self) -> None:
        cfg = self.config
        programs = [compile_passthrough("grid_sensor_law", gain=1.0),
                    compile_passthrough("grid_ctrl_law", gain=CTRL_GAIN),
                    compile_passthrough("grid_act_law", gain=1.0)]
        suppress_threshold, _ = cfg.flood_suppression()
        discipline = (FloodDiscipline(
            capsule_fanout_bound=suppress_threshold,
            state_stale_drop=True, mode_dedup=True)
            if suppress_threshold else None)
        self.kernels: dict[str, NanoRK] = {}
        self.runtimes: dict[str, EvmRuntime] = {}
        for node_id in sorted(self.topology.node_ids):
            kernel = NanoRK(self.engine, self.nodes[node_id],
                            trace=self.trace)
            kernel.attach_mac(self.macs[node_id])
            self.kernels[node_id] = kernel
            if node_id not in self.capabilities:
                continue  # reporters carry no EVM runtime
            runtime = EvmRuntime(
                kernel, self.vc,
                capabilities=self.capabilities[node_id], trace=self.trace,
                failover_policy=FailoverPolicy(
                    detection_threshold=cfg.detection_threshold,
                    dormant_delay_ticks=60 * SEC),
                flood_discipline=discipline)
            for program in programs:
                runtime.install_capsule(Capsule.from_program(program, 1))
            runtime.configure_from_vc(head_id=self.head)
            self.runtimes[node_id] = runtime
        self.runtimes[self.roles["sensor"]].bind_input(
            TASK_SENSOR, SLOT_INPUT, lambda: SENSOR_VALUE)

    # ------------------------------------------------------------------
    def _wire_reports(self) -> None:
        cfg = self.config
        self.reports_sent = 0
        self.report_latencies: list[int] = []
        head_runtime = self.runtimes[self.head]

        def collect(packet: Packet) -> None:
            if packet.kind == "report":
                self.report_latencies.append(
                    self.engine.now - packet.created_at)
                return
            head_runtime.deliver(packet)

        self.macs[self.head].set_receive_handler(collect)

        period_ticks = int(cfg.report_period_sec * SEC)
        role_ids = set(self.roles.values())
        self.reporters = [n for n in sorted(self.topology.node_ids)
                          if n not in role_ids]
        for node_id in self.reporters:
            jitter = self.rng.stream(f"traffic:{node_id}")
            self._arm_reporter(node_id, period_ticks, jitter)

    def _arm_reporter(self, node_id: str, period_ticks: int, jitter) -> None:
        def send() -> None:
            if self.engine.now >= int(self.config.duration_sec * SEC):
                return
            if not self.kernels[node_id].crashed:
                packet = Packet(src=node_id, dst=self.head, kind="report",
                                size_bytes=REPORT_BYTES,
                                created_at=self.engine.now)
                if self.macs[node_id].send(packet):
                    self.reports_sent += 1
            self.engine.post(period_ticks + jitter.randrange(0, 50 * MS),
                             send)

        self.engine.post(jitter.randrange(0, period_ticks), send)

    # ------------------------------------------------------------------
    def _arm_faults(self) -> None:
        cfg = self.config
        if cfg.crash_primary_at_sec is not None:
            self.engine.post(int(cfg.crash_primary_at_sec * SEC),
                             self.kernels[self.roles["ctrl_a"]].crash)
        if cfg.recover_at_sec is not None:
            self.engine.post(int(cfg.recover_at_sec * SEC),
                             self.kernels[self.roles["ctrl_a"]].restart)

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.sync.start()
        for adapter in self.macs.values():
            adapter.mac.start()

    def run_for_seconds(self, seconds: float) -> None:
        self.start()
        self.engine.run_until(self.engine.now + int(seconds * SEC))

    def active_controller(self) -> str:
        return self.runtimes[self.roles["act"]].task_primaries[TASK_CTRL][0]

    # ------------------------------------------------------------------
    def collect(self) -> WideGridResult:
        topo = self.topology
        n = topo.graph.number_of_nodes()
        links = topo.graph.number_of_edges()
        result = WideGridResult(
            n_nodes=n, n_links=links,
            effective_range_m=self.effective_range_m,
            mean_degree=round(2.0 * links / n, 3) if n else 0.0,
            roles=dict(self.roles))
        result.reports_sent = self.reports_sent
        result.reports_delivered = len(self.report_latencies)
        result.delivery_ratio = (result.reports_delivered
                                 / max(1, result.reports_sent))
        result.mean_report_latency_ms = (
            sum(self.report_latencies) / len(self.report_latencies) / MS
            if self.report_latencies else 0.0)
        stats = self.medium.stats
        result.frames_sent = stats.frames_sent
        result.frames_delivered = stats.frames_delivered
        result.collisions = stats.collisions
        result.channel_losses = stats.channel_losses
        act_rt = self.runtimes[self.roles["act"]]
        result.act_input = act_rt.instances[TASK_ACT].memory[SLOT_INPUT]
        result.ctrl_jobs_run = sum(
            rt.instances[TASK_CTRL].jobs_run
            for nid, rt in self.runtimes.items()
            if TASK_CTRL in rt.instances)
        result.crashes = self.trace.count("rtos.crash")
        result.failovers_executed = sum(rt.stats.failovers_executed
                                        for rt in self.runtimes.values())

        def first_sec(category: str) -> float | None:
            matches = [e for e in self.trace.events(category)
                       if e.category == category]
            return matches[0].time / SEC if matches else None

        result.detection_time_sec = first_sec("evm.fault_detected")
        result.failover_time_sec = first_sec("evm.failover")
        result.active_controller_final = self.active_controller()
        currents, lifetimes = [], []
        for node_id in self.reporters:
            current_ma, lifetime, _ = project_node_energy(
                self.nodes[node_id], self.engine.now)
            currents.append(current_ma)
            lifetimes.append(lifetime)
        if currents:
            result.mean_member_current_ma = sum(currents) / len(currents)
            result.mean_member_lifetime_years = (sum(lifetimes)
                                                 / len(lifetimes))
        return result


def run_widegrid_trial(config: WideGridConfig | None = None,
                       ) -> WideGridResult:
    """Build a wide-grid rig, run it to its horizon, collect metrics."""
    config = config or WideGridConfig()
    rig = WideGridRig(config)
    rig.run_for_seconds(config.duration_sec)
    return rig.collect()


# ----------------------------------------------------------------------
# Fig1-style placement at scale
# ----------------------------------------------------------------------
@dataclass
class WideGridPlacementResult:
    """BQP versus greedy assignment over one wide grid."""

    n_nodes: int
    n_tasks: int
    bqp_cost: float
    greedy_cost: float
    degradation_pct: float
    placement: dict[str, str] = field(default_factory=dict)


def run_widegrid_placement(n_nodes: int = 100, seed: int = 3,
                           area_m: float = 150.0,
                           radio_range_m: float = 25.0,
                           ) -> WideGridPlacementResult:
    """Fig. 1's three-VC composition problem scaled onto a wide grid.

    Capabilities rotate across the membership the way fig1 annotates its
    9-node grid; the solvers see hundreds of feasible hosts per task.
    """
    registry = RngRegistry(seed)
    topology, _ = random_geometric_connected(
        n_nodes, area_m, radio_range_m, registry.stream("topology"))
    rng = registry.stream("problem")
    node_ids = sorted(topology.node_ids)
    capabilities = {}
    for i, node_id in enumerate(node_ids):
        caps = {"controller"}
        if i % 3 == 0:
            caps.add("sensor:temp")
        if i % 3 == 1:
            caps.add("sensor:flow")
        if i % 2 == 0:
            caps.add("actuate:valve")
        capabilities[node_id] = frozenset(caps)
    # Hop distances from each task anchor via single-source BFS (the
    # all-pairs table fig1 builds would be quadratic in a 256-node grid).
    import networkx as nx

    hops: dict[tuple[str, str], int] = {}
    for a in node_ids:
        for b, d in nx.single_source_shortest_path_length(
                topology.graph, a).items():
            if a < b:
                hops[(a, b)] = d
    members = [VcMember(node_id, capabilities[node_id], cpu_capacity=0.5)
               for node_id in node_ids]
    specs = [
        ("pid_a", frozenset({"controller"})),
        ("pid_b", frozenset({"controller"})),
        ("flow_sense", frozenset({"sensor:flow"})),
        ("temp_sense", frozenset({"sensor:temp"})),
        ("valve_drive", frozenset({"actuate:valve"})),
        ("aggregator", frozenset({"controller"})),
    ]
    tasks = [LogicalTask(name=name, program_name="law",
                         period_ticks=250 * MS,
                         wcet_ticks=(5 + rng.randrange(10)) * MS,
                         required_capabilities=caps)
             for name, caps in specs]
    traffic = {}
    for i, a in enumerate(tasks):
        for b in tasks[i + 1:]:
            traffic[(a.name, b.name)] = 1.0 + rng.random() * 3.0
    problem = AssignmentProblem(tasks=tasks, nodes=members,
                                traffic=traffic, hops=hops)
    bqp = bqp_assign(problem)
    greedy = greedy_assign(problem)
    degradation = ((greedy.cost - bqp.cost) / bqp.cost * 100.0
                   if bqp.cost > 0 else 0.0)
    return WideGridPlacementResult(
        n_nodes=n_nodes, n_tasks=len(tasks),
        bqp_cost=round(bqp.cost, 6), greedy_cost=round(greedy.cost, 6),
        degradation_pct=round(degradation, 3),
        placement=dict(sorted(bqp.placement.items())))


# ----------------------------------------------------------------------
# MAC lifetime study at scale
# ----------------------------------------------------------------------
@dataclass
class WideGridMacResult:
    """Lifetime/delivery outcome of one (protocol, grid) trial."""

    protocol: str
    n_nodes: int
    reports_sent: int
    reports_delivered: int
    delivery_ratio: float
    mean_latency_ms: float
    avg_current_ma: float
    lifetime_years: float
    radio_duty_pct: float
    collisions: int


def run_widegrid_mac_lifetime(protocol: str,
                              config: WideGridConfig | None = None,
                              ) -> WideGridMacResult:
    """Reporters over tree routing on one MAC; lifetime projected from
    measured average current (the paper's C2 claim, on a wide mesh)."""
    cfg = config or WideGridConfig()
    engine = Engine()
    rng = RngRegistry(cfg.seed)
    topology, _ = random_geometric_connected(
        cfg.n_nodes, cfg.area_m, cfg.radio_range_m, rng.stream("topology"))
    node_ids = sorted(topology.node_ids)
    sink = min(node_ids, key=lambda n: (-len(topology.neighbors(n)), n))
    medium = Medium(engine, topology, rng=rng.stream("medium"))
    sync = AmTimeSync(engine, rng.stream("timesync"), TimeSyncSpec())
    nodes: dict[str, FireFlyNode] = {}
    for node_id in node_ids:
        node = FireFlyNode(engine, node_id,
                           position=topology.position(node_id),
                           rng=rng.stream(f"node:{node_id}"),
                           with_sensors=False)
        node.join_timesync(sync)
        nodes[node_id] = node
    neighbors = {nid: set(topology.neighbors(nid)) for nid in node_ids}
    if protocol == "rtlink":
        mac_config = RtLinkConfig(slots_per_frame=cfg.n_nodes,
                                  slot_ticks=cfg.slot_ticks)
        schedule = RtLinkSchedule.round_robin(mac_config, node_ids,
                                              listeners_of=neighbors)
        macs = {nid: RtLinkMac(engine, nodes[nid], medium.attach(nodes[nid]),
                               schedule, queue_capacity=cfg.queue_capacity)
                for nid in node_ids}
    elif protocol == "bmac":
        bconfig = BMacConfig(check_interval_ticks=50 * MS)
        macs = {nid: BMac(engine, nodes[nid], medium.attach(nodes[nid]),
                          bconfig) for nid in node_ids}
    elif protocol == "smac":
        sconfig = SMacConfig(frame_ticks=1000 * MS, listen_ticks=100 * MS)
        macs = {nid: SMac(engine, nodes[nid], medium.attach(nodes[nid]),
                          sconfig) for nid in node_ids}
    else:
        raise ValueError(f"unknown protocol {protocol!r}")
    tables = build_tree_tables(topology, sink)
    adapters = {nid: RoutedMacAdapter(macs[nid], tables.get(nid, {}),
                                      flood_ttl=cfg.flood_ttl)
                for nid in node_ids}
    latencies: list[int] = []
    adapters[sink].set_receive_handler(
        lambda packet: latencies.append(engine.now - packet.created_at))
    sent = [0]
    period_ticks = int(cfg.report_period_sec * SEC)
    for node_id in node_ids:
        if node_id == sink:
            continue
        jitter = rng.stream(f"traffic:{node_id}")

        def send(node_id=node_id, jitter=jitter) -> None:
            if engine.now >= int(cfg.duration_sec * SEC):
                return
            packet = Packet(src=node_id, dst=sink, kind="report",
                            size_bytes=REPORT_BYTES, created_at=engine.now)
            if adapters[node_id].send(packet):
                sent[0] += 1
            engine.post(period_ticks + jitter.randrange(0, 50 * MS), send)

        engine.post(jitter.randrange(0, period_ticks), send)
    sync.start()
    for mac in macs.values():
        mac.start()
    engine.run_until(int(cfg.duration_sec * SEC))
    currents, lifetimes, duties = [], [], []
    for node_id in node_ids:
        if node_id == sink:
            continue
        current_ma, lifetime, duty = project_node_energy(
            nodes[node_id], engine.now)
        currents.append(current_ma)
        lifetimes.append(lifetime)
        duties.append(duty)
    delivered = len(latencies)
    return WideGridMacResult(
        protocol=protocol, n_nodes=cfg.n_nodes,
        reports_sent=sent[0], reports_delivered=delivered,
        delivery_ratio=delivered / max(1, sent[0]),
        mean_latency_ms=(sum(latencies) / delivered / MS
                         if delivered else 0.0),
        avg_current_ma=sum(currents) / len(currents),
        lifetime_years=sum(lifetimes) / len(lifetimes),
        radio_duty_pct=sum(duties) / len(duties),
        collisions=medium.stats.collisions)


# ----------------------------------------------------------------------
# Campaign fan-out
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WideGridTrialSpec:
    """One campaign cell: which driver to run with which config."""

    kind: str  # "failover" | "placement" | "mac"
    config: WideGridConfig
    protocol: str = "rtlink"

    def label(self) -> str:
        tail = f"-{self.protocol}" if self.kind == "mac" else ""
        return (f"widegrid-{self.kind}{tail}"
                f"-n{self.config.n_nodes}-s{self.config.seed}")


def run_widegrid_spec(spec: WideGridTrialSpec) -> dict[str, Any]:
    """Worker entry point: one spec -> one JSON-ready record."""
    if spec.kind == "failover":
        outcome = run_widegrid_trial(spec.config)
    elif spec.kind == "placement":
        outcome = run_widegrid_placement(
            n_nodes=spec.config.n_nodes, seed=spec.config.seed,
            area_m=spec.config.area_m,
            radio_range_m=spec.config.radio_range_m)
    elif spec.kind == "mac":
        outcome = run_widegrid_mac_lifetime(spec.protocol, spec.config)
    else:
        raise ValueError(f"unknown trial kind {spec.kind!r}")
    return {"trial": spec.label(), "kind": spec.kind,
            "config": dataclasses.asdict(spec.config),
            "result": dataclasses.asdict(outcome)}


def run_widegrid_campaign(specs: Sequence[WideGridTrialSpec],
                          runner=None) -> list[dict[str, Any]]:
    """Fan a mixed wide-grid campaign across a campaign runner's pool.

    ``runner`` is anything with the ``map_jobs(fn, jobs)`` contract --
    the local :class:`~repro.scenarios.runner.CampaignRunner` (a fresh
    serial one is built when omitted) or a
    :class:`~repro.dist.runner.DistributedCampaignRunner` pointed at a
    coordinator, since the specs are plain picklable values.  Records
    come back in spec order, so campaign output digests
    deterministically either way.
    """
    if runner is None:
        from repro.scenarios.runner import CampaignRunner

        runner = CampaignRunner(parallel=False)
    return runner.map_jobs(run_widegrid_spec, list(specs))


def default_campaign_specs(n_nodes: int = 24, seeds: Sequence[int] = (1, 2),
                           duration_sec: float = 12.0,
                           ) -> list[WideGridTrialSpec]:
    """The stock mixed campaign the CLI (and the smoke job) runs: one
    failover trial with a mid-run primary crash, one BQP placement
    study and one RT-Link lifetime study per seed."""
    specs: list[WideGridTrialSpec] = []
    for seed in seeds:
        base = WideGridConfig(n_nodes=n_nodes, seed=seed,
                              duration_sec=duration_sec)
        specs.append(WideGridTrialSpec(
            kind="failover",
            config=dataclasses.replace(
                base, crash_primary_at_sec=duration_sec / 3.0)))
        specs.append(WideGridTrialSpec(kind="placement", config=base))
        specs.append(WideGridTrialSpec(kind="mac", config=base,
                                       protocol="rtlink"))
    return specs


def main(argv: Sequence[str] | None = None) -> int:
    """``python -m repro.experiments.widegrid``: run the stock wide-grid
    campaign locally or, with ``--dist host:port``, through a
    distributed coordinator -- the specs themselves are identical."""
    import argparse
    import json

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument("--n-nodes", type=int, default=24)
    parser.add_argument("--seeds", type=int, nargs="+", default=[1, 2])
    parser.add_argument("--duration", type=float, default=12.0)
    parser.add_argument("--dist", default=None, metavar="HOST:PORT",
                        help="route the campaign through a repro.dist "
                             "coordinator instead of local processes")
    parser.add_argument("--workers", type=int, default=None,
                        help="local pool width (ignored with --dist)")
    parser.add_argument("--out", default=None,
                        help="write the records to this JSON file")
    args = parser.parse_args(argv)

    specs = default_campaign_specs(n_nodes=args.n_nodes, seeds=args.seeds,
                                   duration_sec=args.duration)
    if args.dist:
        from repro.dist.runner import DistributedCampaignRunner

        with DistributedCampaignRunner(args.dist) as runner:
            records = run_widegrid_campaign(specs, runner=runner)
    else:
        from repro.scenarios.runner import CampaignRunner

        with CampaignRunner(max_workers=args.workers,
                            parallel=args.workers != 0) as runner:
            records = run_widegrid_campaign(specs, runner=runner)
    for record in records:
        result = record["result"]
        headline = {k: result[k] for k in
                    ("delivery_ratio", "failovers_executed",
                     "degradation_pct", "lifetime_years")
                    if k in result}
        print(f"{record['trial']:<40} {headline}")
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(records, fh, indent=2, sort_keys=True)
        print(f"wrote {len(records)} records to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
