"""The headline experiment: Fig. 6(b) -- failover of the LTS level loop.

Timeline (matching the paper):

- t < T1 = 300 s: Ctrl-A ACTIVE, Ctrl-B BACKUP; plant steady at 50 % level,
  valve ~11.48 %;
- t = T1: Ctrl-A fails -- it wedges the published valve output at 75 %;
  the level collapses and the LTS/tower molar flows spike;
- Ctrl-B's backup monitor confirms the implausible outputs (shadow
  deviation) and informs the VC head; the head activates Ctrl-B at
  T2 = 600 s (the paper stages a 300 s reconfiguration window, reproduced
  here with an arbitration hold-off) and demotes Ctrl-A to Indicator;
- t = T3 = T2 + 200 s: Ctrl-A is parked Dormant;
- t > T2: Ctrl-B closes the valve and the level recovers slowly; flows
  return to their pre-fault values.

``run_fig6`` executes that scenario on the full wireless stack and returns
the recorded series plus the event times extracted from the trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.hil import (
    CTRL_B,
    HilConfig,
    HilRig,
    TASK_CTRL,
)
from repro.sim.clock import SEC


@dataclass
class Fig6Config:
    """Scenario timing (defaults reproduce the paper's timeline)."""

    t1_fault_sec: float = 300.0
    t2_target_sec: float = 600.0
    duration_sec: float = 1000.0
    sample_period_sec: float = 1.0
    fault_value_pct: float = 75.0
    hil: HilConfig = field(default_factory=HilConfig)

    def __post_init__(self) -> None:
        # Stage the paper's T2 by holding arbitration until ~600 s: the
        # backup detects within ~1 s of T1; the hold-off covers the rest.
        if self.hil.arbitration_holdoff_ticks == 0:
            detection_estimate = 2.0  # seconds after T1
            holdoff = self.t2_target_sec - self.t1_fault_sec \
                - detection_estimate
            self.hil.arbitration_holdoff_ticks = int(
                max(0.0, holdoff) * SEC)


@dataclass
class Fig6Result:
    """Recorded series and extracted event times."""

    times_sec: list[float] = field(default_factory=list)
    lts_level_pct: list[float] = field(default_factory=list)
    sep_liq_flow: list[float] = field(default_factory=list)
    lts_liq_flow: list[float] = field(default_factory=list)
    tower_feed_flow: list[float] = field(default_factory=list)
    valve_pct: list[float] = field(default_factory=list)
    active_controller: list[str] = field(default_factory=list)
    detection_time_sec: float | None = None
    failover_time_sec: float | None = None
    dormant_time_sec: float | None = None
    pre_fault_level: float = 0.0
    min_level: float = 0.0
    final_level: float = 0.0
    pre_fault_tower_flow: float = 0.0
    peak_tower_flow: float = 0.0
    final_tower_flow: float = 0.0

    def at_time(self, t_sec: float, series: list[float]) -> float:
        """Series value at (nearest sample to) ``t_sec``."""
        best_i = min(range(len(self.times_sec)),
                     key=lambda i: abs(self.times_sec[i] - t_sec))
        return series[best_i]

    def summary(self) -> str:
        lines = [
            "Fig. 6(b) failover transient",
            f"  pre-fault level      : {self.pre_fault_level:7.2f} %",
            f"  minimum level        : {self.min_level:7.2f} %",
            f"  final level (t_end)  : {self.final_level:7.2f} %",
            f"  detection time       : {self.detection_time_sec} s",
            f"  failover (T2)        : {self.failover_time_sec} s",
            f"  dormant (T3)         : {self.dormant_time_sec} s",
            f"  tower feed pre/peak/final: "
            f"{self.pre_fault_tower_flow:.2f} / {self.peak_tower_flow:.2f}"
            f" / {self.final_tower_flow:.2f} mol/s",
        ]
        return "\n".join(lines)


def build_scenario(config: Fig6Config):
    """The paper's timeline as a declarative scenario: one wedged-output
    fault on the active controller at T1."""
    # Imported here: repro.scenarios.spec depends on repro.experiments.hil,
    # so a module-level import would close a cycle through this package's
    # __init__.
    from repro.scenarios.faults import OutputWedge
    from repro.scenarios.spec import Scenario

    return Scenario(
        "fig6b-failover", hil=config.hil, seed=config.hil.seed,
        duration_sec=config.duration_sec,
        sample_period_sec=config.sample_period_sec,
        description="Fig. 6(b) wedged-primary failover timeline",
        tags=("paper", "failover"),
    ).at(config.t1_fault_sec,
         OutputWedge(TASK_CTRL, config.fault_value_pct))


def run_fig6(config: Fig6Config | None = None) -> Fig6Result:
    """Run the scenario; returns recorded series and event times."""
    config = config or Fig6Config()
    rig = HilRig(scenario=build_scenario(config))
    result = Fig6Result()

    def sample() -> None:
        result.times_sec.append(rig.engine.now / SEC)
        result.lts_level_pct.append(rig.read("lts_level_pct"))
        result.sep_liq_flow.append(rig.read("sep_liq_flow"))
        result.lts_liq_flow.append(rig.read("lts_liq_flow"))
        result.tower_feed_flow.append(rig.read("tower_feed_flow"))
        result.valve_pct.append(rig.read("lts_valve_pct"))
        result.active_controller.append(rig.active_controller())
        rig.engine.post(int(config.sample_period_sec * SEC), sample)

    rig.engine.post(int(config.sample_period_sec * SEC), sample)
    rig.run_for_seconds(config.duration_sec)

    _extract_events(rig, result)
    _extract_shape(config, result)
    return result


def _extract_events(rig: HilRig, result: Fig6Result) -> None:
    def first_exact(category: str, source: str | None = None) -> float | None:
        matches = [e for e in rig.trace.events(category, source=source)
                   if e.category == category]
        return matches[0].time / SEC if matches else None

    result.detection_time_sec = first_exact("evm.fault_detected",
                                            source=CTRL_B)
    result.failover_time_sec = first_exact("evm.failover")
    result.dormant_time_sec = first_exact("evm.dormant")


def _extract_shape(config: Fig6Config, result: Fig6Result) -> None:
    if not result.times_sec:
        return
    t1 = config.t1_fault_sec
    pre_indices = [i for i, t in enumerate(result.times_sec) if t < t1 - 5]
    fault_window = [i for i, t in enumerate(result.times_sec)
                    if t1 <= t <= (result.failover_time_sec
                                   or config.duration_sec)]
    if pre_indices:
        result.pre_fault_level = result.lts_level_pct[pre_indices[-1]]
        result.pre_fault_tower_flow = result.tower_feed_flow[pre_indices[-1]]
    result.min_level = min(result.lts_level_pct)
    result.final_level = result.lts_level_pct[-1]
    result.peak_tower_flow = max(result.tower_feed_flow)
    result.final_tower_flow = result.tower_feed_flow[-1]
