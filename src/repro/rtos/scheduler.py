"""Event-driven simulation of nano-RK's preemptive fixed-priority scheduler.

Jobs of periodic tasks are released on their period; the highest-priority
ready job runs; releases of strictly higher-priority jobs preempt the running
one mid-slice.  CPU reservations throttle jobs whose budget is exhausted
until the next replenishment (temporal isolation).  Deadline misses are
detected and traced but jobs are allowed to finish (soft-deadline policy; the
EVM's health layer decides what to do about misses).

Task *bodies* (Python callables) run at job completion and take zero extra
simulated time -- the job's WCET already accounts for the computation.
Exceptions raised by bodies are contained and traced as task faults, which is
one of the fault-injection paths the failover experiments use.

Periodic release and reservation-replenishment chains are armed through the
engine's allocation-free ``post`` path with a per-task *generation token*
(the same pattern :class:`~repro.sim.process.Process` uses for resumes):
the chains only ever need cancelling on task removal, suspend-to-crash or
reconfiguration, so "cancel" is a generation bump instead of an
:class:`~repro.sim.engine.EventHandle` allocated every single period.
Slice-end events keep real handles -- preemption cancels them routinely.
"""

from __future__ import annotations

import heapq
import itertools

from repro.obs import instrument
from repro.rtos.reservations import CpuReservation
from repro.rtos.task import TaskSpec, TaskState, Tcb
from repro.sim.engine import Engine, EventHandle
from repro.sim.trace import Trace

_job_seq = itertools.count(1)


class Job:
    """One release of a task."""

    __slots__ = ("tcb", "release_time", "absolute_deadline", "remaining",
                 "seq", "completed", "cancelled", "response_time")

    def __init__(self, tcb: Tcb, release_time: int, remaining: int,
                 absolute_deadline: int) -> None:
        self.tcb = tcb
        self.release_time = release_time
        self.absolute_deadline = absolute_deadline
        self.remaining = remaining
        self.seq = next(_job_seq)
        self.completed = False
        self.cancelled = False
        self.response_time: int | None = None

    def sort_key(self) -> tuple:
        return (self.tcb.spec.priority, self.release_time, self.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Job({self.tcb.name}#{self.seq}, rem={self.remaining}, "
                f"rel={self.release_time})")


class Scheduler:
    """Per-node preemptive fixed-priority scheduler with reservations."""

    def __init__(self, engine: Engine, node_id: str = "node",
                 battery=None, active_current_a: float = 6.0e-3,
                 idle_current_a: float = 2.0e-3,
                 trace: Trace | None = None) -> None:
        self.engine = engine
        self.node_id = node_id
        self.battery = battery
        self.active_current_a = active_current_a
        self.idle_current_a = idle_current_a
        self.trace = trace
        self.tasks: dict[str, Tcb] = {}
        self.cpu_reservations: dict[str, CpuReservation] = {}
        self._ready: list[tuple[tuple, Job]] = []
        self._throttled: dict[str, list[Job]] = {}
        self._current: Job | None = None
        self._slice_start = 0
        self._slice_event: EventHandle | None = None
        # Generation tokens for the periodic chains: an in-flight release/
        # replenish event is live iff it carries the current generation for
        # its task; removal/halt/reconfiguration just bump (or drop) the
        # entry and the stale event no-ops when it pops.  Generations are
        # drawn from one scheduler-wide monotonic counter that is NEVER
        # reset, so an event stranded by halt()/remove_task() can never
        # collide with a generation handed out after a restart/re-add.
        self._gen_counter = 0
        self._release_gens: dict[str, int] = {}
        self._replenish_gens: dict[str, int] = {}
        self.context_switches = 0
        self.preemptions = 0
        self.total_busy_ticks = 0
        self._created_at = engine.now
        self._idle_charged_ticks = 0
        self.halted = False
        # Meters touch rare paths only (preempt, miss, fault, slice
        # start); the dispatch fast path pays one None-check.
        self._obs = instrument.scheduler_meters()

    # ------------------------------------------------------------------
    # Task management (driven by the kernel / EVM)
    # ------------------------------------------------------------------
    def add_task(self, tcb: Tcb,
                 reservation: CpuReservation | None = None) -> None:
        if tcb.name in self.tasks:
            raise ValueError(f"task {tcb.name!r} already scheduled")
        self.tasks[tcb.name] = tcb
        self._throttled[tcb.name] = []
        if reservation is not None:
            self.set_cpu_reservation(tcb.name, reservation)
        if tcb.spec.period_ticks is not None:
            tcb.state = TaskState.SLEEPING
            self._arm_release(tcb, tcb.spec.offset_ticks)

    def _arm_release(self, tcb: Tcb, delay: int) -> None:
        self._gen_counter = gen = self._gen_counter + 1
        self._release_gens[tcb.name] = gen
        self.engine.post(delay, self._release, tcb, gen, priority=-5)

    def _arm_replenish(self, name: str, delay: int) -> None:
        self._gen_counter = gen = self._gen_counter + 1
        self._replenish_gens[name] = gen
        self.engine.post(delay, self._replenish, name, gen, priority=-6)

    def rephase_release(self, name: str, offset_ticks: int) -> None:
        """Restart a periodic task's release chain ``offset_ticks`` from
        now (experiment rigs use this to apply release offsets)."""
        self._arm_release(self.tasks[name], offset_ticks)

    def remove_task(self, name: str) -> Tcb:
        """Detach a task entirely (EVM migration source side)."""
        if name not in self.tasks:
            raise KeyError(f"no task {name!r}")
        tcb = self.tasks.pop(name)
        self._release_gens.pop(name, None)
        self._replenish_gens.pop(name, None)
        self.cpu_reservations.pop(name, None)
        for _key, job in self._ready:
            if job.tcb is tcb:
                job.cancelled = True
        for job in self._throttled.pop(name, []):
            job.cancelled = True
        if self._current is not None and self._current.tcb is tcb:
            self._current.cancelled = True
            self._halt_current_slice(requeue=False)
            self._dispatch()
        tcb.state = TaskState.FINISHED
        return tcb

    def suspend_task(self, name: str) -> None:
        """Skip future releases; abandon in-flight jobs (EVM backup mode)."""
        tcb = self.tasks[name]
        tcb.state = TaskState.SUSPENDED
        for _key, job in self._ready:
            if job.tcb is tcb:
                job.cancelled = True
        for job in self._throttled.get(name, []):
            job.cancelled = True
        self._throttled[name] = []
        if self._current is not None and self._current.tcb is tcb:
            self._current.cancelled = True
            self._halt_current_slice(requeue=False)
            self._dispatch()

    def resume_task(self, name: str) -> None:
        tcb = self.tasks[name]
        if tcb.state is TaskState.SUSPENDED:
            tcb.state = TaskState.SLEEPING

    def set_cpu_reservation(self, name: str,
                            reservation: CpuReservation) -> None:
        """Attach/replace a CPU reservation (EVM resource re-allocation)."""
        if name not in self.tasks:
            raise KeyError(f"no task {name!r}")
        self.cpu_reservations[name] = reservation
        # Arming bumps the generation, which also retires any chain armed
        # for a previously attached reservation.
        self._arm_replenish(name, reservation.period_ticks)

    def spawn_job(self, name: str, exec_ticks: int | None = None,
                  deadline_ticks: int | None = None) -> Job:
        """Release one sporadic job of task ``name`` right now."""
        tcb = self.tasks[name]
        remaining = exec_ticks if exec_ticks is not None else tcb.spec.wcet_ticks
        if remaining <= 0:
            raise ValueError(f"job execution time must be positive")
        deadline = (self.engine.now + deadline_ticks
                    if deadline_ticks is not None
                    else self.engine.now + remaining * 1000)
        job = Job(tcb, self.engine.now, remaining, deadline)
        tcb.jobs_released += 1
        self._enqueue(job)
        self._dispatch()
        return job

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def specs(self) -> list[TaskSpec]:
        return [tcb.spec for tcb in self.tasks.values()]

    @property
    def running_task(self) -> str | None:
        return self._current.tcb.name if self._current is not None else None

    def utilization_now(self) -> float:
        return sum(tcb.spec.utilization for tcb in self.tasks.values()
                   if tcb.state is not TaskState.SUSPENDED)

    def halt(self) -> None:
        """Stop all scheduling activity (node crash)."""
        self.halted = True
        # Dropping the generations strands every in-flight periodic event.
        self._release_gens.clear()
        self._replenish_gens.clear()
        if self._current is not None:
            self._halt_current_slice(requeue=False)
        for _key, job in self._ready:
            job.cancelled = True
        self._ready.clear()
        # Throttled jobs die with the crash too -- otherwise the first
        # replenishment after a restart() would resurrect a pre-crash job
        # with its long-expired deadline.
        for jobs in self._throttled.values():
            for job in jobs:
                job.cancelled = True
            jobs.clear()

    def restart(self) -> None:
        """Resume after :meth:`halt` (node reboot).

        Periodic release chains restart from *now* -- a rebooted node has
        lost its old phase -- and reservation replenishment resumes one
        period out.  In-flight jobs from before the crash are gone.
        """
        if not self.halted:
            return
        self.halted = False
        self._current = None
        self._slice_event = None
        for tcb in self.tasks.values():
            if tcb.state is TaskState.SUSPENDED:
                continue
            if tcb.spec.period_ticks is not None:
                tcb.state = TaskState.SLEEPING
                self._arm_release(tcb, tcb.spec.offset_ticks)
        for name, reservation in self.cpu_reservations.items():
            self._arm_replenish(name, reservation.period_ticks)

    def finalize_energy_accounting(self) -> None:
        """Charge idle current for all non-busy time up to now."""
        if self.battery is None:
            return
        elapsed = self.engine.now - self._created_at
        idle = elapsed - self.total_busy_ticks - self._idle_charged_ticks
        if idle > 0:
            self.battery.draw(self.idle_current_a, idle)
            self._idle_charged_ticks += idle

    # ------------------------------------------------------------------
    # Internal machinery
    # ------------------------------------------------------------------
    def _release(self, tcb: Tcb, gen: int) -> None:
        if self.halted or gen != self._release_gens.get(tcb.name):
            return  # stale chain: task removed, node crashed, or re-phased
        spec = tcb.spec
        # Chain the next periodic release regardless of suspension.
        self._arm_release(tcb, spec.period_ticks)
        if tcb.state is TaskState.SUSPENDED:
            return
        tcb.jobs_released += 1
        job = Job(tcb, self.engine.now, spec.wcet_ticks,
                  self.engine.now + spec.effective_deadline)
        self.engine.post(spec.effective_deadline, self._check_deadline,
                         job, priority=-4)
        self._enqueue(job)
        self._dispatch()

    def _enqueue(self, job: Job) -> None:
        job.tcb.state = TaskState.READY
        heapq.heappush(self._ready, (job.sort_key(), job))

    def _pop_ready(self) -> Job | None:
        while self._ready:
            _key, job = heapq.heappop(self._ready)
            if not job.cancelled:
                return job
        return None

    def _peek_ready(self) -> Job | None:
        while self._ready:
            _key, job = self._ready[0]
            if job.cancelled:
                heapq.heappop(self._ready)
                continue
            return job
        return None

    def _dispatch(self) -> None:
        if self.halted:
            return
        top = self._peek_ready()
        if self._current is None:
            if top is not None:
                heapq.heappop(self._ready)
                self._start_slice(top)
            return
        if (top is not None
                and top.tcb.spec.priority < self._current.tcb.spec.priority):
            self.preemptions += 1
            if self._obs is not None:
                self._obs.preemptions.inc()
            preempted = self._halt_current_slice(requeue=True)
            if self.trace is not None and preempted is not None:
                self.trace.record(self.engine.now, "rtos.preempt",
                                  self.node_id, task=preempted.tcb.name,
                                  by=top.tcb.name)
            heapq.heappop(self._ready)
            self._start_slice(top)

    def _start_slice(self, job: Job) -> None:
        reservation = self.cpu_reservations.get(job.tcb.name)
        if reservation is not None and reservation.exhausted:
            self._throttle(job)
            self._dispatch()
            return
        slice_ticks = job.remaining
        if reservation is not None:
            slice_ticks = min(slice_ticks, int(reservation.available()))
            if slice_ticks <= 0:
                self._throttle(job)
                self._dispatch()
                return
        self._current = job
        self._slice_start = self.engine.now
        job.tcb.state = TaskState.RUNNING
        self.context_switches += 1
        if self._obs is not None:
            self._obs.context_switches.inc()
        self._slice_event = self.engine.schedule(
            slice_ticks, self._slice_end, job)

    def _slice_end(self, job: Job) -> None:
        if self._current is not job:
            return
        self._account_slice(job)
        self._current = None
        self._slice_event = None
        if job.remaining <= 0:
            self._complete(job)
        else:
            # Budget ran out mid-job: throttle until replenishment.
            self._throttle(job)
        self._dispatch()

    def _halt_current_slice(self, requeue: bool) -> Job | None:
        """Stop the running slice early (preemption, suspension, removal)."""
        job = self._current
        if job is None:
            return None
        self._account_slice(job)
        if self._slice_event is not None:
            self._slice_event.cancel()
            self._slice_event = None
        self._current = None
        if job.cancelled:
            return job
        if job.remaining <= 0:
            # The slice boundary coincided with the job's completion (e.g.
            # a release event at the exact finish tick): complete it now
            # rather than letting the finished job evaporate.
            self._complete(job)
        elif requeue:
            self._enqueue(job)
        return job

    def _account_slice(self, job: Job) -> None:
        executed = self.engine.now - self._slice_start
        if executed <= 0:
            return
        job.remaining -= executed
        job.tcb.total_executed_ticks += executed
        self.total_busy_ticks += executed
        reservation = self.cpu_reservations.get(job.tcb.name)
        if reservation is not None:
            reservation.consume_upto(executed)
        if self.battery is not None:
            self.battery.draw(self.active_current_a, executed)

    def _throttle(self, job: Job) -> None:
        job.tcb.state = TaskState.THROTTLED
        self._throttled.setdefault(job.tcb.name, []).append(job)
        if self.trace is not None:
            self.trace.record(self.engine.now, "rtos.throttle", self.node_id,
                              task=job.tcb.name, remaining=job.remaining)

    def _replenish(self, name: str, gen: int) -> None:
        if self.halted or gen != self._replenish_gens.get(name):
            return  # stale chain: reservation replaced or task removed
        reservation = self.cpu_reservations[name]
        reservation.replenish()
        self._arm_replenish(name, reservation.period_ticks)
        waiting = self._throttled.get(name, [])
        self._throttled[name] = []
        for job in waiting:
            if not job.cancelled:
                self._enqueue(job)
        if waiting:
            self._dispatch()

    def _complete(self, job: Job) -> None:
        job.completed = True
        tcb = job.tcb
        tcb.jobs_completed += 1
        tcb.last_completion_time = self.engine.now
        tcb.state = TaskState.SLEEPING
        job.response_time = self.engine.now - job.release_time
        if self.trace is not None:
            self.trace.record(self.engine.now, "rtos.complete", self.node_id,
                              task=tcb.name, response=job.response_time)
        if tcb.body is not None:
            try:
                tcb.body(tcb)
            except Exception as exc:  # noqa: BLE001 - fault containment
                if self._obs is not None:
                    self._obs.task_faults.inc()
                if self.trace is not None:
                    self.trace.record(self.engine.now, "rtos.task_fault",
                                      self.node_id, task=tcb.name,
                                      error=repr(exc))

    def _check_deadline(self, job: Job) -> None:
        if job.completed or job.cancelled:
            return
        job.tcb.deadline_misses += 1
        if self._obs is not None:
            self._obs.deadline_misses.inc()
        if self.trace is not None:
            self.trace.record(self.engine.now, "rtos.deadline_miss",
                              self.node_id, task=job.tcb.name,
                              release=job.release_time)
