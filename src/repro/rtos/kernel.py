"""The nano-RK kernel facade.

One :class:`NanoRK` per node.  It owns the scheduler, enforces RAM budgets
for task stacks, runs admission control before activating task-sets, and
meters network/energy reservations.  The EVM runtime drives every one of
these interfaces at runtime -- that privileged access is exactly what makes
it a "super task" in the paper's architecture (Fig. 3).
"""

from __future__ import annotations

from typing import Callable

from repro.hardware.node import FireFlyNode
from repro.net.mac.base import MacProtocol
from repro.net.packet import Packet
from repro.rtos.analysis import AnalysisReport, response_time_analysis
from repro.rtos.reservations import (
    CpuReservation,
    EnergyReservation,
    NetworkReservation,
)
from repro.rtos.scheduler import Scheduler
from repro.rtos.task import TaskSpec, Tcb
from repro.sim.engine import Engine
from repro.sim.trace import Trace


class AdmissionRefused(RuntimeError):
    """Raised when a task-set change fails schedulability analysis."""

    def __init__(self, report: AnalysisReport) -> None:
        super().__init__(report.reason or "task-set not schedulable")
        self.report = report


class NanoRK:
    """Per-node RTOS: scheduler + memory + reservations + network metering."""

    def __init__(self, engine: Engine, node: FireFlyNode,
                 trace: Trace | None = None) -> None:
        self.engine = engine
        self.node = node
        self.trace = trace
        self.scheduler = Scheduler(
            engine, node_id=node.node_id, battery=node.battery,
            active_current_a=node.mcu.spec.active_current_a,
            idle_current_a=node.mcu.spec.idle_current_a, trace=trace)
        self.network_reservations: dict[str, NetworkReservation] = {}
        self.energy_reservations: dict[str, EnergyReservation] = {}
        # Bumped on every crash so surviving replenish closures from the
        # previous life die at their next firing instead of doubling up
        # with the chains a restart() re-creates.
        self._net_epoch = 0
        self.mac: MacProtocol | None = None
        self.network_sends_refused = 0
        self.crashed = False

    @property
    def node_id(self) -> str:
        return self.node.node_id

    # ------------------------------------------------------------------
    # Task lifecycle
    # ------------------------------------------------------------------
    def create_task(self, spec: TaskSpec, body: Callable[[Tcb], None] | None,
                    cpu_reservation: CpuReservation | None = None,
                    admit: bool = True) -> Tcb:
        """Allocate, admission-test and activate a task.

        Raises :class:`AdmissionRefused` if the resulting periodic task-set
        would not be schedulable, and :class:`MemoryExhausted` if the stack
        does not fit RAM -- both checks the EVM relies on when placing tasks.
        """
        self._ensure_alive()
        if admit and spec.period_ticks is not None:
            report = response_time_analysis(self.scheduler.specs() + [spec])
            if not report.schedulable:
                if self.trace is not None:
                    self.trace.record(self.engine.now, "rtos.admission_refused",
                                      self.node_id, task=spec.name,
                                      reason=report.reason)
                raise AdmissionRefused(report)
        self.node.mcu.ram.allocate(f"stack:{spec.name}", spec.stack_bytes)
        tcb = Tcb(spec, body)
        try:
            self.scheduler.add_task(tcb, cpu_reservation)
        except Exception:
            self.node.mcu.ram.release(f"stack:{spec.name}")
            raise
        if self.trace is not None:
            self.trace.record(self.engine.now, "rtos.task_created",
                              self.node_id, task=spec.name,
                              period=spec.period_ticks, wcet=spec.wcet_ticks)
        return tcb

    def kill_task(self, name: str) -> Tcb:
        self._ensure_alive()
        tcb = self.scheduler.remove_task(name)
        self.node.mcu.ram.release(f"stack:{name}")
        self.network_reservations.pop(name, None)
        self.energy_reservations.pop(name, None)
        if self.trace is not None:
            self.trace.record(self.engine.now, "rtos.task_killed",
                              self.node_id, task=name)
        return tcb

    def suspend_task(self, name: str) -> None:
        self._ensure_alive()
        self.scheduler.suspend_task(name)

    def resume_task(self, name: str) -> None:
        self._ensure_alive()
        self.scheduler.resume_task(name)

    def has_task(self, name: str) -> bool:
        return name in self.scheduler.tasks

    def task(self, name: str) -> Tcb:
        return self.scheduler.tasks[name]

    def task_names(self) -> list[str]:
        return sorted(self.scheduler.tasks)

    # ------------------------------------------------------------------
    # Admission / analysis (EVM operation 3)
    # ------------------------------------------------------------------
    def analyze(self, extra: list[TaskSpec] | None = None) -> AnalysisReport:
        """Schedulability of the current task-set (+ hypothetical extras)."""
        return response_time_analysis(self.scheduler.specs() + (extra or []))

    def can_admit(self, spec: TaskSpec) -> bool:
        return bool(self.analyze([spec]))

    # ------------------------------------------------------------------
    # Reservations
    # ------------------------------------------------------------------
    def set_cpu_reservation(self, name: str,
                            reservation: CpuReservation) -> None:
        self._ensure_alive()
        self.scheduler.set_cpu_reservation(name, reservation)

    def set_network_reservation(self, name: str,
                                reservation: NetworkReservation) -> None:
        self._ensure_alive()
        self.network_reservations[name] = reservation
        self._schedule_net_replenish(name)

    def set_energy_reservation(self, name: str,
                               reservation: EnergyReservation) -> None:
        self._ensure_alive()
        self.energy_reservations[name] = reservation

    def _schedule_net_replenish(self, name: str) -> None:
        reservation = self.network_reservations.get(name)
        if reservation is None or self.crashed:
            return
        epoch = self._net_epoch

        def replenish() -> None:
            current = self.network_reservations.get(name)
            if current is not reservation or self.crashed \
                    or epoch != self._net_epoch:
                return
            reservation.replenish()
            self.engine.post(reservation.period_ticks, replenish)

        self.engine.post(reservation.period_ticks, replenish)

    # ------------------------------------------------------------------
    # Network access (metered)
    # ------------------------------------------------------------------
    def attach_mac(self, mac: MacProtocol) -> None:
        self.mac = mac

    def send_packet(self, task_name: str, packet: Packet) -> bool:
        """Send on behalf of a task, enforcing its network reservation."""
        self._ensure_alive()
        if self.mac is None:
            raise RuntimeError(f"node {self.node_id!r} has no MAC attached")
        reservation = self.network_reservations.get(task_name)
        if reservation is not None and not reservation.try_send():
            self.network_sends_refused += 1
            if self.trace is not None:
                self.trace.record(self.engine.now, "rtos.net_refused",
                                  self.node_id, task=task_name)
            return False
        return self.mac.send(packet)

    # ------------------------------------------------------------------
    # Crash / recovery
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Hard node failure: halt scheduling, kill the radio."""
        if self.crashed:
            return
        self.crashed = True
        self._net_epoch += 1
        self.scheduler.halt()
        self.node.fail()
        if self.mac is not None:
            self.mac.stop()
        if self.trace is not None:
            self.trace.record(self.engine.now, "rtos.crash", self.node_id)

    def restart(self) -> None:
        """Reboot after :meth:`crash`: clear the fault, resume the
        scheduler's release chains, bring the MAC back up.

        Application state in task bodies survives (it lives in the hosted
        EVM instances); the node simply rejoins the network and lets the
        component's mode/epoch machinery sort out its role.
        """
        if not self.crashed:
            return
        self.crashed = False
        self.node.recover()
        self.scheduler.restart()
        # Network replenishment chains died with the crash (epoch bump);
        # rebuild one per reservation so sends are metered, not starved.
        for name in self.network_reservations:
            self._schedule_net_replenish(name)
        if self.mac is not None:
            self.mac.start()
        if self.trace is not None:
            self.trace.record(self.engine.now, "rtos.restart", self.node_id)

    def _ensure_alive(self) -> None:
        if self.crashed:
            raise RuntimeError(f"node {self.node_id!r} has crashed")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        status = "crashed" if self.crashed else "running"
        return (f"NanoRK({self.node_id!r}, {status}, "
                f"tasks={self.task_names()})")
