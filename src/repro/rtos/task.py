"""Tasks and task control blocks.

A :class:`TaskSpec` is the timing contract (period, WCET, deadline,
priority); a :class:`Tcb` is the live kernel object: spec + body + execution
state + the register/stack image.  The TCB is exactly what the EVM's task
migration moves between nodes, so the state it carries is explicit and
serializable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Any, Callable


class TaskState(enum.Enum):
    READY = "ready"
    RUNNING = "running"
    SLEEPING = "sleeping"      # between periodic releases
    THROTTLED = "throttled"    # reservation budget exhausted
    SUSPENDED = "suspended"    # explicitly paused (EVM op / backup mode)
    FINISHED = "finished"


@dataclass(frozen=True)
class TaskSpec:
    """Timing contract for one task.

    ``priority``: smaller value = higher priority (rate-monotonic order by
    convention).  ``period_ticks=None`` declares a sporadic task released
    only via :meth:`~repro.rtos.scheduler.Scheduler.spawn_job`.
    ``deadline_ticks`` defaults to the period (implicit deadline).
    """

    name: str
    wcet_ticks: int
    period_ticks: int | None = None
    deadline_ticks: int | None = None
    priority: int = 10
    offset_ticks: int = 0
    stack_bytes: int = 256

    def __post_init__(self) -> None:
        if self.wcet_ticks <= 0:
            raise ValueError(f"task {self.name!r}: WCET must be positive")
        if self.period_ticks is not None and self.period_ticks <= 0:
            raise ValueError(f"task {self.name!r}: period must be positive")
        if (self.period_ticks is not None
                and self.wcet_ticks > self.period_ticks):
            raise ValueError(
                f"task {self.name!r}: WCET {self.wcet_ticks} exceeds period "
                f"{self.period_ticks}")
        if self.stack_bytes <= 0:
            raise ValueError(f"task {self.name!r}: stack must be positive")

    @property
    def effective_deadline(self) -> int:
        if self.deadline_ticks is not None:
            return self.deadline_ticks
        if self.period_ticks is not None:
            return self.period_ticks
        raise ValueError(f"sporadic task {self.name!r} has no deadline")

    @property
    def utilization(self) -> float:
        if self.period_ticks is None:
            return 0.0
        return self.wcet_ticks / self.period_ticks

    def with_priority(self, priority: int) -> "TaskSpec":
        return replace(self, priority=priority)


class Tcb:
    """Task control block: spec + body + live state + migratable image.

    ``body`` is invoked once per job completion with the TCB itself, so task
    logic can read and update :attr:`data` (its migratable memory).  The
    ``registers`` dict and ``stack`` bytes stand in for the machine context
    that real nano-RK would checkpoint; the EVM interpreter stores its VM
    state there so migration genuinely transplants mid-computation state.
    """

    def __init__(self, spec: TaskSpec,
                 body: Callable[["Tcb"], None] | None = None) -> None:
        self.spec = spec
        self.body = body
        self.state = TaskState.SLEEPING
        self.data: dict[str, Any] = {}
        self.registers: dict[str, int] = {}
        self.stack = bytearray(spec.stack_bytes)
        self.jobs_released = 0
        self.jobs_completed = 0
        self.deadline_misses = 0
        self.total_executed_ticks = 0
        self.last_completion_time: int | None = None

    @property
    def name(self) -> str:
        return self.spec.name

    def snapshot_image(self) -> dict[str, Any]:
        """The migratable task image: spec, memory, stack, registers, timing.

        This is the payload of the EVM migration protocol ("task control
        block, stack, data and timing/precedence-related metadata").
        """
        return {
            "spec": self.spec,
            "data": dict(self.data),
            "registers": dict(self.registers),
            "stack": bytes(self.stack),
            "jobs_released": self.jobs_released,
            "jobs_completed": self.jobs_completed,
            "last_completion_time": self.last_completion_time,
        }

    def restore_image(self, image: dict[str, Any]) -> None:
        """Adopt a migrated image (the receiving node's half of migration)."""
        self.spec = image["spec"]
        self.data = dict(image["data"])
        self.registers = dict(image["registers"])
        self.stack = bytearray(image["stack"])
        self.jobs_released = image["jobs_released"]
        self.jobs_completed = image["jobs_completed"]
        self.last_completion_time = image["last_completion_time"]

    def image_size_bytes(self) -> int:
        """Approximate wire size of the migratable image."""
        data_bytes = sum(16 + len(str(k)) + len(str(v))
                         for k, v in self.data.items())
        register_bytes = 8 * len(self.registers)
        return 64 + data_bytes + register_bytes + len(self.stack)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Tcb({self.name!r}, {self.state.value})"
