"""nano-RK: the resource-kernel RTOS model under the EVM.

nano-RK is a fully preemptive fixed-priority RTOS with first-class resource
reservations: tasks declare CPU, network and energy budgets and the kernel
*enforces* them.  The EVM sits on top as a privileged super-task with
parametric and programmable control of the whole kernel.

We model the pieces the paper's claims rest on:

- :mod:`~repro.rtos.task` -- task specs and task control blocks (the unit
  the EVM migrates);
- :mod:`~repro.rtos.reservations` -- CPU / network / energy budgets with
  periodic replenishment and enforcement;
- :mod:`~repro.rtos.analysis` -- schedulability tests (Liu-Layland and
  hyperbolic utilization bounds, exact response-time analysis) used by the
  EVM's admission control;
- :mod:`~repro.rtos.scheduler` -- event-driven simulation of preemptive
  fixed-priority scheduling with reservation throttling and deadline-miss
  detection;
- :mod:`~repro.rtos.kernel` -- the per-node kernel facade the EVM drives.
"""

from repro.rtos.analysis import (
    AnalysisReport,
    hyperbolic_bound_test,
    liu_layland_bound,
    response_time_analysis,
    utilization,
)
from repro.rtos.kernel import NanoRK
from repro.rtos.reservations import (
    CpuReservation,
    EnergyReservation,
    NetworkReservation,
)
from repro.rtos.scheduler import Job, Scheduler
from repro.rtos.task import TaskSpec, TaskState, Tcb

__all__ = [
    "TaskSpec",
    "TaskState",
    "Tcb",
    "CpuReservation",
    "NetworkReservation",
    "EnergyReservation",
    "liu_layland_bound",
    "utilization",
    "hyperbolic_bound_test",
    "response_time_analysis",
    "AnalysisReport",
    "Scheduler",
    "Job",
    "NanoRK",
]
