"""Resource reservations with periodic replenishment.

nano-RK's defining feature: a task declares ``budget per period`` for CPU
time, network packets and energy, and the kernel enforces the budgets --
overruns are throttled (CPU), refused (network) or flagged (energy), never
silently allowed.  The EVM re-parameterizes reservations at runtime when it
re-balances a Virtual Component.
"""

from __future__ import annotations

from dataclasses import dataclass


class ReservationError(ValueError):
    """Raised for malformed reservation parameters."""


class _PeriodicBudget:
    """Shared mechanics: consume against a budget that refills each period."""

    def __init__(self, budget: float, period_ticks: int) -> None:
        if budget <= 0:
            raise ReservationError(f"budget must be positive, got {budget}")
        if period_ticks <= 0:
            raise ReservationError(
                f"period must be positive, got {period_ticks}")
        self.budget = budget
        self.period_ticks = period_ticks
        self.used = 0.0
        self.replenish_count = 0
        self.overrun_attempts = 0

    def available(self) -> float:
        return max(0.0, self.budget - self.used)

    def consume(self, amount: float) -> bool:
        """Try to consume; False (and counted) if it would overrun."""
        if amount < 0:
            raise ReservationError(f"negative consumption {amount}")
        if self.used + amount > self.budget + 1e-12:
            self.overrun_attempts += 1
            return False
        self.used += amount
        return True

    def consume_upto(self, amount: float) -> float:
        """Consume as much of ``amount`` as the budget allows; return it."""
        granted = min(amount, self.available())
        self.used += granted
        return granted

    def replenish(self) -> None:
        self.used = 0.0
        self.replenish_count += 1

    @property
    def exhausted(self) -> bool:
        return self.available() <= 0.0


class CpuReservation(_PeriodicBudget):
    """CPU ticks per replenishment period.

    The scheduler charges executed slices against this; a job whose
    reservation is exhausted is THROTTLED until the next replenishment,
    preserving lower-priority tasks' guarantees (temporal isolation).
    """

    def __init__(self, budget_ticks: int, period_ticks: int) -> None:
        super().__init__(float(budget_ticks), period_ticks)

    @property
    def utilization(self) -> float:
        return self.budget / self.period_ticks


class NetworkReservation(_PeriodicBudget):
    """Packets per replenishment period; sends beyond budget are refused."""

    def __init__(self, packets: int, period_ticks: int) -> None:
        super().__init__(float(packets), period_ticks)

    def try_send(self) -> bool:
        return self.consume(1.0)


class EnergyReservation(_PeriodicBudget):
    """Joules per replenishment period (virtual energy reservations).

    nano-RK enforces energy budgets by gating the resource accesses that
    spend energy; here consumers pre-charge joules and are refused on
    exhaustion.
    """

    def __init__(self, joules: float, period_ticks: int) -> None:
        super().__init__(joules, period_ticks)

    def try_spend(self, joules: float) -> bool:
        return self.consume(joules)
