"""Fixed-priority schedulability analysis.

The EVM re-runs these tests before activating any new task-set -- the paper's
"the new task-set or schedule will only be activated if the schedulability
test is passed".  Three standard tests, increasing in precision:

- Liu-Layland utilization bound (sufficient, rate-monotonic);
- hyperbolic bound (sufficient, tighter);
- exact response-time analysis (necessary and sufficient for synchronous
  releases, constrained deadlines).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.rtos.task import TaskSpec


def utilization(tasks: list[TaskSpec]) -> float:
    """Total CPU utilization of the periodic tasks in ``tasks``."""
    return sum(t.utilization for t in tasks)


def liu_layland_bound(n: int) -> float:
    """The classic n(2^(1/n) - 1) rate-monotonic utilization bound."""
    if n <= 0:
        return 0.0
    return n * (2.0 ** (1.0 / n) - 1.0)


def liu_layland_test(tasks: list[TaskSpec]) -> bool:
    """Sufficient test: utilization under the Liu-Layland bound."""
    periodic = [t for t in tasks if t.period_ticks is not None]
    if not periodic:
        return True
    return utilization(periodic) <= liu_layland_bound(len(periodic)) + 1e-12


def hyperbolic_bound_test(tasks: list[TaskSpec]) -> bool:
    """Sufficient test (Bini-Buttazzo): prod(U_i + 1) <= 2."""
    periodic = [t for t in tasks if t.period_ticks is not None]
    product = 1.0
    for task in periodic:
        product *= task.utilization + 1.0
    return product <= 2.0 + 1e-12


@dataclass
class AnalysisReport:
    """Outcome of an admission test, kept for traces and diagnostics."""

    schedulable: bool
    total_utilization: float
    response_times: dict[str, int] = field(default_factory=dict)
    failing_tasks: list[str] = field(default_factory=list)
    reason: str = ""

    def __bool__(self) -> bool:
        return self.schedulable


def response_time_analysis(tasks: list[TaskSpec],
                           max_iterations: int = 10_000) -> AnalysisReport:
    """Exact RTA for preemptive fixed priorities, constrained deadlines.

    R_i = C_i + sum over higher-priority j of ceil(R_i / T_j) * C_j,
    iterated to fixpoint.  Sporadic tasks (no period) are excluded -- the
    kernel runs them in background/slack and gives them no guarantee.
    """
    periodic = sorted((t for t in tasks if t.period_ticks is not None),
                      key=lambda t: (t.priority, t.period_ticks))
    report = AnalysisReport(schedulable=True,
                            total_utilization=utilization(periodic))
    if report.total_utilization > 1.0 + 1e-12:
        report.schedulable = False
        report.reason = (f"utilization {report.total_utilization:.3f} "
                         f"exceeds 1.0")
        report.failing_tasks = [t.name for t in periodic]
        return report

    for i, task in enumerate(periodic):
        higher = periodic[:i]
        # Tasks sharing a priority level interfere with each other; treat
        # same-priority peers as interference too (safe, FIFO within level).
        peers = [t for t in periodic[i + 1:] if t.priority == task.priority]
        interferers = higher + peers
        response = task.wcet_ticks
        for _ in range(max_iterations):
            demand = task.wcet_ticks + sum(
                math.ceil(response / t.period_ticks) * t.wcet_ticks
                for t in interferers)
            if demand == response:
                break
            response = demand
            if response > task.effective_deadline:
                break
        report.response_times[task.name] = response
        if response > task.effective_deadline:
            report.schedulable = False
            report.failing_tasks.append(task.name)
    if not report.schedulable and not report.reason:
        report.reason = (
            "response time exceeds deadline for: "
            + ", ".join(report.failing_tasks))
    return report


def admission_test(existing: list[TaskSpec], new: TaskSpec,
                   ) -> AnalysisReport:
    """Would adding ``new`` keep the task-set schedulable?  (EVM op #3.)"""
    return response_time_analysis(existing + [new])


def assign_rate_monotonic_priorities(tasks: list[TaskSpec],
                                     ) -> list[TaskSpec]:
    """Re-prioritize by period, shortest first (EVM priority-assignment op).

    Returns new specs; priorities are 0..n-1 in rate-monotonic order.
    Sporadic tasks keep their declared priority.
    """
    periodic = sorted((t for t in tasks if t.period_ticks is not None),
                      key=lambda t: (t.period_ticks, t.name))
    reassigned = {t.name: t.with_priority(i)
                  for i, t in enumerate(periodic)}
    return [reassigned.get(t.name, t) for t in tasks]
