"""Common MAC protocol interface.

A MAC owns a transmit queue, drives the node's radio through a
:class:`~repro.net.medium.MediumPort`, filters received frames by
destination, and keeps the statistics the comparison benchmarks report
(throughput, delivery latency, duty cycle).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.hardware.node import FireFlyNode
from repro.net.medium import MediumPort
from repro.net.packet import Packet
from repro.sim.engine import Engine
from repro.sim.trace import Trace


@dataclass
class MacStats:
    """Per-node MAC counters."""

    enqueued: int = 0
    sent: int = 0
    received: int = 0
    filtered: int = 0
    queue_drops: int = 0
    delivery_latencies: list[int] = field(default_factory=list)

    def mean_latency(self) -> float:
        if not self.delivery_latencies:
            return 0.0
        return sum(self.delivery_latencies) / len(self.delivery_latencies)

    def max_latency(self) -> int:
        return max(self.delivery_latencies, default=0)


class MacProtocol:
    """Base class: queueing, destination filtering, stats.

    Subclasses implement :meth:`start` / :meth:`stop` and the medium-access
    discipline that drains :attr:`queue`.
    """

    def __init__(self, engine: Engine, node: FireFlyNode, port: MediumPort,
                 queue_capacity: int = 16, trace: Trace | None = None) -> None:
        self.engine = engine
        self.node = node
        self.port = port
        self.trace = trace
        # Two drain levels: control frames (priority 0) always leave
        # before bulk frames (priority 1) -- migrations must not starve
        # heartbeats/actuation on the shared slot.
        self._queues: tuple[deque[Packet], deque[Packet]] = (deque(),
                                                             deque())
        self.queue_capacity = queue_capacity
        self.stats = MacStats()
        self.receive_handler: Callable[[Packet], None] | None = None
        self.running = False
        port.set_receive_callback(self._on_frame)

    @property
    def node_id(self) -> str:
        return self.node.node_id

    # ------------------------------------------------------------------
    # Upper-layer interface
    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> bool:
        """Queue a frame for transmission; False if the queue was full."""
        if self.node.failed:
            return False
        if self.queue_length >= self.queue_capacity:
            self.stats.queue_drops += 1
            return False
        if packet.created_at == 0:
            packet.created_at = self.engine.now
        level = 1 if packet.priority else 0
        self._queues[level].append(packet)
        self.stats.enqueued += 1
        return True

    @property
    def queue_length(self) -> int:
        return sum(len(q) for q in self._queues)

    @property
    def has_pending(self) -> bool:
        return any(self._queues)

    def dequeue(self) -> Packet | None:
        """Next frame to transmit: control before bulk, FIFO within."""
        for queue in self._queues:
            if queue:
                return queue.popleft()
        return None

    def peek(self) -> Packet | None:
        """The frame dequeue() would return, without removing it."""
        for queue in self._queues:
            if queue:
                return queue[0]
        return None

    def drop_head(self) -> None:
        """Discard the frame dequeue() would return (congestion drop)."""
        self.dequeue()

    def set_receive_handler(self, fn: Callable[[Packet], None]) -> None:
        self.receive_handler = fn

    def start(self) -> None:
        """Begin the protocol's radio schedule."""
        raise NotImplementedError

    def stop(self) -> None:
        """Halt the protocol and power the radio down."""
        self.running = False
        self.port.sleep()

    # ------------------------------------------------------------------
    # Medium-facing
    # ------------------------------------------------------------------
    def _on_frame(self, packet: Packet) -> None:
        if self.node.failed:
            return
        if not self._accept(packet):
            self.stats.filtered += 1
            return
        self.stats.received += 1
        self.stats.delivery_latencies.append(
            self.engine.now - packet.created_at)
        if self.trace is not None:
            self.trace.record(self.engine.now, "mac.deliver", self.node_id,
                              kind=packet.kind, src=packet.src,
                              seq=packet.seq)
        if self.receive_handler is not None:
            self.receive_handler(packet)

    def _accept(self, packet: Packet) -> bool:
        """Destination filter; protocol frames may be intercepted earlier."""
        return packet.is_broadcast or packet.dst == self.node_id

    def _note_sent(self, packet: Packet) -> None:
        self.stats.sent += 1
        if self.trace is not None:
            self.trace.record(self.engine.now, "mac.tx", self.node_id,
                              kind=packet.kind, dst=packet.dst,
                              seq=packet.seq)
