"""S-MAC: loosely-synchronized duty cycling (comparison baseline).

Nodes share a listen/sleep schedule: every frame opens with a listen window
in which senders contend by CSMA; the rest of the frame is spent asleep.  A
transmission won during the listen window may extend into the sleep period
(as in S-MAC's overhearing-avoidance variant, receivers that heard the start
stay awake for the payload).

Relative to RT-Link this buys synchronization cheaply but pays idle listening
in every frame and collides under contention; relative to B-MAC it trades
sender preamble cost for receiver listen cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.radio import RadioState
from repro.net.mac.base import MacProtocol
from repro.sim.clock import MS, US
from repro.sim.process import Delay, Process


@dataclass(frozen=True)
class SMacConfig:
    """Listen/sleep geometry.  duty cycle = listen / frame."""

    frame_ticks: int = 1000 * MS
    listen_ticks: int = 100 * MS
    contention_window_ticks: int = 15 * MS
    schedule_offset_jitter_ticks: int = 2 * MS  # loose synchronization error

    @property
    def duty_cycle(self) -> float:
        return self.listen_ticks / self.frame_ticks


class SMac(MacProtocol):
    """Per-node listen/sleep engine with CSMA contention in listen windows."""

    def __init__(self, engine, node, port, config: SMacConfig | None = None,
                 queue_capacity: int = 16, trace=None) -> None:
        super().__init__(engine, node, port, queue_capacity, trace)
        self.config = config or SMacConfig()
        self.rng = node.rng
        self._process: Process | None = None
        self.frames_listened = 0
        self.contention_losses = 0
        # Loose sync: every node offsets its schedule by a small fixed error.
        self._schedule_offset = self.rng.randrange(
            0, max(1, self.config.schedule_offset_jitter_ticks))

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self.port.sleep()
        self._process = Process(self.engine, self._run(),
                                name=f"smac:{self.node_id}")

    def stop(self) -> None:
        super().stop()
        if self._process is not None:
            self._process.kill()
            self._process = None

    def _run(self):
        cfg = self.config
        # Align to the next frame boundary plus this node's offset.
        first = cfg.frame_ticks - (self.engine.now % cfg.frame_ticks)
        yield Delay(first + self._schedule_offset)
        while self.running:
            if self.node.failed:
                yield Delay(cfg.frame_ticks)
                continue
            frame_start = self.engine.now
            yield from self._listen_window(frame_start)
            # Sleep out the rest of the frame.
            remaining = frame_start + cfg.frame_ticks - self.engine.now
            self.port.sleep()
            if remaining > 0:
                yield Delay(remaining)

    def _listen_window(self, frame_start: int):
        cfg = self.config
        self.frames_listened += 1
        self.port.listen()
        listen_end = frame_start + cfg.listen_ticks
        if self.has_pending:
            # Contend: random slot in the contention window, then CCA.
            yield Delay(self.rng.randrange(1, cfg.contention_window_ticks))
            if self.node.failed or not self.running:
                return
            if self.port.channel_busy():
                self.contention_losses += 1
                # Lost contention: stay in RX for the remainder (we may be
                # the intended receiver of the winner's frame).
                remaining = listen_end - self.engine.now
                if remaining > 0:
                    yield Delay(remaining)
                return
            if self.has_pending:
                packet = self.dequeue()
                airtime = self.port.transmit(packet,
                                             after_state=RadioState.RX)
                self._note_sent(packet)
                yield Delay(airtime + 200 * US)
        # Idle-listen until the window closes (the S-MAC energy cost).
        remaining = listen_end - self.engine.now
        if remaining > 0:
            yield Delay(remaining)
