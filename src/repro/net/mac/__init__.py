"""Medium access control protocols.

Three protocols, mirroring the paper's discussion:

- :class:`~repro.net.mac.rtlink.RtLinkMac` -- the TDMA protocol the EVM runs
  on: globally synchronized, collision-free slots, nodes sleep outside their
  slots (FireFly + AM sync makes this practical);
- :class:`~repro.net.mac.bmac.BMac` -- low-power-listen CSMA baseline;
- :class:`~repro.net.mac.smac.SMac` -- loosely-synchronized duty-cycle
  baseline.

All share the :class:`~repro.net.mac.base.MacProtocol` interface, so the
lifetime/latency comparison benches swap them freely.
"""

from repro.net.mac.base import MacProtocol, MacStats
from repro.net.mac.bmac import BMac, BMacConfig
from repro.net.mac.rtlink import RtLinkConfig, RtLinkMac, RtLinkSchedule
from repro.net.mac.smac import SMac, SMacConfig

__all__ = [
    "MacProtocol",
    "MacStats",
    "RtLinkMac",
    "RtLinkConfig",
    "RtLinkSchedule",
    "BMac",
    "BMacConfig",
    "SMac",
    "SMacConfig",
]
