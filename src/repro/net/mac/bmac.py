"""B-MAC: low-power-listening CSMA (comparison baseline).

Receivers wake every ``check_interval`` for a brief clear-channel sample; a
sender precedes its data frame with a preamble longer than the check
interval, guaranteeing every neighbor's sample window overlaps it.  Hearing
energy, receivers stay awake for the data frame.

Costs modeled exactly as the paper's comparison implies: senders pay the long
preamble on every frame, receivers pay the periodic samples, and contention
produces collisions under load -- all of which RT-Link's scheduled slots
avoid.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.radio import RadioState
from repro.net.mac.base import MacProtocol
from repro.net.packet import BROADCAST, Packet
from repro.sim.clock import MS, SEC, US
from repro.sim.process import Delay, Process


@dataclass(frozen=True)
class BMacConfig:
    """Low-power-listen parameters (B-MAC defaults ballpark)."""

    check_interval_ticks: int = 100 * MS
    sample_ticks: int = 2500 * US          # clear-channel assessment window
    preamble_slack_ticks: int = 5 * MS     # preamble beyond the check interval
    initial_backoff_ticks: int = 10 * MS
    congestion_backoff_ticks: int = 20 * MS
    max_backoffs: int = 8
    data_timeout_ticks: int = 250 * MS     # stay-awake bound after sensing energy

    @property
    def preamble_ticks(self) -> int:
        return self.check_interval_ticks + self.preamble_slack_ticks


class BMac(MacProtocol):
    """Per-node low-power-listen CSMA engine."""

    def __init__(self, engine, node, port, config: BMacConfig | None = None,
                 queue_capacity: int = 16, trace=None) -> None:
        super().__init__(engine, node, port, queue_capacity, trace)
        self.config = config or BMacConfig()
        self.rng = node.rng
        self._listen_process: Process | None = None
        self._send_process: Process | None = None
        self.preambles_sent = 0
        self.samples_taken = 0
        self.backoff_exhausted = 0
        self._receiving_until = 0

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self.port.sleep()
        self._listen_process = Process(self.engine, self._listen_loop(),
                                       name=f"bmac-listen:{self.node_id}")
        self._send_process = Process(self.engine, self._send_loop(),
                                     name=f"bmac-send:{self.node_id}")

    def stop(self) -> None:
        super().stop()
        for proc in (self._listen_process, self._send_process):
            if proc is not None:
                proc.kill()
        self._listen_process = None
        self._send_process = None

    # ------------------------------------------------------------------
    # Receiver side: periodic channel sampling
    # ------------------------------------------------------------------
    def _listen_loop(self):
        cfg = self.config
        while self.running:
            yield Delay(cfg.check_interval_ticks)
            if not self.running or self.node.failed:
                continue
            if self.node.radio.state is RadioState.TX:
                continue  # busy sending; skip this sample
            self.samples_taken += 1
            self.port.listen()
            yield Delay(cfg.sample_ticks)
            if self.node.failed or self.node.radio.state is RadioState.TX:
                continue
            if self.port.channel_busy():
                # Energy on the channel: hold RX for the data frame.
                deadline = self.engine.now + cfg.data_timeout_ticks
                self._receiving_until = deadline
                while (self.running and self.engine.now < deadline
                       and self.port.channel_busy()):
                    yield Delay(1 * MS)
                # Linger briefly so the end-of-frame delivery lands in RX.
                yield Delay(500 * US)
            if self.node.radio.state is RadioState.RX:
                self.port.sleep()

    # ------------------------------------------------------------------
    # Sender side: CCA + long preamble + data
    # ------------------------------------------------------------------
    def _send_loop(self):
        cfg = self.config
        while self.running:
            if not self.has_pending or self.node.failed:
                yield Delay(1 * MS)
                continue
            yield Delay(self.rng.randrange(1, cfg.initial_backoff_ticks))
            backoffs = 0
            while self.running and backoffs < cfg.max_backoffs:
                if self.port.channel_busy():
                    backoffs += 1
                    yield Delay(self.rng.randrange(
                        1, cfg.congestion_backoff_ticks))
                    continue
                break
            if backoffs >= cfg.max_backoffs:
                self.backoff_exhausted += 1
                self.drop_head()  # drop after persistent congestion
                continue
            if not self.has_pending or self.node.failed:
                continue
            packet = self.dequeue()
            yield from self._transmit_with_preamble(packet)

    def _transmit_with_preamble(self, packet: Packet):
        cfg = self.config
        preamble_bytes = self._bytes_for_airtime(cfg.preamble_ticks)
        preamble = Packet(src=self.node_id, dst=BROADCAST,
                          kind="bmac.preamble", size_bytes=preamble_bytes,
                          created_at=self.engine.now)
        airtime = self.port.transmit(preamble, after_state=RadioState.IDLE)
        self.preambles_sent += 1
        yield Delay(airtime)
        if self.node.failed:
            return
        airtime = self.port.transmit(packet, after_state=RadioState.OFF)
        self._note_sent(packet)
        yield Delay(airtime)
        self.port.sleep()

    def _bytes_for_airtime(self, ticks: int) -> int:
        bitrate = self.node.radio.spec.bitrate_bps
        return max(1, (ticks * bitrate) // (8 * SEC))

    def _accept(self, packet: Packet) -> bool:
        if packet.kind == "bmac.preamble":
            return False  # wake-up energy only; never delivered upward
        return super()._accept(packet)
