"""RT-Link: hardware-synchronized TDMA.

The protocol the EVM stack runs on.  Time is divided into frames of
``slots_per_frame`` fixed slots; a global schedule assigns each slot one
transmitter and a set of listeners.  Because all nodes share the AM-broadcast
time reference (sub-150 us error), a small guard interval suffices and slots
are collision-free by construction.  Nodes keep the radio off outside their
own slots, which is where the multi-year lifetime comes from.

Slot timing is computed from each node's *local* clock, so synchronization
error is exercised for real: if jitter exceeded the guard time, frames would
collide or be missed at slot edges.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.radio import RadioState
from repro.net.mac.base import MacProtocol
from repro.net.mac.slotwheel import SlotWheel
from repro.net.packet import Packet
from repro.obs import instrument
from repro.sim.clock import MS, US
from repro.sim.process import Delay, Process


@dataclass(frozen=True)
class RtLinkConfig:
    """Frame geometry.  Defaults: 32 slots x 5 ms = 160 ms frames."""

    slots_per_frame: int = 32
    slot_ticks: int = 5 * MS
    guard_ticks: int = 200 * US

    @property
    def frame_ticks(self) -> int:
        return self.slots_per_frame * self.slot_ticks

    def payload_fits(self, airtime_ticks: int) -> bool:
        return airtime_ticks + 2 * self.guard_ticks <= self.slot_ticks


class RtLinkSchedule:
    """Global slot assignment: one transmitter and N listeners per slot.

    Mutations (``assign``/``clear``) bump ``version``; the per-node slot
    indexes behind ``tx_slots_of``/``rx_slots_of``/``free_slots`` and
    every :class:`~repro.net.mac.slotwheel.SlotWheel` built from this
    schedule are keyed on that stamp, so lookups are O(1) dict reads
    instead of per-call frame scans and stale calendars are impossible.
    """

    def __init__(self, config: RtLinkConfig) -> None:
        self.config = config
        self._tx: dict[int, str] = {}
        self._rx: dict[int, set[str]] = {}
        self.version = 0
        self._index_version = -1
        self._tx_by_node: dict[str, list[int]] = {}
        self._rx_by_node: dict[str, list[int]] = {}
        self._free: list[int] = []

    def assign(self, slot: int, transmitter: str,
               listeners: set[str] | None = None) -> None:
        """Give ``slot`` to ``transmitter``; ``listeners`` wake to receive."""
        if not 0 <= slot < self.config.slots_per_frame:
            raise ValueError(
                f"slot {slot} out of range 0..{self.config.slots_per_frame - 1}")
        if slot in self._tx:
            raise ValueError(
                f"slot {slot} already assigned to {self._tx[slot]!r}")
        self._tx[slot] = transmitter
        self._rx[slot] = set(listeners or set()) - {transmitter}
        self.version += 1

    def clear(self, slot: int) -> None:
        had_tx = self._tx.pop(slot, None) is not None
        had_rx = self._rx.pop(slot, None) is not None
        if had_tx or had_rx:
            self.version += 1

    def transmitter(self, slot: int) -> str | None:
        return self._tx.get(slot)

    def listeners(self, slot: int) -> set[str]:
        return self._rx.get(slot, set())

    def _reindex(self) -> None:
        tx_by_node: dict[str, list[int]] = {}
        rx_by_node: dict[str, list[int]] = {}
        for slot in sorted(self._tx):
            tx_by_node.setdefault(self._tx[slot], []).append(slot)
        for slot in sorted(self._rx):
            for node_id in self._rx[slot]:
                rx_by_node.setdefault(node_id, []).append(slot)
        self._tx_by_node = tx_by_node
        self._rx_by_node = rx_by_node
        self._free = [s for s in range(self.config.slots_per_frame)
                      if s not in self._tx]
        self._index_version = self.version

    def tx_slots_of(self, node_id: str) -> list[int]:
        if self._index_version != self.version:
            self._reindex()
        return list(self._tx_by_node.get(node_id, ()))

    def rx_slots_of(self, node_id: str) -> list[int]:
        if self._index_version != self.version:
            self._reindex()
        return list(self._rx_by_node.get(node_id, ()))

    def free_slots(self) -> list[int]:
        if self._index_version != self.version:
            self._reindex()
        return list(self._free)

    @classmethod
    def round_robin(cls, config: RtLinkConfig, node_ids: list[str],
                    listeners_of: dict[str, set[str]] | None = None,
                    ) -> "RtLinkSchedule":
        """One TX slot per node, in order; listeners default to all others."""
        if len(node_ids) > config.slots_per_frame:
            raise ValueError(
                f"{len(node_ids)} nodes exceed {config.slots_per_frame} slots")
        schedule = cls(config)
        all_nodes = set(node_ids)
        for slot, node_id in enumerate(node_ids):
            if listeners_of is not None:
                listeners = set(listeners_of.get(node_id, set()))
            else:
                listeners = all_nodes - {node_id}
            schedule.assign(slot, node_id, listeners)
        return schedule


class RtLinkMac(MacProtocol):
    """Per-node RT-Link state machine."""

    def __init__(self, engine, node, port, schedule: RtLinkSchedule,
                 queue_capacity: int = 16, trace=None) -> None:
        super().__init__(engine, node, port, queue_capacity, trace)
        self.schedule = schedule
        self.config = schedule.config
        self._process: Process | None = None
        self._wheel: SlotWheel | None = None
        self.slots_woken = 0
        self.slots_transmitted = 0
        # Slot boundaries are a few hundred Hz of sim time: cool enough
        # to meter per occurrence.
        self._obs = instrument.rtlink_meters()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self.port.sleep()
        self._process = Process(self.engine, self._run(),
                                name=f"rtlink:{self.node_id}")

    def stop(self) -> None:
        super().stop()
        if self._process is not None:
            self._process.kill()
            self._process = None

    # ------------------------------------------------------------------
    # Slot engine
    # ------------------------------------------------------------------
    def _my_slot_kind(self, slot_index: int) -> str | None:
        if self.schedule.transmitter(slot_index) == self.node_id:
            return "tx"
        if self.node_id in self.schedule.listeners(slot_index):
            return "rx"
        return None

    def _next_interesting_slot(self, from_slot: int) -> tuple[int, str] | None:
        """(absolute slot number, kind) of the next slot >= ``from_slot``
        this node works.

        Reference walker: one whole-frame scan per call.  The live loop
        uses the O(log n) :class:`SlotWheel` calendar instead; this stays
        as the executable specification the property tests hold the wheel
        to."""
        for abs_slot in range(from_slot,
                              from_slot + self.config.slots_per_frame):
            kind = self._my_slot_kind(abs_slot % self.config.slots_per_frame)
            if kind is not None:
                return abs_slot, kind
        return None

    def _calendar(self) -> SlotWheel:
        """The node's slot wheel, rebuilt iff the schedule version moved."""
        wheel = self._wheel
        if wheel is None or wheel.version != self.schedule.version:
            wheel = self._wheel = SlotWheel(self.node_id, self.schedule)
        return wheel

    def _run(self):
        cfg = self.config
        # Cursor over absolute slot numbers: servicing a slot never causes
        # the next one to be skipped, even when wake-up runs late
        # (back-to-back RX slots are common at gateways).
        cursor = self.node.clock.local_time() // cfg.slot_ticks + 1
        while self.running:
            if self.node.failed:
                yield Delay(cfg.frame_ticks)
                cursor = self.node.clock.local_time() // cfg.slot_ticks + 1
                continue
            upcoming = self._calendar().next_interesting(cursor)
            if upcoming is None:
                yield Delay(cfg.frame_ticks)
                cursor += cfg.slots_per_frame
                continue
            abs_slot, kind = upcoming
            cursor = abs_slot + 1
            slot_start_local = abs_slot * cfg.slot_ticks
            wake_local = slot_start_local - cfg.guard_ticks
            local_now = self.node.clock.local_time()
            if wake_local > local_now:
                yield Delay(wake_local - local_now)
            if not self.running or self.node.failed:
                continue
            self.slots_woken += 1
            if self._obs is not None:
                self._obs.slots_woken.inc()
            if kind == "tx":
                yield from self._tx_slot(slot_start_local)
            else:
                yield from self._rx_slot(slot_start_local)

    def _tx_slot(self, slot_start_local: int):
        cfg = self.config
        self.port.idle()
        # Hold until the slot actually starts on the local clock.
        gap = slot_start_local - self.node.clock.local_time()
        if gap > 0:
            yield Delay(gap)
        # Pack frames into the slot while their airtime fits before the
        # trailing guard: control frames first, then bulk (migration,
        # capsule fragments) in the leftover airtime -- so bulk transfers
        # make progress without a second slot and without ever displacing
        # control traffic.
        slot_end_local = slot_start_local + cfg.slot_ticks - cfg.guard_ticks
        transmitted = 0
        while self.has_pending and not self.node.failed:
            packet = self.peek()
            airtime = self.node.radio.airtime(packet.on_air_bytes)
            if self.node.clock.local_time() + airtime > slot_end_local:
                break
            self.dequeue()
            self.port.transmit(packet, after_state=RadioState.IDLE)
            self._note_sent(packet)
            transmitted += 1
            yield Delay(airtime)
        if transmitted:
            self.slots_transmitted += 1
        if self._obs is not None:
            self._obs.slot_frames.observe(transmitted)
            if transmitted:
                self._obs.slots_transmitted.inc()
        self.port.sleep()

    def _rx_slot(self, slot_start_local: int):
        cfg = self.config
        self.port.listen()
        # Listen through the end of the slot plus a guard, however late the
        # wake-up was (never past the *next* slot's guard window).
        slot_end_local = slot_start_local + cfg.slot_ticks + cfg.guard_ticks
        remaining = slot_end_local - self.node.clock.local_time()
        if remaining > 0:
            yield Delay(remaining)
        if self.node.radio.state is RadioState.RX:
            self.port.sleep()

    def send(self, packet: Packet) -> bool:
        airtime = self.node.radio.airtime(packet.on_air_bytes)
        if not self.config.payload_fits(airtime):
            raise ValueError(
                f"packet airtime {airtime} ticks does not fit a "
                f"{self.config.slot_ticks}-tick slot; fragment at a higher "
                f"layer")
        return super().send(packet)
