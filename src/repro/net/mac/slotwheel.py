"""Precomputed interesting-slot calendar for the RT-Link TDMA MAC.

The naive RT-Link loop asks "what is my next interesting slot?" by
scanning the whole frame (``O(slots_per_frame)`` dict probes) every time
a node wakes.  At 1000 slots per frame that scan dominates wide-grid
trials.  A :class:`SlotWheel` precomputes the node's interesting slots
(its TX slot plus every slot it must listen in) as a sorted offset table
once per schedule *version*, so each lookup is a single ``bisect`` --
O(log interesting) -- and idle frames are skipped in O(1).

The wheel is a pure read-model: it is built from
``RtLinkSchedule.tx_slots_of/rx_slots_of`` and stamped with the
schedule's ``version``.  ``RtLinkMac`` rebuilds it whenever the stamp no
longer matches (``assign``/``clear`` bump the version), so calendars
never go stale under live reconfiguration.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.net.mac.rtlink import RtLinkSchedule

SLOT_TX = "tx"
SLOT_RX = "rx"


class SlotWheel:
    """One node's interesting-slot calendar for a schedule version."""

    __slots__ = ("node_id", "version", "slots_per_frame", "_offsets",
                 "_kinds")

    def __init__(self, node_id: str, schedule: "RtLinkSchedule") -> None:
        self.node_id = node_id
        self.version = schedule.version
        self.slots_per_frame = schedule.config.slots_per_frame
        entries = sorted(
            [(slot, SLOT_TX) for slot in schedule.tx_slots_of(node_id)]
            + [(slot, SLOT_RX) for slot in schedule.rx_slots_of(node_id)])
        self._offsets = [slot for slot, _ in entries]
        self._kinds = [kind for _, kind in entries]

    def __len__(self) -> int:
        return len(self._offsets)

    def next_interesting(self, from_abs_slot: int) -> tuple[int, str] | None:
        """First ``(abs_slot, kind)`` at or after ``from_abs_slot``.

        ``None`` when the node has no interesting slots at all (it never
        transmits and is nobody's listener).  ``kind`` is ``"tx"`` or
        ``"rx"``; a slot is never both (listeners exclude the
        transmitter).
        """
        offsets = self._offsets
        if not offsets:
            return None
        frame, offset = divmod(from_abs_slot, self.slots_per_frame)
        index = bisect_left(offsets, offset)
        if index == len(offsets):
            # Nothing left this frame: wrap to the first entry of the next.
            frame += 1
            index = 0
        return frame * self.slots_per_frame + offsets[index], \
            self._kinds[index]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"SlotWheel({self.node_id!r}, v{self.version}, "
                f"{len(self._offsets)}/{self.slots_per_frame} slots)")
