"""MAC-layer frames.

A :class:`Packet` carries an arbitrary Python payload plus an explicit
``size_bytes`` so airtime and energy stay faithful even though we skip real
serialization.  EVM object transfers compute their sizes from the task images
they carry.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

BROADCAST = "*"
"""Destination address meaning every node in radio range."""

_seq_counter = itertools.count(1)

HEADER_BYTES = 11
"""802.15.4 MAC header + FCS we charge on every frame."""


@dataclass
class Packet:
    """One MAC frame.

    ``kind`` is a dotted type tag used for dispatch (``"evm.health"``,
    ``"modbus.read"``, ...).  ``size_bytes`` is the MAC *payload* size; the
    total on-air size adds :data:`HEADER_BYTES` and the PHY header.
    """

    src: str
    dst: str
    kind: str
    payload: Any = None
    size_bytes: int = 32
    seq: int = field(default_factory=lambda: next(_seq_counter))
    created_at: int = 0
    hops: int = 0
    priority: int = 0
    """0 = control traffic (drained first); 1 = bulk (migration
    fragments, capsule dissemination) -- bulk transfers must not starve
    control loops sharing the node's TDMA slot."""

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError(f"negative packet size {self.size_bytes}")

    @property
    def on_air_bytes(self) -> int:
        """Bytes the radio actually clocks out for this frame."""
        return self.size_bytes + HEADER_BYTES

    @property
    def is_broadcast(self) -> bool:
        return self.dst == BROADCAST

    def forward_copy(self, new_src: str) -> "Packet":
        """A copy re-sourced for multi-hop forwarding (hop count bumped)."""
        return Packet(src=new_src, dst=self.dst, kind=self.kind,
                      payload=self.payload, size_bytes=self.size_bytes,
                      created_at=self.created_at, hops=self.hops + 1)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Packet(#{self.seq} {self.kind} {self.src}->{self.dst} "
                f"{self.size_bytes}B)")
