"""ModBus process-image gateway.

In the paper's hardware-in-loop rig, a gateway FireFly node speaks ModBus to
the workstation running Unisim and RT-Link to the wireless side.  We model:

- a :class:`ProcessImage` -- the gateway's register map.  Registers are
  16-bit, with a per-register scale factor, so values cross the wire with
  realistic quantization;
- a :class:`ModbusSerialLink` -- the workstation<->gateway serial channel
  with per-transaction latency, used by the plant HIL bridge;
- a :class:`ModbusGatewayService` -- the radio-facing request handler:
  ``modbus.read`` / ``modbus.write`` frames from wireless nodes are applied
  to the image and (for reads) answered with ``modbus.resp``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.net.mac.base import MacProtocol
from repro.net.packet import Packet
from repro.sim.clock import MS
from repro.sim.engine import Engine

RAW_MIN = 0
RAW_MAX = 0xFFFF


@dataclass
class RegisterSpec:
    """One 16-bit register: engineering range [lo, hi] maps onto 0..65535."""

    address: int
    name: str
    lo: float = 0.0
    hi: float = 100.0

    def encode(self, value: float) -> int:
        span = self.hi - self.lo
        if span <= 0:
            raise ValueError(f"register {self.name!r} has empty range")
        frac = (value - self.lo) / span
        raw = round(frac * RAW_MAX)
        return min(RAW_MAX, max(RAW_MIN, raw))

    def decode(self, raw: int) -> float:
        return self.lo + (raw / RAW_MAX) * (self.hi - self.lo)


class ProcessImage:
    """The register map shared by the plant bridge and the radio gateway."""

    def __init__(self) -> None:
        self._specs: dict[int, RegisterSpec] = {}
        self._raw: dict[int, int] = {}
        self._write_hooks: list[Callable[[int, float], None]] = []

    def define(self, address: int, name: str, lo: float = 0.0,
               hi: float = 100.0, initial: float = 0.0) -> RegisterSpec:
        if address in self._specs:
            raise ValueError(f"register {address} already defined")
        spec = RegisterSpec(address=address, name=name, lo=lo, hi=hi)
        self._specs[address] = spec
        self._raw[address] = spec.encode(initial)
        return spec

    def spec(self, address: int) -> RegisterSpec:
        if address not in self._specs:
            raise KeyError(f"undefined register {address}")
        return self._specs[address]

    def addresses(self) -> list[int]:
        return sorted(self._specs)

    def read(self, address: int) -> float:
        return self.spec(address).decode(self._raw[address])

    def read_raw(self, address: int) -> int:
        self.spec(address)
        return self._raw[address]

    def write(self, address: int, value: float) -> None:
        spec = self.spec(address)
        self._raw[address] = spec.encode(value)
        for hook in self._write_hooks:
            hook(address, self.read(address))

    def write_raw(self, address: int, raw: int) -> None:
        self.spec(address)
        if not RAW_MIN <= raw <= RAW_MAX:
            raise ValueError(f"raw value {raw} out of 16-bit range")
        self._raw[address] = raw

    def on_write(self, hook: Callable[[int, float], None]) -> None:
        """Observe every write (HIL bridge pushes actuator writes to plant)."""
        self._write_hooks.append(hook)


class ModbusSerialLink:
    """Workstation <-> gateway serial channel with transaction latency."""

    def __init__(self, engine: Engine, image: ProcessImage,
                 transaction_ticks: int = 5 * MS) -> None:
        self.engine = engine
        self.image = image
        self.transaction_ticks = transaction_ticks
        self.transactions = 0

    def read_async(self, address: int,
                   callback: Callable[[float], None]) -> None:
        """Deliver the register value after one transaction delay."""
        self.transactions += 1

        def finish() -> None:
            callback(self.image.read(address))

        self.engine.post(self.transaction_ticks, finish)

    def write_async(self, address: int, value: float,
                    callback: Callable[[], None] | None = None) -> None:
        """Apply a write after one transaction delay."""
        self.transactions += 1

        def finish() -> None:
            self.image.write(address, value)
            if callback is not None:
                callback()

        self.engine.post(self.transaction_ticks, finish)

    def write_many_async(self, items: list[tuple[int, float]]) -> None:
        """Apply a batch of writes after one transaction delay.

        The whole batch rides a single engine event (the HIL bridge
        publishes every sensor PV each plant step; per-write closures
        dominated that path) but still counts one transaction per
        register, and the writes apply in list order -- exactly the
        outcome of ``write_async`` per item.
        """
        self.transactions += len(items)
        self.engine.post(self.transaction_ticks, self._apply_many, items)

    def _apply_many(self, items: list[tuple[int, float]]) -> None:
        write = self.image.write
        for address, value in items:
            write(address, value)


class ModbusGatewayService:
    """Radio-side request handler running on the gateway node.

    Wireless peers send frames:

    - ``kind="modbus.read"``, payload ``address`` -> answered with
      ``kind="modbus.resp"``, payload ``(address, value)``;
    - ``kind="modbus.write"``, payload ``(address, value)`` -> applied,
      no response (class-0 write).

    Responses are queued on the gateway's MAC and ride its TDMA slots.
    """

    def __init__(self, engine: Engine, mac: MacProtocol,
                 image: ProcessImage) -> None:
        self.engine = engine
        self.mac = mac
        self.image = image
        self.reads_served = 0
        self.writes_applied = 0
        self.errors = 0
        self._fallthrough: Callable[[Packet], None] | None = None
        mac.set_receive_handler(self._on_packet)

    def set_fallthrough(self, fn: Callable[[Packet], None]) -> None:
        """Non-ModBus frames arriving at the gateway go here."""
        self._fallthrough = fn

    def _on_packet(self, packet: Packet) -> None:
        if packet.kind == "modbus.read":
            self._serve_read(packet)
        elif packet.kind == "modbus.write":
            self._apply_write(packet)
        elif self._fallthrough is not None:
            self._fallthrough(packet)

    def _serve_read(self, request: Packet) -> None:
        address = request.payload
        try:
            value = self.image.read(address)
        except KeyError:
            self.errors += 1
            return
        self.reads_served += 1
        response = Packet(src=self.mac.node_id, dst=request.src,
                          kind="modbus.resp", payload=(address, value),
                          size_bytes=8, created_at=self.engine.now)
        self.mac.send(response)

    def _apply_write(self, request: Packet) -> None:
        address, value = request.payload
        try:
            self.image.write(address, value)
        except KeyError:
            self.errors += 1
            return
        self.writes_applied += 1
