"""Per-link packet-reception models.

The medium asks the link-quality model one question per (link, frame):
did this frame survive the channel?  Two implementations:

- :class:`PerfectLinks` -- every in-range frame survives (unit tests,
  protocol-logic experiments);
- :class:`PathLossModel` -- log-distance path loss mapped to a packet
  reception ratio via a logistic curve, the standard low-power-wireless
  abstraction; good links saturate near ``prr_ceiling``.
"""

from __future__ import annotations

import math
import random


class LinkQualityModel:
    """Interface: decide per-frame survival for a directed link."""

    def frame_survives(self, distance_m: float, size_bytes: int,
                       rng: random.Random) -> bool:
        raise NotImplementedError

    def frame_survives_link(self, sender: str, receiver: str,
                            distance_m: float, size_bytes: int,
                            rng: random.Random) -> bool:
        """Link-identity-aware survival; defaults to :meth:`frame_survives`.

        The medium always calls this entry point.  Models that treat every
        link alike ignore the endpoint ids; wrappers such as
        :class:`DegradedLinks` use them to target specific links.
        """
        return self.frame_survives(distance_m, size_bytes, rng)

    def expected_prr(self, distance_m: float, size_bytes: int = 32) -> float:
        """Expected packet reception ratio (diagnostics/benchmarks)."""
        raise NotImplementedError

    def expected_prr_link(self, sender: str, receiver: str,
                          distance_m: float, size_bytes: int = 32) -> float:
        """Link-identity-aware expected PRR; defaults to
        :meth:`expected_prr`.  Diagnostics that know which link they ask
        about should use this so per-link wrappers are visible."""
        return self.expected_prr(distance_m, size_bytes)


class PerfectLinks(LinkQualityModel):
    """All in-range frames survive; range is enforced by the topology."""

    def frame_survives(self, distance_m: float, size_bytes: int,
                       rng: random.Random) -> bool:
        return True

    def expected_prr(self, distance_m: float, size_bytes: int = 32) -> float:
        return 1.0


class FixedPrr(LinkQualityModel):
    """Uniform i.i.d. loss at a fixed reception ratio (fault injection)."""

    def __init__(self, prr: float) -> None:
        if not 0.0 <= prr <= 1.0:
            raise ValueError(f"PRR must be in [0,1], got {prr}")
        self.prr = prr

    def frame_survives(self, distance_m: float, size_bytes: int,
                       rng: random.Random) -> bool:
        return rng.random() < self.prr

    def expected_prr(self, distance_m: float, size_bytes: int = 32) -> float:
        return self.prr


class DegradedLinks(LinkQualityModel):
    """Fault-injection wrapper: multiply a base model's survival by ``prr``.

    A frame survives only if the base model delivers it AND an extra
    Bernoulli draw at ``prr`` passes.  With ``links`` given, only those
    (unordered) node pairs are degraded; otherwise every link is.  The
    wrapper stays installed when the fault window closes -- reverting just
    flips :attr:`active` -- so overlapping fault windows restore cleanly in
    any order.

    Targeted (``links``-scoped) degradation is only visible through the
    link-aware entry points (``frame_survives_link`` -- which the medium
    always uses -- and ``expected_prr_link``); the legacy link-unaware
    ``frame_survives``/``expected_prr`` cannot know the endpoints and
    report the base model's behavior.
    """

    def __init__(self, base: LinkQualityModel, prr: float,
                 links: tuple[tuple[str, str], ...] | None = None) -> None:
        if not 0.0 <= prr <= 1.0:
            raise ValueError(f"PRR must be in [0,1], got {prr}")
        self.base = base
        self.prr = prr
        self.links = (frozenset(frozenset(pair) for pair in links)
                      if links else None)
        self.active = True

    def _degrades(self, sender: str, receiver: str) -> bool:
        if not self.active:
            return False
        if self.links is None:
            return True
        return frozenset((sender, receiver)) in self.links

    def frame_survives(self, distance_m: float, size_bytes: int,
                       rng: random.Random) -> bool:
        survives = self.base.frame_survives(distance_m, size_bytes, rng)
        if self.active and self.links is None:
            return survives and rng.random() < self.prr
        return survives

    def frame_survives_link(self, sender: str, receiver: str,
                            distance_m: float, size_bytes: int,
                            rng: random.Random) -> bool:
        survives = self.base.frame_survives_link(
            sender, receiver, distance_m, size_bytes, rng)
        if self._degrades(sender, receiver):
            return survives and rng.random() < self.prr
        return survives

    def expected_prr(self, distance_m: float, size_bytes: int = 32) -> float:
        base = self.base.expected_prr(distance_m, size_bytes)
        if self.active and self.links is None:
            return base * self.prr
        return base

    def expected_prr_link(self, sender: str, receiver: str,
                          distance_m: float, size_bytes: int = 32) -> float:
        base = self.base.expected_prr_link(sender, receiver, distance_m,
                                           size_bytes)
        if self._degrades(sender, receiver):
            return base * self.prr
        return base


class PathLossModel(LinkQualityModel):
    """Log-distance path loss -> SNR -> logistic PRR.

    ``reference_distance_m`` receives ``snr_at_reference`` dB of margin;
    each doubling of distance costs ``3.01 * path_loss_exponent`` dB.  The
    margin maps to a per-byte survival probability through a logistic curve,
    so longer frames fare worse, as on real 802.15.4 links.
    """

    def __init__(
        self,
        reference_distance_m: float = 10.0,
        snr_at_reference: float = 12.0,
        path_loss_exponent: float = 3.0,
        shadowing_std_db: float = 2.0,
        prr_ceiling: float = 0.999,
    ) -> None:
        if reference_distance_m <= 0:
            raise ValueError("reference distance must be positive")
        self.reference_distance_m = reference_distance_m
        self.snr_at_reference = snr_at_reference
        self.path_loss_exponent = path_loss_exponent
        self.shadowing_std_db = shadowing_std_db
        self.prr_ceiling = prr_ceiling

    def _margin_db(self, distance_m: float) -> float:
        d = max(distance_m, 0.1)
        loss = 10.0 * self.path_loss_exponent * math.log10(
            d / self.reference_distance_m)
        return self.snr_at_reference - loss

    def _byte_success(self, margin_db: float) -> float:
        # Logistic in SNR margin: ~0.5 at 0 dB, saturating by ~6 dB.
        p = 1.0 / (1.0 + math.exp(-1.2 * margin_db))
        return min(self.prr_ceiling ** (1.0 / 64.0), p)

    def expected_prr(self, distance_m: float, size_bytes: int = 32) -> float:
        margin = self._margin_db(distance_m)
        return self._byte_success(margin) ** max(1, size_bytes)

    def frame_survives(self, distance_m: float, size_bytes: int,
                       rng: random.Random) -> bool:
        margin = self._margin_db(distance_m)
        if self.shadowing_std_db > 0:
            margin += rng.gauss(0.0, self.shadowing_std_db)
        prr = self._byte_success(margin) ** max(1, size_bytes)
        return rng.random() < prr
