"""The shared radio medium.

Single-channel 802.15.4 propagation with audibility from the topology graph,
per-frame survival from a pluggable link-quality model, and overlap-based
collision detection: a receiver that can hear two temporally overlapping
transmissions decodes neither.  Propagation delay is negligible at in-plant
ranges and is modeled as zero; reception completes at end-of-frame.

MAC protocols attach through a :class:`MediumPort`, which couples frame
transfer to the node's radio power state (frames are only heard in RX, and
transmitting drives the TX state for the full airtime).

The hot paths are indexed rather than scanned:

- per-receiver **audible-sender sets** (and per-sender neighbor tuples) are
  precomputed from the topology and invalidated by its ``version`` counter;
- ``_active`` is a start-time-ordered deque pruned incrementally from the
  front (engine time is monotone, so appends arrive in order);
- a per-node ``busy_until`` horizon makes :meth:`MediumPort.channel_busy`
  a single dict lookup instead of a scan over all in-flight frames;
- end-of-frame resolution is **batched**: completion resolves all receivers
  in one pass over a prebuilt per-sender ``(port, node, distance, audible)``
  row list (cached against ``Topology.version`` and invalidated by
  :meth:`Medium.attach`), with the temporal overlap window computed once
  per completion instead of once per receiver, and stats counters
  accumulated in locals and flushed once.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.hardware.node import FireFlyNode
from repro.hardware.radio import RadioState
from repro.net.link_quality import LinkQualityModel, PerfectLinks
from repro.net.packet import Packet
from repro.net.topology import Topology
from repro.obs import instrument
from repro.sim.engine import Engine
from repro.sim.trace import Trace


@dataclass(slots=True)
class _Transmission:
    """One in-flight frame."""

    sender: str
    packet: Packet
    start: int
    end: int


@dataclass
class MediumStats:
    """Counters the MAC-comparison benchmarks read."""

    frames_sent: int = 0
    frames_delivered: int = 0
    collisions: int = 0
    channel_losses: int = 0
    missed_radio_off: int = 0


class MediumPort:
    """A node's attachment point to the medium."""

    def __init__(self, medium: "Medium", node: FireFlyNode) -> None:
        self.medium = medium
        self.node = node
        self.receive_callback: Callable[[Packet], None] | None = None

    def set_receive_callback(self, fn: Callable[[Packet], None]) -> None:
        self.receive_callback = fn

    def transmit(self, packet: Packet,
                 after_state: RadioState = RadioState.IDLE) -> int:
        """Send ``packet``; returns the airtime in ticks.

        The radio is driven to TX for the whole airtime, then to
        ``after_state``.  Delivery outcomes resolve at end-of-frame.
        """
        return self.medium._transmit(self.node, packet, after_state)

    def channel_busy(self) -> bool:
        """Carrier sense: is any audible transmission in flight right now?"""
        return self.medium._channel_busy(self.node.node_id)

    def listen(self) -> None:
        self.node.radio.set_state(RadioState.RX)

    def sleep(self) -> None:
        self.node.radio.set_state(RadioState.OFF)

    def idle(self) -> None:
        self.node.radio.set_state(RadioState.IDLE)


class Medium:
    """Owns all ports, in-flight transmissions and delivery resolution."""

    def __init__(self, engine: Engine, topology: Topology,
                 link_model: LinkQualityModel | None = None,
                 rng: random.Random | None = None,
                 trace: Trace | None = None) -> None:
        self.engine = engine
        self.topology = topology
        self.link_model = link_model or PerfectLinks()
        self.rng = rng or random.Random(0)
        self.trace = trace  # property: also maintains trace_enabled
        self.stats = MediumStats()
        # Telemetry piggybacks on the existing per-completion batch
        # flush; one None-check per frame send/complete when disabled.
        self._obs = instrument.medium_meters()
        self._ports: dict[str, MediumPort] = {}
        # Ordered by (non-decreasing) start time; pruned from the front.
        self._active: deque[_Transmission] = deque()
        # Topology-derived indexes, rebuilt when topology.version moves.
        self._topo_version = topology.version
        self._neighbor_tuples: dict[str, tuple[str, ...]] = {}
        self._audible_sets: dict[str, frozenset[str]] = {}
        self._busy_until: dict[str, int] = {}
        # Per-sender receiver rows: (port, node, receiver_id, distance,
        # audible-set) for every *attached* neighbor, in topology insertion
        # order.  Invalidated by topology bumps and by attach().
        self._receiver_rows: dict[
            str, tuple[tuple[MediumPort, FireFlyNode, str, float,
                             frozenset[str]], ...]] = {}

    def attach(self, node: FireFlyNode) -> MediumPort:
        if node.node_id in self._ports:
            raise ValueError(f"node {node.node_id!r} already attached")
        if node.node_id not in self.topology:
            raise KeyError(f"node {node.node_id!r} not in topology")
        port = MediumPort(self, node)
        self._ports[node.node_id] = port
        # A new port can appear in any sender's receiver set.
        self._receiver_rows.clear()
        return port

    def port(self, node_id: str) -> MediumPort:
        return self._ports[node_id]

    @property
    def trace(self) -> Trace | None:
        return self._trace

    @trace.setter
    def trace(self, value: Trace | None) -> None:
        # trace_enabled is the hot-path bool the no-trace campaign path
        # branches on; the property keeps it in lockstep even when a
        # trace is attached or detached after construction.
        self._trace = value
        self.trace_enabled = value is not None

    # ------------------------------------------------------------------
    # Topology indexes
    # ------------------------------------------------------------------
    def _check_indexes(self) -> None:
        if self._topo_version != self.topology.version:
            self._rebuild_indexes()
            # Full verification only on the (rare) rebuild edge; stripped
            # under -O.  Guards against a future rebuild that tries to
            # preserve cache entries and leaves stale keys behind.
            assert self.check_indexes_consistent()

    def _rebuild_indexes(self) -> None:
        """Invalidate neighbor caches and recompute carrier-sense horizons
        for the frames still in flight under the *new* topology."""
        self._topo_version = self.topology.version
        self._neighbor_tuples.clear()
        self._audible_sets.clear()
        self._busy_until.clear()
        self._receiver_rows.clear()
        now = self.engine.now
        for tx in self._active:
            if tx.end > now:
                self._raise_busy_horizons(tx.sender, tx.end)

    def check_indexes_consistent(self) -> bool:
        """True iff every cached index entry matches a fresh computation
        from the current topology and no stale (evicted-topology) keys
        remain.  O(cache size); used by the rebuild assert and tests."""
        topology = self.topology
        if self._topo_version != topology.version:
            return False
        for sender, cached in self._neighbor_tuples.items():
            if cached != tuple(topology.neighbors(sender)):
                return False
        for receiver, cached in self._audible_sets.items():
            if cached != frozenset(topology.neighbors(receiver)):
                return False
        for sender, rows in self._receiver_rows.items():
            expected = [rid for rid in topology.neighbors(sender)
                        if rid in self._ports]
            if [row[2] for row in rows] != expected:
                return False
            if any(row[3] != topology.distance(sender, row[2])
                   or row[4] != frozenset(topology.neighbors(row[2]))
                   for row in rows):
                return False
        return True

    def _neighbors_of(self, sender: str) -> tuple[str, ...]:
        """Audible receivers of ``sender``, in topology insertion order
        (the order the unindexed medium resolved receptions in)."""
        cached = self._neighbor_tuples.get(sender)
        if cached is None:
            cached = tuple(self.topology.neighbors(sender))
            self._neighbor_tuples[sender] = cached
        return cached

    def _audible_at(self, receiver: str) -> frozenset[str]:
        """Senders whose frames reach ``receiver`` (symmetric graph)."""
        cached = self._audible_sets.get(receiver)
        if cached is None:
            cached = frozenset(self.topology.neighbors(receiver))
            self._audible_sets[receiver] = cached
        return cached

    def _raise_busy_horizons(self, sender: str, end: int) -> None:
        busy = self._busy_until
        if busy.get(sender, 0) < end:
            busy[sender] = end
        for nid in self._neighbors_of(sender):
            if busy.get(nid, 0) < end:
                busy[nid] = end

    # ------------------------------------------------------------------
    # Transmission pipeline
    # ------------------------------------------------------------------
    def _transmit(self, node: FireFlyNode, packet: Packet,
                  after_state: RadioState) -> int:
        if node.failed:
            raise RuntimeError(
                f"failed node {node.node_id!r} attempted to transmit")
        self._check_indexes()
        airtime = node.radio.airtime(packet.on_air_bytes)
        now = self.engine.now
        tx = _Transmission(sender=node.node_id, packet=packet,
                           start=now, end=now + airtime)
        self._active.append(tx)
        self._raise_busy_horizons(node.node_id, tx.end)
        self.stats.frames_sent += 1
        if self._obs is not None:
            self._obs.frames_sent.inc()
        node.radio.set_state(RadioState.TX)
        if self.trace_enabled:
            self.trace.record(now, "medium.tx", node.node_id,
                              kind=packet.kind, dst=packet.dst,
                              bytes=packet.on_air_bytes, seq=packet.seq)
        self.engine.post(airtime, self._complete, tx, node, after_state)
        return airtime

    def _receiver_rows_of(self, sender: str) -> tuple[tuple, ...]:
        """Resolution rows for ``sender``'s frames: one ``(port, node,
        receiver_id, distance, audible)`` entry per *attached* neighbor,
        in topology insertion order (the order the unindexed medium
        resolved receptions in)."""
        rows = []
        ports = self._ports
        topology = self.topology
        for receiver_id in self._neighbors_of(sender):
            port = ports.get(receiver_id)
            if port is None:
                continue
            rows.append((port, port.node, receiver_id,
                         topology.distance(sender, receiver_id),
                         self._audible_at(receiver_id)))
        cached = tuple(rows)
        self._receiver_rows[sender] = cached
        return cached

    def _complete(self, tx: _Transmission, node: FireFlyNode,
                  after_state: RadioState) -> None:
        """Resolve one finished frame at every audible receiver.

        Per-receiver dict lookups (port, distance, audible set) come from
        the prebuilt receiver rows, the temporal overlap window over
        ``_active`` is computed once for the whole completion instead of
        once per receiver, and stats counters accumulate in locals that
        flush in a single batch."""
        if not node.failed:
            node.radio.set_state(after_state)
        self._check_indexes()
        sender = tx.sender
        rows = self._receiver_rows.get(sender)
        if rows is None:
            rows = self._receiver_rows_of(sender)
        # Senders of every frame that temporally overlapped tx.  The deque
        # is start-ordered, so the scan early-breaks past tx's end.
        tx_start = tx.start
        tx_end = tx.end
        overlap: list[str] = []
        for other in self._active:
            if other.start >= tx_end:
                break
            if other is not tx and other.end > tx_start:
                overlap.append(other.sender)
        packet = tx.packet
        on_air = packet.on_air_bytes
        survives = self.link_model.frame_survives_link
        rng = self.rng
        trace = self.trace
        traced = self.trace_enabled
        rx_state = RadioState.RX
        delivered = collisions = losses = missed = 0
        for port, rnode, receiver_id, distance, audible in rows:
            if rnode.failed or rnode.radio.state is not rx_state:
                missed += 1
                continue
            if overlap:
                collided = False
                for other_sender in overlap:
                    if other_sender == receiver_id:
                        collided = True  # receiver was itself transmitting
                        break
                    if other_sender in audible:
                        collided = True
                        break
                if collided:
                    collisions += 1
                    if traced:
                        trace.record(self.engine.now, "medium.collision",
                                     receiver_id, seq=packet.seq,
                                     sender=sender)
                    continue
            if not survives(sender, receiver_id, distance, on_air, rng):
                losses += 1
                if traced:
                    trace.record(self.engine.now, "medium.loss", receiver_id,
                                 seq=packet.seq, sender=sender)
                continue
            delivered += 1
            if traced:
                trace.record(self.engine.now, "medium.rx", receiver_id,
                             kind=packet.kind, src=sender, seq=packet.seq)
            if port.receive_callback is not None:
                port.receive_callback(packet)
        stats = self.stats
        stats.frames_delivered += delivered
        stats.collisions += collisions
        stats.channel_losses += losses
        stats.missed_radio_off += missed
        obs = self._obs
        if obs is not None:
            obs.frames_delivered.inc(delivered)
            obs.collisions.inc(collisions)
            obs.channel_losses.inc(losses)
        # Keep finished transmissions around for a grace window so later
        # frames that overlapped them still detect the collision; pruned
        # incrementally in _prune (B-MAC preambles are the longest frames).
        self._prune()

    _GRACE_TICKS = 250_000  # 250 ms > longest preamble airtime

    def _prune(self) -> None:
        """Drop expired frames from the (start-ordered) front.

        An entry whose ``end`` is still inside the grace window blocks
        entries behind it, but airtime is bounded well below the grace
        window, so the retained span -- and the deque -- stays bounded.
        Entries a full-list sweep would also have dropped can never
        overlap a live frame, so retaining them briefly is unobservable.
        """
        horizon = self.engine.now - self._GRACE_TICKS
        active = self._active
        while active and active[0].end < horizon:
            active.popleft()

    def _channel_busy(self, node_id: str) -> bool:
        if self._topo_version != self.topology.version:
            self._rebuild_indexes()
        return self._busy_until.get(node_id, 0) > self.engine.clock._now
