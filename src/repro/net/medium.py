"""The shared radio medium.

Single-channel 802.15.4 propagation with audibility from the topology graph,
per-frame survival from a pluggable link-quality model, and overlap-based
collision detection: a receiver that can hear two temporally overlapping
transmissions decodes neither.  Propagation delay is negligible at in-plant
ranges and is modeled as zero; reception completes at end-of-frame.

MAC protocols attach through a :class:`MediumPort`, which couples frame
transfer to the node's radio power state (frames are only heard in RX, and
transmitting drives the TX state for the full airtime).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.hardware.node import FireFlyNode
from repro.hardware.radio import RadioState
from repro.net.link_quality import LinkQualityModel, PerfectLinks
from repro.net.packet import Packet
from repro.net.topology import Topology
from repro.sim.engine import Engine
from repro.sim.trace import Trace


@dataclass
class _Transmission:
    """One in-flight frame."""

    sender: str
    packet: Packet
    start: int
    end: int


@dataclass
class MediumStats:
    """Counters the MAC-comparison benchmarks read."""

    frames_sent: int = 0
    frames_delivered: int = 0
    collisions: int = 0
    channel_losses: int = 0
    missed_radio_off: int = 0


class MediumPort:
    """A node's attachment point to the medium."""

    def __init__(self, medium: "Medium", node: FireFlyNode) -> None:
        self.medium = medium
        self.node = node
        self.receive_callback: Callable[[Packet], None] | None = None

    def set_receive_callback(self, fn: Callable[[Packet], None]) -> None:
        self.receive_callback = fn

    def transmit(self, packet: Packet,
                 after_state: RadioState = RadioState.IDLE) -> int:
        """Send ``packet``; returns the airtime in ticks.

        The radio is driven to TX for the whole airtime, then to
        ``after_state``.  Delivery outcomes resolve at end-of-frame.
        """
        return self.medium._transmit(self.node, packet, after_state)

    def channel_busy(self) -> bool:
        """Carrier sense: is any audible transmission in flight right now?"""
        return self.medium._channel_busy(self.node.node_id)

    def listen(self) -> None:
        self.node.radio.set_state(RadioState.RX)

    def sleep(self) -> None:
        self.node.radio.set_state(RadioState.OFF)

    def idle(self) -> None:
        self.node.radio.set_state(RadioState.IDLE)


class Medium:
    """Owns all ports, in-flight transmissions and delivery resolution."""

    def __init__(self, engine: Engine, topology: Topology,
                 link_model: LinkQualityModel | None = None,
                 rng: random.Random | None = None,
                 trace: Trace | None = None) -> None:
        self.engine = engine
        self.topology = topology
        self.link_model = link_model or PerfectLinks()
        self.rng = rng or random.Random(0)
        self.trace = trace
        self.stats = MediumStats()
        self._ports: dict[str, MediumPort] = {}
        self._active: list[_Transmission] = []

    def attach(self, node: FireFlyNode) -> MediumPort:
        if node.node_id in self._ports:
            raise ValueError(f"node {node.node_id!r} already attached")
        if node.node_id not in self.topology:
            raise KeyError(f"node {node.node_id!r} not in topology")
        port = MediumPort(self, node)
        self._ports[node.node_id] = port
        return port

    def port(self, node_id: str) -> MediumPort:
        return self._ports[node_id]

    # ------------------------------------------------------------------
    # Transmission pipeline
    # ------------------------------------------------------------------
    def _transmit(self, node: FireFlyNode, packet: Packet,
                  after_state: RadioState) -> int:
        if node.failed:
            raise RuntimeError(
                f"failed node {node.node_id!r} attempted to transmit")
        airtime = node.radio.airtime(packet.on_air_bytes)
        tx = _Transmission(sender=node.node_id, packet=packet,
                           start=self.engine.now,
                           end=self.engine.now + airtime)
        self._active.append(tx)
        self.stats.frames_sent += 1
        node.radio.set_state(RadioState.TX)
        if self.trace is not None:
            self.trace.record(self.engine.now, "medium.tx", node.node_id,
                              kind=packet.kind, dst=packet.dst,
                              bytes=packet.on_air_bytes, seq=packet.seq)
        self.engine.schedule(airtime, self._complete, tx, node, after_state)
        return airtime

    def _complete(self, tx: _Transmission, node: FireFlyNode,
                  after_state: RadioState) -> None:
        if not node.failed:
            node.radio.set_state(after_state)
        for receiver_id in self.topology.neighbors(tx.sender):
            self._resolve_reception(tx, receiver_id)
        # Keep finished transmissions around for a grace window so later
        # frames that overlapped them still detect the collision; pruned
        # lazily in _prune (B-MAC preambles are the longest frames).
        self._prune()

    _GRACE_TICKS = 250_000  # 250 ms > longest preamble airtime

    def _prune(self) -> None:
        horizon = self.engine.now - self._GRACE_TICKS
        self._active = [t for t in self._active if t.end >= horizon]

    def _resolve_reception(self, tx: _Transmission, receiver_id: str) -> None:
        port = self._ports.get(receiver_id)
        if port is None:
            return
        node = port.node
        if node.failed or node.radio.state is not RadioState.RX:
            self.stats.missed_radio_off += 1
            return
        if self._collided_at(tx, receiver_id):
            self.stats.collisions += 1
            if self.trace is not None:
                self.trace.record(self.engine.now, "medium.collision",
                                  receiver_id, seq=tx.packet.seq,
                                  sender=tx.sender)
            return
        distance = self.topology.distance(tx.sender, receiver_id)
        if not self.link_model.frame_survives_link(tx.sender, receiver_id,
                                                   distance,
                                                   tx.packet.on_air_bytes,
                                                   self.rng):
            self.stats.channel_losses += 1
            if self.trace is not None:
                self.trace.record(self.engine.now, "medium.loss", receiver_id,
                                  seq=tx.packet.seq, sender=tx.sender)
            return
        self.stats.frames_delivered += 1
        if self.trace is not None:
            self.trace.record(self.engine.now, "medium.rx", receiver_id,
                              kind=tx.packet.kind, src=tx.sender,
                              seq=tx.packet.seq)
        if port.receive_callback is not None:
            port.receive_callback(tx.packet)

    def _collided_at(self, tx: _Transmission, receiver_id: str) -> bool:
        """True if another overlapping frame was audible at the receiver."""
        for other in self._active:
            if other is tx:
                continue
            if other.end <= tx.start or other.start >= tx.end:
                continue
            if other.sender == receiver_id:
                return True  # receiver was itself transmitting
            if self.topology.has_link(other.sender, receiver_id):
                return True
        return False

    def _channel_busy(self, node_id: str) -> bool:
        for tx in self._active:
            if tx.end <= self.engine.now:
                continue
            if tx.sender == node_id:
                return True
            if self.topology.has_link(tx.sender, node_id):
                return True
        return False
