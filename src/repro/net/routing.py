"""Implicit tree routing.

nano-RK ships a tree routing protocol; the EVM uses it for multi-hop Virtual
Components that span more than one radio hop.  A :class:`TreeRouter` sits
between the EVM and the MAC: it owns a next-hop table derived from a BFS tree
rooted at the gateway, forwards frames not addressed to its node, and
delivers the rest upward.
"""

from __future__ import annotations

from typing import Callable

import networkx as nx

from repro.net.mac.base import MacProtocol
from repro.net.packet import BROADCAST, Packet
from repro.net.topology import Topology


def build_tree_tables(topology: Topology, root: str,
                      ) -> dict[str, dict[str, str]]:
    """Per-node next-hop tables over the BFS tree rooted at ``root``.

    Returns ``tables[node][destination] = next_hop``.  Only tree edges are
    used, matching an implicit-tree protocol where nodes know their parent
    and children but not the full graph.
    """
    if root not in topology:
        raise KeyError(f"root {root!r} not in topology")
    tree = nx.bfs_tree(topology.graph, root).to_undirected()
    tables: dict[str, dict[str, str]] = {}
    for node in tree.nodes:
        paths = nx.shortest_path(tree, node)
        table = {}
        for dst, path in paths.items():
            if dst == node or len(path) < 2:
                continue
            table[dst] = path[1]
        tables[node] = table
    return tables


class TreeRouter:
    """Forwarding layer bound to one node's MAC."""

    def __init__(self, mac: MacProtocol, next_hops: dict[str, str]) -> None:
        self.mac = mac
        self.next_hops = dict(next_hops)
        self.deliver_handler: Callable[[Packet], None] | None = None
        self.forwarded = 0
        self.no_route_drops = 0
        mac.set_receive_handler(self._on_packet)

    @property
    def node_id(self) -> str:
        return self.mac.node_id

    def set_deliver_handler(self, fn: Callable[[Packet], None]) -> None:
        self.deliver_handler = fn

    def update_routes(self, next_hops: dict[str, str]) -> None:
        """Swap the table after a topology change (EVM membership events)."""
        self.next_hops = dict(next_hops)

    def send(self, packet: Packet) -> bool:
        """Route ``packet`` toward ``packet.dst`` (may be multi-hop away)."""
        if packet.is_broadcast or packet.dst == self.node_id:
            raise ValueError(
                "TreeRouter.send expects a remote unicast destination")
        next_hop = self.next_hops.get(packet.dst)
        if next_hop is None:
            self.no_route_drops += 1
            return False
        link_frame = Packet(src=self.node_id, dst=next_hop, kind=packet.kind,
                            payload=(packet.dst, packet.payload),
                            size_bytes=packet.size_bytes,
                            created_at=packet.created_at or None
                            or packet.created_at, hops=packet.hops)
        # Preserve origination time for end-to-end latency accounting.
        link_frame.created_at = packet.created_at
        link_frame.kind = "route." + packet.kind
        return self.mac.send(link_frame)

    def _on_packet(self, packet: Packet) -> None:
        if not packet.kind.startswith("route."):
            # Single-hop traffic passes straight through.
            if self.deliver_handler is not None:
                self.deliver_handler(packet)
            return
        final_dst, inner_payload = packet.payload
        original = Packet(src=packet.src, dst=final_dst,
                          kind=packet.kind[len("route."):],
                          payload=inner_payload,
                          size_bytes=packet.size_bytes,
                          created_at=packet.created_at,
                          hops=packet.hops)
        if final_dst == self.node_id:
            if self.deliver_handler is not None:
                self.deliver_handler(original)
            return
        original.hops += 1
        self.forwarded += 1
        self.send(original)


class RoutedMacAdapter:
    """Presents the MAC interface over a :class:`TreeRouter`, so EVM
    runtimes work unchanged on multi-hop Virtual Components.

    - unicast frames to non-neighbors are routed over the tree;
    - broadcast frames are flooded: each node retransmits a broadcast it
      has not seen before (dedup by origin sequence number), bounded by
      ``flood_ttl`` hops.

    **Flood suppression** (``suppress_threshold > 0``): instead of
    relaying a fresh broadcast immediately, the node holds the relay for
    ``suppress_delay_ticks`` and counts the duplicate copies it
    overhears meanwhile.  If at least ``suppress_threshold`` neighbors
    relayed the same flood first, this node's copy is redundant and is
    dropped (counter-based broadcast suppression).  Local delivery is
    never delayed -- only the rebroadcast.  The default (``0``) keeps
    the classic relay-at-once flood, bit-identical to earlier behavior.
    """

    FLOOD_PREFIX = "flood."

    def __init__(self, mac: MacProtocol, next_hops: dict[str, str],
                 flood_ttl: int = 4, suppress_threshold: int = 0,
                 suppress_delay_ticks: int = 0) -> None:
        self.mac = mac
        self.router = TreeRouter(mac, next_hops)
        self.flood_ttl = flood_ttl
        self.suppress_threshold = suppress_threshold
        self.suppress_delay_ticks = suppress_delay_ticks
        self._seen_floods: set[tuple[str, int]] = set()
        # Pending relay decisions: flood key -> [duplicates overheard].
        self._pending_relays: dict[tuple[str, int], list[int]] = {}
        self._handler: Callable[[Packet], None] | None = None
        self.router.set_deliver_handler(self._deliver)
        self.floods_relayed = 0
        self.floods_suppressed = 0
        self.duplicate_floods_heard = 0

    @property
    def node_id(self) -> str:
        return self.mac.node_id

    @property
    def stats(self):
        return self.mac.stats

    def set_receive_handler(self, fn: Callable[[Packet], None]) -> None:
        self._handler = fn

    def send(self, packet: Packet) -> bool:
        if packet.is_broadcast:
            flood = Packet(src=self.node_id, dst=BROADCAST,
                           kind=self.FLOOD_PREFIX + packet.kind,
                           payload=(self.node_id, packet.seq, packet.payload),
                           size_bytes=packet.size_bytes + 4,
                           created_at=packet.created_at, hops=0)
            self._seen_floods.add((self.node_id, packet.seq))
            return self.mac.send(flood)
        return self.router.send(packet)

    def start(self) -> None:
        """Bring the underlying MAC (back) up -- node recovery restarts
        the radio through whatever fronts it."""
        self.mac.start()

    def stop(self) -> None:
        self.mac.stop()

    def _deliver(self, packet: Packet) -> None:
        if packet.kind.startswith(self.FLOOD_PREFIX):
            origin, seq, payload = packet.payload
            key = (origin, seq)
            if key in self._seen_floods:
                self.duplicate_floods_heard += 1
                counter = self._pending_relays.get(key)
                if counter is not None:
                    counter[0] += 1
                return
            self._seen_floods.add(key)
            original = Packet(src=origin, dst=BROADCAST,
                              kind=packet.kind[len(self.FLOOD_PREFIX):],
                              payload=payload,
                              size_bytes=max(0, packet.size_bytes - 4),
                              created_at=packet.created_at,
                              hops=packet.hops)
            if self._handler is not None:
                self._handler(original)
            if packet.hops + 1 < self.flood_ttl:
                relay = Packet(src=self.node_id, dst=BROADCAST,
                               kind=packet.kind, payload=packet.payload,
                               size_bytes=packet.size_bytes,
                               created_at=packet.created_at,
                               hops=packet.hops + 1)
                if self.suppress_threshold > 0:
                    counter = [0]
                    self._pending_relays[key] = counter
                    self.mac.engine.post(self.suppress_delay_ticks,
                                         self._relay_decision, key, counter,
                                         relay)
                else:
                    self.floods_relayed += 1
                    self.mac.send(relay)
            return
        if self._handler is not None:
            self._handler(packet)

    def _relay_decision(self, key: tuple[str, int], counter: list[int],
                        relay: Packet) -> None:
        """The held relay fires -- unless enough neighbors beat us to it."""
        self._pending_relays.pop(key, None)
        if counter[0] >= self.suppress_threshold:
            self.floods_suppressed += 1
            return
        self.floods_relayed += 1
        self.mac.send(relay)
