"""Network topologies.

A :class:`Topology` is a `networkx` graph over node ids with per-node planar
positions.  The medium consults it for *audibility* (who can possibly hear
whom); the link-quality model then decides per-frame survival.  Helpers build
the layouts used across the experiments: the paper's 6-node HIL star/mesh,
lines for multi-hop tests, grids and random geometric graphs for scale.
"""

from __future__ import annotations

import math
import random

import networkx as nx

from repro.hardware.node import NodePosition


class Topology:
    """Mutable connectivity graph with positions.

    ``version`` increments on every structural mutation; consumers that
    index the graph (the medium's audible-sender sets, carrier-sense
    horizons) compare it to invalidate their caches in O(1).
    """

    def __init__(self) -> None:
        self.graph = nx.Graph()
        self.version = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node_id: str, position: NodePosition | None = None) -> None:
        if node_id in self.graph:
            raise ValueError(f"node {node_id!r} already in topology")
        self.graph.add_node(node_id, position=position or NodePosition(0.0, 0.0))
        self.version += 1

    def add_link(self, a: str, b: str) -> None:
        for n in (a, b):
            if n not in self.graph:
                raise KeyError(f"unknown node {n!r}")
        self.graph.add_edge(a, b)
        self.version += 1

    def remove_node(self, node_id: str) -> None:
        """Drop a node and all its links (topology-change experiments)."""
        if node_id in self.graph:
            self.graph.remove_node(node_id)
            self.version += 1

    def remove_link(self, a: str, b: str) -> None:
        if self.graph.has_edge(a, b):
            self.graph.remove_edge(a, b)
            self.version += 1

    def connect_by_range(self, radio_range_m: float) -> None:
        """Create links between every node pair within ``radio_range_m``."""
        nodes = list(self.graph.nodes)
        for i, a in enumerate(nodes):
            for b in nodes[i + 1:]:
                if self.distance(a, b) <= radio_range_m:
                    self.graph.add_edge(a, b)
        self.version += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def node_ids(self) -> list[str]:
        return list(self.graph.nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self.graph

    def position(self, node_id: str) -> NodePosition:
        return self.graph.nodes[node_id]["position"]

    def neighbors(self, node_id: str) -> list[str]:
        if node_id not in self.graph:
            return []
        return list(self.graph.neighbors(node_id))

    def has_link(self, a: str, b: str) -> bool:
        return self.graph.has_edge(a, b)

    def distance(self, a: str, b: str) -> float:
        return self.position(a).distance_to(self.position(b))

    def is_connected(self) -> bool:
        if self.graph.number_of_nodes() == 0:
            return True
        return nx.is_connected(self.graph)

    def shortest_path(self, a: str, b: str) -> list[str]:
        return nx.shortest_path(self.graph, a, b)

    def bfs_tree_toward(self, root: str) -> dict[str, str]:
        """Parent pointers toward ``root`` (implicit tree routing)."""
        parents: dict[str, str] = {}
        for child, parent in nx.bfs_predecessors(self.graph, root):
            parents[child] = parent
        return parents


# ----------------------------------------------------------------------
# Canned layouts
# ----------------------------------------------------------------------
def star(center: str, leaves: list[str], spacing_m: float = 10.0) -> Topology:
    """Gateway-centered star -- the paper's Fig. 5 layout skeleton."""
    topo = Topology()
    topo.add_node(center, NodePosition(0.0, 0.0))
    for i, leaf in enumerate(leaves):
        angle = 2.0 * math.pi * i / max(1, len(leaves))
        topo.add_node(leaf, NodePosition(spacing_m * math.cos(angle),
                                         spacing_m * math.sin(angle)))
        topo.add_link(center, leaf)
    return topo


def full_mesh(node_ids: list[str], spacing_m: float = 10.0) -> Topology:
    """Every pair linked; nodes on a circle."""
    topo = Topology()
    for i, node_id in enumerate(node_ids):
        angle = 2.0 * math.pi * i / max(1, len(node_ids))
        topo.add_node(node_id, NodePosition(spacing_m * math.cos(angle),
                                            spacing_m * math.sin(angle)))
    for i, a in enumerate(node_ids):
        for b in node_ids[i + 1:]:
            topo.add_link(a, b)
    return topo


def line(node_ids: list[str], spacing_m: float = 10.0) -> Topology:
    """A chain -- multi-hop routing and pipelining tests."""
    topo = Topology()
    for i, node_id in enumerate(node_ids):
        topo.add_node(node_id, NodePosition(i * spacing_m, 0.0))
    for a, b in zip(node_ids, node_ids[1:]):
        topo.add_link(a, b)
    return topo


def grid(rows: int, cols: int, spacing_m: float = 10.0,
         prefix: str = "n") -> Topology:
    """rows x cols lattice with 4-connectivity; ids ``{prefix}{r}_{c}``."""
    topo = Topology()
    for r in range(rows):
        for c in range(cols):
            topo.add_node(f"{prefix}{r}_{c}",
                          NodePosition(c * spacing_m, r * spacing_m))
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                topo.add_link(f"{prefix}{r}_{c}", f"{prefix}{r}_{c + 1}")
            if r + 1 < rows:
                topo.add_link(f"{prefix}{r}_{c}", f"{prefix}{r + 1}_{c}")
    return topo


def random_geometric(n: int, area_m: float, radio_range_m: float,
                     rng: random.Random, prefix: str = "n") -> Topology:
    """Uniform placement in an ``area_m`` square, range-based links."""
    topo = Topology()
    for i in range(n):
        topo.add_node(f"{prefix}{i}", NodePosition(rng.uniform(0, area_m),
                                                   rng.uniform(0, area_m)))
    topo.connect_by_range(radio_range_m)
    return topo


def random_geometric_connected(n: int, area_m: float, radio_range_m: float,
                               rng: random.Random, prefix: str = "n",
                               growth: float = 1.25,
                               ) -> tuple[Topology, float]:
    """A connected random geometric graph, deterministically.

    Positions are drawn exactly once from ``rng``; if the requested
    ``radio_range_m`` leaves the graph disconnected, the range grows by
    ``growth`` per round (adding links over the *same* placement) until
    it connects -- capped at the area diagonal, where every pair is in
    range.  No further ``rng`` draws occur, so the result, including the
    effective range, is a pure function of the inputs.

    Returns ``(topology, effective_range_m)``.
    """
    if growth <= 1.0:
        raise ValueError(f"growth must exceed 1.0, got {growth}")
    topo = random_geometric(n, area_m, radio_range_m, rng, prefix=prefix)
    range_m = radio_range_m
    diagonal = area_m * math.sqrt(2.0)
    while not topo.is_connected():
        if range_m >= diagonal:  # fully linked yet disconnected: impossible
            raise AssertionError(
                f"random geometric graph of {n} nodes in {area_m} m "
                f"disconnected at full range {range_m:.1f} m")
        range_m = min(diagonal, range_m * growth)
        topo.connect_by_range(range_m)
    return topo, range_m
