"""Wireless network substrate.

Everything between the radio hardware and the EVM: a shared propagation
medium with collision and loss modeling, explicit topologies, the three MAC
protocols the paper discusses (RT-Link TDMA, B-MAC low-power-listen CSMA,
S-MAC loosely-synchronized duty cycling), implicit tree routing, and the
ModBus register gateway that bridges the radio network to the plant
simulator.
"""

from repro.net.link_quality import LinkQualityModel, PathLossModel, PerfectLinks
from repro.net.medium import Medium
from repro.net.packet import BROADCAST, Packet
from repro.net.topology import Topology

__all__ = [
    "Packet",
    "BROADCAST",
    "Topology",
    "Medium",
    "LinkQualityModel",
    "PathLossModel",
    "PerfectLinks",
]
