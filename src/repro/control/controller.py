"""The composed control law, in reference (pure Python) form.

:class:`FilteredPidController` mirrors the bytecode emitted by
:func:`repro.control.compiler.compile_filtered_pid` *exactly* -- same state
layout, same clamp order, prev-error initialized to zero -- so tests can
assert the interpreter and the reference implementation agree step-for-step,
and experiments can use either interchangeably.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.control.compiler import (
    MEMORY_SLOTS,
    SLOT_FILTER_Z1,
    SLOT_FILTER_Z2,
    SLOT_FILTERED,
    SLOT_INPUT,
    SLOT_INTEGRAL,
    SLOT_OUTPUT,
    SLOT_PREV_ERROR,
    SLOT_SETPOINT,
    compile_filtered_pid,
)
from repro.control.filters import BiquadCoefficients, lowpass_coefficients
from repro.evm.bytecode import Program


@dataclass(frozen=True)
class ControlLawConfig:
    """Everything that parameterizes one filtered-PID control loop."""

    kp: float
    ki: float
    kd: float
    dt_sec: float
    setpoint: float
    filter_cutoff_hz: float
    out_min: float = 0.0
    out_max: float = 100.0
    integral_min: float = -1000.0
    integral_max: float = 1000.0

    def coefficients(self) -> BiquadCoefficients:
        return lowpass_coefficients(self.filter_cutoff_hz, self.dt_sec)

    def compile(self, name: str) -> Program:
        return compile_filtered_pid(
            name=name, coefficients=self.coefficients(),
            kp=self.kp, ki=self.ki, kd=self.kd, dt_sec=self.dt_sec,
            out_min=self.out_min, out_max=self.out_max,
            integral_min=self.integral_min, integral_max=self.integral_max)

    def initial_memory(self, measurement: float,
                       output: float) -> tuple[float, ...]:
        """A steady-state preload for the task data segment.

        Makes a controller come online bumplessly at operating point
        (``measurement``, ``output``): filter settled at the measurement,
        integral positioned so the PID emits ``output`` at zero transient.
        """
        c = self.coefficients()
        z2 = c.b2 * measurement - c.a2 * measurement
        z1 = c.b1 * measurement - c.a1 * measurement + z2
        error = self.setpoint - measurement
        if self.ki != 0.0:
            integral = (output - self.kp * error) / self.ki
            integral = min(self.integral_max,
                           max(self.integral_min, integral))
        else:
            integral = 0.0
        memory = [0.0] * MEMORY_SLOTS
        memory[SLOT_INPUT] = measurement
        memory[SLOT_OUTPUT] = output
        memory[SLOT_SETPOINT] = self.setpoint
        memory[SLOT_FILTER_Z1] = z1
        memory[SLOT_FILTER_Z2] = z2
        memory[SLOT_INTEGRAL] = integral
        memory[SLOT_PREV_ERROR] = error
        memory[SLOT_FILTERED] = measurement
        return tuple(memory)


class FilteredPidController:
    """Reference implementation over the same memory slots as the bytecode.

    The law's constants are snapshotted into a flat tuple at construction
    (the per-step dataclass attribute loads dominated the plant's
    regulator sweep); retuning means building a new controller, exactly
    as a retuned bytecode law means compiling a new program -- mutating
    ``config`` after construction does not reach ``step``.
    """

    def __init__(self, config: ControlLawConfig,
                 memory: list[float] | None = None) -> None:
        self.config = config
        self.coefficients = config.coefficients()
        if memory is None:
            memory = [0.0] * MEMORY_SLOTS
            memory[SLOT_SETPOINT] = config.setpoint
        self.memory = memory
        # Constants the per-period law reads, flattened into one tuple:
        # step() runs for every loop on every plant step and the dataclass
        # attribute loads dominated it.
        c = self.coefficients
        self._consts = (c.b0, c.b1, c.b2, c.a1, c.a2, config.dt_sec,
                        config.integral_min, config.integral_max,
                        config.kp, config.ki, config.kd,
                        config.out_min, config.out_max)

    def step(self, measurement: float) -> float:
        """One control period; mirrors the bytecode instruction-for-instruction."""
        (b0, b1, b2, a1, a2, dt_sec, integral_min, integral_max,
         kp, ki, kd, out_min, out_max) = self._consts
        mem = self.memory
        mem[SLOT_INPUT] = measurement
        x = mem[SLOT_INPUT]
        y = b0 * x + mem[SLOT_FILTER_Z1]
        mem[SLOT_FILTERED] = y
        mem[SLOT_FILTER_Z1] = b1 * x - a1 * y + mem[SLOT_FILTER_Z2]
        mem[SLOT_FILTER_Z2] = b2 * x - a2 * y
        error = mem[SLOT_SETPOINT] - y
        integral = mem[SLOT_INTEGRAL] + error * dt_sec
        # Clamps are the builtins written out: CPython's two-argument
        # min/max return the second argument only on a strict compare,
        # so these conditionals are bit-identical (ties and -0.0
        # included) while skipping two calls per clamp on the plant's
        # hottest loop.
        integral = integral if integral < integral_max else integral_max
        integral = integral if integral > integral_min else integral_min
        mem[SLOT_INTEGRAL] = integral
        derivative = (error - mem[SLOT_PREV_ERROR]) / dt_sec
        output = (kd * derivative + kp * error + ki * integral)
        output = output if output < out_max else out_max
        output = output if output > out_min else out_min
        mem[SLOT_OUTPUT] = output
        mem[SLOT_PREV_ERROR] = error
        return output

    def compiled_step(self):
        """:meth:`step` as a self-free closure for prebound regulator
        sweeps: same memory list, same float ops, one attribute load
        and tuple unpack less per period."""
        (b0, b1, b2, a1, a2, dt_sec, integral_min, integral_max,
         kp, ki, kd, out_min, out_max) = self._consts
        mem = self.memory

        def step(measurement: float) -> float:
            mem[SLOT_INPUT] = measurement
            x = measurement
            y = b0 * x + mem[SLOT_FILTER_Z1]
            mem[SLOT_FILTERED] = y
            mem[SLOT_FILTER_Z1] = b1 * x - a1 * y + mem[SLOT_FILTER_Z2]
            mem[SLOT_FILTER_Z2] = b2 * x - a2 * y
            error = mem[SLOT_SETPOINT] - y
            integral = mem[SLOT_INTEGRAL] + error * dt_sec
            integral = integral if integral < integral_max else integral_max
            integral = integral if integral > integral_min else integral_min
            mem[SLOT_INTEGRAL] = integral
            derivative = (error - mem[SLOT_PREV_ERROR]) / dt_sec
            output = (kd * derivative + kp * error + ki * integral)
            output = output if output < out_max else out_max
            output = output if output > out_min else out_min
            mem[SLOT_OUTPUT] = output
            mem[SLOT_PREV_ERROR] = error
            return output

        return step

    @property
    def output(self) -> float:
        return self.memory[SLOT_OUTPUT]
