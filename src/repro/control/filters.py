"""Second-order digital filtering.

The case-study controllers low-pass the noisy wireless level measurement
before the PID.  We use the standard RBJ biquad low-pass (bilinear
transform, Q = 1/sqrt(2) for a Butterworth response), evaluated in direct
form II transposed -- two state variables, which is exactly the amount of
filter state that task migration must carry across nodes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class BiquadCoefficients:
    """Normalized (a0 = 1) biquad coefficients."""

    b0: float
    b1: float
    b2: float
    a1: float
    a2: float


def lowpass_coefficients(cutoff_hz: float, dt_sec: float,
                         q: float = 1.0 / math.sqrt(2.0),
                         ) -> BiquadCoefficients:
    """RBJ audio-EQ-cookbook low-pass biquad design."""
    if cutoff_hz <= 0:
        raise ValueError(f"cutoff must be positive, got {cutoff_hz}")
    if dt_sec <= 0:
        raise ValueError(f"dt must be positive, got {dt_sec}")
    nyquist = 0.5 / dt_sec
    if cutoff_hz >= nyquist:
        raise ValueError(
            f"cutoff {cutoff_hz} Hz at/above Nyquist {nyquist} Hz")
    w0 = 2.0 * math.pi * cutoff_hz * dt_sec
    alpha = math.sin(w0) / (2.0 * q)
    cos_w0 = math.cos(w0)
    a0 = 1.0 + alpha
    return BiquadCoefficients(
        b0=((1.0 - cos_w0) / 2.0) / a0,
        b1=(1.0 - cos_w0) / a0,
        b2=((1.0 - cos_w0) / 2.0) / a0,
        a1=(-2.0 * cos_w0) / a0,
        a2=(1.0 - alpha) / a0,
    )


class SecondOrderLowpass:
    """Stateful biquad in direct form II transposed."""

    def __init__(self, coefficients: BiquadCoefficients) -> None:
        self.coefficients = coefficients
        self.z1 = 0.0
        self.z2 = 0.0

    @classmethod
    def from_cutoff(cls, cutoff_hz: float, dt_sec: float) -> "SecondOrderLowpass":
        return cls(lowpass_coefficients(cutoff_hz, dt_sec))

    def step(self, x: float) -> float:
        c = self.coefficients
        y = c.b0 * x + self.z1
        self.z1 = c.b1 * x - c.a1 * y + self.z2
        self.z2 = c.b2 * x - c.a2 * y
        return y

    def reset(self) -> None:
        self.z1 = 0.0
        self.z2 = 0.0

    def settle_to(self, value: float) -> None:
        """Preload the state so the filter starts settled at ``value``
        (avoids a startup transient when a controller comes online)."""
        c = self.coefficients
        # At steady state y = x = value:
        self.z2 = c.b2 * value - c.a2 * value
        self.z1 = c.b1 * value - c.a1 * value + self.z2
