"""Positional PID regulator with anti-windup."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class PidGains:
    """Proportional / integral / derivative gains."""

    kp: float
    ki: float = 0.0
    kd: float = 0.0


class PidController:
    """u = kp*e + ki*integral(e) + kd*de/dt, clamped.

    Integral term is clamped (anti-windup) and the output is saturated to
    ``[out_min, out_max]``.  ``dt_sec`` is the fixed control period.
    """

    def __init__(self, gains: PidGains, dt_sec: float,
                 out_min: float = 0.0, out_max: float = 100.0,
                 integral_min: float = -1000.0,
                 integral_max: float = 1000.0) -> None:
        if dt_sec <= 0:
            raise ValueError(f"dt must be positive, got {dt_sec}")
        if out_min >= out_max:
            raise ValueError("out_min must be below out_max")
        self.gains = gains
        self.dt_sec = dt_sec
        self.out_min = out_min
        self.out_max = out_max
        self.integral_min = integral_min
        self.integral_max = integral_max
        self.integral = 0.0
        self.prev_error: float | None = None

    def step(self, error: float) -> float:
        """One control period; returns the clamped actuation output."""
        self.integral += error * self.dt_sec
        self.integral = min(self.integral_max,
                            max(self.integral_min, self.integral))
        if self.prev_error is None:
            derivative = 0.0
        else:
            derivative = (error - self.prev_error) / self.dt_sec
        self.prev_error = error
        output = (self.gains.kp * error
                  + self.gains.ki * self.integral
                  + self.gains.kd * derivative)
        return min(self.out_max, max(self.out_min, output))

    def reset(self) -> None:
        self.integral = 0.0
        self.prev_error = None
