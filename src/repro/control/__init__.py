"""Control engineering substrate.

The case study's controllers "perform second order filtering with a PID
regulator".  This package provides:

- :class:`~repro.control.pid.PidController` -- a positional PID with
  anti-windup and output clamping;
- :class:`~repro.control.filters.SecondOrderLowpass` -- an RBJ biquad
  low-pass (direct form II transposed);
- :class:`~repro.control.controller.FilteredPidController` -- the composed
  control law, in reference (Python) form;
- :mod:`~repro.control.compiler` -- compiles the same law to EVM bytecode,
  so the simulated nodes genuinely interpret it (and migration genuinely
  transplants its state).
"""

from repro.control.compiler import (
    SLOT_INPUT,
    SLOT_INTEGRAL,
    SLOT_OUTPUT,
    SLOT_PREV_ERROR,
    SLOT_SETPOINT,
    compile_filtered_pid,
)
from repro.control.controller import ControlLawConfig, FilteredPidController
from repro.control.filters import SecondOrderLowpass
from repro.control.pid import PidController

__all__ = [
    "PidController",
    "SecondOrderLowpass",
    "ControlLawConfig",
    "FilteredPidController",
    "compile_filtered_pid",
    "SLOT_INPUT",
    "SLOT_OUTPUT",
    "SLOT_SETPOINT",
    "SLOT_INTEGRAL",
    "SLOT_PREV_ERROR",
]
