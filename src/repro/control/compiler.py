"""Compile the case-study control law to EVM bytecode.

The controllers in the paper's evaluation "perform second order filtering
with a PID regulator".  :func:`compile_filtered_pid` emits that law as a
FORTH-like EVM program operating on a fixed task-memory layout, so the
simulated nodes *interpret* the control law -- and migrating the task
genuinely transplants filter state, integral and error history.

Task memory layout (slots):

====  ===================  =========================================
slot  name                 meaning
====  ===================  =========================================
0     SLOT_INPUT           raw measurement (written by sensor transfer)
1     SLOT_OUTPUT          actuation command (published to actuator)
2     SLOT_SETPOINT        reference value
3     SLOT_FILTER_Z1       biquad state 1
4     SLOT_FILTER_Z2       biquad state 2
5     SLOT_INTEGRAL        PID integral accumulator
6     SLOT_PREV_ERROR      previous filtered error (derivative)
7     SLOT_FILTERED        filtered measurement (exposed for monitors)
8     SLOT_MODE            spare mode/guard slot for causal transfers
9     SLOT_SCRATCH         interpreter scratch
====  ===================  =========================================
"""

from __future__ import annotations

from repro.control.filters import BiquadCoefficients
from repro.evm.bytecode import Assembler, Program

SLOT_INPUT = 0
SLOT_OUTPUT = 1
SLOT_SETPOINT = 2
SLOT_FILTER_Z1 = 3
SLOT_FILTER_Z2 = 4
SLOT_INTEGRAL = 5
SLOT_PREV_ERROR = 6
SLOT_FILTERED = 7
SLOT_MODE = 8
SLOT_SCRATCH = 9

MEMORY_SLOTS = 16
"""Declared data-segment size for compiled control tasks."""


def compile_filtered_pid(
    name: str,
    coefficients: BiquadCoefficients,
    kp: float,
    ki: float,
    kd: float,
    dt_sec: float,
    out_min: float = 0.0,
    out_max: float = 100.0,
    integral_min: float = -1000.0,
    integral_max: float = 1000.0,
) -> Program:
    """Emit the second-order-filter + PID program.

    Reads SLOT_INPUT and SLOT_SETPOINT, updates the filter/PID state slots,
    writes the clamped command to SLOT_OUTPUT and the filtered measurement
    to SLOT_FILTERED.
    """
    if dt_sec <= 0:
        raise ValueError(f"dt must be positive, got {dt_sec}")
    c = coefficients
    text = f"""
.name {name}
    ; ---- second-order low-pass (direct form II transposed) ----
    ; y = b0*x + z1
    load {SLOT_INPUT}
    push {c.b0!r}
    mul
    load {SLOT_FILTER_Z1}
    add
    store {SLOT_FILTERED}
    ; z1' = b1*x - a1*y + z2
    load {SLOT_INPUT}
    push {c.b1!r}
    mul
    load {SLOT_FILTERED}
    push {c.a1!r}
    mul
    sub
    load {SLOT_FILTER_Z2}
    add
    store {SLOT_FILTER_Z1}
    ; z2' = b2*x - a2*y
    load {SLOT_INPUT}
    push {c.b2!r}
    mul
    load {SLOT_FILTERED}
    push {c.a2!r}
    mul
    sub
    store {SLOT_FILTER_Z2}
    ; ---- PID on filtered error ----
    ; e = setpoint - y
    load {SLOT_SETPOINT}
    load {SLOT_FILTERED}
    sub
    store {SLOT_SCRATCH}
    ; integral += e*dt, clamped
    load {SLOT_INTEGRAL}
    load {SLOT_SCRATCH}
    push {dt_sec!r}
    mul
    add
    push {integral_max!r}
    min
    push {integral_min!r}
    max
    store {SLOT_INTEGRAL}
    ; u = kd*(e - prev)/dt + kp*e + ki*integral
    load {SLOT_SCRATCH}
    load {SLOT_PREV_ERROR}
    sub
    push {dt_sec!r}
    div
    push {kd!r}
    mul
    load {SLOT_SCRATCH}
    push {kp!r}
    mul
    add
    load {SLOT_INTEGRAL}
    push {ki!r}
    mul
    add
    ; clamp and emit
    push {out_max!r}
    min
    push {out_min!r}
    max
    store {SLOT_OUTPUT}
    ; prev = e
    load {SLOT_SCRATCH}
    store {SLOT_PREV_ERROR}
    halt
"""
    return Assembler().assemble(text, name=name)


def compile_passthrough(name: str, gain: float = 1.0,
                        offset: float = 0.0) -> Program:
    """A sensor/actuator task body: out = gain*in + offset.

    Used by sensor tasks (scale a raw reading into engineering units) and
    actuator tasks (apply the received command).
    """
    text = f"""
.name {name}
    load {SLOT_INPUT}
    push {gain!r}
    mul
    push {offset!r}
    add
    store {SLOT_OUTPUT}
    halt
"""
    return Assembler().assemble(text, name=name)
