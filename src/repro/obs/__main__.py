"""``python -m repro.obs`` -- the telemetry export CLI.

``serve`` stands up the stdlib Prometheus endpoint, optionally bridging
a live ``repro.dist`` coordinator into the exposition::

    python -m repro.obs serve --port 9109 --connect 127.0.0.1:7461

and blocks until interrupted (or ``--duration`` elapses, for smoke
tests).  The served registry is the process-global one, enabled here if
it was not already (so ``REPRO_OBS`` is not required for the exporter
itself).
"""

from __future__ import annotations

import argparse
import sys
import time

import repro.obs as obs
from repro.obs.http import MetricsServer


def _cmd_serve(args: argparse.Namespace) -> int:
    registry = obs.enable()
    server = MetricsServer(registry, host=args.host, port=args.port,
                           warehouse=args.warehouse)
    bridge = None
    if args.connect:
        from repro.obs.bridge import CoordinatorBridge

        bridge = CoordinatorBridge(registry, args.connect,
                                   period=args.interval).start()
    server.start()
    print(f"serving metrics on {server.url}/metrics"
          + (f" (bridging {args.connect})" if args.connect else "")
          + (f" (warehouse query edge over {args.warehouse})"
             if args.warehouse else ""),
          flush=True)
    try:
        if args.duration is not None:
            time.sleep(args.duration)
        else:
            while True:
                time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        if bridge is not None:
            bridge.stop()
        server.stop()
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Telemetry export edge (Prometheus over stdlib HTTP)")
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser(
        "serve", help="serve /metrics, /snapshot and /healthz")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=9109)
    serve.add_argument("--connect", metavar="HOST:PORT", default=None,
                       help="also mirror a repro.dist coordinator's "
                            "status stream into the exposition")
    serve.add_argument("--warehouse", metavar="DIR", default=None,
                       help="mount the results-warehouse query edge "
                            "(/campaigns, /query, /trend) on the same "
                            "port")
    serve.add_argument("--interval", type=float, default=1.0,
                       help="status-stream subscription period (s)")
    serve.add_argument("--duration", type=float, default=None,
                       help="exit after this many seconds (smoke tests)")
    serve.set_defaults(fn=_cmd_serve)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
