"""The metrics registry: counters, gauges and histograms with labels.

Everything here is stdlib-only and allocation-conscious: metric objects
carry ``__slots__`` and mutation is a bare attribute update, so an
``inc()`` on a hot path costs an attribute load and an add.  The
*existence* check is the caller's job -- instrumented subsystems bind a
meter bundle at construction (``None`` when telemetry is disabled, see
:mod:`repro.obs`) and hot sites pay exactly one ``is not None`` test
when the layer is off, the same discipline as ``Medium.trace_enabled``.

Thread-safety: registration (get-or-create of a series) takes a lock,
because the distributed coordinator's connection threads and the HTTP
exporter register concurrently.  Mutation of an existing series is a
single ``+=`` / ``=`` on a float under the GIL -- racing increments can
in principle interleave, which is acceptable for telemetry and keeps
the hot path free of locking.

Two export faces:

- :meth:`MetricsRegistry.render_prometheus` -- the text exposition
  format (``text/plain; version=0.0.4``) the ``python -m repro.obs
  serve`` endpoint returns;
- :meth:`MetricsRegistry.snapshot` / :meth:`MetricsRegistry.values` --
  JSON-able dumps, the latter a flat ``series-key -> value`` map built
  for :func:`delta_values` (per-run JSONL snapshots diff a worker's
  cumulative registry around one campaign run).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "delta_values",
    "DEFAULT_BUCKETS",
]

DEFAULT_BUCKETS = (0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
                   0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)
"""Default histogram buckets: latencies from 100 us to 10 s."""

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(key: _LabelKey, extra: str = "") -> str:
    parts = [f'{name}="{_escape(value)}"' for name, value in key]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace(
        "\n", "\\n")


class Counter:
    """Monotonically increasing count.  ``inc`` is the only mutator."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: _LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """A value that goes up and down (queue depth, sim time, ...)."""

    __slots__ = ("name", "labels", "value")

    kind = "gauge"

    def __init__(self, name: str, labels: _LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Cumulative-bucket histogram (Prometheus shape).

    ``observe`` walks the (short) bucket list linearly -- with the
    default 16 buckets that is cheaper than bisect's call overhead for
    the latency ranges the stack records.
    """

    __slots__ = ("name", "labels", "buckets", "counts", "sum", "count")

    kind = "histogram"

    def __init__(self, name: str, labels: _LabelKey = (),
                 buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.labels = labels
        self.buckets = tuple(sorted(buckets))
        self.counts = [0] * (len(self.buckets) + 1)  # +inf tail
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def time(self) -> "_WallTimer":
        """``with hist.time():`` -- observe the wall-clock duration."""
        return _WallTimer(self)


class _WallTimer:
    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "_WallTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._histogram.observe(time.perf_counter() - self._start)


class MetricsRegistry:
    """Owns every metric series plus callback gauges sampled at export.

    ``counter``/``gauge``/``histogram`` are get-or-create: the same
    ``(name, labels)`` always returns the same object, so instrumented
    constructors can re-bind freely.  A name is pinned to one kind; a
    kind mismatch raises (it would render an invalid exposition).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._series: dict[tuple[str, _LabelKey], Any] = {}
        self._kinds: dict[str, str] = {}
        self._help: dict[str, str] = {}
        self._buckets: dict[str, tuple[float, ...]] = {}
        self._callbacks: dict[str, Callable[[], float]] = {}
        # Per-registry cache of instrument bundles (repro.obs.instrument):
        # one bundle object per instrumented layer per registry.
        self.bundles: dict[type, Any] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def _get_or_create(self, factory, kind: str, name: str, help: str,
                       labels: dict[str, str]) -> Any:
        key = (name, _label_key(labels))
        series = self._series.get(key)
        if series is not None and series.kind == kind:
            return series
        with self._lock:
            series = self._series.get(key)
            if series is not None:
                if series.kind != kind:
                    raise ValueError(f"metric {name!r} already registered "
                                     f"as {series.kind}")
                return series
            pinned = self._kinds.setdefault(name, kind)
            if pinned != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {pinned}")
            if help and name not in self._help:
                self._help[name] = help
            series = factory(key[1])
            self._series[key] = series
            return series

    def counter(self, name: str, help: str = "",
                **labels: str) -> Counter:
        return self._get_or_create(lambda k: Counter(name, k), "counter",
                                   name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._get_or_create(lambda k: Gauge(name, k), "gauge",
                                   name, help, labels)

    def histogram(self, name: str, help: str = "",
                  buckets: tuple[float, ...] | None = None,
                  **labels: str) -> Histogram:
        chosen = tuple(buckets) if buckets is not None else \
            self._buckets.get(name, DEFAULT_BUCKETS)
        self._buckets.setdefault(name, chosen)
        return self._get_or_create(
            lambda k: Histogram(name, k, self._buckets[name]),
            "histogram", name, help, labels)

    def register_callback(self, name: str, fn: Callable[[], float],
                          help: str = "") -> None:
        """A gauge whose value is computed at export time (``fn()``).
        Zero cost on every hot path; the exporter pays the sample."""
        with self._lock:
            pinned = self._kinds.setdefault(name, "gauge")
            if pinned != "gauge":
                raise ValueError(
                    f"metric {name!r} already registered as {pinned}")
            if help and name not in self._help:
                self._help[name] = help
            self._callbacks[name] = fn

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def _sorted_series(self) -> list[Any]:
        with self._lock:
            return [self._series[key] for key in sorted(self._series)]

    def _sampled_callbacks(self) -> list[tuple[str, float]]:
        with self._lock:
            callbacks = list(self._callbacks.items())
        sampled = []
        for name, fn in sorted(callbacks):
            try:
                sampled.append((name, float(fn())))
            except Exception:  # noqa: BLE001 - a dead callback must not
                continue       # take the whole exposition down
        return sampled

    def render_prometheus(self) -> str:
        """The text exposition (``text/plain; version=0.0.4``)."""
        lines: list[str] = []
        seen_header: set[str] = set()

        def header(name: str, kind: str) -> None:
            if name in seen_header:
                return
            seen_header.add(name)
            help_text = self._help.get(name)
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")

        for series in self._sorted_series():
            header(series.name, series.kind)
            labels = _render_labels(series.labels)
            if isinstance(series, Histogram):
                cumulative = 0
                for bound, count in zip(series.buckets, series.counts):
                    cumulative += count
                    le = _render_labels(series.labels,
                                        extra=f'le="{bound:g}"')
                    lines.append(f"{series.name}_bucket{le} {cumulative}")
                cumulative += series.counts[-1]
                le = _render_labels(series.labels, extra='le="+Inf"')
                lines.append(f"{series.name}_bucket{le} {cumulative}")
                lines.append(f"{series.name}_sum{labels} {series.sum:g}")
                lines.append(f"{series.name}_count{labels} {series.count}")
            else:
                lines.append(f"{series.name}{labels} {series.value:g}")
        for name, value in self._sampled_callbacks():
            header(name, "gauge")
            lines.append(f"{name} {value:g}")
        return "\n".join(lines) + "\n"

    def snapshot(self) -> dict[str, Any]:
        """JSON-able structured dump (the ``/snapshot`` endpoint)."""
        out: dict[str, Any] = {}
        for series in self._sorted_series():
            entry = out.setdefault(series.name, {
                "kind": series.kind,
                "help": self._help.get(series.name, ""),
                "samples": [],
            })
            sample: dict[str, Any] = {"labels": dict(series.labels)}
            if isinstance(series, Histogram):
                sample["sum"] = series.sum
                sample["count"] = series.count
                sample["buckets"] = {
                    f"{bound:g}": count
                    for bound, count in zip(series.buckets, series.counts)}
                sample["buckets"]["+Inf"] = series.counts[-1]
            else:
                sample["value"] = series.value
            entry["samples"].append(sample)
        for name, value in self._sampled_callbacks():
            out[name] = {"kind": "gauge",
                         "help": self._help.get(name, ""),
                         "samples": [{"labels": {}, "value": value}]}
        return out

    def values(self) -> dict[str, float]:
        """Flat ``series-key -> value`` map for :func:`delta_values`.

        Histograms contribute ``<key>:sum`` and ``<key>:count`` rows;
        gauges are prefixed ``=`` so the differ can tell "report the
        current value" apart from "subtract the before value".
        """
        out: dict[str, float] = {}
        for series in self._sorted_series():
            key = series.name + _render_labels(series.labels)
            if isinstance(series, Histogram):
                out[key + ":sum"] = series.sum
                out[key + ":count"] = float(series.count)
            elif isinstance(series, Gauge):
                out["=" + key] = series.value
            else:
                out[key] = series.value
        return out


def delta_values(before: dict[str, float],
                 after: dict[str, float]) -> dict[str, float]:
    """What moved between two :meth:`MetricsRegistry.values` snapshots.

    Counter/histogram rows subtract (zero deltas are dropped); gauge
    rows (``=``-prefixed) report their ``after`` value as-is.  The
    result is the per-run JSONL record the campaign store persists.
    """
    out: dict[str, float] = {}
    for key, value in after.items():
        if key.startswith("="):
            out[key[1:]] = value
            continue
        delta = value - before.get(key, 0.0)
        if delta:
            out[key] = delta
    return out


def merge_values(rows: Iterable[dict[str, float]]) -> dict[str, float]:
    """Sum a set of :func:`delta_values` rows (cross-run aggregation)."""
    out: dict[str, float] = {}
    for row in rows:
        for key, value in row.items():
            out[key] = out.get(key, 0.0) + value
    return out
