"""Mirror a coordinator's live status stream into metric gauges.

``CoordinatorBridge`` dials a :class:`repro.dist.coordinator.Coordinator`
as a plain client, subscribes to the ``status_update`` stream, and maps
each snapshot onto gauges in a registry -- which makes the whole
distributed campaign scrapeable from the ``python -m repro.obs serve``
endpoint without the coordinator knowing anything about Prometheus.

The bridge is deliberately one-directional and loss-tolerant: a dropped
coordinator flips ``repro_dist_up`` to 0 and the bridge keeps
redialling with a capped backoff until stopped, so a scrape target
survives coordinator restarts.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.obs.metrics import MetricsRegistry

__all__ = ["CoordinatorBridge"]

_STAT_GAUGES = ("jobs_submitted", "jobs_completed", "jobs_failed",
                "jobs_requeued", "workers_dropped", "workers_retired",
                "results_ignored", "trace_dropped")


class CoordinatorBridge:
    """Subscribe to ``address`` and mirror snapshots into ``registry``."""

    def __init__(self, registry: MetricsRegistry, address: str,
                 period: float = 1.0, redial_max: float = 5.0) -> None:
        self.registry = registry
        self.address = address
        self.period = max(0.1, period)
        self.redial_max = redial_max
        self._stopped = threading.Event()
        self._thread: threading.Thread | None = None
        self.updates_received = 0
        self._up = registry.gauge(
            "repro_dist_up",
            "1 while the bridge holds a live coordinator subscription")
        self._pending = registry.gauge(
            "repro_dist_pending_jobs", "Jobs queued, not yet leased")
        self._leased = registry.gauge(
            "repro_dist_leased_jobs", "Jobs leased to workers right now")
        self._workers = registry.gauge(
            "repro_dist_workers", "Connected workers")
        self._clients = registry.gauge(
            "repro_dist_clients", "Connected clients")
        # Fleet-health gauges share the DistMeters bundle so an
        # in-process dist_meters() caller resolves the same series.
        from repro.obs.instrument import DistMeters

        dist = registry.bundles.get(DistMeters)
        if dist is None:
            dist = DistMeters(registry)
            registry.bundles[DistMeters] = dist
        self._dist = dist

    # ------------------------------------------------------------------
    def start(self) -> "CoordinatorBridge":
        self._thread = threading.Thread(target=self._run,
                                        name="obs-bridge", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stopped.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._up.set(0.0)

    def __enter__(self) -> "CoordinatorBridge":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _run(self) -> None:
        from repro.dist.coordinator import connect
        from repro.dist.protocol import recv_message, send_message

        backoff = 0.2
        while not self._stopped.is_set():
            sock = None
            try:
                sock = connect(self.address, role="client",
                               name="obs-bridge", timeout=2.0)
                # Welcome, then subscribe at our period.
                recv_message(sock)
                send_message(sock, {"type": "subscribe",
                                    "period": self.period})
                # Bounded read timeout so stop() is honoured even while
                # the coordinator is idle between pushes.
                sock.settimeout(max(2.0, self.period * 3))
                backoff = 0.2
                while not self._stopped.is_set():
                    header, _payload = recv_message(sock)
                    if header.get("type") != "status_update":
                        continue  # subscribed ack, stray frames
                    self._apply(header.get("status") or {})
                    self.updates_received += 1
            except Exception:  # noqa: BLE001 - any wire fault => redial
                pass
            finally:
                if sock is not None:
                    try:
                        sock.close()
                    except OSError:
                        pass
            self._up.set(0.0)
            if self._stopped.wait(backoff):
                return
            backoff = min(self.redial_max, backoff * 2)

    def _apply(self, status: dict[str, Any]) -> None:
        reg = self.registry
        self._up.set(1.0)
        self._pending.set(float(status.get("pending", 0)))
        self._leased.set(float(status.get("leased", 0)))
        workers = status.get("workers", [])
        self._workers.set(float(len(workers)))
        self._clients.set(float(status.get("clients", 0)))
        self._dist.fleet_size.set(
            float(status.get("fleet_size", len(workers))))
        self._dist.lease_wait_p50.set(
            float(status.get("lease_wait_p50_sec", 0.0)))
        self._dist.lease_wait_p95.set(
            float(status.get("lease_wait_p95_sec", 0.0)))
        for name, value in (status.get("stats") or {}).items():
            if name in _STAT_GAUGES:
                reg.gauge(f"repro_dist_{name}",
                          "Coordinator lifetime counter (mirrored)"
                          ).set(float(value))
        for worker in workers:
            label = str(worker.get("name") or worker.get("id"))
            reg.gauge("repro_dist_worker_inflight",
                      "Leases held per worker",
                      worker=label).set(float(worker.get("inflight", 0)))
            reg.gauge("repro_dist_worker_last_seen_age_sec",
                      "Seconds since the worker's last frame",
                      worker=label).set(
                          float(worker.get("last_seen_age_sec", 0.0)))
            reg.gauge("repro_dist_worker_lease_wait_avg_sec",
                      "Mean queue-wait of jobs granted to this worker",
                      worker=label).set(
                          float(worker.get("lease_wait_avg_sec", 0.0)))
        for campaign in status.get("campaigns", []):
            label = str(campaign.get("name")
                        or campaign.get("client_id"))
            for key in ("outstanding", "completed", "failed"):
                reg.gauge(f"repro_dist_campaign_{key}",
                          f"Per-campaign {key} jobs",
                          campaign=label).set(float(campaign.get(key, 0)))
            reg.gauge("repro_dist_campaign_rate_per_sec",
                      "Per-campaign completion rate",
                      campaign=label).set(
                          float(campaign.get("rate_per_sec", 0.0)))
            eta = campaign.get("eta_sec")
            if eta is not None:
                reg.gauge("repro_dist_campaign_eta_sec",
                          "Projected seconds to drain the campaign",
                          campaign=label).set(float(eta))
            reg.gauge("repro_dist_campaign_weight",
                      "Declared fair-share weight",
                      campaign=label).set(
                          float(campaign.get("weight", 1.0)))
            reg.gauge("repro_dist_campaign_share",
                      "Fraction of grant bandwidth while backlogged",
                      campaign=label).set(
                          float(campaign.get("share", 0.0)))
