"""Per-layer meter bundles -- the binding point between hot code and
the registry.

Each instrumented subsystem calls its ``<layer>_meters()`` factory at
construction time and stores the result as ``self._obs``:

- telemetry disabled (the default): the factory returns ``None`` and
  every hot site pays exactly one ``if self._obs is not None:`` check;
- telemetry enabled: the factory returns a bundle object whose
  attributes are pre-resolved metric instances, so the instrumented
  path does plain attribute loads -- no registry lookups, no dict
  hashing, no string formatting per event.

Bundles are cached per registry (``registry.bundles``), so thousands of
nodes constructed in a wide-grid run share one set of series.

Instrumentation altitude is chosen per layer to keep telemetry-on
overhead under the 10% budget: the engine flushes once per ``run()``
(never per event), the medium piggybacks on its existing batch flush,
the VM meters at ``execute()`` granularity (never per instruction), and
only cool paths (slot boundaries, failovers, deadline misses, plant
steps at ~10 Hz sim rate) meter per occurrence.
"""

from __future__ import annotations

import repro.obs as _obs
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "EngineMeters", "MediumMeters", "RtLinkMeters", "VmMeters",
    "SchedulerMeters", "EvmMeters", "HealthMeters", "PlantMeters",
    "CampaignMeters", "DistMeters",
    "engine_meters", "medium_meters", "rtlink_meters", "vm_meters",
    "scheduler_meters", "evm_meters", "health_meters", "plant_meters",
    "campaign_meters", "dist_meters",
]

# Buckets for sim-time failover latency: the paper's failover budget is
# tens of milliseconds to a few round lengths, so resolve that range.
_FAILOVER_BUCKETS = (0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.2, 0.5,
                     1.0, 2.0, 5.0)
# Buckets for frames drained per RT-Link TX slot (small integers).
_SLOT_BUCKETS = (0.0, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0)
# Buckets for plant step wall time (tens of microseconds .. ms).
_STEP_BUCKETS = (0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
                 0.001, 0.0025, 0.005, 0.01)


class EngineMeters:
    """Flushed once per ``Engine.run()``/``run_until()`` -- zero
    per-event cost."""

    __slots__ = ("events", "runs", "pending", "sim_time")

    def __init__(self, registry: MetricsRegistry) -> None:
        self.events = registry.counter(
            "repro_engine_events_dispatched_total",
            "Discrete events dispatched by all engines")
        self.runs = registry.counter(
            "repro_engine_runs_total",
            "Engine run()/run_until() invocations")
        self.pending = registry.gauge(
            "repro_engine_pending_events",
            "Live events queued at the end of the last run")
        self.sim_time = registry.gauge(
            "repro_engine_sim_time_seconds",
            "Simulated clock of the most recently run engine")


class MediumMeters:
    """Incremented from the medium's existing batch-flush points."""

    __slots__ = ("frames_sent", "frames_delivered", "collisions",
                 "channel_losses")

    def __init__(self, registry: MetricsRegistry) -> None:
        self.frames_sent = registry.counter(
            "repro_net_frames_sent_total",
            "Frames offered to the shared medium")
        self.frames_delivered = registry.counter(
            "repro_net_frames_delivered_total",
            "Frame receptions delivered to radios")
        self.collisions = registry.counter(
            "repro_net_collisions_total",
            "Receptions lost to overlapping transmissions")
        self.channel_losses = registry.counter(
            "repro_net_channel_losses_total",
            "Receptions lost to the stochastic channel model")


class RtLinkMeters:
    """Slot-boundary occupancy: a few hundred Hz of sim events."""

    __slots__ = ("slots_woken", "slots_transmitted", "slot_frames")

    def __init__(self, registry: MetricsRegistry) -> None:
        self.slots_woken = registry.counter(
            "repro_rtlink_slots_woken_total",
            "TDMA slots in which a node woke its radio")
        self.slots_transmitted = registry.counter(
            "repro_rtlink_slots_transmitted_total",
            "TDMA TX slots that carried at least one frame")
        self.slot_frames = registry.histogram(
            "repro_rtlink_slot_occupancy_frames",
            "Frames drained per owned TX slot",
            buckets=_SLOT_BUCKETS)


class VmMeters:
    """Metered at ``Interpreter.execute()`` granularity only."""

    __slots__ = ("instructions", "faults")

    def __init__(self, registry: MetricsRegistry) -> None:
        self.instructions = registry.counter(
            "repro_vm_instructions_total",
            "EVM bytecode instructions retired")
        self.faults = registry.counter(
            "repro_vm_faults_total",
            "EVM executions ended by a VmError")


class SchedulerMeters:
    """Rare-path RTOS events (preemptions, misses, task faults)."""

    __slots__ = ("preemptions", "context_switches", "deadline_misses",
                 "task_faults")

    def __init__(self, registry: MetricsRegistry) -> None:
        self.preemptions = registry.counter(
            "repro_rtos_preemptions_total",
            "Running jobs preempted by higher-priority releases")
        self.context_switches = registry.counter(
            "repro_rtos_context_switches_total",
            "Execution slices started")
        self.deadline_misses = registry.counter(
            "repro_rtos_deadline_misses_total",
            "Jobs that blew their deadline")
        self.task_faults = registry.counter(
            "repro_rtos_task_faults_total",
            "Task bodies that raised during a slice")


class EvmMeters:
    """Failover machinery: reports, executions, sim-time latency."""

    __slots__ = ("faults_reported", "failovers", "failovers_failed",
                 "failover_latency")

    def __init__(self, registry: MetricsRegistry) -> None:
        self.faults_reported = registry.counter(
            "repro_evm_faults_reported_total",
            "Faults reported to the EVM runtime")
        self.failovers = registry.counter(
            "repro_evm_failovers_total",
            "Capsule failovers executed successfully")
        self.failovers_failed = registry.counter(
            "repro_evm_failovers_failed_total",
            "Failover attempts lost to arbitration or no candidate")
        self.failover_latency = registry.histogram(
            "repro_evm_failover_latency_seconds",
            "Sim time from fault report to completed failover",
            buckets=_FAILOVER_BUCKETS)


class HealthMeters:
    """Health-monitor verdicts (confirmations are rare by design)."""

    __slots__ = ("faults_confirmed", "silences")

    def __init__(self, registry: MetricsRegistry) -> None:
        self.faults_confirmed = registry.counter(
            "repro_health_faults_confirmed_total",
            "Output-plausibility monitors that confirmed a fault")
        self.silences = registry.counter(
            "repro_health_silence_checks_total",
            "Heartbeat checks that found a node silent")


class PlantMeters:
    """Wall time per plant step (~10 Hz of sim time: cool path)."""

    __slots__ = ("steps", "step_seconds")

    def __init__(self, registry: MetricsRegistry) -> None:
        self.steps = registry.counter(
            "repro_plant_steps_total",
            "Flowsheet integration steps executed")
        self.step_seconds = registry.histogram(
            "repro_plant_step_seconds",
            "Wall-clock duration of one plant step",
            buckets=_STEP_BUCKETS)


class CampaignMeters:
    """Per-run lifecycle in campaign workers and runners."""

    __slots__ = ("runs", "runs_failed", "run_seconds")

    def __init__(self, registry: MetricsRegistry) -> None:
        self.runs = registry.counter(
            "repro_campaign_runs_total",
            "Scenario runs completed")
        self.runs_failed = registry.counter(
            "repro_campaign_runs_failed_total",
            "Scenario runs that raised")
        self.run_seconds = registry.histogram(
            "repro_campaign_run_seconds",
            "Wall-clock duration of one scenario run")


class DistMeters:
    """Elastic-fleet health of a distributed campaign broker.

    Set from status snapshots (the obs bridge at ~1 Hz), never from the
    grant hot path, so the broker's loop stays metric-free."""

    __slots__ = ("fleet_size", "lease_wait_p50", "lease_wait_p95")

    def __init__(self, registry: MetricsRegistry) -> None:
        self.fleet_size = registry.gauge(
            "repro_dist_fleet_size",
            "Workers with open slots (retiring workers excluded)")
        self.lease_wait_p50 = registry.gauge(
            "repro_dist_lease_wait_p50_sec",
            "Median queue-wait of recently granted leases")
        self.lease_wait_p95 = registry.gauge(
            "repro_dist_lease_wait_p95_sec",
            "95th-percentile queue-wait of recently granted leases")


def _bundle(cls):
    registry = _obs.get_registry()
    if registry is None:
        return None
    bundle = registry.bundles.get(cls)
    if bundle is None:
        bundle = cls(registry)
        registry.bundles[cls] = bundle
    return bundle


def engine_meters() -> EngineMeters | None:
    return _bundle(EngineMeters)


def medium_meters() -> MediumMeters | None:
    return _bundle(MediumMeters)


def rtlink_meters() -> RtLinkMeters | None:
    return _bundle(RtLinkMeters)


def vm_meters() -> VmMeters | None:
    return _bundle(VmMeters)


def scheduler_meters() -> SchedulerMeters | None:
    return _bundle(SchedulerMeters)


def evm_meters() -> EvmMeters | None:
    return _bundle(EvmMeters)


def health_meters() -> HealthMeters | None:
    return _bundle(HealthMeters)


def plant_meters() -> PlantMeters | None:
    return _bundle(PlantMeters)


def campaign_meters() -> CampaignMeters | None:
    return _bundle(CampaignMeters)


def dist_meters() -> DistMeters | None:
    return _bundle(DistMeters)
