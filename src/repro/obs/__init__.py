"""``repro.obs`` -- the unified telemetry layer.

A process-global :class:`~repro.obs.metrics.MetricsRegistry` that the
instrumented subsystems (engine, medium, RT-Link, EVM, scheduler, plant,
campaign runners) publish into, plus export edges: Prometheus text
exposition over a stdlib HTTP server (``python -m repro.obs serve``),
JSON snapshots, and per-run JSONL deltas attached to campaign stores.

Telemetry is **off by default** and the disabled fast path is the whole
design: instrumented constructors call
``repro.obs.instrument.<layer>_meters()``, which returns ``None`` while
disabled, so every hot site guards with a single ``if self._obs is not
None:`` -- the same one-attribute-check discipline as
``Medium.trace_enabled``.  Enabling telemetry only affects objects
constructed *afterwards*; that is deliberate (a registry swap mid-run
would tear metrics across registries).

Enable programmatically (:func:`enable`) or via ``REPRO_OBS=1`` in the
environment -- the env path is what carries enablement into campaign
pool workers and distributed workers, which are separate processes.
"""

from __future__ import annotations

import os

from repro.obs.metrics import (  # noqa: F401 - re-exports
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    delta_values,
    merge_values,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "delta_values",
    "merge_values",
    "enabled",
    "enable",
    "disable",
    "get_registry",
]

_registry: MetricsRegistry | None = None


def enabled() -> bool:
    """True when a registry is active (new objects will instrument)."""
    return _registry is not None


def enable(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Activate telemetry, optionally into a caller-supplied registry.

    Idempotent when already enabled and no explicit registry is given.
    Returns the active registry.
    """
    global _registry
    if registry is not None:
        _registry = registry
    elif _registry is None:
        _registry = MetricsRegistry()
    return _registry


def disable() -> None:
    """Deactivate telemetry.  Objects constructed while enabled keep
    their (now-orphaned) meter bundles; new objects bind ``None``."""
    global _registry
    _registry = None


def get_registry() -> MetricsRegistry | None:
    """The active registry, or ``None`` while disabled."""
    return _registry


_ENV_TRUE = ("1", "true", "yes", "on")

if os.environ.get("REPRO_OBS", "").strip().lower() in _ENV_TRUE:
    # Subprocesses (campaign pool workers, dist workers) inherit the
    # environment, so REPRO_OBS=1 enables the whole process tree.
    enable()
