"""Span helpers: measure wall-clock or *simulated* durations.

Wall-clock spans wrap ``time.perf_counter`` around real work (plant
steps, campaign runs).  Sim-time spans read the engine clock instead --
the duration is how much simulated time elapsed between enter and exit,
which is the right ruler for things like failover latency where the
wall cost of computing an event says nothing about the modelled system.

Both are plain context managers feeding a
:class:`~repro.obs.metrics.Histogram`; neither is used on per-event hot
paths (those sites increment counters directly and amortize at batch
boundaries -- see ``repro.obs.instrument``).
"""

from __future__ import annotations

import time

from repro.obs.metrics import Histogram

__all__ = ["WallSpan", "SimSpan"]

# One simulated second in engine ticks (mirrors repro.sim.clock.SEC;
# duplicated here so obs never imports the sim layer it instruments).
_TICKS_PER_SEC = 1_000_000


class WallSpan:
    """``with WallSpan(hist): ...`` -- observe elapsed wall seconds."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "WallSpan":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._histogram.observe(time.perf_counter() - self._start)


class SimSpan:
    """``with SimSpan(engine, hist): ...`` -- observe elapsed *sim* seconds.

    ``engine`` is anything with a ``now`` attribute in integer ticks
    (one microsecond per tick, :data:`_TICKS_PER_SEC` per second).
    """

    __slots__ = ("_engine", "_histogram", "_start")

    def __init__(self, engine, histogram: Histogram) -> None:
        self._engine = engine
        self._histogram = histogram
        self._start = 0

    def __enter__(self) -> "SimSpan":
        self._start = self._engine.now
        return self

    def __exit__(self, *exc_info) -> None:
        self._histogram.observe(
            (self._engine.now - self._start) / _TICKS_PER_SEC)
