"""Prometheus/JSON export over a tiny stdlib HTTP server.

``MetricsServer`` wraps :class:`http.server.ThreadingHTTPServer` with
read-only endpoints:

- ``/metrics``  -- Prometheus text exposition 0.0.4 (scrape target);
- ``/snapshot`` -- the registry's structured JSON dump;
- ``/healthz``  -- liveness probe (``ok``).

With a ``warehouse=`` directory mounted, the **results-warehouse query
edge** joins the same process (one daemon serves live metrics *and*
durable analytics, so dashboards and the coordinator bridge share a
port):

- ``/campaigns``   -- the campaign catalog (JSON);
- ``/query?...``   -- cross-campaign aggregates; filters
  (``campaign``/``tenant``/``scenario``/``seed``/``grid_size``/
  ``commit``, repeatable), ``group_by`` (comma-separated), ``meter``
  and ``percentiles`` mirror ``python -m repro.warehouse query``;
- ``/trend?meter=...&window=N`` -- per-meter perf trajectories over
  the ingested ``BENCH_*`` snapshots.

The warehouse is reopened read-only per request (handler threads never
share a sqlite connection), so a long-lived exporter always serves the
latest ingested rows.  No dependencies beyond the standard library; the
server runs on a daemon thread so embedding it in a campaign script
costs one line.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.obs.metrics import MetricsRegistry

__all__ = ["MetricsServer", "PROMETHEUS_CONTENT_TYPE"]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_QUERY_FILTERS = ("campaign", "tenant", "scenario", "seed",
                  "grid_size", "commit")


def _warehouse_query(warehouse_path: str, path: str,
                     params: dict[str, list[str]]) -> dict:
    """One read-only warehouse request -> a JSON-ready dict."""
    from repro.warehouse import open_warehouse
    from repro.warehouse import query as query_mod

    with open_warehouse(warehouse_path) as wh:
        if path == "/campaigns":
            return {"campaigns": query_mod.campaigns(wh)}
        if path == "/query":
            where: dict = {}
            for field in _QUERY_FILTERS:
                values: list = params.get(field, [])
                if field in ("seed", "grid_size"):
                    values = [int(v) for v in values]
                if len(values) == 1:
                    where[field] = values[0]
                elif values:
                    where[field] = values
            group_by = [f for f in
                        params.get("group_by", ["campaign"])[0].split(",")
                        if f]
            meter = params.get("meter", [None])[0]
            percentiles = [float(q) for q in
                           params.get("percentiles", ["50,90,99"])[0]
                           .split(",") if q]
            return query_mod.query_runs(wh, where=where,
                                        group_by=group_by, meter=meter,
                                        percentiles=percentiles)
        if path == "/trend":
            snapshots = query_mod.bench_snapshots(wh)
            meters = params.get("meter") or query_mod.trend_meters(snapshots)
            window = params.get("window", [None])[0]
            window = int(window) if window else None
            return {"meters": {
                meter: [{"bench": n, "value": v} for n, v in
                        query_mod.trend_series(snapshots, meter,
                                               window=window)]
                for meter in meters}}
    raise KeyError(path)


class _Handler(BaseHTTPRequestHandler):
    # The registry is attached to the *server* (one handler instance is
    # created per request).
    server: "_Server"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        split = urlsplit(self.path)
        path = split.path
        if path in ("/metrics", "/"):
            body = self.server.registry.render_prometheus().encode()
            self._reply(200, PROMETHEUS_CONTENT_TYPE, body)
        elif path == "/snapshot":
            body = json.dumps(self.server.registry.snapshot(),
                              sort_keys=True).encode()
            self._reply(200, "application/json", body)
        elif path == "/healthz":
            self._reply(200, "text/plain; charset=utf-8", b"ok\n")
        elif path in ("/campaigns", "/query", "/trend"):
            if self.server.warehouse_path is None:
                self._reply(404, "text/plain; charset=utf-8",
                            b"no warehouse mounted\n")
                return
            try:
                result = _warehouse_query(self.server.warehouse_path,
                                          path, parse_qs(split.query))
            except (ValueError, KeyError) as exc:
                self._reply(400, "text/plain; charset=utf-8",
                            f"bad query: {exc}\n".encode())
                return
            body = json.dumps(result, sort_keys=True).encode()
            self._reply(200, "application/json", body)
        else:
            self._reply(404, "text/plain; charset=utf-8",
                        b"not found\n")

    def _reply(self, status: int, content_type: str,
               body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt: str, *args) -> None:  # noqa: A002
        pass  # scrapes every few seconds must not spam stderr


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    registry: MetricsRegistry
    warehouse_path: str | None


class MetricsServer:
    """Serve a registry (and optionally a results warehouse) over HTTP
    on a daemon thread.

    ``port=0`` binds an ephemeral port; read it back from
    :attr:`address` after :meth:`start`.  ``warehouse=`` mounts the
    read-only query edge on the same port (a warehouse directory path,
    or an open ``Warehouse`` whose ``root`` is on disk).
    """

    def __init__(self, registry: MetricsRegistry, host: str = "127.0.0.1",
                 port: int = 9109, warehouse=None) -> None:
        self.registry = registry
        self._server = _Server((host, port), _Handler)
        self._server.registry = registry
        self._server.warehouse_path = self._warehouse_path(warehouse)
        self._thread: threading.Thread | None = None

    @staticmethod
    def _warehouse_path(warehouse) -> str | None:
        if warehouse is None:
            return None
        root = getattr(warehouse, "root", warehouse)
        if root is None:
            raise ValueError("the query edge needs an on-disk warehouse "
                             "(in-memory warehouses cannot be reopened "
                             "per request)")
        return str(root)

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "MetricsServer":
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="obs-http",
            daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
