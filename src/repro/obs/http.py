"""Prometheus/JSON export over a tiny stdlib HTTP server.

``MetricsServer`` wraps :class:`http.server.ThreadingHTTPServer` with
three read-only endpoints:

- ``/metrics``  -- Prometheus text exposition 0.0.4 (scrape target);
- ``/snapshot`` -- the registry's structured JSON dump;
- ``/healthz``  -- liveness probe (``ok``).

No dependencies beyond the standard library; the server runs on a
daemon thread so embedding it in a campaign script costs one line.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.metrics import MetricsRegistry

__all__ = ["MetricsServer", "PROMETHEUS_CONTENT_TYPE"]

PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _Handler(BaseHTTPRequestHandler):
    # The registry is attached to the *server* (one handler instance is
    # created per request).
    server: "_Server"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        if path in ("/metrics", "/"):
            body = self.server.registry.render_prometheus().encode()
            self._reply(200, PROMETHEUS_CONTENT_TYPE, body)
        elif path == "/snapshot":
            body = json.dumps(self.server.registry.snapshot(),
                              sort_keys=True).encode()
            self._reply(200, "application/json", body)
        elif path == "/healthz":
            self._reply(200, "text/plain; charset=utf-8", b"ok\n")
        else:
            self._reply(404, "text/plain; charset=utf-8",
                        b"not found\n")

    def _reply(self, status: int, content_type: str,
               body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt: str, *args) -> None:  # noqa: A002
        pass  # scrapes every few seconds must not spam stderr


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    registry: MetricsRegistry


class MetricsServer:
    """Serve a registry over HTTP on a daemon thread.

    ``port=0`` binds an ephemeral port; read it back from
    :attr:`address` after :meth:`start`.
    """

    def __init__(self, registry: MetricsRegistry, host: str = "127.0.0.1",
                 port: int = 9109) -> None:
        self.registry = registry
        self._server = _Server((host, port), _Handler)
        self._server.registry = registry
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "MetricsServer":
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="obs-http",
            daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
