"""Structured event tracing.

Experiments, benchmarks and tests assert on traces rather than poking at
internal state: each subsystem records ``TraceEvent`` rows (time, category,
source, payload) and analysis code filters/aggregates them afterwards.

``Trace.record`` sits on the hot path of every traced run (the medium, the
MACs and the RTOS all emit rows per frame/job), so the log is kept as raw
tuples and :class:`TraceEvent` objects are only materialized for rows a
view actually returns -- recording allocates nothing beyond the keyword
dict the call itself builds, ``count()`` allocates nothing at all, and
``events(category=...)`` pays only for its matches.  Materialized rows
are value-identical to the eager implementation this replaced (a
hypothesis property pins this).

Wide-grid runs that only ever inspect the recent past can bound memory
with ``Trace(capacity=...)``: the log becomes a ring that retains the most
recent ``capacity`` rows and counts what it dropped.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

from repro.sim.clock import format_time


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One recorded occurrence.

    ``category`` is a dotted namespace such as ``"mac.tx"`` or
    ``"evm.failover.activate"``; ``source`` identifies the emitting entity
    (usually a node id); ``data`` is a small dict of primitives.
    """

    time: int
    category: str
    source: str
    data: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        return (f"[{format_time(self.time)}] {self.category} "
                f"src={self.source} {self.data}")


class Trace:
    """Append-only event log with filtered views.

    A ``Trace`` may be shared by the whole simulation; categories keep
    subsystems separable.  Optional live subscribers receive each event as
    it is recorded (used by fault detectors that watch actuation outputs);
    subscriber-delivered events compare equal to the materialized rows.

    ``capacity=None`` (the default) retains everything; an integer turns
    the log into a ring holding the most recent ``capacity`` rows, with
    :attr:`dropped` counting evictions.
    """

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        # Raw rows: (time, category, source, data).  Bounded traces ride a
        # maxlen deque (O(1) eviction); unbounded ones a plain list.
        self._raw: Any = deque(maxlen=capacity) if capacity else []
        self._recorded = 0
        self._subscribers: list[Callable[[TraceEvent], None]] = []

    def record(self, time: int, category: str, source: str,
               **data: Any) -> None:
        """Append an event and notify live subscribers."""
        self._raw.append((time, category, source, data))
        self._recorded += 1
        if self._subscribers:
            event = TraceEvent(time=time, category=category, source=source,
                               data=data)
            for subscriber in list(self._subscribers):
                subscriber(event)

    def subscribe(self, callback: Callable[[TraceEvent], None]) -> Callable[[], None]:
        """Receive every future event; returns an unsubscribe function."""
        self._subscribers.append(callback)

        def unsubscribe() -> None:
            try:
                self._subscribers.remove(callback)
            except ValueError:
                pass

        return unsubscribe

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    @property
    def dropped(self) -> int:
        """Rows evicted by the ring (0 for unbounded traces)."""
        return self._recorded - len(self._raw)

    def _select(self, category: str | None, source: str | None,
                since: int | None = None, until: int | None = None):
        """Matching raw rows, cheapest filters first (no allocation)."""
        for row in self._raw:
            if category is not None and not row[1].startswith(category):
                continue
            if source is not None and row[2] != source:
                continue
            if since is not None and row[0] < since:
                continue
            if until is not None and row[0] > until:
                continue
            yield row

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._raw)

    def __iter__(self) -> Iterator[TraceEvent]:
        # Generator, not a prebuilt list: iterating a multi-million-row
        # trace must not materialize every event up front.
        return (TraceEvent(t, c, s, d) for (t, c, s, d) in self._raw)

    def events(self, category: str | None = None, source: str | None = None,
               since: int | None = None, until: int | None = None,
               ) -> list[TraceEvent]:
        """Events filtered by category prefix, source and time window."""
        return [TraceEvent(t, c, s, d)
                for (t, c, s, d) in self._select(category, source,
                                                 since, until)]

    def count(self, category: str | None = None, source: str | None = None) -> int:
        if category is None and source is None:
            return len(self._raw)
        return sum(1 for _ in self._select(category, source))

    def series(self, category: str, key: str,
               source: str | None = None) -> list[tuple[int, Any]]:
        """(time, data[key]) pairs for events in ``category`` -- a time series."""
        return [(t, d[key]) for (t, c, s, d) in self._select(category, source)
                if key in d]

    def last(self, category: str, source: str | None = None) -> TraceEvent | None:
        # Newest-first scan: polls for the most recent event are common
        # and must not walk a multi-million-row log from the front.
        for (t, c, s, d) in reversed(self._raw):
            if not c.startswith(category):
                continue
            if source is not None and s != source:
                continue
            return TraceEvent(t, c, s, d)
        return None

    def clear(self) -> None:
        self._raw.clear()
        self._recorded = 0

    def dump(self, categories: Iterable[str] | None = None) -> str:
        """Multi-line human-readable rendering (debugging aid)."""
        rows = []
        for (t, c, s, d) in self._raw:
            if categories is not None and not any(
                    c.startswith(prefix) for prefix in categories):
                continue
            rows.append(str(TraceEvent(t, c, s, d)))
        return "\n".join(rows)
