"""Structured event tracing.

Experiments, benchmarks and tests assert on traces rather than poking at
internal state: each subsystem records ``TraceEvent`` rows (time, category,
source, payload) and analysis code filters/aggregates them afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

from repro.sim.clock import format_time


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One recorded occurrence.

    ``category`` is a dotted namespace such as ``"mac.tx"`` or
    ``"evm.failover.activate"``; ``source`` identifies the emitting entity
    (usually a node id); ``data`` is a small dict of primitives.
    """

    time: int
    category: str
    source: str
    data: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        return (f"[{format_time(self.time)}] {self.category} "
                f"src={self.source} {self.data}")


class Trace:
    """Append-only event log with filtered views.

    A ``Trace`` may be shared by the whole simulation; categories keep
    subsystems separable.  Optional live subscribers receive each event as it
    is recorded (used by fault detectors that watch actuation outputs).
    """

    def __init__(self) -> None:
        self._events: list[TraceEvent] = []
        self._subscribers: list[Callable[[TraceEvent], None]] = []

    def record(self, time: int, category: str, source: str,
               **data: Any) -> TraceEvent:
        """Append an event and notify live subscribers."""
        event = TraceEvent(time=time, category=category, source=source,
                           data=data)
        self._events.append(event)
        for subscriber in list(self._subscribers):
            subscriber(event)
        return event

    def subscribe(self, callback: Callable[[TraceEvent], None]) -> Callable[[], None]:
        """Receive every future event; returns an unsubscribe function."""
        self._subscribers.append(callback)

        def unsubscribe() -> None:
            try:
                self._subscribers.remove(callback)
            except ValueError:
                pass

        return unsubscribe

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def events(self, category: str | None = None, source: str | None = None,
               since: int | None = None, until: int | None = None,
               ) -> list[TraceEvent]:
        """Events filtered by category prefix, source and time window."""
        out = []
        for event in self._events:
            if category is not None and not event.category.startswith(category):
                continue
            if source is not None and event.source != source:
                continue
            if since is not None and event.time < since:
                continue
            if until is not None and event.time > until:
                continue
            out.append(event)
        return out

    def count(self, category: str | None = None, source: str | None = None) -> int:
        return len(self.events(category=category, source=source))

    def series(self, category: str, key: str,
               source: str | None = None) -> list[tuple[int, Any]]:
        """(time, data[key]) pairs for events in ``category`` -- a time series."""
        return [(e.time, e.data[key])
                for e in self.events(category=category, source=source)
                if key in e.data]

    def last(self, category: str, source: str | None = None) -> TraceEvent | None:
        matches = self.events(category=category, source=source)
        return matches[-1] if matches else None

    def clear(self) -> None:
        self._events.clear()

    def dump(self, categories: Iterable[str] | None = None) -> str:
        """Multi-line human-readable rendering (debugging aid)."""
        rows = []
        for event in self._events:
            if categories is not None and not any(
                    event.category.startswith(c) for c in categories):
                continue
            rows.append(str(event))
        return "\n".join(rows)
