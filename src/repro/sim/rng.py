"""Deterministic named random streams.

Every stochastic model (link loss, sync jitter, sensor noise, CSMA backoff)
draws from its own named substream so that adding a new consumer never
perturbs the draws of existing ones -- runs stay reproducible as the system
grows.  Substreams are derived from a single master seed with
``random.Random`` seeded by a stable hash of ``(master_seed, name)``.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator


def _derive_seed(master_seed: int, name: str) -> int:
    digest = hashlib.sha256(f"{master_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """Factory and cache of named deterministic random streams."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The same (master_seed, name) pair always yields the same sequence.
        """
        if name not in self._streams:
            self._streams[name] = random.Random(
                _derive_seed(self.master_seed, name))
        return self._streams[name]

    def names(self) -> Iterator[str]:
        return iter(sorted(self._streams))

    def fork(self, salt: str) -> "RngRegistry":
        """Derive an independent registry (e.g. one per Monte-Carlo run)."""
        return RngRegistry(_derive_seed(self.master_seed, f"fork:{salt}"))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"RngRegistry(seed={self.master_seed}, "
                f"streams={len(self._streams)})")
