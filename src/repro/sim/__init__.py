"""Discrete-event simulation kernel.

All EVM substrates (radio medium, MAC protocols, the nano-RK RTOS model,
the plant hardware-in-loop bridge) run on this kernel.  Simulated time is
kept in **integer microseconds** so that sub-millisecond effects -- the
paper's sub-150 microsecond time-synchronization jitter, TDMA slot edges,
interrupt latencies -- are representable exactly and the event queue stays
deterministic.

Public surface:

- :class:`~repro.sim.clock.SimClock` and the tick constants
  (:data:`~repro.sim.clock.US`, :data:`~repro.sim.clock.MS`,
  :data:`~repro.sim.clock.SEC`)
- :class:`~repro.sim.engine.Engine` -- the event loop
- :class:`~repro.sim.engine.EventHandle` -- cancellation token
- :class:`~repro.sim.process.Process`, :class:`~repro.sim.process.Delay`,
  :class:`~repro.sim.process.WaitSignal` -- generator-style processes
- :class:`~repro.sim.process.Signal` -- waitable broadcast event
- :class:`~repro.sim.rng.RngRegistry` -- named deterministic random streams
- :class:`~repro.sim.trace.Trace` / :class:`~repro.sim.trace.TraceEvent` --
  structured event recording used by experiments and tests
"""

from repro.sim.clock import MS, SEC, US, SimClock, format_time
from repro.sim.engine import Engine, EventHandle, SimulationError
from repro.sim.process import Delay, Process, Signal, WaitSignal
from repro.sim.rng import RngRegistry
from repro.sim.trace import Trace, TraceEvent

__all__ = [
    "US",
    "MS",
    "SEC",
    "SimClock",
    "format_time",
    "Engine",
    "EventHandle",
    "SimulationError",
    "Process",
    "Delay",
    "Signal",
    "WaitSignal",
    "RngRegistry",
    "Trace",
    "TraceEvent",
]
