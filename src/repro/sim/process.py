"""Generator-based simulation processes.

Long-lived stateful behaviours (MAC state machines, the EVM runtime loop,
plant polling) read naturally as generators that yield *wait requests*:

    def sender(node):
        while True:
            yield Delay(100 * MS)
            node.radio.transmit(...)
            got = yield WaitSignal(node.ack_signal, timeout=20 * MS)

A :class:`Process` drives such a generator on the engine.  Two wait request
types are supported:

- :class:`Delay` -- resume after a fixed number of ticks;
- :class:`WaitSignal` -- resume when a :class:`Signal` fires (the ``yield``
  evaluates to the signal payload) or when the optional timeout elapses
  (the ``yield`` evaluates to :data:`TIMEOUT`).

Resumes are **allocation-free**: instead of holding a cancellable
:class:`~repro.sim.engine.EventHandle` per wait, the process carries a
monotonically increasing *generation* counter and arms every wait through
the engine's fire-and-forget ``post`` path with the generation baked into
the callback arguments.  Cancellation (``kill``, a signal winning the race
against its timeout) just bumps the generation, which turns any in-flight
resume into a no-op when it pops -- the common MAC inner loop
(B-MAC/S-MAC/RT-Link all run as generator processes) allocates nothing
per ``Delay`` resume.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable

from repro.sim.engine import Engine, SimulationError


class _Timeout:
    """Sentinel returned from ``yield WaitSignal(...)`` on timeout."""

    def __repr__(self) -> str:
        return "TIMEOUT"

    def __bool__(self) -> bool:
        return False


TIMEOUT = _Timeout()


class Delay:
    """Wait request: resume the process after ``ticks`` of simulated time."""

    __slots__ = ("ticks",)

    def __init__(self, ticks: int) -> None:
        if ticks < 0:
            raise ValueError(f"negative delay {ticks}")
        self.ticks = int(ticks)


class Signal:
    """A broadcast waitable: processes and callbacks wake when it fires.

    Unlike a queue, a signal does not buffer: a ``fire`` wakes exactly the
    waiters registered at that moment.  ``name`` is for traces and debugging.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._waiters: list[Callable[[Any], None]] = []
        self.fire_count = 0
        self.last_payload: Any = None

    def wait(self, callback: Callable[[Any], None]) -> Callable[[], None]:
        """Register ``callback(payload)`` for the next firing.

        Returns an unsubscribe function (idempotent).
        """
        self._waiters.append(callback)

        def unsubscribe() -> None:
            try:
                self._waiters.remove(callback)
            except ValueError:
                pass

        return unsubscribe

    def fire(self, payload: Any = None) -> int:
        """Wake all current waiters with ``payload``; returns waiter count."""
        self.fire_count += 1
        self.last_payload = payload
        waiters, self._waiters = self._waiters, []
        for callback in waiters:
            callback(payload)
        return len(waiters)

    @property
    def waiter_count(self) -> int:
        return len(self._waiters)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Signal({self.name!r}, waiters={len(self._waiters)})"


class WaitSignal:
    """Wait request: resume when ``signal`` fires, or after ``timeout`` ticks.

    With a timeout, the yield expression evaluates to :data:`TIMEOUT` if the
    timeout won the race, otherwise to the signal payload.
    """

    __slots__ = ("signal", "timeout")

    def __init__(self, signal: Signal, timeout: int | None = None) -> None:
        if timeout is not None and timeout < 0:
            raise ValueError(f"negative timeout {timeout}")
        self.signal = signal
        self.timeout = timeout


class Process:
    """Drives a generator of wait requests on an :class:`Engine`.

    The process starts on the next engine dispatch (never synchronously), so
    construction order in user code does not affect event order subtleties.

    ``_generation`` identifies the currently-armed wait: every arm bumps it
    and bakes the new value into the posted resume's arguments, so a resume
    whose generation no longer matches (killed process, lost signal/timeout
    race) falls through as a no-op instead of needing a cancellable handle.
    """

    __slots__ = ("engine", "name", "_gen", "alive", "result", "_generation",
                 "_unsubscribe", "_post", "_resume_cb")

    def __init__(self, engine: Engine, generator: Generator, name: str = "") -> None:
        self.engine = engine
        self.name = name or getattr(generator, "__name__", "process")
        self._gen = generator
        self.alive = True
        self.result: Any = None
        self._generation = 1
        self._unsubscribe: Callable[[], None] | None = None
        # Bound once: the resume path would otherwise re-create the bound
        # method (and re-resolve engine.post) on every single wait.
        self._post = engine.post
        self._resume_cb = self._resume_if
        self._post(0, self._resume_cb, 1, None)

    def kill(self) -> None:
        """Stop the process; its generator is closed and never resumed."""
        if not self.alive:
            return
        self.alive = False
        self._generation += 1  # any in-flight resume is now stale
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None
        self._gen.close()

    def _resume_if(self, gen: int, value: Any) -> None:
        """Resume the generator iff ``gen`` is still the armed wait."""
        if gen != self._generation or not self.alive:
            return
        try:
            request = self._gen.send(value)
        except StopIteration as stop:
            self.alive = False
            self.result = stop.value
            return
        if isinstance(request, Delay):
            # The hot path: no handle, no closure -- one heap entry
            # carrying the next generation.
            self._generation = gen = self._generation + 1
            self._post(request.ticks, self._resume_cb, gen, None)
        elif isinstance(request, WaitSignal):
            self._arm_wait_signal(request)
        else:
            self._fail_request(request)

    def _fail_request(self, request: Any) -> None:
        # Tear down fully before raising: the generator is closed (its
        # finally blocks run) and no stale waiter can resurrect us.
        self.alive = False
        self._generation += 1
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None
        self._gen.close()
        raise SimulationError(
            f"process {self.name!r} yielded unsupported request "
            f"{request!r}; expected Delay or WaitSignal"
        )

    def _arm_wait_signal(self, request: WaitSignal) -> None:
        self._generation = gen = self._generation + 1

        def on_signal(payload: Any) -> None:
            if gen != self._generation or not self.alive:
                return
            # Consuming the wait bumps the generation, which also settles
            # the race: a timeout still in the heap is now stale.  Resume
            # on the engine to avoid re-entrant generator sends when a
            # signal fires from within this same process's call stack.
            self._generation = new_gen = gen + 1
            self._unsubscribe = None
            self._post(0, self._resume_cb, new_gen, payload)

        self._unsubscribe = request.signal.wait(on_signal)

        if request.timeout is not None:
            self._post(request.timeout, self._on_timeout, gen)

    def _on_timeout(self, gen: int) -> None:
        if gen != self._generation or not self.alive:
            return  # the signal won the race (or the process died)
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None
        self._resume_if(gen, TIMEOUT)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self.alive else "dead"
        return f"Process({self.name!r}, {state})"


def spawn_all(engine: Engine, generators: Iterable[Generator]) -> list[Process]:
    """Convenience: start a process per generator, in order."""
    return [Process(engine, gen) for gen in generators]
