"""Generator-based simulation processes.

Long-lived stateful behaviours (MAC state machines, the EVM runtime loop,
plant polling) read naturally as generators that yield *wait requests*:

    def sender(node):
        while True:
            yield Delay(100 * MS)
            node.radio.transmit(...)
            got = yield WaitSignal(node.ack_signal, timeout=20 * MS)

A :class:`Process` drives such a generator on the engine.  Two wait request
types are supported:

- :class:`Delay` -- resume after a fixed number of ticks;
- :class:`WaitSignal` -- resume when a :class:`Signal` fires (the ``yield``
  evaluates to the signal payload) or when the optional timeout elapses
  (the ``yield`` evaluates to :data:`TIMEOUT`).
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable

from repro.sim.engine import Engine, EventHandle, SimulationError


class _Timeout:
    """Sentinel returned from ``yield WaitSignal(...)`` on timeout."""

    def __repr__(self) -> str:
        return "TIMEOUT"

    def __bool__(self) -> bool:
        return False


TIMEOUT = _Timeout()


class Delay:
    """Wait request: resume the process after ``ticks`` of simulated time."""

    __slots__ = ("ticks",)

    def __init__(self, ticks: int) -> None:
        if ticks < 0:
            raise ValueError(f"negative delay {ticks}")
        self.ticks = int(ticks)


class Signal:
    """A broadcast waitable: processes and callbacks wake when it fires.

    Unlike a queue, a signal does not buffer: a ``fire`` wakes exactly the
    waiters registered at that moment.  ``name`` is for traces and debugging.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._waiters: list[Callable[[Any], None]] = []
        self.fire_count = 0
        self.last_payload: Any = None

    def wait(self, callback: Callable[[Any], None]) -> Callable[[], None]:
        """Register ``callback(payload)`` for the next firing.

        Returns an unsubscribe function (idempotent).
        """
        self._waiters.append(callback)

        def unsubscribe() -> None:
            try:
                self._waiters.remove(callback)
            except ValueError:
                pass

        return unsubscribe

    def fire(self, payload: Any = None) -> int:
        """Wake all current waiters with ``payload``; returns waiter count."""
        self.fire_count += 1
        self.last_payload = payload
        waiters, self._waiters = self._waiters, []
        for callback in waiters:
            callback(payload)
        return len(waiters)

    @property
    def waiter_count(self) -> int:
        return len(self._waiters)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Signal({self.name!r}, waiters={len(self._waiters)})"


class WaitSignal:
    """Wait request: resume when ``signal`` fires, or after ``timeout`` ticks.

    With a timeout, the yield expression evaluates to :data:`TIMEOUT` if the
    timeout won the race, otherwise to the signal payload.
    """

    __slots__ = ("signal", "timeout")

    def __init__(self, signal: Signal, timeout: int | None = None) -> None:
        if timeout is not None and timeout < 0:
            raise ValueError(f"negative timeout {timeout}")
        self.signal = signal
        self.timeout = timeout


class Process:
    """Drives a generator of wait requests on an :class:`Engine`.

    The process starts on the next engine dispatch (never synchronously), so
    construction order in user code does not affect event order subtleties.
    """

    def __init__(self, engine: Engine, generator: Generator, name: str = "") -> None:
        self.engine = engine
        self.name = name or getattr(generator, "__name__", "process")
        self._gen = generator
        self.alive = True
        self.result: Any = None
        self._pending_event: EventHandle | None = None
        self._unsubscribe: Callable[[], None] | None = None
        self._pending_event = engine.schedule(0, self._resume, None)

    def kill(self) -> None:
        """Stop the process; its generator is closed and never resumed."""
        if not self.alive:
            return
        self.alive = False
        if self._pending_event is not None:
            self._pending_event.cancel()
            self._pending_event = None
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None
        self._gen.close()

    def _resume(self, value: Any) -> None:
        if not self.alive:
            return
        self._pending_event = None
        self._unsubscribe = None
        try:
            request = self._gen.send(value)
        except StopIteration as stop:
            self.alive = False
            self.result = stop.value
            return
        self._arm(request)

    def _arm(self, request: Any) -> None:
        if isinstance(request, Delay):
            self._pending_event = self.engine.schedule(
                request.ticks, self._resume, None)
        elif isinstance(request, WaitSignal):
            self._arm_wait_signal(request)
        else:
            self.alive = False
            raise SimulationError(
                f"process {self.name!r} yielded unsupported request "
                f"{request!r}; expected Delay or WaitSignal"
            )

    def _arm_wait_signal(self, request: WaitSignal) -> None:
        resumed = False

        def on_signal(payload: Any) -> None:
            nonlocal resumed
            if resumed:
                return
            resumed = True
            if self._pending_event is not None:
                self._pending_event.cancel()
                self._pending_event = None
            # Resume on the engine to avoid re-entrant generator sends when
            # a signal fires from within this same process's call stack.
            self._pending_event = self.engine.schedule(0, self._resume, payload)

        self._unsubscribe = request.signal.wait(on_signal)

        if request.timeout is not None:
            def on_timeout() -> None:
                nonlocal resumed
                if resumed:
                    return
                resumed = True
                if self._unsubscribe is not None:
                    self._unsubscribe()
                    self._unsubscribe = None
                self._resume(TIMEOUT)

            self._pending_event = self.engine.schedule(
                request.timeout, on_timeout)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self.alive else "dead"
        return f"Process({self.name!r}, {state})"


def spawn_all(engine: Engine, generators: Iterable[Generator]) -> list[Process]:
    """Convenience: start a process per generator, in order."""
    return [Process(engine, gen) for gen in generators]
