"""Simulated time base.

Time is an integer number of microseconds since simulation start.  Integer
ticks keep event ordering exact (no floating-point ties) and are fine-grained
enough for the platform effects the paper reports: sub-150 us synchronization
jitter, 5 ms TDMA slots and 250 ms control cycles.
"""

from __future__ import annotations

US = 1
"""One microsecond, the base tick."""

MS = 1_000
"""One millisecond in ticks."""

SEC = 1_000_000
"""One second in ticks."""


def format_time(ticks: int) -> str:
    """Render a tick count as a human-readable time string.

    >>> format_time(1_500_000)
    '1.500000s'
    """
    sign = "-" if ticks < 0 else ""
    ticks = abs(ticks)
    return f"{sign}{ticks // SEC}.{ticks % SEC:06d}s"


class SimClock:
    """Monotonic simulated clock owned by the :class:`~repro.sim.engine.Engine`.

    The clock only advances through the engine's event dispatch; user code
    reads it via :attr:`now` and converts with the helpers below.
    """

    __slots__ = ("_now",)

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start at negative time {start}")
        self._now = int(start)

    @property
    def now(self) -> int:
        """Current simulated time in ticks (microseconds)."""
        return self._now

    @property
    def now_seconds(self) -> float:
        """Current simulated time in seconds (float, for reporting only)."""
        return self._now / SEC

    def advance_to(self, when: int) -> None:
        """Move the clock forward to ``when``.  Only the engine calls this."""
        if when < self._now:
            raise ValueError(
                f"clock cannot move backwards: {format_time(when)} < "
                f"{format_time(self._now)}"
            )
        self._now = when

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SimClock({format_time(self._now)})"
