"""The discrete-event engine.

A single priority queue of ``(time, priority, sequence, handle, callback,
args)`` entries.  Entries at equal times dispatch in ``(priority, insertion
order)`` -- a deterministic tie-break that higher layers rely on (e.g. the
RTOS releases jobs *before* the scheduler decision event in the same tick by
scheduling the release with a lower priority number).

Two scheduling paths share the queue:

- :meth:`Engine.schedule` / :meth:`Engine.schedule_at` return an
  :class:`EventHandle` for callers that may cancel the event;
- :meth:`Engine.post` / :meth:`Engine.post_at` are the allocation-free
  fast path for fire-and-forget events (no handle object at all) -- the
  overwhelmingly common case on the hot paths (frame completions, plant
  steps, periodic samplers).

Both paths dispatch identically; the sequence number keeps the total
order exactly as if every event had gone through ``schedule``.

Callers that *rarely* cancel should not pay for ``schedule`` either: the
idiom used by :class:`~repro.sim.process.Process` and the RTOS periodic
release/replenish chains is a **generation token** -- post the event with a
monotonically increasing generation baked into its arguments and have the
callback drop stale generations, so "cancellation" is an integer bump and
the armed path allocates nothing.  The stale entry dispatches as a no-op
(and therefore counts in ``dispatched_count``), whereas a cancelled handle
is skipped; total order of live events is identical either way.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.obs import instrument
from repro.sim.clock import SimClock, format_time

_heappush = heapq.heappush
_heappop = heapq.heappop


class SimulationError(RuntimeError):
    """Raised for misuse of the engine (scheduling in the past, etc.)."""


class EventHandle:
    """Cancellation token returned by :meth:`Engine.schedule`.

    Cancellation is lazy: the queue entry stays in the heap but is skipped at
    dispatch time.  ``cancel()`` is idempotent.
    """

    __slots__ = ("when", "callback", "args", "cancelled", "dispatched",
                 "_engine")

    def __init__(self, when: int, callback: Callable[..., Any], args: tuple,
                 engine: "Engine | None" = None) -> None:
        self.when = when
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.dispatched = False
        self._engine = engine

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        if self.cancelled or self.dispatched:
            return
        self.cancelled = True
        if self._engine is not None:
            self._engine._live -= 1

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and neither fired nor cancelled."""
        return not (self.cancelled or self.dispatched)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else (
            "dispatched" if self.dispatched else "pending")
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"EventHandle({format_time(self.when)}, {name}, {state})"


class Engine:
    """Deterministic discrete-event loop with an integer-microsecond clock."""

    def __init__(self, start: int = 0) -> None:
        self.clock = SimClock(start)
        # (when, priority, seq, handle_or_None, callback, args); seq is
        # unique, so comparisons never reach the non-orderable fields.
        self._queue: list[tuple] = []
        self._seq = 0
        self._live = 0
        self._running = False
        self._dispatched_count = 0
        # Telemetry rides the existing run()-boundary flush: the event
        # loop itself never touches the bundle, so per-event cost is
        # zero whether obs is on or off.
        self._obs = instrument.engine_meters()

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: int,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` ticks from now.

        ``priority`` breaks same-tick ties: lower values dispatch first.
        Returns an :class:`EventHandle` that can cancel the event.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} ticks in the past")
        when = self.clock._now + delay
        handle = EventHandle(when, callback, args, self)
        self._seq += 1
        self._live += 1
        _heappush(self._queue, (when, priority, self._seq, handle,
                                callback, args))
        return handle

    def schedule_at(
        self,
        when: int,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute time ``when``."""
        if when < self.clock.now:
            raise SimulationError(
                f"cannot schedule at {format_time(when)}, now is "
                f"{format_time(self.clock.now)}"
            )
        handle = EventHandle(when, callback, args, self)
        self._seq += 1
        self._live += 1
        _heappush(self._queue, (when, priority, self._seq, handle,
                                callback, args))
        return handle

    def post(
        self,
        delay: int,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> None:
        """Fire-and-forget :meth:`schedule`: no :class:`EventHandle`.

        Dispatch order is identical to ``schedule``; the only difference
        is that the event cannot be cancelled, so no token is allocated.
        Use this on hot paths that never keep the returned handle.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} ticks in the past")
        self._seq += 1
        self._live += 1
        # delay >= 0 makes `when` >= now by construction; no re-check.
        _heappush(self._queue, (self.clock._now + delay, priority, self._seq,
                                None, callback, args))

    def post_at(
        self,
        when: int,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> None:
        """Fire-and-forget :meth:`schedule_at` (see :meth:`post`)."""
        if when < self.clock.now:
            raise SimulationError(
                f"cannot schedule at {format_time(when)}, now is "
                f"{format_time(self.clock.now)}"
            )
        self._seq += 1
        self._live += 1
        _heappush(self._queue, (when, priority, self._seq, None,
                                callback, args))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulated time in ticks."""
        return self.clock.now

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued.

        O(1): a counter incremented on insert and decremented on cancel
        and dispatch (cancelled entries stay in the heap until popped,
        but are already subtracted here).
        """
        return self._live

    @property
    def dispatched_count(self) -> int:
        """Total events dispatched since construction (for overhead benches)."""
        return self._dispatched_count

    def step(self) -> bool:
        """Dispatch the single next event.  Returns False if queue is empty."""
        queue = self._queue
        while queue:
            when, _prio, _seq, handle, callback, args = _heappop(queue)
            if handle is not None:
                if handle.cancelled:
                    continue
                handle.dispatched = True
            self._live -= 1
            # Popped times are monotone (schedule refuses the past), so the
            # clock moves forward without re-validating each advance.
            self.clock._now = when
            self._dispatched_count += 1
            callback(*args)
            return True
        return False

    def run(self, max_events: int | None = None) -> int:
        """Run until the queue drains (or ``max_events`` dispatches).

        Returns the number of events dispatched.
        """
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        dispatched = 0
        queue = self._queue
        clock = self.clock
        pop = _heappop
        # The live/dispatched counters flush once in `finally`: both are
        # only observable between runs (callbacks never read them mid-run).
        try:
            if max_events is None:
                while queue:
                    when, _prio, _seq, handle, callback, args = pop(queue)
                    if handle is not None:
                        if handle.cancelled:
                            continue
                        handle.dispatched = True
                    clock._now = when
                    dispatched += 1
                    callback(*args)
            else:
                while queue:
                    when, _prio, _seq, handle, callback, args = pop(queue)
                    if handle is not None:
                        if handle.cancelled:
                            continue
                        handle.dispatched = True
                    clock._now = when
                    dispatched += 1
                    callback(*args)
                    if dispatched >= max_events:
                        break
        finally:
            self._running = False
            self._live -= dispatched
            self._dispatched_count += dispatched
            if self._obs is not None:
                self._flush_obs(dispatched)
        return dispatched

    def _flush_obs(self, dispatched: int) -> None:
        """Publish run-boundary telemetry (only called when enabled)."""
        obs = self._obs
        obs.events.inc(dispatched)
        obs.runs.inc()
        obs.pending.set(self._live)
        obs.sim_time.set(self.clock._now / 1_000_000)

    def run_until(self, when: int) -> int:
        """Run events with timestamps ``<= when``; clock lands exactly on it.

        Returns the number of events dispatched.  Events scheduled beyond
        ``when`` remain queued for a later call.  The heap is walked once:
        each entry is peeked and popped at most one time (cancelled
        entries included), instead of the peek-then-step double walk.
        """
        if when < self.clock.now:
            raise SimulationError(
                f"run_until({format_time(when)}) is in the past "
                f"(now {format_time(self.clock.now)})"
            )
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        dispatched = 0
        queue = self._queue
        clock = self.clock
        pop = _heappop
        try:
            while queue:
                entry_when, _prio, _seq, handle, callback, args = queue[0]
                if entry_when > when:
                    break
                pop(queue)
                if handle is not None:
                    if handle.cancelled:
                        continue
                    handle.dispatched = True
                clock._now = entry_when
                dispatched += 1
                callback(*args)
            clock.advance_to(when)
        finally:
            self._running = False
            self._live -= dispatched
            self._dispatched_count += dispatched
            if self._obs is not None:
                self._flush_obs(dispatched)
        return dispatched

    def run_for(self, duration: int) -> int:
        """Run for ``duration`` ticks of simulated time from now."""
        return self.run_until(self.clock.now + duration)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Engine(now={format_time(self.clock.now)}, "
                f"pending={self.pending_events})")
