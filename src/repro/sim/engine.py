"""The discrete-event engine.

A single priority queue of ``(time, priority, sequence, callback)`` entries.
Entries at equal times dispatch in ``(priority, insertion order)`` -- a
deterministic tie-break that higher layers rely on (e.g. the RTOS releases
jobs *before* the scheduler decision event in the same tick by scheduling the
release with a lower priority number).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.sim.clock import SimClock, format_time


class SimulationError(RuntimeError):
    """Raised for misuse of the engine (scheduling in the past, etc.)."""


class EventHandle:
    """Cancellation token returned by :meth:`Engine.schedule`.

    Cancellation is lazy: the queue entry stays in the heap but is skipped at
    dispatch time.  ``cancel()`` is idempotent.
    """

    __slots__ = ("when", "callback", "args", "cancelled", "dispatched")

    def __init__(self, when: int, callback: Callable[..., Any], args: tuple) -> None:
        self.when = when
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.dispatched = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        self.cancelled = True

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and neither fired nor cancelled."""
        return not (self.cancelled or self.dispatched)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else (
            "dispatched" if self.dispatched else "pending")
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"EventHandle({format_time(self.when)}, {name}, {state})"


class Engine:
    """Deterministic discrete-event loop with an integer-microsecond clock."""

    def __init__(self, start: int = 0) -> None:
        self.clock = SimClock(start)
        self._queue: list[tuple[int, int, int, EventHandle]] = []
        self._seq = 0
        self._running = False
        self._dispatched_count = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: int,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` ticks from now.

        ``priority`` breaks same-tick ties: lower values dispatch first.
        Returns an :class:`EventHandle` that can cancel the event.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} ticks in the past")
        return self.schedule_at(self.clock.now + delay, callback, *args,
                                priority=priority)

    def schedule_at(
        self,
        when: int,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute time ``when``."""
        if when < self.clock.now:
            raise SimulationError(
                f"cannot schedule at {format_time(when)}, now is "
                f"{format_time(self.clock.now)}"
            )
        handle = EventHandle(when, callback, args)
        self._seq += 1
        heapq.heappush(self._queue, (when, priority, self._seq, handle))
        return handle

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulated time in ticks."""
        return self.clock.now

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for *_rest, h in self._queue if not h.cancelled)

    @property
    def dispatched_count(self) -> int:
        """Total events dispatched since construction (for overhead benches)."""
        return self._dispatched_count

    def step(self) -> bool:
        """Dispatch the single next event.  Returns False if queue is empty."""
        while self._queue:
            when, _prio, _seq, handle = heapq.heappop(self._queue)
            if handle.cancelled:
                continue
            self.clock.advance_to(when)
            handle.dispatched = True
            self._dispatched_count += 1
            handle.callback(*handle.args)
            return True
        return False

    def run(self, max_events: int | None = None) -> int:
        """Run until the queue drains (or ``max_events`` dispatches).

        Returns the number of events dispatched.
        """
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        dispatched = 0
        try:
            while self.step():
                dispatched += 1
                if max_events is not None and dispatched >= max_events:
                    break
        finally:
            self._running = False
        return dispatched

    def run_until(self, when: int) -> int:
        """Run events with timestamps ``<= when``; clock lands exactly on it.

        Returns the number of events dispatched.  Events scheduled beyond
        ``when`` remain queued for a later call.
        """
        if when < self.clock.now:
            raise SimulationError(
                f"run_until({format_time(when)}) is in the past "
                f"(now {format_time(self.clock.now)})"
            )
        if self._running:
            raise SimulationError("engine is not reentrant")
        self._running = True
        dispatched = 0
        try:
            while self._queue:
                next_when = self._next_live_time()
                if next_when is None or next_when > when:
                    break
                self.step()
                dispatched += 1
            self.clock.advance_to(when)
        finally:
            self._running = False
        return dispatched

    def run_for(self, duration: int) -> int:
        """Run for ``duration`` ticks of simulated time from now."""
        return self.run_until(self.clock.now + duration)

    def _next_live_time(self) -> int | None:
        """Peek the timestamp of the next non-cancelled event, pruning dead ones."""
        while self._queue:
            when, _prio, _seq, handle = self._queue[0]
            if handle.cancelled:
                heapq.heappop(self._queue)
                continue
            return when
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Engine(now={format_time(self.clock.now)}, "
                f"pending={self.pending_events})")
