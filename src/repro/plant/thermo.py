"""Simplified vapor-liquid thermodynamics.

Full equation-of-state flashes are Unisim's job; the EVM only needs the
*closed-loop shape* of the plant response.  We use a temperature-driven
split: the fraction of a species condensing to liquid follows a logistic
curve in (T_boil,effective - T), where pressure raises the effective boiling
point (Clausius-Clapeyron flavored).  This reproduces the qualitative
behavior the flowsheet depends on -- colder separators condense more and
heavier components condense first -- with smooth, stable derivatives.
"""

from __future__ import annotations

import math

from repro.plant.components import SPECIES, Composition, Stream

_PRESSURE_REF_KPA = 101.3
_BOILING_SHIFT_C_PER_LOG_P = 25.0   # effective Tb rise per decade of pressure
_SPLIT_WIDTH_C = 30.0               # softness of the condensation curve


def effective_boiling_point_c(boiling_point_c: float,
                              pressure_kpa: float) -> float:
    """Boiling point shifted by pressure (one decade ~ +25 degC)."""
    if pressure_kpa <= 0:
        raise ValueError(f"pressure must be positive, got {pressure_kpa}")
    return boiling_point_c + _BOILING_SHIFT_C_PER_LOG_P * math.log10(
        pressure_kpa / _PRESSURE_REF_KPA)


def liquid_fraction(boiling_point_c: float, temperature_c: float,
                    pressure_kpa: float) -> float:
    """Fraction of a species condensing at (T, P); logistic in Tb_eff - T."""
    tb_eff = effective_boiling_point_c(boiling_point_c, pressure_kpa)
    x = (tb_eff - temperature_c) / _SPLIT_WIDTH_C
    return 1.0 / (1.0 + math.exp(-x * 4.0))


# Per-(T, P) species split fractions.  Separators flash at a fixed
# pressure and often a fixed (or converged) temperature, so the seven
# log10/exp evaluations per flash collapse to one dict hit.  Values are a
# pure function of the key, so caching changes no bits; the size cap only
# guards pathological workloads that never repeat a key.
_SPLIT_CACHE: dict[tuple[float, float], tuple[float, ...]] = {}
_SPLIT_CACHE_MAX = 16384


def _split_fractions(temperature_c: float,
                     pressure_kpa: float) -> tuple[float, ...]:
    key = (temperature_c, pressure_kpa)
    cached = _SPLIT_CACHE.get(key)
    if cached is None:
        cached = tuple(
            liquid_fraction(s.boiling_point_c, temperature_c, pressure_kpa)
            for s in SPECIES)
        if len(_SPLIT_CACHE) >= _SPLIT_CACHE_MAX:
            _SPLIT_CACHE.clear()
        _SPLIT_CACHE[key] = cached
    return cached


def flash(stream: Stream, temperature_c: float,
          pressure_kpa: float) -> tuple[Stream, Stream]:
    """Split a stream into (vapor, liquid) at the given conditions.

    Returns two streams at (T, P); either may have zero flow.
    """
    splits = _split_fractions(temperature_c, pressure_kpa)
    molar_flow = stream.molar_flow
    fractions = stream.composition.fractions
    vapor_flows = []
    liquid_flows = []
    for i in range(len(splits)):
        flow = molar_flow * fractions[i]
        liq = flow * splits[i]
        liquid_flows.append(liq)
        vapor_flows.append(flow - liq)
    vapor_total = sum(vapor_flows)
    liquid_total = sum(liquid_flows)
    vapor = (Stream(vapor_total, Composition._normalized(vapor_flows),
                    temperature_c,
                    pressure_kpa) if vapor_total > 1e-12
             else Stream.empty(temperature_c, pressure_kpa))
    liquid = (Stream(liquid_total, Composition._normalized(liquid_flows),
                     temperature_c,
                     pressure_kpa) if liquid_total > 1e-12
              else Stream.empty(temperature_c, pressure_kpa))
    return vapor, liquid


HEAT_CAPACITY_J_PER_MOL_K = 45.0
"""Lumped molar heat capacity used for exchanger duty estimates."""


def sensible_duty_watts(stream: Stream, delta_t: float) -> float:
    """Heat duty to change a stream's temperature by ``delta_t``."""
    return stream.molar_flow * HEAT_CAPACITY_J_PER_MOL_K * delta_t
